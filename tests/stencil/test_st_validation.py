"""Unit tests for the validation oracles themselves."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stencil import (
    Heat1DParams,
    analytic_heat_profile,
    discrete_heat_decay_factor,
    jacobi_dense_solution,
    l2_error,
    max_error,
)


def test_profile_is_zero_mean_sine():
    u = analytic_heat_profile(64, mode=2)
    assert abs(u.sum()) < 1e-10
    assert u.max() <= 1.0


def test_profile_validation():
    with pytest.raises(ValidationError):
        analytic_heat_profile(1)
    with pytest.raises(ValidationError):
        analytic_heat_profile(16, mode=8)  # not resolvable
    with pytest.raises(ValidationError):
        analytic_heat_profile(16, mode=0)


def test_decay_factor_bounds():
    params = Heat1DParams()
    f = discrete_heat_decay_factor(64, 1, params, 100)
    assert 0.0 < f < 1.0
    assert discrete_heat_decay_factor(64, 1, params, 0) == 1.0
    with pytest.raises(ValidationError):
        discrete_heat_decay_factor(64, 1, params, -1)


def test_higher_modes_decay_faster():
    params = Heat1DParams()
    f1 = discrete_heat_decay_factor(64, 1, params, 100)
    f5 = discrete_heat_decay_factor(64, 5, params, 100)
    assert f5 < f1


def test_l2_error_basics():
    a = np.ones(4)
    assert l2_error(a, a) == 0.0
    assert l2_error(np.zeros(4), a) == pytest.approx(1.0)
    with pytest.raises(ValidationError):
        l2_error(np.zeros(3), np.zeros(4))


def test_max_error_basics():
    assert max_error(np.array([1.0, 2.0]), np.array([1.0, 2.5])) == 0.5
    assert max_error(np.array([]), np.array([])) == 0.0
    with pytest.raises(ValidationError):
        max_error(np.zeros(2), np.zeros(3))


def test_dense_solution_is_jacobi_fixed_point():
    from repro.stencil import jacobi_reference_step

    field = np.zeros((8, 9))
    field[0, :] = 1.0
    field[:, 0] = 0.5
    solution = jacobi_dense_solution(field)
    after_sweep = jacobi_reference_step(solution)
    assert max_error(after_sweep, solution) < 1e-12


def test_dense_solution_respects_maximum_principle():
    field = np.zeros((6, 6))
    field[0, :] = 1.0
    solution = jacobi_dense_solution(field)
    interior = solution[1:-1, 1:-1]
    assert interior.min() > 0.0
    assert interior.max() < 1.0


def test_dense_solution_validation():
    with pytest.raises(ValidationError):
        jacobi_dense_solution(np.zeros(5))
    with pytest.raises(ValidationError):
        jacobi_dense_solution(np.zeros((2, 5)))
    with pytest.raises(ValidationError):
        jacobi_dense_solution(np.zeros((200, 200)))  # dense oracle cap
