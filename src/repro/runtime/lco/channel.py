"""Channel LCO (HPX ``hpx::lcos::channel``): an asynchronous FIFO pipe.

Channels are how the paper's distributed 1D stencil exchanges halos: the
producer ``set``s boundary values tagged by time step, the consumer
``get``s a future for them -- in either order.  The unmatched side is
buffered, so communication and computation overlap naturally.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ...errors import ChannelClosedError, ChannelTimeoutError, RuntimeStateError
from .. import context as ctx
from .. import instrument
from ..futures import Future, Promise, demand

__all__ = ["Channel"]


class Channel:
    """Unbounded FIFO of values with future-returning ``get``.

    ``set`` before ``get`` buffers the value; ``get`` before ``set``
    buffers the promise.  ``close`` fails all pending and future ``get``s
    with :class:`ChannelClosedError`.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: deque[Any] = deque()
        self._waiters: deque[Promise] = deque()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def set(self, value: Any) -> None:
        """Send one value into the channel."""
        if self._closed:
            raise ChannelClosedError(f"channel {self.name!r} is closed")
        if self._waiters:
            # Direct hand-off: fulfilment in the sender's context is the
            # happens-before edge.
            self._waiters.popleft().set_value(value)
        else:
            probe = instrument.probe
            if probe is not None:
                # Buffered value: it carries the sender's clock until a
                # matching get withdraws it.
                probe.token_put(self)
            self._values.append(value)

    def get(self, timeout: float | None = None) -> Future:
        """A future for the next value (FIFO order among getters).

        With ``timeout`` (virtual seconds from the caller's current
        virtual time) the future fails with
        :class:`~repro.errors.ChannelTimeoutError` if no value matched it
        by the deadline; a timeout needs an active pool to host the
        virtual timer.
        """
        promise = Promise()
        if self._values:
            probe = instrument.probe
            if probe is not None:
                probe.token_get(self)
            promise.set_value(self._values.popleft())
        elif self._closed:
            promise.set_exception(
                ChannelClosedError(f"channel {self.name!r} is closed and drained")
            )
        else:
            # An unmatched get is a demanded future: if the job quiesces
            # before a value (or close) arrives, the read was lost.
            demand(promise._state, f"channel.get({self.name!r})")
            probe = instrument.probe
            if probe is not None:
                probe.lco_labelled(promise._state, f"channel.get({self.name!r})")
            self._waiters.append(promise)
            if timeout is not None:
                self._arm_timeout(promise, timeout)
        return promise.get_future()

    def _arm_timeout(self, promise: Promise, timeout: float) -> None:
        if timeout < 0:
            raise RuntimeStateError(f"timeout must be non-negative, got {timeout!r}")
        frame = ctx.current_or_none()
        if frame is None or frame.pool is None:
            raise RuntimeStateError(
                "channel get(timeout=...) needs an active thread pool to "
                "host the virtual timer"
            )
        pool = frame.pool

        def fire() -> None:
            if promise.is_ready():
                return
            try:
                self._waiters.remove(promise)
            except ValueError:  # pragma: no cover - matched concurrently
                pass
            promise.set_exception(
                ChannelTimeoutError(
                    f"channel {self.name!r}: no value within {timeout!r} "
                    "virtual seconds"
                )
            )

        from ..threads.hpx_thread import ThreadPriority

        pool.submit(
            fire,
            ready_time=pool.now + timeout,
            description=f"channel-timeout:{self.name}",
            priority=ThreadPriority.LOW,
        )

    def get_sync(self, timeout: float | None = None) -> Any:
        """Cooperatively blocking receive."""
        return self.get(timeout=timeout).get()

    def close(self) -> int:
        """Close the channel; returns the number of waiters that failed.

        Matching HPX semantics: values already buffered remain
        retrievable after close; only *unmatched* ``get``s (pending now
        or issued later, once the buffer is drained) fail with
        :class:`ChannelClosedError`.
        """
        self._closed = True
        failed = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().set_exception(
                ChannelClosedError(f"channel {self.name!r} closed while waiting")
            )
        return failed

    # Checkpoint protocol ----------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Snapshot the buffered values and closed flag.

        Pending ``get``s (waiting promises) are deliberately not
        captured: coordinated checkpoints are taken at quiescence, and a
        restored channel starts with no waiters.
        """
        return {
            "name": self.name,
            "values": list(self._values),
            "closed": self._closed,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild from a :meth:`checkpoint_state` snapshot, in place."""
        if self._waiters:
            raise RuntimeStateError(
                f"cannot restore into channel {self.name!r} with "
                f"{len(self._waiters)} pending get(s)"
            )
        self.name = str(state["name"])
        self._values = deque(state["values"])
        self._closed = bool(state["closed"])

    def __len__(self) -> int:
        """Number of buffered (sent, unreceived) values."""
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self._closed else "open"
        return (
            f"Channel({self.name!r}, {state}, buffered={len(self._values)}, "
            f"waiters={len(self._waiters)})"
        )
