"""Actions: named, remotely-invokable functions, plus the async API.

``@action`` registers a module-level function under a stable name so
parcels can reference it textually (the HPX action registry).  The
local-async trio mirrors HPX:

* :func:`async_` -- run on the current pool, get a future;
* :func:`apply`  -- fire-and-forget;
* :func:`sync`   -- run asynchronously but wait for the result.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ReplayExhaustedError, ReplicateError, RuntimeStateError
from . import context as ctx
from .futures import Future, Promise, unwrap, when_all

__all__ = [
    "action",
    "get_action",
    "async_",
    "apply",
    "sync",
    "async_after",
    "sleep_for",
    "async_replay",
    "async_replicate",
]

_REGISTRY: dict[str, Callable[..., Any]] = {}


def action(fn: Callable[..., Any] | None = None, *, name: str | None = None):
    """Register ``fn`` as a named action (decorator).

    ``@action`` uses the function's qualified name; ``@action(name=...)``
    overrides it.  Re-registering a different function under the same
    name is an error (actions must be stable across localities).
    """

    def register(func: Callable[..., Any]) -> Callable[..., Any]:
        key = name or f"{func.__module__}.{func.__qualname__}"
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not func:
            raise RuntimeStateError(f"action name {key!r} already registered")
        _REGISTRY[key] = func
        func.action_name = key  # type: ignore[attr-defined]
        return func

    if fn is not None:
        return register(fn)
    return register


def get_action(name: str) -> Callable[..., Any]:
    """Resolve a registered action by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RuntimeStateError(f"unknown action {name!r}") from None


def _current_pool():
    frame = ctx.current()
    if frame.pool is None:
        raise RuntimeStateError("no thread pool in the current context")
    return frame.pool


def async_(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
    """Spawn ``fn(*args, **kwargs)`` as an HPX-thread; returns its future."""
    return _current_pool().submit(fn, *args, kwargs=kwargs or None)


def apply(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
    """Fire-and-forget spawn (HPX ``hpx::post``/``apply``)."""
    _current_pool().submit(fn, *args, kwargs=kwargs or None)


def sync(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Spawn and wait: ``async_(fn, ...).get()``."""
    return async_(fn, *args, **kwargs).get()


def async_after(delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
    """Spawn ``fn`` no earlier than ``delay`` virtual seconds from now.

    The cooperative analogue of HPX's timed execution
    (``hpx::async(hpx::launch::async, deadline, f)``): the task's ready
    time is pushed into the virtual future, so workers fill the gap with
    other work.
    """
    if delay < 0:
        raise RuntimeStateError(f"delay must be non-negative, got {delay!r}")
    pool = _current_pool()
    return pool.submit(
        fn,
        *args,
        kwargs=kwargs or None,
        ready_time=pool.now + delay,
        description=f"timed:{getattr(fn, '__name__', 'fn')}",
    )


def async_replay(
    n: int,
    fn: Callable[..., Any],
    *args: Any,
    validate: Callable[[Any], bool] | None = None,
    **kwargs: Any,
) -> Future:
    """Run ``fn`` asynchronously, re-executing on failure up to ``n`` times.

    The HPX resiliency API (``hpx::resiliency::experimental::async_replay``):
    attempt ``k+1`` launches only after attempt ``k`` failed, so at most
    one replica is in flight.  A failure is a raised exception or -- when
    ``validate`` is given -- a result it rejects.  After ``n`` failed
    attempts the last exception is re-raised through the returned future
    (:class:`~repro.errors.ReplayExhaustedError` when the failure was a
    rejected result).

    If an attempt returns a :class:`Future` (e.g. the body performs a
    remote ``async_at``/``invoke_async``), it is unwrapped, so remote
    failures count as attempt failures and are replayed too.
    """
    if n < 1:
        raise RuntimeStateError(f"async_replay needs n >= 1, got {n!r}")
    promise = Promise()

    def attempt(k: int) -> None:
        resolved = unwrap(async_(fn, *args, **kwargs))

        def on_done(future: Future) -> None:
            try:
                value = future.get_nowait()
            except BaseException as exc:  # noqa: BLE001 - replayed/forwarded
                if k + 1 < n:
                    attempt(k + 1)
                else:
                    promise.set_exception(exc)
                return
            if validate is not None and not validate(value):
                if k + 1 < n:
                    attempt(k + 1)
                else:
                    promise.set_exception(
                        ReplayExhaustedError(
                            f"async_replay: result failed validation on all "
                            f"{n} attempt(s)"
                        )
                    )
                return
            promise.set_value(value)

        resolved._on_ready(on_done)

    attempt(0)
    return promise.get_future()


def async_replicate(
    n: int,
    fn: Callable[..., Any],
    *args: Any,
    validate: Callable[[Any], bool] | None = None,
    **kwargs: Any,
) -> Future:
    """Run ``n`` concurrent replicas of ``fn``; first valid result wins.

    The HPX resiliency API (``async_replicate``): all replicas launch
    immediately, the returned future waits for all of them and yields the
    lowest-indexed result that did not raise and -- when ``validate`` is
    given -- passes validation.  If every replica raised, the last
    exception is re-raised; if some succeeded but none validated,
    :class:`~repro.errors.ReplicateError` is raised.  Future-returning
    bodies are unwrapped as in :func:`async_replay`.
    """
    if n < 1:
        raise RuntimeStateError(f"async_replicate needs n >= 1, got {n!r}")
    promise = Promise()
    replicas = [unwrap(async_(fn, *args, **kwargs)) for _ in range(n)]

    def pick(all_ready: Future) -> None:
        last_exc: BaseException | None = None
        succeeded = 0
        for replica in all_ready.get_nowait():
            try:
                value = replica.get_nowait()
            except BaseException as exc:  # noqa: BLE001 - tallied/forwarded
                last_exc = exc
                continue
            succeeded += 1
            if validate is None or validate(value):
                promise.set_value(value)
                return
        if succeeded == 0 and last_exc is not None:
            promise.set_exception(last_exc)
        else:
            promise.set_exception(
                ReplicateError(
                    f"async_replicate: none of {succeeded} successful "
                    f"replica(s) (of {n}) passed validation"
                )
            )

    when_all(replicas)._on_ready(pick)
    return promise.get_future()


def sleep_for(seconds: float) -> None:
    """Advance the calling task's virtual clock (``this_thread::sleep_for``).

    In virtual time, sleeping and computing are both occupancy of the
    worker; the distinction the paper's timing cares about is *when the
    task finishes*, which both advance identically.
    """
    from . import context as ctx

    if seconds < 0:
        raise RuntimeStateError(f"sleep must be non-negative, got {seconds!r}")
    ctx.add_cost(seconds)
