"""Execution policies (C++17 / HPX execution policies).

A policy is an immutable value describing *how* an algorithm may run:

* ``seq``       -- sequential, calling thread;
* ``par``       -- parallel HPX-threads;
* ``simd``      -- sequential but the body may be vectorized;
* ``par_simd``  -- both (HPX ``par_simd`` / ``datapar``).

Policies are refined functionally: ``par.on(executor)`` chooses
placement, ``par.with_chunk_size(n)`` overrides the auto-partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ...errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover
    from ..threads.executor import Executor

__all__ = ["ExecutionPolicy", "seq", "par", "simd", "par_simd"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """Immutable description of how to run a parallel algorithm."""

    name: str
    parallel: bool
    vectorize: bool
    executor: "Optional[Executor]" = None
    chunk_size: Optional[int] = None

    def on(self, executor: "Executor") -> "ExecutionPolicy":
        """Bind an executor (placement).  Only parallel policies accept one."""
        if not self.parallel:
            raise RuntimeStateError(f"policy {self.name!r} cannot take an executor")
        return replace(self, executor=executor)

    def with_chunk_size(self, n: int) -> "ExecutionPolicy":
        """Fix the chunk size used by the partitioner."""
        if n < 1:
            raise RuntimeStateError(f"chunk size must be >= 1, got {n}")
        return replace(self, chunk_size=n)

    def __repr__(self) -> str:  # pragma: no cover
        bits = [self.name]
        if self.executor is not None:
            bits.append(f"on={type(self.executor).__name__}")
        if self.chunk_size is not None:
            bits.append(f"chunk={self.chunk_size}")
        return f"ExecutionPolicy({', '.join(bits)})"


#: Sequential execution on the calling HPX-thread.
seq = ExecutionPolicy("seq", parallel=False, vectorize=False)
#: Parallel execution on HPX-threads.
par = ExecutionPolicy("par", parallel=True, vectorize=False)
#: Sequential, vectorization permitted (the body sees pack-sized chunks).
simd = ExecutionPolicy("simd", parallel=False, vectorize=True)
#: Parallel and vectorized (HPX ``par_simd``).
par_simd = ExecutionPolicy("par_simd", parallel=True, vectorize=True)
