"""Permanent-crash recovery: checkpoint restart with AGAS re-homing.

The acceptance criterion of the checkpoint issue: a seeded run of each
distributed stencil with a mid-run *permanent* locality crash completes
via decommission + evacuation + checkpoint restore, and the result is
bit-identical to a fault-free run.  Plus unit coverage for the recovery
primitives: ``FaultInjector`` permanence, ``AgasService.evacuate``,
``Runtime.decommission_locality``, collectives timeouts, and a
race-detector-clean pass over the whole recovery path.
"""

import numpy as np
import pytest

from repro import analysis
from repro.errors import (
    AgasError,
    ConfigError,
    FutureTimeoutError,
    MigrationError,
    RuntimeStateError,
)
from repro.resilience import FaultInjector
from repro.runtime import collectives, perfcounters
from repro.runtime.actions import sleep_for
from repro.runtime.agas.service import AgasService
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams
from repro.stencil.jacobi2d_dist import DistributedJacobi2D

NX, STEPS = 64, 30
U0 = np.sin(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))


def _crash_injector(locality: int, at: float, seed: int = 42) -> FaultInjector:
    injector = FaultInjector(seed=seed)
    injector.fail_locality(locality, at=at, permanent=True)
    return injector


def _heat_run(injector=None, n_localities=4, **resilient_kwargs):
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=n_localities,
        workers_per_locality=2,
        fault_injector=injector,
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams(), cost_per_step=1e-3)
        solver.initialize(U0)
        if injector is None:
            solution = solver.run(STEPS)
        else:
            solution = solver.run_resilient(STEPS, **resilient_kwargs)
        stats = {
            "saved": rt.checkpoints_saved,
            "restored": rt.checkpoints_restored,
            "decommissioned": sorted(rt.decommissioned),
            "counter_saved": perfcounters.query(
                rt, "/checkpoints{total}/count/saved"
            ),
            "counter_restored": perfcounters.query(
                rt, "/checkpoints{total}/count/restored"
            ),
            "counter_decommissioned": perfcounters.query(
                rt, "/localities{total}/count/decommissioned"
            ),
        }
    return solution, stats


# Stencil acceptance ---------------------------------------------------------


def test_heat1d_survives_permanent_crash_bit_identically():
    clean, _ = _heat_run()
    crashed, stats = _heat_run(_crash_injector(2, at=0.005), checkpoint_every=10)
    assert np.array_equal(crashed, clean)
    assert stats["decommissioned"] == [2]
    assert stats["restored"] == 1
    assert stats["saved"] >= 2
    assert stats["counter_saved"] == stats["saved"]
    assert stats["counter_restored"] == 1.0
    assert stats["counter_decommissioned"] == 1.0


def test_heat1d_crash_triggered_checkpoint_only():
    """interval=0: only the baseline epoch exists; recovery replays all."""
    clean, _ = _heat_run()
    crashed, stats = _heat_run(_crash_injector(1, at=0.004), checkpoint_every=0)
    assert np.array_equal(crashed, clean)
    assert stats["saved"] == 1
    assert stats["restored"] == 1
    assert stats["decommissioned"] == [1]


def test_heat1d_without_permanent_faults_takes_no_checkpoints():
    """Transient-only schedules must not pay any checkpoint overhead."""
    _, stats = _heat_run(FaultInjector(seed=7, drop_rate=0.05))
    assert stats["saved"] == 0
    assert stats["restored"] == 0
    assert stats["decommissioned"] == []


def test_jacobi2d_survives_permanent_crash_bit_identically():
    def run(injector=None, **kwargs):
        with Runtime(
            n_localities=3, workers_per_locality=2, fault_injector=injector
        ) as rt:
            solver = DistributedJacobi2D(rt, ny=14, nx=8, cost_per_step=1e-3)
            rng = np.random.default_rng(5)
            solver.initialize(rng.random((14, 8)))
            if injector is None:
                out = solver.run(STEPS)
            else:
                out = solver.run_resilient(STEPS, **kwargs)
            decommissioned = sorted(rt.decommissioned)
        return out, decommissioned

    clean, _ = run()
    crashed, decommissioned = run(_crash_injector(1, at=0.004), checkpoint_every=8)
    assert np.array_equal(crashed, clean)
    assert decommissioned == [1]


def test_permanent_crash_without_store_propagates():
    """A confirmed-dead locality is unrecoverable without checkpoints --
    but run() (no recovery driver) on that schedule must also not hang."""
    from repro.errors import ParcelDeadLetterError

    with Runtime(
        n_localities=4,
        workers_per_locality=2,
        fault_injector=_crash_injector(1, at=0.004),
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams(), cost_per_step=1e-3)
        solver.initialize(U0)
        with pytest.raises(ParcelDeadLetterError):
            solver.run(STEPS)


# FaultInjector permanence ---------------------------------------------------


def test_permanent_failure_rejects_finite_end_time():
    injector = FaultInjector()
    with pytest.raises(ConfigError):
        injector.fail_locality(1, at=0.5, until=2.0, permanent=True)


def test_permanently_down_and_has_permanent_failures():
    injector = FaultInjector()
    injector.fail_locality(1, at=1.0, until=2.0)  # transient
    assert not injector.has_permanent_failures
    assert not injector.permanently_down(1, 1.5)
    injector.fail_locality(2, at=3.0, permanent=True)
    assert injector.has_permanent_failures
    assert not injector.permanently_down(2, 2.9)
    assert injector.permanently_down(2, 3.0)
    assert injector.permanently_down(2, 1e9)
    assert not injector.permanently_down(1, 1e9)


# AGAS evacuation ------------------------------------------------------------


def _registered(service, home, n):
    return [service.register(object(), home) for _ in range(n)]


def test_evacuate_rehomes_round_robin_deterministically():
    service = AgasService(4)
    gids = _registered(service, 2, 5)
    moved = service.evacuate(2, [0, 1, 3])
    assert [gid for gid, _ in moved] == sorted(gids)
    assert [home for _, home in moved] == [0, 1, 3, 0, 1]
    assert service.gids_homed_at(2) == []
    for gid, home in moved:
        assert service.home_of(gid) == home


def test_evacuate_preserves_gids_and_refcounts():
    service = AgasService(3)
    (gid,) = _registered(service, 1, 1)
    service.incref(gid, 4)
    before = service.refcount(gid)
    service.evacuate(1, [0, 2])
    assert service.refcount(gid) == before
    assert gid in service


def test_evacuate_pinned_object_raises_migration_error():
    service = AgasService(2)
    (gid,) = _registered(service, 1, 1)
    service.pin(gid)
    with pytest.raises(MigrationError):
        service.evacuate(1, [0])
    service.unpin(gid)
    assert service.evacuate(1, [0]) == [(gid, 0)]


def test_evacuate_validates_survivors():
    service = AgasService(2)
    with pytest.raises(AgasError):
        service.evacuate(1, [])
    with pytest.raises(AgasError):
        service.evacuate(1, [1])  # cannot survive itself
    with pytest.raises(AgasError):
        service.evacuate(1, [7])  # out of range


def test_gids_homed_at_follows_in_flight_migration():
    service = AgasService(3)
    a, b = _registered(service, 0, 2)
    service.migrate(a, 1)
    assert service.gids_homed_at(0) == [b]
    assert service.gids_homed_at(1) == [a]
    # An evacuation after the migrate only moves what actually lives there.
    assert service.evacuate(1, [2]) == [(a, 2)]


# Decommissioning ------------------------------------------------------------


def test_decommission_locality_zero_is_refused():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        with pytest.raises(RuntimeStateError):
            rt.decommission_locality(0)


def test_decommission_discards_queued_work_and_breaks_promises():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        future = rt.locality(1).pool.submit(_identity)
        dropped = rt.decommission_locality(1)
        assert dropped == 1
        assert 1 in rt.decommissioned
        assert future.is_ready()
        with pytest.raises(Exception):
            future.get()  # broken promise, not a hang


def test_parcel_to_decommissioned_locality_is_dead_lettered():
    from repro.errors import ParcelDeadLetterError

    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        rt.decommission_locality(1)
        future = rt.async_at(1, _identity)
        with pytest.raises(ParcelDeadLetterError):
            future.get()
        assert 1 in rt.parcelport.suspected_dead


# Collectives timeout --------------------------------------------------------


def _identity() -> int:
    return 1


def _stuck() -> None:
    sleep_for(50.0)


def test_collective_over_slow_locality_times_out():
    """A participant that does not answer in time bounds the wait via
    ``timeout=`` -- FutureTimeoutError, part of the TimeoutError subtree."""
    from repro import errors

    assert issubclass(FutureTimeoutError, errors.TimeoutError)
    with Runtime(n_localities=2, workers_per_locality=1) as rt:

        def job():
            with pytest.raises(FutureTimeoutError):
                collectives.gather(rt, _stuck, timeout=0.5)

        rt.run(job)


def test_collective_over_dead_locality_fails_fast_via_dead_letter():
    """A permanently dead destination surfaces the retry layer's
    dead-letter error well before a realistic deadline."""
    from repro.errors import ParcelDeadLetterError

    injector = FaultInjector(seed=0)
    injector.fail_locality(1, at=0.0, permanent=True)
    with Runtime(
        n_localities=2, workers_per_locality=1, fault_injector=injector
    ) as rt:

        def job():
            with pytest.raises(ParcelDeadLetterError):
                collectives.broadcast(rt, _identity, timeout=10.0)

        rt.run(job)


def test_collectives_complete_within_timeout():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:

        def job():
            assert collectives.broadcast(rt, _identity, timeout=10.0) == [1, 1]
            assert collectives.all_reduce(
                rt, _identity, lambda a, b: a + b, timeout=10.0
            ) == 2
            collectives.global_barrier(rt, timeout=10.0)

        rt.run(job)


# Race-detector clean pass ---------------------------------------------------


def test_recovery_path_is_race_clean():
    """The full crash-recovery cycle under the happens-before detector."""
    with analysis.attach(races=True, report="collect") as sanitizers:
        clean, _ = _heat_run()
        crashed, stats = _heat_run(
            _crash_injector(2, at=0.005), checkpoint_every=10
        )
    assert np.array_equal(crashed, clean)
    assert stats["restored"] == 1
    assert sanitizers.race is not None
    assert list(sanitizers.race.findings()) == []
