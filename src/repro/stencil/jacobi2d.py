"""2D Jacobi stencil (paper Sec. IV-B, V-B, VII-B; Listing 2).

The 5-point update of Eq. (4)::

    next(x, y) = (curr(x, y+1) + curr(x, y-1)
                  + curr(x+1, y) + curr(x-1, y)) * 0.25

over a ``(ny, nx)`` grid with Dirichlet boundaries, iterated with
ping-pong buffers.  Two kernels, one generic driver -- exactly the shape
of Listing 2:

* ``mode="auto"``: the row-major layout the compiler's auto-vectorizer
  sees.  Rows update through contiguous slice arithmetic.
* ``mode="simd"``: the explicitly vectorized kernel over the Virtual
  Node Scheme layout.  Every row update is followed by the halo shuffle
  (``helper<Container>::shuffle`` -- here
  :meth:`~repro.simd.layout.VnsLayout.refresh_halo`).

Both kernels produce bit-comparable fields (up to dtype rounding), which
the tests verify against each other and against a dense reference.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import ValidationError
from ..runtime import context as ctx
from ..runtime.algorithms import ExecutionPolicy, for_each, for_each_block, seq
from ..simd.isa import Isa
from .grid import GridPair

__all__ = ["Jacobi2D", "jacobi_reference_step", "update_row_scalar", "update_row_vns"]

Mode = Literal["auto", "simd"]


def jacobi_reference_step(field: np.ndarray) -> np.ndarray:
    """One whole-grid Jacobi sweep, plain NumPy (ground truth)."""
    new = np.array(field, copy=True)
    new[1:-1, 1:-1] = 0.25 * (
        field[2:, 1:-1] + field[:-2, 1:-1] + field[1:-1, 2:] + field[1:-1, :-2]
    )
    return new


def update_row_scalar(curr: np.ndarray, nxt: np.ndarray, y: int) -> None:
    """Row update on the scalar layout (the auto-vectorized kernel).

    ``curr``/``nxt`` are the raw ``(ny, nx)`` buffers; row ``y`` must be
    interior.
    """
    nxt[y, 1:-1] = 0.25 * (
        curr[y, :-2] + curr[y, 2:] + curr[y - 1, 1:-1] + curr[y + 1, 1:-1]
    )


def update_row_vns(curr: np.ndarray, nxt: np.ndarray, y: int, layout) -> None:
    """Row update on the VNS pack layout plus the halo shuffle.

    ``curr``/``nxt`` are ``(ny, chunk+2, lanes)`` buffers.  The x-1/x+1
    neighbours of packed position ``j`` are positions ``j-1``/``j+1`` --
    provided the per-lane halos are fresh, which is what the trailing
    :meth:`refresh_halo` guarantees for the *next* consumer of this row.
    """
    nxt[y, 1:-1, :] = 0.25 * (
        curr[y, :-2, :] + curr[y, 2:, :] + curr[y - 1, 1:-1, :] + curr[y + 1, 1:-1, :]
    )
    layout.refresh_halo(nxt[y])


class Jacobi2D:
    """The generic 2D stencil application of Listing 2.

    ``Container`` genericity becomes the ``mode`` switch: ``"auto"``
    runs the scalar-layout kernel, ``"simd"`` the explicitly vectorized
    VNS kernel with lanes taken from ``isa`` (e.g. 8 for AVX2 floats,
    16 for 512-bit SVE floats).
    """

    def __init__(
        self,
        ny: int,
        nx: int,
        dtype=np.float32,
        mode: Mode = "auto",
        isa: Isa | None = None,
        cost_per_row: float = 0.0,
    ) -> None:
        if mode not in ("auto", "simd"):
            raise ValidationError(f"mode must be 'auto' or 'simd', got {mode!r}")
        if mode == "simd" and isa is None:
            raise ValidationError("simd mode needs an ISA to size its packs")
        self.ny = ny
        self.nx = nx
        self.dtype = np.dtype(dtype)
        self.mode: Mode = mode
        self.isa = isa
        self.lanes = isa.lanes(self.dtype) if (mode == "simd" and isa) else 1
        layout = "vns" if mode == "simd" else "scalar"
        self.U = GridPair(ny, nx, self.dtype, layout=layout, lanes=self.lanes)
        #: Virtual compute seconds one row update costs (cost-model hook).
        self.cost_per_row = float(cost_per_row)
        self.steps_done = 0

    # Setup -------------------------------------------------------------------
    def initialize(self, field: np.ndarray | None = None) -> None:
        """Load an initial field; default is the hot-top-edge problem
        (interior 0, top boundary 1) the examples use."""
        if field is None:
            field = np.zeros((self.ny, self.nx))
            field[0, :] = 1.0
        field = np.asarray(field, dtype=self.dtype)
        if field.shape != (self.ny, self.nx):
            raise ValidationError(
                f"expected field of shape ({self.ny}, {self.nx}), got {field.shape}"
            )
        self.U.fill_from(field)
        self.steps_done = 0

    # The Listing 2 kernel -----------------------------------------------------
    def stencil_update(self, y: int, t: int) -> None:
        """Update row ``y`` from time level ``t`` to ``t+1``."""
        curr = self.U.current(t).data
        nxt = self.U.next(t).data
        if self.mode == "auto":
            update_row_scalar(curr, nxt, y)
        else:
            update_row_vns(curr, nxt, y, self.U.current(t).vns)
        if self.cost_per_row:
            ctx.add_cost(self.cost_per_row)

    def stencil_update_block(self, rows: range, t: int) -> None:
        """Fused Listing 2 body: one update over a block of rows.

        Jacobi reads only the previous time level, so a run of interior
        rows updates as one 2D slice operation with the *same operand
        order* as :func:`update_row_scalar` -- bit-identical to the
        per-row sweep, without ``len(rows)`` Python calls.  The accrued
        virtual cost is ``cost_per_row`` per row, exactly what the
        per-row path would charge the same HPX-thread.  Scalar layout
        only (the VNS kernel interleaves a per-row halo shuffle).
        """
        curr = self.U.current(t).data
        nxt = self.U.next(t).data
        y0, y1 = rows.start, rows.stop
        nxt[y0:y1, 1:-1] = 0.25 * (
            curr[y0:y1, :-2]
            + curr[y0:y1, 2:]
            + curr[y0 - 1 : y1 - 1, 1:-1]
            + curr[y0 + 1 : y1 + 1, 1:-1]
        )
        if self.cost_per_row:
            ctx.add_cost(self.cost_per_row * len(rows))

    def run(
        self, steps: int, policy: ExecutionPolicy = seq, fused: bool = True
    ) -> np.ndarray:
        """Iterate ``steps`` sweeps driving rows through ``for_each``.

        This is the timed region of Listing 2: an outer time loop, an
        inner ``hpx::parallel::for_each(policy, rows, stencil_update)``.
        With ``fused`` (the default, scalar layout only) each chunk of
        rows is executed as a single vectorized block update via
        :func:`~repro.runtime.algorithms.for_each_block` -- same chunking
        and task structure, same accrued virtual cost per chunk, same
        bits in the field; the VNS layout always runs per-row (its halo
        shuffle is inherently per-row).
        """
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        for t in range(self.steps_done, self.steps_done + steps):
            if fused and self.mode == "auto":
                for_each_block(
                    policy,
                    1,
                    self.ny - 1,
                    lambda rows, t=t: self.stencil_update_block(rows, t),
                )
            else:
                for_each(
                    policy,
                    range(1, self.ny - 1),
                    lambda y, t=t: self.stencil_update(y, t),
                )
        self.steps_done += steps
        return self.solution()

    def run_blocked(self, steps: int, tile_nx: int) -> np.ndarray:
        """Iterate using the explicitly cache-blocked sweep order.

        Columns are processed in tiles of ``tile_nx``; each tile walks
        all rows before moving right.  Jacobi reads only the previous
        time level, so the result is *identical* to :meth:`run` -- the
        ordering exists purely to keep three tile-rows cache-resident
        when full rows do not fit (the paper's "cache blocked version of
        2D stencil"; see
        :func:`repro.hardware.cachesim.jacobi_blocked_traffic` for the
        traffic this buys).  Scalar layout only.
        """
        if self.mode != "auto":
            raise ValidationError("run_blocked supports the scalar layout only")
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if tile_nx < 2:
            raise ValidationError("tile width must be >= 2")
        for t in range(self.steps_done, self.steps_done + steps):
            curr = self.U.current(t).data
            nxt = self.U.next(t).data
            for x_lo in range(1, self.nx - 1, tile_nx):
                x_hi = min(x_lo + tile_nx, self.nx - 1)
                # Same operand order as update_row_scalar: the blocked
                # sweep is bit-identical, not merely close.
                nxt[1:-1, x_lo:x_hi] = 0.25 * (
                    curr[1:-1, x_lo - 1 : x_hi - 1]
                    + curr[1:-1, x_lo + 1 : x_hi + 1]
                    + curr[:-2, x_lo:x_hi]
                    + curr[2:, x_lo:x_hi]
                )
        self.steps_done += steps
        return self.solution()

    def residual(self) -> float:
        """RMS change one more sweep would make (convergence metric)."""
        field = self.solution().astype(np.float64)
        sweep = jacobi_reference_step(field)
        diff = sweep[1:-1, 1:-1] - field[1:-1, 1:-1]
        return float(np.sqrt(np.mean(diff * diff)))

    def run_until_converged(
        self,
        tol: float,
        policy: ExecutionPolicy = seq,
        check_every: int = 50,
        max_steps: int = 1_000_000,
    ) -> tuple[np.ndarray, int]:
        """Iterate until the residual drops below ``tol``.

        Returns ``(field, total steps run)``.  Raises
        :class:`ValidationError` if ``max_steps`` sweeps do not reach
        ``tol`` (Jacobi converges slowly; pick tolerances accordingly).
        """
        if tol <= 0:
            raise ValidationError("tolerance must be positive")
        if check_every < 1 or max_steps < 1:
            raise ValidationError("check_every and max_steps must be >= 1")
        start = self.steps_done
        while self.steps_done - start < max_steps:
            budget = min(check_every, max_steps - (self.steps_done - start))
            self.run(budget, policy)
            if self.residual() < tol:
                return self.solution(), self.steps_done - start
        raise ValidationError(
            f"no convergence to {tol:g} within {max_steps} sweeps "
            f"(residual {self.residual():g})"
        )

    # Results ----------------------------------------------------------------
    def solution(self) -> np.ndarray:
        """The current field as a scalar ``(ny, nx)`` array."""
        return self.U.current(self.steps_done).to_scalar_array()

    @property
    def lattice_site_updates(self) -> int:
        """Interior LUPs performed so far (the paper's LUP metric)."""
        return self.steps_done * (self.ny - 2) * (self.nx - 2)

    @property
    def grid_bytes(self) -> int:
        """Bytes of one buffer (the paper's "9 GB worth of DRAM" check)."""
        return self.U[0].nbytes
