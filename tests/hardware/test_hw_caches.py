"""Unit tests for the cache hierarchy model."""

import pytest

from repro.errors import TopologyError
from repro.hardware import CacheHierarchy, CacheLevel, machine


def small_hierarchy():
    return CacheHierarchy(
        (
            CacheLevel("L1", 32 * 1024, 64),
            CacheLevel("L2", 1024 * 1024, 64, shared_by_cores=4),
        )
    )


def test_cache_level_validation():
    with pytest.raises(TopologyError):
        CacheLevel("bad", 0, 64)
    with pytest.raises(TopologyError):
        CacheLevel("bad", 100, 64)  # not a multiple of line
    with pytest.raises(TopologyError):
        CacheLevel("bad", 64 * 10, 64, shared_by_cores=0)


def test_cache_level_lines_and_sharing():
    level = CacheLevel("L2", 1024 * 1024, 64, shared_by_cores=4)
    assert level.lines == 16384
    assert level.size_per_core() == 256 * 1024


def test_empty_hierarchy_rejected():
    with pytest.raises(TopologyError):
        CacheHierarchy(())


def test_hierarchy_accessors():
    h = small_hierarchy()
    assert h.l1.name == "L1"
    assert h.last_level.name == "L2"
    assert h.line_bytes == 64


def test_effective_capacity_per_core_takes_best_level():
    h = small_hierarchy()
    # L2/4 sharers = 256 KiB > L1 32 KiB.
    assert h.effective_capacity_per_core() == 256 * 1024


def test_rows_fit():
    h = small_hierarchy()
    assert h.rows_fit(row_bytes=64 * 1024, n_rows=3)
    assert not h.rows_fit(row_bytes=100 * 1024, n_rows=3)
    with pytest.raises(TopologyError):
        h.rows_fit(0)


def test_stencil_transfers_baseline_three():
    h = small_hierarchy()
    # Rows fit -> 3 transfers x 8 bytes = 24 B/LUP for doubles.
    assert h.stencil_transfers_per_update(8 * 1024, 8) == 24.0


def test_stencil_transfers_blocking_two():
    h = small_hierarchy()
    assert h.stencil_transfers_per_update(8 * 1024, 8, prefetch_blocking=True) == 16.0


def test_stencil_transfers_rows_do_not_fit():
    h = small_hierarchy()
    # Rows too large for cache: every neighbour misses -> 5 transfers.
    assert h.stencil_transfers_per_update(10**6, 4) == 20.0


def test_stream_misses_ceil():
    h = small_hierarchy()
    assert h.stream_misses(0) == 0
    assert h.stream_misses(1) == 1
    assert h.stream_misses(64) == 1
    assert h.stream_misses(65) == 2
    with pytest.raises(TopologyError):
        h.stream_misses(-1)


def test_paper_ai_derivation():
    """Sec. V-B: floats 12 B/LUP, doubles 24 B/LUP on the paper's grid."""
    xeon = machine("xeon-e5-2660v3")
    row_bytes_float = 8192 * 4  # the paper sizes rows to fit in cache
    assert xeon.caches.stencil_transfers_per_update(row_bytes_float, 4) == 12.0
    assert xeon.caches.stencil_transfers_per_update(8192 * 8, 8) == 24.0


def test_a64fx_has_256_byte_lines():
    assert machine("a64fx").caches.line_bytes == 256
