"""Ablation: communication/computation overlap on and off.

The paper attributes Kunpeng 916's scaling failure to its inability to
hide network latencies.  This ablation runs the 1D cost model for every
machine with overlap forcibly disabled and shows that *any* platform
degrades to Kunpeng-like behaviour -- i.e. the latency-hiding property
of the futurized ParalleX formulation, not raw network speed alone, is
what Fig 3 demonstrates.
"""

import dataclasses

import pytest

from repro.hardware import machine
from repro.hardware.registry import MachineModel
from repro.perf.cost import stencil1d_time
from repro.reporting import Series, format_figure


def _with_overlap(m: MachineModel, overlap: bool) -> MachineModel:
    cal = dataclasses.replace(m.calibration, network_overlap=overlap)
    return dataclasses.replace(m, calibration=cal)


def _with_network_quality(m: MachineModel, latency_s: float) -> MachineModel:
    net = dataclasses.replace(m.interconnect, latency_s=latency_s)
    return dataclasses.replace(m, interconnect=net)


def overlap_ablation(name: str, nodes=(1, 2, 4, 8)) -> dict[str, list[float]]:
    base = machine(name)
    # Give the machine a mediocre (1 ms) network so overlap has work to do.
    slow = _with_network_quality(base, latency_s=1e-3)
    return {
        "overlap": [stencil1d_time(_with_overlap(slow, True), n) for n in nodes],
        "no-overlap": [stencil1d_time(_with_overlap(slow, False), n) for n in nodes],
    }


def test_overlap_hides_millisecond_latency(benchmark, save_exhibit):
    """With overlap, a 1 ms-latency network costs (almost) nothing while
    compute per step exceeds the comm time."""
    data = benchmark(overlap_ablation, "xeon-e5-2660v3")
    nodes = (1, 2, 4, 8)
    with_ov = Series("overlap on", list(zip(nodes, data["overlap"])))
    without = Series("overlap off", list(zip(nodes, data["no-overlap"])))
    text = format_figure(
        "Ablation: overlap on/off, Xeon with a 1 ms-latency network "
        "(strong scaling, seconds)",
        [with_ov, without],
        xlabel="nodes",
        y_format="{:.2f}",
    )
    save_exhibit("ablation_overlap", text)
    for t_on, t_off in zip(data["overlap"], data["no-overlap"]):
        assert t_on <= t_off + 1e-12
    # At 8 nodes the gap is the unhidden comm: 100 steps x ~1 ms.
    assert data["no-overlap"][-1] - data["overlap"][-1] == pytest.approx(0.1, rel=0.05)


def test_overlap_is_why_xeon_scales_and_kunpeng_does_not(benchmark):
    """Force Kunpeng's overlap flag on: its scaling factor recovers."""
    kunpeng = machine("kunpeng916")
    factor_off = stencil1d_time(kunpeng, 1) / stencil1d_time(kunpeng, 8)
    forced_on = _with_overlap(kunpeng, True)
    factor_on = benchmark(
        lambda: stencil1d_time(forced_on, 1) / stencil1d_time(forced_on, 8)
    )
    assert factor_off < 4.5
    assert factor_on > factor_off + 1.0


def test_overlap_matters_only_with_communication():
    """Single node: overlap flag must change nothing."""
    for name in ("xeon-e5-2660v3", "kunpeng916"):
        m = machine(name)
        assert stencil1d_time(_with_overlap(m, True), 1) == pytest.approx(
            stencil1d_time(_with_overlap(m, False), 1)
        )
