#!/usr/bin/env python3
"""The paper's distributed 1D heat-equation study (Fig 3), end to end.

Runs the *actual* futurized solver -- partition components, halo parcels,
dataflow chains -- on virtual clusters of 1..8 nodes for two machines
(Intel Xeon E5-2660 v3 and Kunpeng 916), with per-step compute costs
taken from the calibrated machine models.  Verifies the numerics against
the NumPy reference, then prints the strong-scaling table next to the
analytic cost model's Fig 3 numbers.

Run:  python examples/heat1d_distributed.py
"""

import numpy as np

from repro.hardware import machine
from repro.perf.cost import (
    STRONG_SCALING_POINTS,
    stencil1d_node_glups,
    stencil1d_time,
)
from repro.reporting import format_table
from repro.runtime import Runtime
from repro.stencil import (
    DistributedHeat1D,
    Heat1DParams,
    analytic_heat_profile,
    heat1d_reference,
    l2_error,
)

STEPS = 50
POINTS = 1024  # numerics run at laptop scale; *costs* are the paper's


def simulate(machine_name: str, n_nodes: int) -> tuple[float, float]:
    """Run the solver on a virtual ``n_nodes`` cluster.

    Returns (virtual makespan, numerical error vs the NumPy reference).
    """
    m = machine(machine_name)
    # Per-step per-partition cost from the calibrated per-node rate, as
    # if each node carried its share of the paper's 1.2e9 points.
    local_points = STRONG_SCALING_POINTS // n_nodes
    rate = stencil1d_node_glups(m) * 1e9
    cost_per_step = local_points / rate + m.calibration.per_step_overhead_s

    u0 = analytic_heat_profile(POINTS)
    with Runtime(machine=machine_name, n_localities=n_nodes, workers_per_locality=2) as rt:
        solver = DistributedHeat1D(
            rt, POINTS, Heat1DParams(), cost_per_step=cost_per_step
        )
        solver.initialize(u0)
        result = rt.run(lambda: solver.run(STEPS))
        makespan = rt.makespan
    error = l2_error(result, heat1d_reference(u0, STEPS, Heat1DParams()))
    return makespan, error


def main() -> None:
    nodes = (1, 2, 4, 8)
    for name in ("xeon-e5-2660v3", "kunpeng916"):
        m = machine(name)
        rows = []
        t1 = None
        for n in nodes:
            makespan, error = simulate(name, n)
            assert error < 1e-12, f"numerical verification failed: {error}"
            t1 = t1 if t1 is not None else makespan
            # Scale the analytic Fig 3 prediction to this run's 50 steps.
            model = stencil1d_time(m, n) * STEPS / 100
            rows.append(
                [
                    n,
                    f"{makespan:.2f}",
                    f"{t1 / makespan:.2f}x",
                    f"{model:.2f}",
                    f"{error:.1e}",
                ]
            )
        print(f"\n{m.spec.name} -- strong scaling, {STEPS} steps "
              f"(virtual seconds; numerics verified against NumPy)")
        print(
            format_table(
                ["nodes", "simulated", "speedup", "analytic model", "L2 error"],
                rows,
            )
        )
    print(
        "\nNote the Kunpeng 916 rows: its parcelport cannot progress "
        "communication in the background (Sec. VII-A), so halo latency "
        "eats directly into each step -- the paper's scaling failure."
    )


if __name__ == "__main__":
    main()
