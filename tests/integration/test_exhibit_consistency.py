"""Exhibit data must equal direct model calls -- no drift between the
rendering layer and the models."""

import numpy as np
import pytest

from repro.exhibits import fig2_stream, fig3_1d_scaling, fig_2d_stencil
from repro.hardware import machine, machine_names
from repro.perf import stencil2d_glups, stream_model
from repro.perf.cost import stencil1d_time


def test_fig2_series_equal_model():
    for series in fig2_stream():
        model = next(
            machine(name)
            for name in machine_names()
            if machine(name).spec.name == series.name
        )
        for cores, value in series.points:
            assert value == pytest.approx(
                stream_model(model, int(cores)).bandwidth_gbs
            )


def test_fig3_series_equal_model():
    data = fig3_1d_scaling(nodes=(1, 4))
    for series in data["strong"]:
        model = next(
            machine(name)
            for name in machine_names()
            if machine(name).spec.name == series.name
        )
        for nodes, value in series.points:
            assert value == pytest.approx(stencil1d_time(model, int(nodes)))


@pytest.mark.parametrize("name", machine_names())
def test_fig_2d_series_equal_model(name):
    model = machine(name)
    series = {s.name: s for s in fig_2d_stencil(name, with_peaks=False)}
    for label, dtype, mode in (
        ("Float", np.float32, "auto"),
        ("Vector Double", np.float64, "simd"),
    ):
        for cores, value in series[label].points:
            assert value == pytest.approx(
                stencil2d_glups(model, dtype, mode, int(cores))
            )


def test_exhibits_are_stateless():
    """Two renders of the same exhibit are identical strings."""
    from repro.exhibits import render_fig3, render_fig_2d, render_table1

    assert render_table1() == render_table1()
    assert render_fig3() == render_fig3()
    assert render_fig_2d("a64fx") == render_fig_2d("a64fx")
