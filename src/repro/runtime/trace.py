"""Execution tracing: virtual-time task timelines.

HPX ships APEX/OTF2 tracing to show where HPX-threads ran and when; the
paper's latency-hiding claim ("network latencies can be hidden under
compute") is exactly the kind of statement a task timeline proves.  This
module records every task's (worker, start, finish, description) on the
virtual clock and renders a text Gantt chart.

Usage::

    tracer = Tracer()
    with tracer.attach(pool):            # or attach to every pool of a runtime
        ...run work...
    print(tracer.render_gantt())
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime
    from .threads.pool import ThreadPool

__all__ = ["TaskRecord", "Tracer"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed task on the virtual timeline."""

    pool: str
    worker_id: int
    tid: int
    description: str
    ready_time: float
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Time spent runnable but not running (scheduler pressure)."""
        return max(0.0, self.start_time - self.ready_time)


class Tracer:
    """Collects :class:`TaskRecord` entries from instrumented pools."""

    def __init__(self) -> None:
        self.records: list[TaskRecord] = []
        self._attached: list[tuple["ThreadPool", object]] = []

    # Attachment -----------------------------------------------------------------
    @contextmanager
    def attach(self, target: "ThreadPool | Runtime") -> Iterator["Tracer"]:
        """Instrument a pool (or every pool of a runtime) for the block."""
        pools = self._pools_of(target)
        originals = []
        for pool in pools:
            original = pool._execute
            originals.append((pool, original))

            def traced_execute(task, worker, pool=pool, original=original):
                original(task, worker)
                self.records.append(
                    TaskRecord(
                        pool=pool.name,
                        worker_id=worker.worker_id,
                        tid=task.tid,
                        description=task.description,
                        ready_time=task.ready_time,
                        start_time=task.start_time,
                        finish_time=task.finish_time,
                    )
                )

            pool._execute = traced_execute  # type: ignore[method-assign]
        try:
            yield self
        finally:
            for pool, original in originals:
                pool._execute = original  # type: ignore[method-assign]

    @staticmethod
    def _pools_of(target) -> list["ThreadPool"]:
        if hasattr(target, "localities"):
            return [loc.pool for loc in target.localities]
        if hasattr(target, "_execute"):
            return [target]
        raise RuntimeStateError(f"cannot attach tracer to {type(target).__name__}")

    # Analysis --------------------------------------------------------------------
    def by_worker(self) -> dict[tuple[str, int], list[TaskRecord]]:
        lanes: dict[tuple[str, int], list[TaskRecord]] = {}
        for record in self.records:
            lanes.setdefault((record.pool, record.worker_id), []).append(record)
        for lane in lanes.values():
            lane.sort(key=lambda r: r.start_time)
        return lanes

    @property
    def makespan(self) -> float:
        return max((r.finish_time for r in self.records), default=0.0)

    def busy_fraction(self, pool: str | None = None) -> float:
        """Fraction of (workers x makespan) spent executing tasks."""
        records = [r for r in self.records if pool is None or r.pool == pool]
        if not records:
            return 0.0
        lanes = {(r.pool, r.worker_id) for r in records}
        span = max(r.finish_time for r in records)
        if span == 0.0:
            return 0.0
        busy = sum(r.duration for r in records)
        return busy / (span * len(lanes))

    def total_queue_delay(self) -> float:
        return sum(r.queue_delay for r in self.records)

    # Rendering -------------------------------------------------------------------
    def render_gantt(
        self, width: int = 72, min_duration: float = 0.0, exclude: str | None = None
    ) -> str:
        """Text Gantt chart: one lane per worker, ``#`` marks busy time.

        ``@`` marks spans stacked on one worker -- this is *suspension*,
        not double-booking: a task that blocked on a future stays on its
        lane while the helper tasks it ran nest inside its span.

        ``min_duration`` filters out zero-cost bookkeeping tasks;
        ``exclude`` drops tasks whose description contains the substring
        (e.g. ``"hpx_main"`` to hide the blocking driver).
        """
        records = [
            r
            for r in self.records
            if r.duration >= min_duration
            and (exclude is None or exclude not in r.description)
        ]
        if not records:
            return "(no traced tasks)"
        span = max(r.finish_time for r in records)
        if span <= 0.0:
            return "(all traced tasks at t=0)"
        scale = (width - 1) / span
        lines = [f"virtual time 0 .. {span:.4g}s  ({width} cols)"]
        lanes: dict[tuple[str, int], list[str]] = {}
        for record in sorted(records, key=lambda r: (r.pool, r.worker_id)):
            key = (record.pool, record.worker_id)
            lane = lanes.setdefault(key, [" "] * width)
            lo = int(record.start_time * scale)
            hi = max(lo + 1, int(record.finish_time * scale))
            for i in range(lo, min(hi, width)):
                lane[i] = "#" if lane[i] == " " else "@"  # '@' = suspended span
        for (pool, worker_id), lane in sorted(lanes.items()):
            lines.append(f"{pool}/w{worker_id:<2} |{''.join(lane)}|")
        return "\n".join(lines)
