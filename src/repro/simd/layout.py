"""Virtual Node Scheme (VNS) data layout.

The paper vectorizes its 2D stencil with the Virtual Node Scheme of the
Grid QCD library [Boyle et al. 2015]: a row's interior is split into
``lanes`` equal sub-rows ("virtual nodes") and element ``j`` of every
sub-row is packed into one SIMD register, so the x-neighbourhood of a
whole register is again a register -- *except* at sub-row edges, where a
lane's neighbour lives in the adjacent lane.  Those edges are handled by
per-lane halo columns that must be refreshed by a lane shuffle after
every update -- Listing 2's ``helper<Container>::shuffle(next, ny)``.

Layout of one packed row (``chunk = interior_width / lanes``)::

    packed[j, l]  ==  row[1 + l*chunk + (j-1)]      for j in 1..chunk
    packed[0, l]  ==  left  halo of virtual node l
    packed[chunk+1, l] == right halo of virtual node l

With the halos fresh, ``packed[j-1]`` / ``packed[j+1]`` are exactly the
x-1 / x+1 neighbours of ``packed[j]`` for every interior ``j`` -- the
stencil update needs no per-element shuffles.
"""

from __future__ import annotations

import numpy as np

from ..errors import LayoutError

__all__ = ["VnsLayout"]


class VnsLayout:
    """VNS packing/unpacking and halo maintenance for rows of fixed width.

    ``width`` counts the full row *including* the two global boundary
    columns (Dirichlet halo), matching the paper's grids.
    """

    def __init__(self, width: int, lanes: int) -> None:
        if lanes < 1:
            raise LayoutError(f"lanes must be >= 1, got {lanes}")
        if width < 3:
            raise LayoutError(f"row width must be >= 3 (2 halo + interior), got {width}")
        interior = width - 2
        if interior % lanes != 0:
            raise LayoutError(
                f"interior width {interior} is not divisible by {lanes} lanes"
            )
        self.width = width
        self.lanes = lanes
        self.chunk = interior // lanes

    @property
    def packed_rows(self) -> int:
        """First dimension of a packed row: chunk + 2 halo positions."""
        return self.chunk + 2

    # Packing ------------------------------------------------------------------
    def pack_row(self, row: np.ndarray) -> np.ndarray:
        """Pack a 1D row of ``width`` elements into VNS layout.

        Returns a ``(chunk + 2, lanes)`` array with halos already fresh.
        """
        row = np.asarray(row)
        if row.ndim != 1 or row.shape[0] != self.width:
            raise LayoutError(
                f"expected row of shape ({self.width},), got {row.shape}"
            )
        interior = row[1:-1].reshape(self.lanes, self.chunk).T
        packed = np.empty((self.chunk + 2, self.lanes), dtype=row.dtype)
        packed[1:-1, :] = interior
        self._fill_halos(packed, left_boundary=row[0], right_boundary=row[-1])
        return packed

    def unpack_row(self, packed: np.ndarray) -> np.ndarray:
        """Invert :meth:`pack_row`; global boundaries come from the halos
        of the edge lanes."""
        self._check_packed(packed)
        row = np.empty(self.width, dtype=packed.dtype)
        row[1:-1] = packed[1:-1, :].T.reshape(-1)
        row[0] = packed[0, 0]  # lane 0's left halo is the global boundary
        row[-1] = packed[-1, -1]  # last lane's right halo likewise
        return row

    # Halo maintenance ----------------------------------------------------------
    def refresh_halo(self, packed: np.ndarray) -> None:
        """Refresh per-lane halo columns in place (Listing 2's shuffle).

        Interior lanes copy their neighbours' edge elements; the outermost
        halos (global Dirichlet boundary) are left untouched.
        """
        self._check_packed(packed)
        if self.lanes > 1:
            # Left halo of lane l  <- last interior element of lane l-1.
            packed[0, 1:] = packed[-2, :-1]
            # Right halo of lane l <- first interior element of lane l+1.
            packed[-1, :-1] = packed[1, 1:]

    def _fill_halos(
        self, packed: np.ndarray, left_boundary: float, right_boundary: float
    ) -> None:
        packed[0, 0] = left_boundary
        packed[-1, -1] = right_boundary
        if self.lanes > 1:
            packed[0, 1:] = packed[-2, :-1]
            packed[-1, :-1] = packed[1, 1:]

    def _check_packed(self, packed: np.ndarray) -> None:
        expected = (self.chunk + 2, self.lanes)
        if packed.shape != expected:
            raise LayoutError(f"expected packed shape {expected}, got {packed.shape}")

    # Grid-level helpers ----------------------------------------------------------
    def pack_grid(self, grid: np.ndarray) -> np.ndarray:
        """Pack every row of a 2D ``(ny, width)`` grid -> ``(ny, chunk+2, lanes)``."""
        grid = np.asarray(grid)
        if grid.ndim != 2 or grid.shape[1] != self.width:
            raise LayoutError(
                f"expected grid of shape (ny, {self.width}), got {grid.shape}"
            )
        packed = np.empty((grid.shape[0], self.chunk + 2, self.lanes), dtype=grid.dtype)
        for y in range(grid.shape[0]):
            packed[y] = self.pack_row(grid[y])
        return packed

    def unpack_grid(self, packed: np.ndarray) -> np.ndarray:
        """Invert :meth:`pack_grid`."""
        if packed.ndim != 3 or packed.shape[1:] != (self.chunk + 2, self.lanes):
            raise LayoutError(
                f"expected packed grid (ny, {self.chunk + 2}, {self.lanes}), "
                f"got {packed.shape}"
            )
        grid = np.empty((packed.shape[0], self.width), dtype=packed.dtype)
        for y in range(packed.shape[0]):
            grid[y] = self.unpack_row(packed[y])
        return grid

    def __repr__(self) -> str:  # pragma: no cover
        return f"VnsLayout(width={self.width}, lanes={self.lanes}, chunk={self.chunk})"
