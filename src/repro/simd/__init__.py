"""NSIMD-like portable SIMD layer.

The paper vectorizes its 2D stencil with NSIMD ``pack`` types so one
generic kernel (Listing 2) runs on AVX2, NEON, and SVE.  This package
reproduces that programming model in Python:

* :mod:`~repro.simd.isa` -- ISA descriptors.  SVE is *vector-length
  agnostic*: the lane count is fixed at :class:`~repro.simd.isa.SveIsa`
  construction, mirroring GCC's ``-msve-vector-bits`` compile-time choice
  the paper had to make.
* :mod:`~repro.simd.pack` -- the ``pack`` value type with arithmetic,
  loads/stores and lane shuffles.
* :mod:`~repro.simd.layout` -- the Virtual Node Scheme data layout
  ([Boyle et al., Grid]) used by Listing 2, including the halo shuffle.
* :mod:`~repro.simd.typetraits` -- the ``get_type`` meta-class analogue
  used at Listing 2 line 17 to tell scalar containers from pack
  containers.
"""

from .isa import Isa, FixedIsa, SveIsa, ScalarIsa, AVX2, NEON, isa_for, sve
from .pack import Pack
from .layout import VnsLayout
from .typetraits import is_pack_container, element_kind

__all__ = [
    "Isa",
    "FixedIsa",
    "SveIsa",
    "ScalarIsa",
    "AVX2",
    "NEON",
    "isa_for",
    "sve",
    "Pack",
    "VnsLayout",
    "is_pack_container",
    "element_kind",
]
