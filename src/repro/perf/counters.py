"""Hardware-counter model (paper Tables III-VI).

The paper reads perf/PAPI counters for each (data type, vectorization)
variant of the 2D kernel on **one physical core** over an
**8192 x 16384 grid, 100 iterations** and uses them to explain the
performance differences.  We cannot read an A64FX PMU, so the model is:

* **calibrated per-LUP rates**: the Table III-VI counts divided by the
  measurement run's lattice-site updates.  These constants *are* the
  tables (provenance: the paper), re-expanded for any grid/step count by
  linear scaling -- counter totals for streaming kernels scale with
  work, which the scaling tests assert.
* **structural cross-checks**: a from-first-principles estimate of
  instructions/LUP (5 memory ops + 4 FLOPs + loop overhead, divided by
  an effective vector width) and of cache misses/LUP (memory traffic /
  line size).  The test suite checks the calibrated values sit within a
  plausibility band of the structural ones, so a typo in the calibration
  cannot hide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..hardware.counters import (
    CounterSet,
    PAPI_L2_TCM,
    PAPI_TOT_INS,
    STALL_BACKEND,
    STALL_FRONTEND,
)
from ..hardware.registry import (
    A64FX,
    KUNPENG_916,
    THUNDERX2,
    XEON_E5_2660V3,
    MachineModel,
)

__all__ = ["CounterModel", "COUNTER_GRID", "COUNTER_STEPS", "counter_lups"]

#: The paper's hardware-counter measurement configuration (Sec. VI).
COUNTER_GRID = (8192, 16384)
COUNTER_STEPS = 100


def counter_lups(grid: tuple[int, int] = COUNTER_GRID, steps: int = COUNTER_STEPS) -> int:
    """Lattice-site updates of a counter run (interior points x steps)."""
    ny, nx = grid
    if ny < 3 or nx < 3 or steps < 0:
        raise ValidationError("invalid counter-run configuration")
    return (ny - 2) * (nx - 2) * steps


#: Raw Table III-VI values: counts for the 8192x16384 x 100-iteration
#: single-core run.  Keys: (dtype-name, mode) with mode "auto" (GCC
#: auto-vectorized scalar code) or "simd" (explicit NSIMD packs).
_TABLES: dict[str, dict[tuple[str, str], dict[str, float]]] = {
    # Table III -- no stall counters on Haswell E5-2660v3 (paper Sec. VII-B).
    XEON_E5_2660V3: {
        ("float32", "auto"): {PAPI_TOT_INS: 3.153e10, PAPI_L2_TCM: 2.121e8},
        ("float32", "simd"): {PAPI_TOT_INS: 1.783e10, PAPI_L2_TCM: 3.706e8},
        ("float64", "auto"): {PAPI_TOT_INS: 6.010e10, PAPI_L2_TCM: 4.740e8},
        ("float64", "simd"): {PAPI_TOT_INS: 3.507e10, PAPI_L2_TCM: 8.751e8},
    },
    # Table IV -- Hi1616 exposes no stall counters either.
    KUNPENG_916: {
        ("float32", "auto"): {PAPI_TOT_INS: 4.300e10, PAPI_L2_TCM: 3.148e9},
        ("float32", "simd"): {PAPI_TOT_INS: 4.144e10, PAPI_L2_TCM: 2.512e9},
        ("float64", "auto"): {PAPI_TOT_INS: 8.321e10, PAPI_L2_TCM: 5.639e9},
        ("float64", "simd"): {PAPI_TOT_INS: 8.236e10, PAPI_L2_TCM: 4.953e9},
    },
    # Table V -- A64FX reports stalls; cache misses were "very similar"
    # between modes (Sec. VII-B) and are not tabulated.
    A64FX: {
        ("float32", "auto"): {
            PAPI_TOT_INS: 1.284e10,
            STALL_FRONTEND: 3.801e8,
            STALL_BACKEND: 9.430e9,
        },
        ("float32", "simd"): {
            PAPI_TOT_INS: 1.496e10,
            STALL_FRONTEND: 2.918e8,
            STALL_BACKEND: 8.003e9,
        },
        ("float64", "auto"): {
            PAPI_TOT_INS: 2.299e10,
            STALL_FRONTEND: 3.860e8,
            STALL_BACKEND: 1.871e10,
        },
        ("float64", "simd"): {
            PAPI_TOT_INS: 2.956e10,
            STALL_FRONTEND: 3.560e8,
            STALL_BACKEND: 1.443e10,
        },
    },
    # Table VI -- ThunderX2: L2 misses and backend stalls.
    THUNDERX2: {
        ("float32", "auto"): {
            PAPI_TOT_INS: 4.039e10,
            PAPI_L2_TCM: 1.811e9,
            STALL_BACKEND: 1.522e10,
        },
        ("float32", "simd"): {
            PAPI_TOT_INS: 4.394e10,
            PAPI_L2_TCM: 1.690e9,
            STALL_BACKEND: 6.437e9,
        },
        ("float64", "auto"): {
            PAPI_TOT_INS: 8.065e10,
            PAPI_L2_TCM: 5.716e9,
            STALL_BACKEND: 3.298e10,
        },
        ("float64", "simd"): {
            PAPI_TOT_INS: 8.756e10,
            PAPI_L2_TCM: 6.055e9,
            STALL_BACKEND: 2.826e10,
        },
    },
}

#: Structural op counts for one 5-point update: 4 loads + 1 store,
#: 3 adds + 1 multiply, ~2 loop-control instructions.
_MEM_OPS = 5
_FLOPS = 4
_LOOP_OVERHEAD = 2


@dataclass(frozen=True)
class _Variant:
    dtype: str
    mode: str

    def __post_init__(self) -> None:
        if self.dtype not in ("float32", "float64"):
            raise ValidationError(f"dtype must be float32/float64, got {self.dtype!r}")
        if self.mode not in ("auto", "simd"):
            raise ValidationError(f"mode must be auto/simd, got {self.mode!r}")


class CounterModel:
    """Predict PMU counters for the 2D kernel on one machine."""

    def __init__(self, machine: MachineModel) -> None:
        if machine.name not in _TABLES:
            raise ValidationError(f"no counter calibration for {machine.name!r}")
        self.machine = machine
        self._table = _TABLES[machine.name]

    # Calibrated predictions --------------------------------------------------
    def per_lup(self, dtype: str, mode: str) -> dict[str, float]:
        """Counter increments per lattice-site update (calibrated)."""
        variant = _Variant(dtype, mode)
        base_lups = counter_lups()
        row = self._table[(variant.dtype, variant.mode)]
        return {name: value / base_lups for name, value in row.items()}

    def predict(
        self,
        dtype: str,
        mode: str,
        grid: tuple[int, int] = COUNTER_GRID,
        steps: int = COUNTER_STEPS,
    ) -> CounterSet:
        """Counter totals for a single-core run over ``grid`` x ``steps``."""
        lups = counter_lups(grid, steps)
        counters = CounterSet()
        for name, rate in self.per_lup(dtype, mode).items():
            counters.add(name, rate * lups)
        return counters

    def table_row(self, dtype: str, mode: str) -> dict[str, float]:
        """The Table III-VI row (counts on the paper's counter grid)."""
        return dict(self._table[(_Variant(dtype, mode).dtype, mode)])

    def counter_names(self) -> tuple[str, ...]:
        """Which counters this machine's PMU exposes in the paper."""
        first = next(iter(self._table.values()))
        return tuple(first.keys())

    # Structural cross-checks ------------------------------------------------------
    def structural_instructions_per_lup(self, dtype: str, mode: str) -> float:
        """First-principles instructions/LUP estimate.

        ``(mem ops + FLOPs) / width + loop overhead / width`` where the
        width is the ISA lane count for explicit SIMD and *half* of it
        for auto-vectorization (the paper's "GCC is not able to auto
        vectorize very well" on x86; on the Arm machines GCC reached
        full width, which the band check in the tests accounts for).
        """
        variant = _Variant(dtype, mode)
        elem = np.dtype(variant.dtype).itemsize
        lanes = self.machine.spec.simd_lanes(elem)
        width = lanes if variant.mode == "simd" else max(1, lanes // 2)
        return (_MEM_OPS + _FLOPS + _LOOP_OVERHEAD) / width

    def effective_vector_width(self, dtype: str, mode: str) -> float:
        """Lanes-equivalent throughput implied by the measured counts."""
        measured = self.per_lup(dtype, mode)[PAPI_TOT_INS]
        return (_MEM_OPS + _FLOPS + _LOOP_OVERHEAD) / measured

    def traffic_per_lup_bytes(self, dtype: str, blocking: bool = False) -> float:
        """Main-memory bytes per LUP from the cache model."""
        elem = np.dtype(dtype).itemsize
        row_bytes = COUNTER_GRID[1] * elem
        return self.machine.caches.stencil_transfers_per_update(
            row_bytes, elem, prefetch_blocking=blocking
        )
