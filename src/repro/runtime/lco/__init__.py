"""Local Control Objects -- ParalleX's constraint-based synchronisation.

An LCO is an object that *becomes* a synchronisation event: tasks attach
futures to it and the LCO fires them when its constraint is satisfied
(count reaches zero, all parties arrived, a value is produced, ...).
This replaces lock-and-wait with data-driven continuation -- the paper's
"lightweight synchronisation mechanisms".
"""

from .latch import Latch
from .barrier import Barrier
from .channel import Channel
from .semaphore import CountingSemaphore
from .and_gate import AndGate
from .dataflow import dataflow
from .remote_channel import RemoteChannel, ChannelComponent

__all__ = [
    "Latch",
    "Barrier",
    "Channel",
    "CountingSemaphore",
    "AndGate",
    "dataflow",
    "RemoteChannel",
    "ChannelComponent",
]
