"""The parcel: ParalleX's active message."""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ...errors import ParcelError
from ..agas.gid import Gid

__all__ = ["Parcel"]

_ids = itertools.count(1)


class Parcel:
    """Work shipped to data.

    Exactly one of ``target_gid`` (component action: AGAS resolves the
    current home) or ``target_locality`` (plain action on a node) is set.
    ``payload`` holds the *serialized* ``(action, args, kwargs)`` tuple;
    the destination deserializes it -- see
    :mod:`repro.runtime.parcel.serialization`.

    A parcel is a hot-path object (one per action invocation), so it is
    a plain ``__slots__`` class: every transport-layer annex the runtime
    or parcelport may attach (``reply_promise``, ``by_ref_body``,
    ``fire_and_forget``, ``unreachable_destination``) is a declared slot
    with a cheap default instead of a dynamic attribute, and the wire
    size is computed exactly once at construction -- the payload bytes
    are immutable for the parcel's lifetime, retransmissions included.
    """

    __slots__ = (
        "source_locality",
        "payload",
        "target_gid",
        "target_locality",
        "send_time",
        "parcel_id",
        "attempts",
        "size_bytes",
        "reply_promise",
        "by_ref_body",
        "fire_and_forget",
        "unreachable_destination",
        "priority",
        "deferrals",
        "holds_credit",
    )

    def __init__(
        self,
        source_locality: int,
        payload: bytes,
        target_gid: Optional[Gid] = None,
        target_locality: Optional[int] = None,
        send_time: float = 0.0,
        parcel_id: int | None = None,
        attempts: int = 0,
    ) -> None:
        if (target_gid is None) == (target_locality is None):
            raise ParcelError(
                "parcel needs exactly one of target_gid or target_locality"
            )
        if source_locality < 0:
            raise ParcelError("negative source locality")
        if not isinstance(payload, (bytes, bytearray)):
            raise ParcelError("payload must be serialized bytes")
        self.source_locality = source_locality
        self.payload = payload
        self.target_gid = target_gid
        self.target_locality = target_locality
        #: Virtual send time at the source.
        self.send_time = send_time
        self.parcel_id = next(_ids) if parcel_id is None else parcel_id
        #: Transmissions so far (maintained by the parcelport; retries of a
        #: lost parcel re-send the same object with a bumped count).
        self.attempts = attempts
        #: Wire size (payload plus a modelled 64-byte header), encoded
        #: once -- statistics and the transfer-time model reuse it on
        #: every (re)transmission instead of re-measuring the bytes.
        self.size_bytes = len(payload) + 64
        #: Reply promise for two-way invocations (None for bare sends).
        self.reply_promise: Any = None
        #: Decoded body carried by reference (zero-copy fast path or the
        #: ``parcel.serialize=False`` ablation); None means the receiver
        #: must deserialize ``payload``.
        self.by_ref_body: Any = None
        #: One-way invocation (``invoke_apply``): no reply parcel.
        self.fire_and_forget = False
        #: Destination recorded by runtime-side loss reports, so repeated
        #: unreachability can escalate into ``suspected_dead``.
        self.unreachable_destination: Optional[int] = None
        #: Scheduling priority for the handler task (a
        #: :class:`~repro.runtime.threads.hpx_thread.ThreadPriority`, or
        #: None for NORMAL).  Overload admission treats LOW-priority
        #: parcels as sheddable background traffic.
        self.priority: Any = None
        #: Times the overload controller deferred admission of this
        #: (LOW-priority) parcel; at ``overload.defer_max`` it is shed.
        self.deferrals = 0
        #: True while the parcel holds a send credit toward its
        #: destination (charged once at admission, released exactly once
        #: on ack or dead-letter; retransmissions keep the credit).
        self.holds_credit = False

    def reinit(
        self,
        source_locality: int,
        payload: bytes,
        target_gid: Optional[Gid],
        target_locality: Optional[int],
        send_time: float,
    ) -> "Parcel":
        """Reset a recycled shell for a brand-new logical parcel.

        Used by the runtime's object pool on the (trusted, validated)
        hot path: every slot is re-assigned -- including a fresh
        ``parcel_id``, so tracing/dedupe never confuse two logical
        parcels that happened to share a shell -- and every transport
        annex returns to its construction default.
        """
        self.source_locality = source_locality
        self.payload = payload
        self.target_gid = target_gid
        self.target_locality = target_locality
        self.send_time = send_time
        self.parcel_id = next(_ids)
        self.attempts = 0
        self.size_bytes = len(payload) + 64
        self.reply_promise = None
        self.by_ref_body = None
        self.fire_and_forget = False
        self.unreachable_destination = None
        self.priority = None
        self.deferrals = 0
        self.holds_credit = False
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = (
            f"gid={self.target_gid}"
            if self.target_gid is not None
            else f"locality={self.target_locality}"
        )
        return (
            f"Parcel(#{self.parcel_id} {target} {self.size_bytes}B "
            f"t={self.send_time:.3g} attempts={self.attempts})"
        )
