"""``repro jobs ...`` CLI: submit/status/list/cancel/counters/work."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "svc")


def _submit(root, capsys, *extra):
    rc = main(
        ["jobs", "submit", "--root", root, "--tenant", "t", "--kind", "faulty",
         "--json", *extra]
    )
    assert rc == 0
    return json.loads(capsys.readouterr().out)


def test_submit_is_idempotent_across_invocations(root, capsys):
    first = _submit(root, capsys, "--dedupe-key", "k")
    assert first["created"]
    again = _submit(root, capsys, "--dedupe-key", "k")
    assert not again["created"]
    assert again["job"]["job_id"] == first["job"]["job_id"]


def test_submit_parses_params_as_json_scalars(root, capsys):
    payload = _submit(
        root, capsys, "--param", "fail_attempts=2", "--param", "note=\"hi\""
    )
    assert payload["job"]["params"] == {"fail_attempts": 2, "note": "hi"}
    rc = main(
        ["jobs", "submit", "--root", root, "--tenant", "t", "--param", "broken"]
    )
    assert rc == 2
    assert "KEY=VALUE" in capsys.readouterr().err


def test_status_cancel_and_unknown_job(root, capsys):
    job_id = _submit(root, capsys)["job"]["job_id"]
    assert main(["jobs", "status", "--root", root, job_id]) == 0
    assert json.loads(capsys.readouterr().out)["state"] == "pending"
    assert main(["jobs", "cancel", "--root", root, job_id]) == 0
    capsys.readouterr()
    # Terminal jobs are exactly-once: a second cancel is an error.
    assert main(["jobs", "cancel", "--root", root, job_id]) == 1
    assert main(["jobs", "status", "--root", root, "job-nope"]) == 1


def test_work_drains_and_counters_report(root, capsys):
    _submit(root, capsys, "--dedupe-key", "a")
    _submit(root, capsys, "--dedupe-key", "b")
    rc = main(
        ["jobs", "work", "--root", root, "--worker", "w0", "--exit-when-idle",
         "--poll", "0.01"]
    )
    assert rc == 0
    assert "settled 2 job(s)" in capsys.readouterr().out
    assert main(["jobs", "list", "--root", root, "--state", "done", "--json"]) == 0
    done = json.loads(capsys.readouterr().out)
    assert len(done) == 2
    assert all(job["result"]["digest"] == "ok" for job in done)
    assert main(["jobs", "counters", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "/jobs{t}/count/completed" in out


def test_list_table_and_tenant_filter(root, capsys):
    _submit(root, capsys)
    rc = main(["jobs", "list", "--root", root, "--tenant", "t"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pending" in out and "job-" in out
    rc = main(["jobs", "list", "--root", root, "--tenant", "nobody", "--json"])
    assert rc == 0
    assert json.loads(capsys.readouterr().out) == []
