"""Tests: the counter-derived cycle model agrees with the calibrated
single-core rates (the two calibrations tell one story)."""

import pytest

from repro.errors import ValidationError
from repro.hardware import machine
from repro.perf.cyclemodel import (
    issue_ipc,
    predicted_cycles_per_lup,
    predicted_single_core_glups,
)


@pytest.mark.parametrize("name", ["a64fx", "thunderx2"])
@pytest.mark.parametrize("dtype", ["float32", "float64"])
@pytest.mark.parametrize("mode", ["auto", "simd"])
def test_counter_implied_rate_brackets_calibrated_rate(name, dtype, mode):
    """Within 40 %: the counter tables and the performance bands are
    independent sources and must roughly agree."""
    m = machine(name)
    implied = predicted_single_core_glups(m, dtype, mode)
    calibrated = m.calibration.single_core_glups[(dtype, mode)]
    assert implied == pytest.approx(calibrated, rel=0.40), (
        f"{name} {dtype}/{mode}: counters imply {implied:.2f} GLUP/s, "
        f"registry says {calibrated:.2f}"
    )


@pytest.mark.parametrize("name", ["a64fx", "thunderx2"])
def test_stall_reduction_shows_up_as_speedup(name):
    """Explicit vectorization cuts backend stalls (Tables V/VI); the
    cycle model must turn that into a higher implied rate for floats."""
    m = machine(name)
    auto = predicted_single_core_glups(m, "float32", "auto")
    simd = predicted_single_core_glups(m, "float32", "simd")
    assert simd > auto


def test_tx2_float_gain_magnitude():
    """TX2's 2.4x backend-stall drop plus dual-issued packs imply a
    ~50-75 % rate gain, consistent with the paper's 50-60 % band."""
    m = machine("thunderx2")
    gain = (
        predicted_single_core_glups(m, "float32", "simd")
        / predicted_single_core_glups(m, "float32", "auto")
        - 1
    )
    assert 0.45 <= gain <= 0.80


def test_a64fx_modest_gain():
    """A64FX's stall drop is small; implied gain must be < 20 %."""
    m = machine("a64fx")
    gain = (
        predicted_single_core_glups(m, "float32", "simd")
        / predicted_single_core_glups(m, "float32", "auto")
        - 1
    )
    assert 0.0 < gain < 0.20


def test_doubles_slower_than_floats():
    for name in ("a64fx", "thunderx2"):
        m = machine(name)
        for mode in ("auto", "simd"):
            assert predicted_cycles_per_lup(m, "float64", mode) > (
                predicted_cycles_per_lup(m, "float32", mode)
            )


def test_machines_without_stall_counters_rejected():
    with pytest.raises(ValidationError):
        issue_ipc(machine("xeon-e5-2660v3"))
    with pytest.raises(ValidationError):
        predicted_single_core_glups(machine("kunpeng916"), "float32", "auto")
