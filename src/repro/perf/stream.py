"""STREAM memory-bandwidth benchmark (paper Fig 2).

Two forms:

* :func:`stream_model` -- the four machines' COPY bandwidth per core
  count from the calibrated memory model.  This regenerates Fig 2's
  curves (the paper runs ten times and keeps the best; the model is
  deterministic, so one evaluation is the best).
* :func:`stream_host` -- a real NumPy STREAM kernel timed on the host.
  It keeps the reproduction honest: the same harness that reads the
  model can read actual silicon.

Kernel definitions follow McCalpin: COPY ``c = a``, SCALE ``b = s*c``,
ADD ``c = a + b``, TRIAD ``a = b + s*c``; bytes counted as in the
reference implementation (2, 2, 3 and 3 array touches respectively).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..hardware.registry import MachineModel

__all__ = ["StreamResult", "stream_model", "stream_host", "STREAM_KERNELS"]

#: Array touches per element for each kernel (McCalpin's byte counting).
STREAM_KERNELS: dict[str, int] = {"copy": 2, "scale": 2, "add": 3, "triad": 3}

#: Fig 2's array size: 128 million elements.
PAPER_ARRAY_ELEMENTS = 128_000_000


@dataclass(frozen=True)
class StreamResult:
    """Best bandwidth for one (kernel, core count) cell."""

    kernel: str
    n_cores: int
    bandwidth_gbs: float
    array_elements: int


def stream_model(
    machine: MachineModel,
    n_cores: int,
    kernel: str = "copy",
    pinning: str = "compact",
    array_elements: int = PAPER_ARRAY_ELEMENTS,
) -> StreamResult:
    """Modelled STREAM bandwidth for ``n_cores`` on ``machine``.

    STREAM is embarrassingly parallel with first-touch-local data, so
    the aggregate (per-domain-sum) bandwidth applies -- the paper makes
    its STREAM runs NUMA-aware for exactly this reason (footnote 2).
    """
    if kernel not in STREAM_KERNELS:
        raise ValidationError(f"unknown STREAM kernel {kernel!r}")
    if array_elements <= 0:
        raise ValidationError("array size must be positive")
    bandwidth = machine.memory.aggregate_bandwidth(n_cores, pinning)
    return StreamResult(kernel, n_cores, bandwidth, array_elements)


def stream_host(
    array_elements: int = 10_000_000,
    kernel: str = "copy",
    repeats: int = 10,
    dtype=np.float64,
) -> StreamResult:
    """Run a real STREAM kernel on the host; best of ``repeats``.

    The default array is sized for CI speed; pass
    ``PAPER_ARRAY_ELEMENTS`` to match the paper's configuration.
    """
    if kernel not in STREAM_KERNELS:
        raise ValidationError(f"unknown STREAM kernel {kernel!r}")
    if array_elements <= 0 or repeats < 1:
        raise ValidationError("array size and repeats must be positive")
    elem = np.dtype(dtype).itemsize
    a = np.zeros(array_elements, dtype=dtype)
    b = np.full(array_elements, 2.0, dtype=dtype)
    c = np.full(array_elements, 0.5, dtype=dtype)
    scalar = 3.0
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()  # repro-lint: disable=PX101 -- real STREAM kernel
        if kernel == "copy":
            c[:] = a
        elif kernel == "scale":
            b[:] = scalar * c
        elif kernel == "add":
            c[:] = a + b
        else:  # triad
            a[:] = b + scalar * c
        elapsed = time.perf_counter() - start  # repro-lint: disable=PX101
        touched = STREAM_KERNELS[kernel] * array_elements * elem
        if elapsed > 0:
            best = max(best, touched / elapsed / 1e9)
    return StreamResult(kernel, 1, best, array_elements)
