"""Legacy shim: environments without the `wheel` package cannot do
PEP-517 editable installs; `pip install -e . --no-use-pep517` uses this."""
from setuptools import setup

setup()
