"""Unit tests for ProcessorSpec (Table I facts)."""

import pytest

from repro.errors import TopologyError
from repro.hardware import ProcessorSpec


def make_spec(**overrides):
    base = dict(
        name="Test CPU",
        vendor="ACME",
        clock_ghz=2.0,
        cores_per_processor=8,
        processors_per_node=2,
        threads_per_core=2,
        vector_pipeline="Double TEST Pipeline",
        dp_flops_per_cycle=8,
        isa="neon",
        vector_bits=128,
        simd_pipelines=2,
        numa_domains=2,
    )
    base.update(overrides)
    return ProcessorSpec(**base)


def test_cores_per_node():
    assert make_spec().cores_per_node == 16


def test_cores_per_domain():
    assert make_spec().cores_per_domain == 8


def test_pus_per_node_counts_smt():
    assert make_spec().pus_per_node == 32


def test_peak_gflops_formula():
    # 2.0 GHz x 8 FLOP/cycle x 16 cores = 256 GFLOP/s
    assert make_spec().peak_gflops == pytest.approx(256.0)


def test_simd_lanes():
    spec = make_spec(vector_bits=256)
    assert spec.simd_lanes(4) == 8
    assert spec.simd_lanes(8) == 4


def test_simd_lanes_bad_width():
    with pytest.raises(TopologyError):
        make_spec().simd_lanes(3)


def test_invalid_clock_rejected():
    with pytest.raises(TopologyError):
        make_spec(clock_ghz=0.0)


def test_uneven_numa_split_rejected():
    with pytest.raises(TopologyError):
        make_spec(numa_domains=3)


def test_invalid_vector_width_rejected():
    with pytest.raises(TopologyError):
        make_spec(vector_bits=96)


def test_table1_row_plain():
    row = make_spec().table1_row()
    assert row["Cores per processors"] == "8"
    assert row["Peak Performance in GFLOP/s"] == "256"


def test_table1_row_with_helpers():
    row = make_spec(helper_cores=4).table1_row()
    assert "helper" in row["Cores per processors"]
