"""One function per paper exhibit: Tables I and III-VI, Figures 2-8.

Every function returns renderable data (via :mod:`repro.reporting`) built
from the calibrated models -- these are the entry points the benchmark
harnesses, the examples and EXPERIMENTS.md all share.  Nothing here is
cached or stateful; each call recomputes the exhibit from the registry.
"""

from __future__ import annotations

import numpy as np

from .hardware.registry import machine, machine_names
from .perf.cost import (
    PAPER_GRID_2D,
    PAPER_GRID_2D_LARGE,
    PAPER_STEPS,
    STRONG_SCALING_POINTS,
    WEAK_SCALING_POINTS_PER_NODE,
    expected_peak_2d,
    stencil1d_time,
    stencil2d_glups,
)
from .perf.counters import CounterModel
from .perf.stream import stream_model
from .reporting import Series, format_figure, format_scientific, format_table

__all__ = [
    "table1",
    "table2",
    "render_table2",
    "fig2_stream",
    "fig3_1d_scaling",
    "fig_2d_stencil",
    "counter_table",
    "render_table1",
    "render_fig2",
    "render_fig3",
    "render_fig_2d",
    "render_counter_table",
    "DTYPE_VARIANTS",
]

#: The four kernel variants of Figs 4-8, paper naming.
DTYPE_VARIANTS: tuple[tuple[str, np.dtype, str], ...] = (
    ("Float", np.dtype(np.float32), "auto"),
    ("Vector Float", np.dtype(np.float32), "simd"),
    ("Double", np.dtype(np.float64), "auto"),
    ("Vector Double", np.dtype(np.float64), "simd"),
)

#: Core-count grids per machine for the 2D figures (multiples of 8 as in
#: the paper's plots, plus the single-core and full-node points).
def _core_grid(n_cores: int) -> list[int]:
    grid = [1] + [c for c in range(8, n_cores + 1, 8)]
    if grid[-1] != n_cores:
        grid.append(n_cores)  # e.g. the Xeon's 20-core node
    return grid


# Table I --------------------------------------------------------------------

def table1() -> tuple[list[str], list[list[str]]]:
    """Headers and rows of Table I (specs of the four nodes)."""
    machines = [machine(name) for name in machine_names()]
    keys = list(machines[0].spec.table1_row().keys())[1:]  # skip name key
    headers = [""] + [m.spec.name for m in machines]
    rows = []
    for key in keys:
        rows.append([key] + [m.spec.table1_row()[key] for m in machines])
    return headers, rows


def render_table1() -> str:
    headers, rows = table1()
    return "TABLE I: Specification of the Arm and x86 nodes\n" + format_table(
        headers, rows
    )


# Table II -------------------------------------------------------------------

def table2() -> tuple[list[str], list[list[str]]]:
    """Table II (benchmark dependencies) with this reproduction's
    substitutes -- the substitution record in exhibit form."""
    headers = ["Package Name", "Paper Version", "This reproduction"]
    rows = [
        ["GCC", "10.1", "CPython (no native codegen; SIMD is modelled)"],
        ["hwloc", "2.1", "repro.hardware.topology (+ topology_render)"],
        ["jemalloc", "5.2.1", "n/a (NumPy buffers)"],
        ["boost", "1.66", "n/a (Python stdlib)"],
        ["HPX", "commit c62d992", "repro.runtime (ParalleX runtime in Python)"],
        ["NSIMD", "commit d4f9fc5", "repro.simd (packs + VNS layout)"],
        ["PAPI", "6.0.0", "repro.hardware.counters + repro.perf.counters"],
    ]
    return headers, rows


def render_table2() -> str:
    headers, rows = table2()
    return (
        "TABLE II: Benchmark dependencies Configuration "
        "(paper vs this reproduction)\n" + format_table(headers, rows)
    )


# Fig 2 ----------------------------------------------------------------------

def fig2_stream(pinning: str = "compact") -> list[Series]:
    """STREAM COPY GB/s vs core count, one series per machine."""
    series = []
    for name in machine_names():
        m = machine(name)
        s = Series(m.spec.name)
        for cores in _core_grid(m.spec.cores_per_node):
            s.add(cores, stream_model(m, cores, pinning=pinning).bandwidth_gbs)
        series.append(s)
    return series


def render_fig2() -> str:
    parts = ["Fig 2: Memory Bandwidth using the STREAM COPY Benchmark "
             "(128M elements, best of 10)"]
    for s in fig2_stream():
        parts.append(
            format_figure(s.name, [s], xlabel="cores", ylabel="GB/s", y_format="{:.1f}")
        )
    return "\n\n".join(parts)


# Fig 3 ----------------------------------------------------------------------

def fig3_1d_scaling(nodes: tuple[int, ...] = (1, 2, 4, 8)) -> dict[str, list[Series]]:
    """Strong and weak 1D-stencil scaling, one series per machine."""
    strong, weak = [], []
    for name in machine_names():
        m = machine(name)
        s_strong = Series(m.spec.name)
        s_weak = Series(m.spec.name)
        for n in nodes:
            s_strong.add(n, stencil1d_time(m, n, total_points=STRONG_SCALING_POINTS))
            s_weak.add(
                n, stencil1d_time(m, n, points_per_node=WEAK_SCALING_POINTS_PER_NODE)
            )
        strong.append(s_strong)
        weak.append(s_weak)
    return {"strong": strong, "weak": weak}


def render_fig3() -> str:
    data = fig3_1d_scaling()
    strong = format_figure(
        "Strong scaling (1.2e9 stencil points, 100 steps)",
        data["strong"],
        xlabel="nodes",
        ylabel="seconds",
        y_format="{:.2f}",
    )
    weak = format_figure(
        "Weak scaling (480e6 stencil points per node, 100 steps)",
        data["weak"],
        xlabel="nodes",
        ylabel="seconds",
        y_format="{:.2f}",
    )
    return "Fig 3: 1D Stencil: Distributed Results\n\n" + strong + "\n\n" + weak


# Figs 4-8 ---------------------------------------------------------------------

def fig_2d_stencil(
    machine_name: str,
    grid: tuple[int, int] = PAPER_GRID_2D,
    with_peaks: bool = True,
) -> list[Series]:
    """GLUP/s vs cores for the four kernel variants (+ roofline peaks).

    ``grid`` only matters for labelling: the rate model is
    grid-size-independent in the measured range (the Fig 7 result).
    """
    m = machine(machine_name)
    cores_grid = _core_grid(m.spec.cores_per_node)
    series = []
    for label, dtype, mode in DTYPE_VARIANTS:
        s = Series(label)
        for cores in cores_grid:
            s.add(cores, stencil2d_glups(m, dtype, mode, cores))
        series.append(s)
    if with_peaks:
        for transfers, label in ((3, "Expected Peak Min"), (2, "Expected Peak Max")):
            for dtype, dlabel in ((np.float32, "Float"), (np.float64, "Double")):
                s = Series(f"{label} ({dlabel})")
                for cores in cores_grid:
                    s.add(cores, expected_peak_2d(m, dtype, cores, transfers))
                series.append(s)
    return series


_FIGURE_BY_MACHINE = {
    "xeon-e5-2660v3": ("Fig 4", PAPER_GRID_2D),
    "kunpeng916": ("Fig 5", PAPER_GRID_2D),
    "a64fx": ("Fig 6", PAPER_GRID_2D),
    "thunderx2": ("Fig 8", PAPER_GRID_2D),
}


def render_fig_2d(machine_name: str, grid: tuple[int, int] = PAPER_GRID_2D) -> str:
    fig_label = _FIGURE_BY_MACHINE.get(machine_name, ("Fig 6/7", grid))[0]
    if machine_name == "a64fx" and grid == PAPER_GRID_2D_LARGE:
        fig_label = "Fig 7"
    m = machine(machine_name)
    ny, nx = grid
    title = (
        f"{fig_label}: 2D stencil, {m.spec.name}, grid {ny}x{nx}, "
        f"{PAPER_STEPS} time steps"
    )
    return format_figure(
        title,
        fig_2d_stencil(machine_name, grid),
        xlabel="cores",
        ylabel="GLUP/s",
        y_format="{:.2f}",
    )


# Tables III-VI -------------------------------------------------------------------

_COUNTER_TABLE_BY_MACHINE = {
    "xeon-e5-2660v3": "TABLE III",
    "kunpeng916": "TABLE IV",
    "a64fx": "TABLE V",
    "thunderx2": "TABLE VI",
}

_COUNTER_LABELS = {
    "PAPI_TOT_INS": "Instruction",
    "PAPI_L2_TCM": "Cache Misses",
    "STALL_FRONTEND": "Frontend Stalls",
    "STALL_BACKEND": "Backend Stalls",
}


def counter_table(machine_name: str) -> tuple[list[str], list[list[str]]]:
    """Headers and rows of the machine's hardware-counter table."""
    model = CounterModel(machine(machine_name))
    names = model.counter_names()
    headers = ["Data Type"] + [_COUNTER_LABELS[n] for n in names]
    rows = []
    for label, dtype, mode in DTYPE_VARIANTS:
        predicted = model.predict(dtype.name, mode)
        rows.append([label] + [format_scientific(predicted[n]) for n in names])
    return headers, rows


def render_counter_table(machine_name: str) -> str:
    table_label = _COUNTER_TABLE_BY_MACHINE[machine_name]
    headers, rows = counter_table(machine_name)
    m = machine(machine_name)
    return f"{table_label}: Hardware Counters for {m.spec.name}\n" + format_table(
        headers, rows
    )
