"""The service's clock seam.

Everything inside the runtime lives on the *virtual* clock; the job
service sits outside it -- leases, retry backoff, and ``retry_after``
hints are promises made to external clients about real elapsed time.
This module is the single sanctioned crossing point: every service
component takes a ``clock: Clock`` argument, tests inject a
:class:`ManualClock` so lease expiry and backoff schedules stay exactly
deterministic, and production entry points (CLI, gateway) pass
:func:`wall_clock`.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "ManualClock", "wall_clock"]

#: A clock is any zero-argument callable returning monotonic seconds.
Clock = Callable[[], float]


class ManualClock:
    """A deterministic clock tests drive by hand."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("a clock cannot run backwards")
        self.now += dt
        return self.now

    def __call__(self) -> float:
        return self.now


def wall_clock() -> Clock:
    """The production clock: monotonic wall time.

    The job service is the process boundary of the system -- leases must
    outlive virtual schedules and SIGKILLs, so this is deliberately real
    time, not pool time.
    """
    return time.monotonic  # repro-lint: disable=PX101
