"""Cache-simulator tests: deriving the paper's AI regimes mechanistically.

These tests *derive* the three traffic figures the analytic cost model
uses -- 24 B/LUP (three transfers, rows fit), 40 B/LUP (five transfers,
rows too large), 16 B/LUP (two transfers, streaming stores) -- by running
the exact Jacobi access trace through an LRU set-associative cache.
"""

import pytest

from repro.errors import TopologyError
from repro.hardware.cachesim import CacheSim, jacobi_row_traffic


def make_cache(size_kb=32, line=64, ways=8, write_allocate=True):
    return CacheSim(size_kb * 1024, line, ways, write_allocate)


# Mechanism unit tests ---------------------------------------------------------

def test_geometry_validation():
    with pytest.raises(TopologyError):
        CacheSim(0, 64, 8)
    with pytest.raises(TopologyError):
        CacheSim(1000, 64, 8)  # not divisible into sets


def test_cold_miss_then_hit():
    cache = make_cache()
    assert cache.read(0) is False
    assert cache.read(8) is True  # same 64-byte line
    assert cache.read(64) is False  # next line
    assert cache.stats.misses == 2
    assert cache.stats.bytes_from_memory == 128


def test_lru_eviction_order():
    # 1 set, 2 ways: the least-recently-used line is evicted.
    cache = CacheSim(128, 64, 2)
    cache.read(0)
    cache.read(64)
    cache.read(0)  # touch line 0 -> line 64 is now LRU
    cache.read(128)  # evicts line 64
    assert cache.read(0) is True
    assert cache.read(64) is False


def test_write_allocate_fetches_line():
    cache = make_cache()
    cache.write(0)
    assert cache.stats.bytes_from_memory == 64  # the allocate fetch
    assert cache.stats.bytes_to_memory == 0  # write-back deferred


def test_dirty_eviction_writes_back():
    cache = CacheSim(128, 64, 2)
    cache.write(0)
    cache.read(64)
    cache.read(128)  # evicts dirty line 0
    assert cache.stats.writebacks == 1
    assert cache.stats.bytes_to_memory == 64


def test_non_temporal_store_bypasses_cache():
    cache = make_cache(write_allocate=False)
    cache.write(0, size=8)
    assert cache.stats.bytes_from_memory == 0
    assert cache.stats.bytes_to_memory == 8
    assert cache.resident_lines == 0


def test_flush_writes_dirty_lines():
    cache = make_cache()
    cache.write(0)
    cache.write(64)
    cache.read(128)
    cache.flush()
    assert cache.stats.bytes_to_memory == 128
    assert cache.resident_lines == 0


def test_hit_keeps_dirty_bit():
    cache = CacheSim(128, 64, 2)
    cache.write(0)
    cache.read(0)  # hit must not clean the line
    cache.read(64)
    cache.read(128)  # evict line 0 -> must still write back
    assert cache.stats.writebacks == 1


# The paper's AI regimes, derived ------------------------------------------------

def test_rows_fit_gives_three_transfers():
    """Sec. V-B's assumption: 3 rows in cache -> 24 B/LUP for doubles."""
    cache = make_cache(size_kb=32)
    traffic = jacobi_row_traffic(cache, ny=32, nx=512, sweeps=2)
    assert traffic == pytest.approx(24.0, rel=0.10)


def test_rows_fit_gives_twelve_bytes_for_floats():
    cache = make_cache(size_kb=32)
    traffic = jacobi_row_traffic(cache, ny=32, nx=1024, elem_bytes=4, sweeps=2)
    assert traffic == pytest.approx(12.0, rel=0.10)


def test_rows_too_large_gives_five_transfers():
    """When three rows exceed the cache, every neighbour row misses:
    40 B/LUP for doubles (the paper's worst-case regime)."""
    cache = make_cache(size_kb=32)
    traffic = jacobi_row_traffic(cache, ny=12, nx=4096, sweeps=2)
    assert traffic == pytest.approx(40.0, rel=0.10)


def test_streaming_stores_give_two_transfers():
    """Without write-allocate, stores stream to memory: 16 B/LUP --
    the mechanism behind the A64FX/TX2 'Expected Peak Max' regime."""
    cache = make_cache(size_kb=32, write_allocate=False)
    traffic = jacobi_row_traffic(cache, ny=32, nx=512, sweeps=2)
    assert traffic == pytest.approx(16.0, rel=0.10)


def test_large_cache_lines_do_not_change_streaming_traffic():
    """A 256-byte line moves the same bytes per LUP for a streaming
    sweep -- the line size pays off in *miss count* (prefetch
    friendliness), which is the stall story, not raw traffic."""
    small = make_cache(size_kb=32, line=64)
    big = make_cache(size_kb=32, line=256)
    t_small = jacobi_row_traffic(small, ny=32, nx=512, sweeps=2)
    t_big = jacobi_row_traffic(big, ny=32, nx=512, sweeps=2)
    assert t_big == pytest.approx(t_small, rel=0.10)
    assert big.stats.misses < small.stats.misses / 2  # 4x fewer line fills


def test_whole_problem_in_cache_is_traffic_free():
    """If both buffers fit entirely, steady-state traffic ~ 0."""
    cache = make_cache(size_kb=256)
    traffic = jacobi_row_traffic(cache, ny=8, nx=64, sweeps=3)
    assert traffic < 2.0


def test_traffic_model_agrees_with_cache_hierarchy_answer():
    """The fast analytic answer (CacheHierarchy) and the simulator agree
    in both regimes."""
    from repro.hardware.caches import CacheHierarchy, CacheLevel

    hierarchy = CacheHierarchy((CacheLevel("L", 32 * 1024, 64),))
    # Rows fit.
    assert hierarchy.stencil_transfers_per_update(512 * 8, 8) == 24.0
    sim = make_cache(size_kb=32)
    assert jacobi_row_traffic(sim, 32, 512, sweeps=2) == pytest.approx(24.0, rel=0.1)
    # Rows do not fit.
    assert hierarchy.stencil_transfers_per_update(4096 * 8, 8) == 40.0
    sim2 = make_cache(size_kb=32)
    assert jacobi_row_traffic(sim2, 12, 4096, sweeps=2) == pytest.approx(40.0, rel=0.1)


def test_trace_validation():
    cache = make_cache()
    with pytest.raises(TopologyError):
        jacobi_row_traffic(cache, 2, 512)
    with pytest.raises(TopologyError):
        jacobi_row_traffic(cache, 8, 64, sweeps=0)
