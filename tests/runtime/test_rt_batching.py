"""Parcel coalescing: batching changes wall time, never answers.

The per-destination :class:`~repro.runtime.parcel.batcher.ParcelBatcher`
packs small same-destination parcels into one wire message.  Its
admissibility contract mirrors the zero-copy fast path's: with the
default ``batch_linger_s = 0`` every virtual-time observable -- the
makespan, the stencil fields, the parcel *and byte* counters -- must be
bit-identical with batching on or off, under every scheduler.  These
tests pin that, plus the batcher's own bookkeeping (flush reasons,
header amortization, the drained-at-quiescence gauge), the perfcounter
surface, and the trace events.
"""

import numpy as np
import pytest

from repro.config import Config
from repro.errors import ConfigError
from repro.runtime import perfcounters
from repro.runtime.runtime import Runtime
from repro.runtime.trace import Tracer
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

SCHEDULERS = ["fifo", "static", "work-stealing"]

NX = 48
U0 = np.cos(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))


def _config(scheduler: str, batching: bool, **extra) -> Config:
    return Config(
        threads__scheduler=scheduler,
        parcel__batching=batching,
        **extra,
    )


def _fingerprint(rt: Runtime) -> dict:
    port = rt.parcelport
    return {
        "makespan": rt.makespan,
        "parcels_sent": port.parcels_sent,
        "bytes_sent": port.bytes_sent,
        "parcels_delivered": port.parcels_delivered,
        "threads": perfcounters.query(rt, "/threads{total}/count/cumulative"),
    }


def _heat_run(scheduler: str, batching: bool, **extra):
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        config=_config(scheduler, batching, **extra),
    ) as rt:
        solver = DistributedHeat1D(
            rt, NX, Heat1DParams(), partitions_per_locality=2, cost_per_step=1e-4
        )
        solver.initialize(U0)
        field = rt.run(lambda: solver.run(20))
        return field, _fingerprint(rt)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_batching_heat1d_bit_identical(scheduler):
    field_off, fp_off = _heat_run(scheduler, batching=False)
    field_on, fp_on = _heat_run(scheduler, batching=True)
    assert fp_on == fp_off
    np.testing.assert_array_equal(field_on, field_off)
    np.testing.assert_array_equal(
        field_on, heat1d_reference(U0, 20, Heat1DParams())
    )


@pytest.mark.parametrize("batch_max", [2, 4, 64])
def test_batch_size_knob_never_moves_the_answer(batch_max):
    field_off, fp_off = _heat_run("work-stealing", batching=False)
    field_on, fp_on = _heat_run(
        "work-stealing", batching=True, parcel__batch_max_parcels=batch_max
    )
    assert fp_on == fp_off
    np.testing.assert_array_equal(field_on, field_off)


def _remote_unit():
    return 1


def test_batcher_stats_reconcile_and_drain():
    with Runtime(
        n_localities=2,
        workers_per_locality=1,
        config=_config("work-stealing", batching=True),
    ) as rt:

        def main():
            futures = [rt.async_at(1, _remote_unit) for _ in range(40)]
            return sum(f.get() for f in futures)

        assert rt.run(main) == 40
        batcher = rt._batcher
        assert batcher is not None
        # Coalescing actually happened, and the header amortization is
        # exactly 64 bytes per parcel that avoided its own message.
        assert batcher.parcels_batched > 0
        assert 0 < batcher.messages_flushed <= batcher.parcels_batched
        assert batcher.header_bytes_saved == 64 * (
            batcher.parcels_batched - batcher.messages_flushed
        )
        flushes = (
            batcher.flushes_full
            + batcher.flushes_bytes
            + batcher.flushes_linger
            + batcher.flushes_forced
        )
        assert flushes == batcher.messages_flushed
        # Quiescence drained everything: nothing parked in a batch.
        assert batcher.pending == 0


def test_self_sends_bypass_batching():
    with Runtime(
        n_localities=1,
        workers_per_locality=2,
        config=_config("work-stealing", batching=True),
    ) as rt:

        def main():
            futures = [rt.async_at(0, _remote_unit) for _ in range(10)]
            return sum(f.get() for f in futures)

        assert rt.run(main) == 10
        batcher = rt._batcher
        assert batcher is not None
        # Loopback traffic never waits in a batch.
        assert batcher.parcels_batched == 0
        assert batcher.messages_flushed == 0
        assert rt.parcelport.parcels_delivered > 0


def test_batch_perfcounters_discover_and_query():
    with Runtime(
        n_localities=2,
        workers_per_locality=1,
        config=_config("work-stealing", batching=True),
    ) as rt:

        def main():
            futures = [rt.async_at(1, _remote_unit) for _ in range(20)]
            return sum(f.get() for f in futures)

        rt.run(main)
        batcher = rt._batcher
        paths = perfcounters.discover(rt)
        assert "/parcels{total}/batch/messages" in paths
        assert "/parcels{total}/batch/parcels" in paths
        assert "/parcels{total}/batch/header-bytes-saved" in paths
        assert perfcounters.query(rt, "/parcels{total}/batch/messages") == float(
            batcher.messages_flushed
        )
        assert perfcounters.query(rt, "/parcels{total}/batch/parcels") == float(
            batcher.parcels_batched
        )
        assert perfcounters.query(rt, "/parcels{total}/batch/pending") == 0.0


def test_batch_perfcounters_read_zero_when_disabled():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        rt.run(lambda: rt.async_at(1, _remote_unit).get())
        assert rt._batcher is None
        assert perfcounters.query(rt, "/parcels{total}/batch/messages") == 0.0
        assert "/parcels{total}/batch/messages" not in perfcounters.discover(rt)


def test_tracer_records_batch_flush_events():
    with Runtime(
        n_localities=2,
        workers_per_locality=1,
        config=_config("work-stealing", batching=True),
    ) as rt:
        tracer = Tracer()
        with tracer.attach(rt):

            def main():
                futures = [rt.async_at(1, _remote_unit) for _ in range(30)]
                return sum(f.get() for f in futures)

            assert rt.run(main) == 30
        flushes = [e for e in tracer.events if e.kind == "parcel_batch_flush"]
        assert flushes
        for event in flushes:
            assert event.args["parcels"] >= 1
            assert event.args["reason"] in ("full", "bytes", "linger", "forced")
        assert sum(e.args["parcels"] for e in flushes) == rt._batcher.parcels_batched


def test_batching_config_validation():
    with pytest.raises(ConfigError):
        Config(parcel__batch_max_parcels=0)
    with pytest.raises(ConfigError):
        Config(parcel__batch_max_bytes=-1)
    with pytest.raises(ConfigError):
        Config(parcel__batch_linger_s=-1e-6)
