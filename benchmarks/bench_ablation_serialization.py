"""Ablation: parcel serialization on vs off (real wall clock).

HPX serializes arguments whenever a parcel crosses a boundary; our
runtime does the same by default and offers ``parcel.serialize=False``
as an ablation (arguments carried by reference).  This measures what
the encode/decode actually costs per round trip -- the Python analogue
of HPX's serialization-overhead studies.
"""

import numpy as np
import pytest

from repro.config import Config
from repro.runtime import Runtime, when_all


def payload_roundtrips(serialize: bool, n_messages: int, payload: np.ndarray) -> float:
    cfg = Config(**{"parcel__serialize": serialize})
    with Runtime(n_localities=2, workers_per_locality=2, config=cfg) as rt:
        def main():
            futures = [
                rt.async_at(1, np.sum, payload) for _ in range(n_messages)
            ]
            return sum(f.get() for f in when_all(futures).get())

        return rt.run(main)


@pytest.mark.parametrize("serialize", [True, False], ids=["pickle", "by-ref"])
def test_roundtrip_wall_time(benchmark, serialize):
    payload = np.arange(4096, dtype=np.float64)
    expected = float(np.sum(payload)) * 32
    total = benchmark(payload_roundtrips, serialize, 32, payload)
    assert total == pytest.approx(expected)


def test_serialization_results_identical(save_exhibit):
    """The ablation changes cost, never semantics."""
    payload = np.linspace(0, 1, 1000)
    with_pickle = payload_roundtrips(True, 8, payload)
    by_ref = payload_roundtrips(False, 8, payload)
    assert with_pickle == pytest.approx(by_ref)
    save_exhibit(
        "ablation_serialization",
        "Ablation: parcel serialization on/off produces identical results; "
        "see pytest-benchmark timings for the wall-clock cost of the "
        "pickle round trip per message.",
    )
