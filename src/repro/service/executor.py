"""Runs one job attempt, checkpointing every epoch.

The executor is where the job service meets the runtime: a job attempt
drives the distributed heat solver in *epochs* of ``epoch_steps`` time
steps, each epoch in a fresh :class:`~repro.runtime.runtime.Runtime`,
and writes a checksummed :class:`~repro.resilience.checkpoint.Checkpoint`
of the assembled field to the job's work directory after every epoch.

That file trail is what makes re-driving crash-safe: a re-claimed job
(worker SIGKILLed, lease expired) resumes from its newest *intact*
checkpoint -- corrupt epochs are skipped, not trusted -- and replays
only the remaining epochs.  Because the stencil update is pure,
deterministic NumPy and epoch boundaries depend only on the job
parameters, an interrupted-and-resumed job produces a result
bit-identical to an uninterrupted run, which the chaos suite asserts
via :func:`job_digest`.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Callable, Optional

import numpy as np

from ..errors import ValidationError
from ..resilience.checkpoint import (
    Checkpoint,
    CheckpointCorruptionError,
    CheckpointError,
    restore_checkpoint,
    save_checkpoint,
)
from ..runtime.runtime import Runtime
from ..stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference
from ..stencil.validation import analytic_heat_profile
from .jobs import Job

__all__ = ["JobRunner", "job_digest"]

#: Per-epoch hook, called after each checkpoint lands: (job_id, steps_done).
EpochHook = Callable[[str, int], None]


def job_digest(field: np.ndarray) -> str:
    """Canonical digest of a solution field (bit-identity witness)."""
    data = np.ascontiguousarray(field, dtype=np.float64)
    return hashlib.sha256(data.tobytes()).hexdigest()


class JobRunner:
    """Executes job attempts; owns the per-job checkpoint directories."""

    def __init__(
        self,
        work_dir: str | os.PathLike[str],
        *,
        epoch_steps: int = 10,
        keep_epochs: int = 2,
        after_epoch: Optional[EpochHook] = None,
    ) -> None:
        if epoch_steps < 1:
            raise ValidationError("epoch_steps must be >= 1")
        if keep_epochs < 1:
            raise ValidationError("keep_epochs must be >= 1")
        self.work_dir = os.fspath(work_dir)
        self.epoch_steps = epoch_steps
        self.keep_epochs = keep_epochs
        self.after_epoch = after_epoch
        #: Corrupt checkpoint files skipped while resuming (all jobs).
        self.corrupt_skipped = 0

    # ------------------------------------------------------------------
    # checkpoint file trail

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.work_dir, job_id)

    def _epoch_path(self, job_id: str, steps_done: int) -> str:
        return os.path.join(self.job_dir(job_id), f"epoch-{steps_done:06d}.ckpt")

    def _saved_epochs(self, job_id: str) -> list[int]:
        try:
            names = os.listdir(self.job_dir(job_id))
        except FileNotFoundError:
            return []
        epochs = []
        for name in names:
            if name.startswith("epoch-") and name.endswith(".ckpt"):
                try:
                    epochs.append(int(name[len("epoch-") : -len(".ckpt")]))
                except ValueError:
                    continue
        return sorted(epochs)

    def _checkpoint(self, job_id: str, field: np.ndarray, steps_done: int) -> None:
        directory = self.job_dir(job_id)
        os.makedirs(directory, exist_ok=True)
        ckpt = save_checkpoint(field, steps_done, epoch=steps_done)
        ckpt.write(self._epoch_path(job_id, steps_done))
        for old in self._saved_epochs(job_id)[: -self.keep_epochs]:
            try:
                os.remove(self._epoch_path(job_id, old))
            except OSError:  # pragma: no cover - best-effort prune
                pass

    def restore_latest(self, job_id: str) -> Optional[tuple[np.ndarray, int]]:
        """Newest intact ``(field, steps_done)``; None for a fresh job.

        A checkpoint left torn or bit-rotted by a crash is *skipped*
        (counted in ``corrupt_skipped``), never trusted: the attempt
        simply resumes from the next older epoch, or from scratch.
        """
        for steps_done in reversed(self._saved_epochs(job_id)):
            path = self._epoch_path(job_id, steps_done)
            try:
                ckpt = Checkpoint.read(path)
                field, saved_steps = restore_checkpoint(ckpt)
            except (CheckpointCorruptionError, CheckpointError, OSError, ValueError):
                self.corrupt_skipped += 1
                continue
            return np.asarray(field, dtype=np.float64), int(saved_steps)
        return None

    # ------------------------------------------------------------------
    # kinds

    def run(self, job: Job) -> dict[str, Any]:
        """Drive one attempt of ``job`` to completion; returns its result.

        Raises whatever the workload raises -- the service turns that
        into a retry (with backoff) or a terminal ``failed`` with cause.
        """
        if job.kind == "stencil1d":
            return self._run_stencil1d(job)
        if job.kind == "faulty":
            return self._run_faulty(job)
        raise ValidationError(f"unknown job kind {job.kind!r}")

    def _run_faulty(self, job: Job) -> dict[str, Any]:
        """Test workload: fails deterministically for the first N attempts."""
        fail_attempts = int(job.params.get("fail_attempts", 0))
        if job.attempts <= fail_attempts:
            raise RuntimeError(
                f"injected failure (attempt {job.attempts}/{fail_attempts})"
            )
        return {"digest": "ok", "steps": 0, "epochs": 0, "resumed_at": None}

    def _run_stencil1d(self, job: Job) -> dict[str, Any]:
        params = job.params
        nx = int(params.get("nx", 64))
        total_steps = int(params.get("steps", 50))
        localities = int(params.get("localities", 2))
        parts_per_locality = int(params.get("parts_per_locality", 1))
        mode = int(params.get("mode", 1))
        distributed = bool(params.get("distributed", True))
        heat = Heat1DParams()
        if total_steps < 0:
            raise ValidationError("steps must be non-negative")

        resumed = self.restore_latest(job.job_id)
        if resumed is not None:
            field, steps_done = resumed
            if field.shape != (nx,):
                raise ValidationError(
                    f"checkpoint field shape {field.shape} does not match nx={nx}"
                )
        else:
            field, steps_done = analytic_heat_profile(nx, mode=mode), 0

        epochs_run = 0
        while steps_done < total_steps:
            segment = min(self.epoch_steps, total_steps - steps_done)
            field = self._run_segment(
                field, segment, heat, localities, parts_per_locality, distributed
            )
            steps_done += segment
            epochs_run += 1
            self._checkpoint(job.job_id, field, steps_done)
            if self.after_epoch is not None:
                self.after_epoch(job.job_id, steps_done)
        return {
            "digest": job_digest(field),
            "steps": total_steps,
            "epochs": epochs_run,
            "resumed_at": None if resumed is None else int(resumed[1]),
        }

    def _run_segment(
        self,
        field: np.ndarray,
        steps: int,
        heat: Heat1DParams,
        localities: int,
        parts_per_locality: int,
        distributed: bool,
    ) -> np.ndarray:
        if not distributed:
            return heat1d_reference(field, steps, heat)
        with Runtime(
            n_localities=localities, workers_per_locality=2
        ) as runtime:
            solver = DistributedHeat1D(
                runtime, len(field), heat, partitions_per_locality=parts_per_locality
            )
            solver.initialize(field)
            return runtime.run(lambda: solver.run(steps))

    # ------------------------------------------------------------------

    def cleanup(self, job_id: str) -> None:
        """Remove a finished job's checkpoint trail (best effort)."""
        directory = self.job_dir(job_id)
        for steps_done in self._saved_epochs(job_id):
            try:
                os.remove(self._epoch_path(job_id, steps_done))
            except OSError:  # pragma: no cover
                pass
        try:
            os.rmdir(directory)
        except OSError:
            pass
