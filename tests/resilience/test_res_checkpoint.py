"""Checkpoint API tests: round-trips, corruption handling, the store.

Covers the HPX-style ``save_checkpoint``/``restore_checkpoint`` surface,
checksum verification (:class:`CheckpointCorruptionError` + fallback to
an older epoch), every LCO family's two-method checkpoint protocol, and
the virtual-time cost charged per save/restore.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import Config
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointCorruptionWarning,
    CheckpointError,
    RuntimeStateError,
)
from repro.resilience import (
    Checkpoint,
    CheckpointStore,
    restore_checkpoint,
    save_checkpoint,
)
from repro.runtime.lco import AndGate, Barrier, Channel, CountingSemaphore, Latch
from repro.runtime.runtime import Runtime


class Box:
    """Minimal object implementing the two-method checkpoint protocol."""

    def __init__(self, value):
        self.value = value

    def checkpoint_state(self):
        return {"value": self.value}

    def restore_state(self, state):
        self.value = state["value"]


# Checkpoint object ----------------------------------------------------------


def test_save_restore_round_trip_plain_values():
    ckpt = save_checkpoint([1, 2, 3], "abc", epoch=4)
    assert ckpt.epoch == 4
    assert ckpt.size_bytes == len(ckpt.payload)
    assert restore_checkpoint(ckpt) == [[1, 2, 3], "abc"]


def test_save_restore_round_trip_protocol_objects():
    box = Box(value=np.arange(5.0))
    ckpt = save_checkpoint(box)
    box.value[:] = -1.0
    restore_checkpoint(ckpt, box)
    assert np.array_equal(box.value, np.arange(5.0))


def test_restore_positional_count_mismatch_raises():
    ckpt = save_checkpoint(Box(1), Box(2))
    with pytest.raises(CheckpointError):
        restore_checkpoint(ckpt, Box(0))


def test_to_bytes_from_bytes_round_trip():
    ckpt = save_checkpoint({"k": [1.5, 2.5]}, epoch=7, virtual_time=3.25)
    again = Checkpoint.from_bytes(ckpt.to_bytes())
    assert again == ckpt
    assert restore_checkpoint(again) == [{"k": [1.5, 2.5]}]


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "epoch.ckpt"
    ckpt = save_checkpoint([complex(1, 2)], epoch=1)
    ckpt.write(path)
    assert restore_checkpoint(Checkpoint.read(path)) == [[complex(1, 2)]]


def test_corrupted_payload_fails_checksum():
    ckpt = save_checkpoint([1, 2, 3])
    bad = dataclasses.replace(ckpt, payload=ckpt.payload[:-1] + b"\x00")
    with pytest.raises(CheckpointCorruptionError):
        restore_checkpoint(bad)


def test_version_mismatch_is_checkpoint_error_not_corruption():
    ckpt = save_checkpoint([1])
    future_version = dataclasses.replace(ckpt, version=99)
    with pytest.raises(CheckpointError) as excinfo:
        restore_checkpoint(future_version)
    assert not isinstance(excinfo.value, CheckpointCorruptionError)


# CheckpointStore ------------------------------------------------------------


def test_store_restores_latest_epoch():
    store = CheckpointStore(keep=3)
    box = Box(0)
    for epoch in (0, 5, 10):
        box.value = epoch
        store.save(epoch, [box])
    box.value = -1
    assert store.restore_latest_valid([box]).epoch == 10
    assert box.value == 10


def test_store_falls_back_to_previous_epoch_on_corruption():
    store = CheckpointStore(keep=3)
    box = Box(0)
    for epoch in (0, 5, 10):
        box.value = epoch
        store.save(epoch, [box])
    newest = store.checkpoint(10)
    store._epochs[10] = dataclasses.replace(
        newest, payload=newest.payload[:-1] + b"\x00"
    )
    with pytest.warns(CheckpointCorruptionWarning):
        assert store.restore_latest_valid([box]).epoch == 5
    assert box.value == 5


def test_store_corrupt_skip_warns_counts_and_emits_event():
    """A skipped corrupt epoch is never silent: warning + counter + event."""
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        events = []
        rt.checkpoint_event_hook = lambda kind, time, args: events.append(
            (kind, args)
        )
        store = CheckpointStore(runtime=rt, keep=3)
        box = Box(0)

        def job():
            for epoch in (0, 5, 10):
                box.value = epoch
                store.save(epoch, [box])
            newest = store.checkpoint(10)
            store._epochs[10] = dataclasses.replace(
                newest, payload=newest.payload[:-1] + b"\x00"
            )
            with pytest.warns(CheckpointCorruptionWarning, match="epoch 10"):
                assert store.restore_latest_valid([box]).epoch == 5

        rt.run(job)
        assert rt.checkpoint_corrupt_skipped == 1
        assert rt.checkpoint_fallbacks == 1
        kind, args = events[0]
        assert kind == "checkpoint_corrupt_skipped"
        assert args["epoch"] == 10
        assert args["level"] == "warning"

        from repro.runtime.perfcounters import query

        assert query(rt, "/checkpoints{total}/count/corrupt-skipped") == 1.0


def test_tracer_records_corrupt_skip_event():
    from repro.runtime.trace import Tracer

    tracer = Tracer()
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        store = CheckpointStore(runtime=rt, keep=2)
        box = Box(0)

        def job():
            store.save(0, [box])
            store.save(1, [box])
            bad = store.checkpoint(1)
            store._epochs[1] = dataclasses.replace(bad, payload=b"garbage")
            with pytest.warns(CheckpointCorruptionWarning):
                store.restore_latest_valid([box])

        with tracer.attach(rt):
            rt.run(job)
    kinds = [event.kind for event in tracer.events]
    assert "checkpoint_corrupt_skipped" in kinds


def test_store_all_epochs_corrupt_raises_corruption():
    store = CheckpointStore(keep=2)
    box = Box(0)
    store.save(0, [box])
    ckpt = store.checkpoint(0)
    store._epochs[0] = dataclasses.replace(ckpt, payload=b"garbage")
    with pytest.raises(CheckpointCorruptionError), pytest.warns(
        CheckpointCorruptionWarning
    ):
        store.restore_latest_valid([box])


def test_store_empty_raises_checkpoint_error():
    with pytest.raises(CheckpointError):
        CheckpointStore().restore_latest_valid([Box(0)])


def test_store_prunes_to_keep_limit():
    store = CheckpointStore(keep=2)
    box = Box(0)
    for epoch in range(5):
        store.save(epoch, [box])
    assert store.epochs() == [3, 4]
    assert len(store) == 2


def test_store_spills_to_directory(tmp_path):
    store = CheckpointStore(keep=2, directory=tmp_path)
    store.save(3, [Box(7)])
    files = list(tmp_path.glob("*.ckpt"))
    assert len(files) == 1
    box = Box(0)
    restore_checkpoint(Checkpoint.read(files[0]), box)
    assert box.value == 7


def test_store_counts_and_costs_charge_the_runtime():
    config = Config(checkpoint__cost_base_s=0.5, checkpoint__cost_per_byte_s=0.0)
    with Runtime(n_localities=1, workers_per_locality=1, config=config) as rt:
        store = CheckpointStore(runtime=rt)
        box = Box(1)

        def job():
            store.save(0, [box])
            store.save(1, [box])
            store.restore_latest_valid([box])

        rt.run(job)
        assert rt.checkpoints_saved == 2
        assert rt.checkpoints_restored == 1
        assert rt.checkpoint_fallbacks == 0
        assert rt.checkpoint_bytes_saved > 0
        assert rt.checkpoint_save_time_s == pytest.approx(1.0)
        assert rt.checkpoint_restore_time_s == pytest.approx(0.5)
        # The charge flows into the virtual clock like any other cost.
        assert rt.makespan >= 1.5


# LCO round-trips ------------------------------------------------------------


def test_channel_checkpoint_round_trip():
    chan = Channel(name="work")
    chan.set(1)
    chan.set(2)
    ckpt = save_checkpoint(chan)
    chan.get().get()
    chan.set(99)
    restore_checkpoint(ckpt, chan)
    assert chan.get().get() == 1
    assert chan.get().get() == 2
    assert len(chan) == 0
    assert not chan.closed


def test_channel_restore_with_pending_reader_raises():
    chan = Channel()
    ckpt = save_checkpoint(chan)
    chan.get()  # parks a reader
    with pytest.raises(RuntimeStateError):
        restore_checkpoint(ckpt, chan)


def test_barrier_checkpoint_round_trip_resets_generation_state():
    barrier = Barrier(3)
    for _ in range(3):
        barrier.arrive()
    ckpt = save_checkpoint(barrier)  # generation 1, nobody arrived
    for _ in range(3):
        barrier.arrive()  # generation 2 on the doomed timeline
    restore_checkpoint(ckpt, barrier)
    assert barrier.generation == 1
    # A full round of arrivals completes the restored generation.
    futures = [barrier.arrive() for _ in range(3)]
    assert all(f.is_ready() for f in futures)
    assert barrier.generation == 2


def test_barrier_restore_with_waiting_parties_raises():
    barrier = Barrier(2)
    ckpt = save_checkpoint(barrier)
    barrier.arrive()  # mid-generation
    with pytest.raises(RuntimeStateError):
        restore_checkpoint(ckpt, barrier)


def test_latch_checkpoint_round_trip():
    latch = Latch(2)
    latch.count_down()
    ckpt = save_checkpoint(latch)
    latch.count_down()
    assert latch.is_ready()
    restore_checkpoint(ckpt, latch)
    assert latch.count == 1
    assert not latch.is_ready()
    latch.count_down()
    assert latch.wait_future().is_ready()


def test_latch_restored_at_zero_is_ready():
    latch = Latch(1)
    latch.count_down()
    ckpt = save_checkpoint(latch)
    restore_checkpoint(ckpt, latch)
    assert latch.is_ready()
    assert latch.wait_future().is_ready()


def test_semaphore_checkpoint_round_trip():
    sem = CountingSemaphore(initial=2, max_count=4)
    assert sem.try_acquire()
    ckpt = save_checkpoint(sem)  # one permit banked
    sem.release(3)
    restore_checkpoint(ckpt, sem)
    assert sem.count == 1
    sem.release(3)
    with pytest.raises(RuntimeStateError):
        sem.release()  # cap restored too


def test_and_gate_checkpoint_round_trip():
    gate = AndGate(3)
    gate.set(0, "a")
    gate.set(2, "c")
    ckpt = save_checkpoint(gate)
    gate.set(1, "b")
    assert gate.is_ready()
    restore_checkpoint(ckpt, gate)
    assert gate.remaining == 1
    gate.set(1, "b")
    assert gate.get_future().get() == ["a", "b", "c"]


def test_and_gate_restored_complete_fires_future():
    gate = AndGate(2)
    gate.set(0, 1)
    gate.set(1, 2)
    ckpt = save_checkpoint(gate)
    restore_checkpoint(ckpt, gate)
    assert gate.get_future().get() == [1, 2]
