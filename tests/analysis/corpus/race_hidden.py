"""Write-write race hidden behind an unsynchronized flag.

Two workers append an audit token to a shared channel and then update a
result cell.  Worker B politely skips its write when it sees worker A's
``primed`` flag -- but ``primed`` is a plain attribute, not an LCO, so
the "coordination" is an unsynchronized read.  On the default FIFO
schedule A always runs first, B always skips, and a race detector sees
exactly one (marked) write: the run is clean.  Any schedule that
dispatches B before A makes both workers perform marked writes of
``cell.value`` with no happens-before edge between them -- a write-write
data race the single-schedule sanitizers never get to observe.

The audit-channel puts are what makes the bug *findable*: they give the
two workers a visible (sync-object) dependence, so DPOR knows reversing
their order can matter even though B's guarded write leaves no footprint
on the reference schedule.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.explore import ExploreApp
from repro.runtime.agas.component import Component
from repro.runtime.lco import Channel
from repro.runtime.runtime import Runtime


class ResultCell(Component):
    """One shared output slot plus the buggy plain-attribute flag."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0.0
        self.primed = False  # plain attribute: reads of it are invisible

    def write_primary(self, audit: Channel) -> None:
        audit.set("primary")
        self.mark_write("value")
        self.value = 1.0
        self.primed = True

    def write_fallback(self, audit: Channel) -> None:
        audit.set("fallback")
        if not self.primed:  # unsynchronized guard -- the bug
            self.mark_write("value")
            self.value = 2.0


def _build(rt: Runtime) -> Callable[[], Any]:
    cell = ResultCell()
    audit = Channel("audit")

    def job() -> float:
        pool = rt.localities[0].pool
        fa = pool.submit(cell.write_primary, audit, description="writer-primary")
        fb = pool.submit(cell.write_fallback, audit, description="writer-fallback")
        fa.get()
        fb.get()
        audit.close()
        return cell.value

    return job


def make_app() -> ExploreApp:
    return ExploreApp(name="corpus/race_hidden", build=_build,
                      n_localities=1, workers_per_locality=1)
