"""Cross-backend bit-identity: the backend may only change *where* work
runs, never *what* it computes.

The same stencil problem, partitioned identically, must produce
bit-identical fields on the virtual-clock backend and on real OS
processes -- the multiprocess analogue of the determinism suite.
"""

from __future__ import annotations

import numpy as np

from repro.config import Config
from repro.runtime.runtime import Runtime
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile
from repro.stencil.heat1d import heat1d_reference
from repro.stencil.jacobi2d_dist import DistributedJacobi2D

_MP = Config.from_mapping({"runtime.backend": "multiprocess"})


def _heat1d(config, nx=64, steps=12):
    params = Heat1DParams()
    with Runtime(n_localities=2, workers_per_locality=1, config=config) as rt:
        solver = DistributedHeat1D(rt, nx, params, partitions_per_locality=2)
        solver.initialize(analytic_heat_profile(nx))
        return solver.run(steps)


def _jacobi2d(config, ny=18, nx=12, steps=10):
    rng = np.random.default_rng(42)
    field = rng.random((ny, nx))
    with Runtime(n_localities=2, workers_per_locality=1, config=config) as rt:
        solver = DistributedJacobi2D(rt, ny, nx, partitions_per_locality=2)
        solver.initialize(field)
        return solver.run(steps)


def test_heat1d_bit_identical_across_backends():
    virtual = _heat1d(None)
    multiprocess = _heat1d(_MP)
    assert np.array_equal(virtual, multiprocess)


def test_heat1d_multiprocess_matches_reference():
    params = Heat1DParams()
    expected = heat1d_reference(analytic_heat_profile(64), 12, params)
    assert np.array_equal(_heat1d(_MP), expected)


def test_jacobi2d_bit_identical_across_backends():
    virtual = _jacobi2d(None)
    multiprocess = _jacobi2d(_MP)
    assert np.array_equal(virtual, multiprocess)


def test_heat1d_incremental_runs_bit_identical():
    """run() twice (chain extension) matches one longer run, across
    process boundaries (the absolute-target chain_result protocol)."""
    params = Heat1DParams()
    with Runtime(n_localities=2, workers_per_locality=1, config=_MP) as rt:
        solver = DistributedHeat1D(rt, 32, params, partitions_per_locality=1)
        solver.initialize(analytic_heat_profile(32))
        solver.run(5)
        split = solver.run(5)
    expected = heat1d_reference(analytic_heat_profile(32), 10, params)
    assert np.array_equal(split, expected)


def test_single_process_multiprocess_backend_matches():
    """P=1 is the degenerate distributed topology (driver only)."""
    virtual = _heat1d(None)
    with Runtime(n_localities=1, workers_per_locality=1, config=_MP) as rt:
        solver = DistributedHeat1D(rt, 64, Heat1DParams(), partitions_per_locality=4)
        solver.initialize(analytic_heat_profile(64))
        single = solver.run(12)
    assert np.array_equal(virtual, single)
