"""Execution tracing: virtual-time task timelines and runtime events.

HPX ships APEX/OTF2 tracing to show where HPX-threads ran and when; the
paper's latency-hiding claim ("network latencies can be hidden under
compute") is exactly the kind of statement a task timeline proves.  This
module records every task's (worker, start, finish, description) on the
virtual clock plus discrete runtime *events* -- work steals, parcel
send/receive/retry/drop, scheduled locality outages -- and renders a
text Gantt chart or exports the whole timeline as Chrome trace-event
JSON for Perfetto / ``chrome://tracing``.

Usage::

    tracer = Tracer()
    with tracer.attach(pool):            # or attach to every pool of a runtime
        ...run work...
    print(tracer.render_gantt())
    tracer.export_chrome_trace("run.trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import RuntimeStateError
from . import context as ctx

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime
    from .threads.pool import ThreadPool

__all__ = ["TaskRecord", "TraceEvent", "Tracer"]


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """One executed task on the virtual timeline."""

    pool: str
    worker_id: int
    tid: int
    description: str
    ready_time: float
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Time spent runnable but not running (scheduler pressure)."""
        return max(0.0, self.start_time - self.ready_time)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One discrete runtime event on the virtual timeline.

    ``kind`` is one of ``steal | parcel_send | parcel_recv |
    parcel_retry | parcel_drop | outage`` -- plus ``race`` and
    ``deadlock``, emitted by the :mod:`repro.analysis` sanitizers when
    they are attached with a tracer, and the overload-protection kinds
    ``parcel_shed | parcel_deferred | credit_stall | credit_resume |
    breaker_open | breaker_close | breaker_probe | phi_confirm`` when a
    runtime with an :class:`~repro.resilience.overload.OverloadController`
    is attached, and ``parcel_batch_flush`` (one coalesced wire message
    departing; ``args`` carries destination, parcel count, bytes, and
    the flush reason) when ``parcel.batching`` is enabled, and
    ``checkpoint_corrupt_skipped`` (warning level: a retained
    checkpoint epoch failed verification during restore and was
    skipped; ``args`` carries the epoch and size).  ``pool``/``worker_id``
    locate the event when known (parcel events carry the locality pool
    of their sender/receiver); ``parcel_id`` correlates the send and
    receive sides of one parcel, which is what the Chrome-trace flow
    arrows are drawn from.
    """

    kind: str
    time: float
    pool: str = ""
    worker_id: int | None = None
    parcel_id: int | None = None
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects :class:`TaskRecord` and :class:`TraceEvent` entries."""

    def __init__(self) -> None:
        self.records: list[TaskRecord] = []
        self.events: list[TraceEvent] = []
        #: Real worker count per attached pool name -- the utilization
        #: denominator.  Workers that never ran a task still count.
        self.pool_workers: dict[str, int] = {}
        self._attached_pools: set[int] = set()

    # Attachment -----------------------------------------------------------------
    @contextmanager
    def attach(self, target: "ThreadPool | Runtime") -> Iterator["Tracer"]:
        """Instrument a pool (or every pool of a runtime) for the block.

        Attaching is not stackable: instrumenting a pool this tracer is
        already attached to raises :class:`RuntimeStateError` instead of
        double-wrapping it (which would duplicate every record).  If
        attachment fails partway, every patch already applied is
        restored before the error propagates.
        """
        pools = self._pools_of(target)
        runtime = target if hasattr(target, "localities") else None
        patched: list[tuple[object, str, object]] = []
        registered: list[int] = []
        try:
            for pool in pools:
                if id(pool) in self._attached_pools:
                    raise RuntimeStateError(
                        f"tracer is already attached to pool {pool.name!r}"
                    )
                self._attached_pools.add(id(pool))
                registered.append(id(pool))
                self.pool_workers[pool.name] = pool.n_workers
                self._patch_pool(pool, patched)
            if runtime is not None:
                self._patch_parcelport(runtime, patched)
                self._patch_checkpoint_hook(runtime, patched)
                self._record_outages(runtime)
            yield self
        finally:
            for obj, attr, original in reversed(patched):
                setattr(obj, attr, original)
            for pool_id in registered:
                self._attached_pools.discard(pool_id)

    def _patch_pool(self, pool: "ThreadPool", patched: list) -> None:
        original = pool._execute

        def traced_execute(task, worker, pool=pool, original=original):
            original(task, worker)
            self.records.append(
                TaskRecord(
                    pool=pool.name,
                    worker_id=worker.worker_id,
                    tid=task.tid,
                    description=task.description,
                    ready_time=task.ready_time,
                    start_time=task.start_time,
                    finish_time=task.finish_time,
                )
            )

        pool._execute = traced_execute  # type: ignore[method-assign]
        patched.append((pool, "_execute", original))

        scheduler = pool.scheduler
        if hasattr(scheduler, "steals"):
            orig_acquire = scheduler.acquire

            def traced_acquire(
                worker_id, scheduler=scheduler, orig=orig_acquire, pool=pool
            ):
                before = scheduler.steals
                task = orig(worker_id)
                if task is not None and scheduler.steals > before:
                    self.events.append(
                        TraceEvent(
                            kind="steal",
                            time=max(
                                task.ready_time,
                                pool.workers[worker_id].available_at,
                            ),
                            pool=pool.name,
                            worker_id=worker_id,
                            args={"tid": task.tid},
                        )
                    )
                return task

            scheduler.acquire = traced_acquire  # type: ignore[method-assign]
            patched.append((scheduler, "acquire", orig_acquire))

    def _patch_parcelport(self, runtime: "Runtime", patched: list) -> None:
        port = runtime.parcelport

        def sender_frame() -> tuple[str, int | None]:
            frame = ctx.current_or_none()
            if frame is not None and frame.pool is not None:
                return frame.pool.name, frame.worker_id
            return "", None

        for attr, kind in (("send", "parcel_send"), ("retransmit", "parcel_retry")):
            original = getattr(port, attr)

            def traced_send(parcel, original=original, kind=kind):
                pool_name, worker_id = sender_frame()
                self.events.append(
                    TraceEvent(
                        kind=kind,
                        time=parcel.send_time,
                        pool=pool_name,
                        worker_id=worker_id,
                        parcel_id=parcel.parcel_id,
                        args={"attempt": parcel.attempts + 1},
                    )
                )
                return original(parcel)

            setattr(port, attr, traced_send)
            patched.append((port, attr, original))

        orig_router = port._router
        if orig_router is not None:

            def traced_router(parcel, arrival_time, original=orig_router):
                self.events.append(
                    TraceEvent(
                        kind="parcel_recv",
                        time=arrival_time,
                        pool="",
                        parcel_id=parcel.parcel_id,
                    )
                )
                return original(parcel, arrival_time)

            port._router = traced_router
            patched.append((port, "_router", orig_router))

        orig_loss = port._handle_loss

        def traced_loss(parcel, reason, original=orig_loss):
            self.events.append(
                TraceEvent(
                    kind="parcel_drop",
                    time=parcel.send_time,
                    parcel_id=parcel.parcel_id,
                    args={"reason": reason, "attempt": parcel.attempts},
                )
            )
            return original(parcel, reason)

        port._handle_loss = traced_loss  # type: ignore[method-assign]
        patched.append((port, "_handle_loss", orig_loss))

        controller = getattr(port, "overload", None)
        if controller is not None:
            orig_hook = controller.event_hook

            def overload_hook(kind, time, parcel_id, args, original=orig_hook):
                self.events.append(
                    TraceEvent(kind=kind, time=time, parcel_id=parcel_id, args=args)
                )
                if original is not None:
                    original(kind, time, parcel_id, args)

            controller.event_hook = overload_hook
            patched.append((controller, "event_hook", orig_hook))

        batcher = getattr(port, "batcher", None)
        if batcher is not None:
            orig_batch_hook = batcher.event_hook

            def batch_hook(kind, time, parcel_id, args, original=orig_batch_hook):
                self.events.append(
                    TraceEvent(kind=kind, time=time, parcel_id=parcel_id, args=args)
                )
                if original is not None:
                    original(kind, time, parcel_id, args)

            batcher.event_hook = batch_hook
            patched.append((batcher, "event_hook", orig_batch_hook))

    def _patch_checkpoint_hook(self, runtime: "Runtime", patched: list) -> None:
        orig_ckpt_hook = runtime.checkpoint_event_hook

        def checkpoint_hook(kind, time, args, original=orig_ckpt_hook):
            self.events.append(TraceEvent(kind=kind, time=time, args=args))
            if original is not None:
                original(kind, time, args)

        runtime.checkpoint_event_hook = checkpoint_hook
        patched.append((runtime, "checkpoint_event_hook", orig_ckpt_hook))

    def _record_outages(self, runtime: "Runtime") -> None:
        injector = getattr(runtime, "fault_injector", None)
        if injector is None:
            return
        for failure in injector.locality_failures:
            self.events.append(
                TraceEvent(
                    kind="outage",
                    time=failure.at,
                    pool=f"locality-{failure.locality_id}",
                    args={"until": failure.until},
                )
            )

    @staticmethod
    def _pools_of(target) -> list["ThreadPool"]:
        if hasattr(target, "localities"):
            return [loc.pool for loc in target.localities]
        if hasattr(target, "_execute"):
            return [target]
        raise RuntimeStateError(f"cannot attach tracer to {type(target).__name__}")

    # Analysis --------------------------------------------------------------------
    def by_worker(self) -> dict[tuple[str, int], list[TaskRecord]]:
        lanes: dict[tuple[str, int], list[TaskRecord]] = {}
        for record in self.records:
            lanes.setdefault((record.pool, record.worker_id), []).append(record)
        for lane in lanes.values():
            lane.sort(key=lambda r: r.start_time)
        return lanes

    def events_of(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def parcel_latencies(self) -> dict[int, float]:
        """First-send to first-receive virtual latency per parcel id."""
        sends: dict[int, float] = {}
        for event in self.events:
            if event.kind == "parcel_send" and event.parcel_id not in sends:
                sends[event.parcel_id] = event.time
        latencies: dict[int, float] = {}
        for event in self.events:
            if (
                event.kind == "parcel_recv"
                and event.parcel_id in sends
                and event.parcel_id not in latencies
            ):
                latencies[event.parcel_id] = max(
                    0.0, event.time - sends[event.parcel_id]
                )
        return latencies

    @property
    def makespan(self) -> float:
        return max((r.finish_time for r in self.records), default=0.0)

    def _worker_count(self, pool: str | None, records: list[TaskRecord]) -> int:
        """Utilization denominator: the *real* worker count of every pool
        in view, falling back to observed lanes for pools attached by an
        older tracer state (or never attached at all)."""
        pool_names = {r.pool for r in records}
        if pool is not None:
            pool_names &= {pool}
        total = 0
        for name in pool_names:
            observed = len({r.worker_id for r in records if r.pool == name})
            total += max(self.pool_workers.get(name, 0), observed)
        return total

    def busy_fraction(self, pool: str | None = None) -> float:
        """Fraction of (workers x makespan) spent executing tasks.

        The denominator uses each pool's *real* worker count (captured
        at attach time), so workers that executed nothing still count as
        idle capacity -- a 1-busy-of-8-workers pool reports 12.5%, not
        100%.
        """
        records = [r for r in self.records if pool is None or r.pool == pool]
        if not records:
            return 0.0
        span = max(r.finish_time for r in records)
        if span == 0.0:
            return 0.0
        n_workers = self._worker_count(pool, records)
        if n_workers == 0:
            return 0.0
        busy = sum(r.duration for r in records)
        return busy / (span * n_workers)

    def idle_rate(self, pool: str | None = None) -> float:
        """Complement of :meth:`busy_fraction` (HPX's idle-rate view)."""
        records = [r for r in self.records if pool is None or r.pool == pool]
        if not records:
            return 0.0
        return max(0.0, 1.0 - self.busy_fraction(pool))

    def total_queue_delay(self) -> float:
        return sum(r.queue_delay for r in self.records)

    # Export ----------------------------------------------------------------------
    def export_chrome_trace(self, path: str | None = None) -> str:
        """Chrome trace-event JSON (spans, instants, parcel flow arrows).

        Returns the JSON text; with ``path`` it is also written to disk.
        Load the file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing`` -- see ``docs/observability.md``.
        """
        from ..observability.chrome_trace import export_chrome_trace

        return export_chrome_trace(self, path)

    # Rendering -------------------------------------------------------------------
    def render_gantt(
        self, width: int = 72, min_duration: float = 0.0, exclude: str | None = None
    ) -> str:
        """Text Gantt chart: one lane per worker, ``#`` marks busy time.

        ``@`` marks spans stacked on one worker -- this is *suspension*,
        not double-booking: a task that blocked on a future stays on its
        lane while the helper tasks it ran nest inside its span.

        The busy/idle summary line divides by the pools' real worker
        counts, so lanes that never ran a task still count as idle
        capacity.

        ``min_duration`` filters out zero-cost bookkeeping tasks;
        ``exclude`` drops tasks whose description contains the substring
        (e.g. ``"hpx_main"`` to hide the blocking driver).
        """
        records = [
            r
            for r in self.records
            if r.duration >= min_duration
            and (exclude is None or exclude not in r.description)
        ]
        if not records:
            return "(no traced tasks)"
        span = max(r.finish_time for r in records)
        if span <= 0.0:
            return "(all traced tasks at t=0)"
        scale = (width - 1) / span
        n_workers = self._worker_count(None, self.records)
        lines = [
            f"virtual time 0 .. {span:.4g}s  ({width} cols)  "
            f"busy {self.busy_fraction():.1%} / idle {self.idle_rate():.1%} "
            f"of {n_workers} workers"
        ]
        lanes: dict[tuple[str, int], list[str]] = {}
        for record in sorted(records, key=lambda r: (r.pool, r.worker_id)):
            key = (record.pool, record.worker_id)
            lane = lanes.setdefault(key, [" "] * width)
            lo = int(record.start_time * scale)
            hi = max(lo + 1, int(record.finish_time * scale))
            for i in range(lo, min(hi, width)):
                lane[i] = "#" if lane[i] == " " else "@"  # '@' = suspended span
        for (pool, worker_id), lane in sorted(lanes.items()):
            lines.append(f"{pool}/w{worker_id:<2} |{''.join(lane)}|")
        return "\n".join(lines)
