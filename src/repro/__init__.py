"""repro -- reproduction of "Performance Evaluation of ParalleX Execution
model on Arm-based Platforms" (CLUSTER 2020).

Top-level façade: the runtime API, the machine models, the SIMD layer,
the stencil applications and the performance models.  See README.md for
a tour and DESIGN.md for the system inventory.

Subpackage map::

    repro.runtime     the ParalleX/HPX core (futures, LCOs, AGAS, parcels)
    repro.hardware    calibrated machine models + cache simulator
    repro.simd        NSIMD-like packs and the Virtual Node Scheme
    repro.stencil     the paper's 1D/2D stencil applications
    repro.containers  distributed data structures (partitioned_vector)
    repro.resilience  fault injection + HPX-style replay/replicate
    repro.perf        roofline / STREAM / counters / cost models
    repro.exhibits    one function per paper table & figure
    repro.sim         discrete-event primitives
"""

from . import exhibits, hardware, perf, reporting, sim, simd
from .config import Config, default_config
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Config",
    "default_config",
    "ReproError",
    "exhibits",
    "hardware",
    "perf",
    "reporting",
    "sim",
    "simd",
    "__version__",
]
