"""Monotonic virtual clock used by the discrete-event engine."""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically non-decreasing clock measured in virtual seconds.

    The clock only moves when the simulation engine (or a resource model)
    advances it; wall-clock time never leaks in, which keeps every run
    bit-for-bit reproducible.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t``.

        Raises :class:`SimulationError` if ``t`` lies in the past -- a DES
        engine must never process events out of order.
        """
        if t < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now!r}, requested={t!r}"
            )
        self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds (``dt >= 0``)."""
        if dt < 0.0:
            raise SimulationError(f"cannot advance clock by negative delta {dt!r}")
        self._now += float(dt)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset to ``start`` (used between benchmark repetitions)."""
        if start < 0.0:
            raise SimulationError(f"clock cannot reset to negative time {start!r}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover
        return f"VirtualClock(now={self._now:.9f})"
