"""The four calibrated machine models used throughout the reproduction.

Every number here is either (a) a Table I datasheet value, (b) a Fig 2
STREAM read-off / published STREAM result for the same silicon, or (c) a
phenomenological constant the paper itself motivates (Kunpeng's weak
network, per-step AMT overhead, cache-line blocking).  Nothing else in the
library hard-codes machine behaviour.

Sources per machine
-------------------
* **Intel Xeon E5-2660 v3** (Haswell, JUAWEI cluster): 2 sockets x 10
  cores, AVX2, 16 DP FLOP/cycle, 832 GFLOP/s peak.  STREAM COPY for
  dual-socket Haswell with DDR4-2133 is ~110-120 GB/s, saturating around
  5-6 cores per socket.
* **HiSilicon Kunpeng 916** (Hi1616, JUAWEI cluster): 64 cores per node,
  NEON (single pipe), 4 DP FLOP/cycle, 614 GFLOP/s.  Four NUMA domains of
  16 cores; per-domain bandwidth scales almost linearly to 16 cores (this
  is what produces the paper's 40- and 56-core dips).  The node cannot
  drive its InfiniBand adapter (Sec. VII-A) -- modelled as a low injection
  efficiency plus per-node congestion.
* **Marvell ThunderX2** (Sage cluster): Table I lists 32 cores and
  1228 GFLOP/s; 1228.8 = 2.4 GHz x 8 FLOP/cycle x *64* cores, so the node
  is the usual dual-socket 32-core configuration and we encode 2 x 32.
* **Fujitsu A64FX** (FX1000): 48 compute + 4 helper cores, 512-bit SVE,
  3379 GFLOP/s, 4 CMGs with HBM2.  GCC STREAM (the paper's footnote rules
  out Fujitsu-compiler tricks) reaches ~660 GB/s.  256 B cache lines give
  the "implicit cache blocking" the paper measures (~49 % above the
  3-transfers roofline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopologyError
from .caches import CacheHierarchy, CacheLevel
from .interconnect import Interconnect
from .memory import DomainBandwidthModel, MemorySystem
from .spec import ProcessorSpec
from .topology import Machine

__all__ = [
    "Calibration",
    "MachineModel",
    "machine",
    "machine_names",
    "XEON_E5_2660V3",
    "KUNPENG_916",
    "THUNDERX2",
    "A64FX",
]

XEON_E5_2660V3 = "xeon-e5-2660v3"
KUNPENG_916 = "kunpeng916"
THUNDERX2 = "thunderx2"
A64FX = "a64fx"


@dataclass(frozen=True)
class Calibration:
    """Per-machine phenomenological constants (all paper-motivated)."""

    #: Fraction of roofline the tuned 2D kernel reaches at saturation.
    stencil2d_efficiency: float
    #: Fraction of STREAM bandwidth the distributed 1D app converts into
    #: lattice updates (A64FX is low: fine grain sizes expose AMT
    #: contention, as Sec. VII-B discusses).
    stencil1d_efficiency: float
    #: Per-time-step AMT overhead (scheduling + synchronisation), seconds.
    #: Sets the deviation from perfect strong scaling (7.36x / 7.2x at 8
    #: nodes instead of 8x).
    per_step_overhead_s: float
    #: Can the parcelport progress communication under compute?  True for
    #: every platform except Kunpeng 916, whose NIC path stalls the cores.
    network_overlap: bool
    #: Large-cache-line prefetch gives implicit cache blocking (2 memory
    #: transfers per LUP instead of 3).  Keyed by dtype because ThunderX2
    #: shows it for floats from the start but for doubles only at >= 16
    #: cores (the paper's unexplained "interesting switch").
    blocking_floats: bool = False
    blocking_doubles: bool = False
    #: Core count at which double-precision blocking switches on (TX2).
    blocking_doubles_from_cores: int = 0
    #: Single-core 2D-stencil rates in GLUP/s, keyed by (dtype, mode) with
    #: dtype in {"float32", "float64"} and mode in {"auto", "simd"}.
    #: Calibrated so the relative explicit-vectorization gains match
    #: Sec. VII-B: Xeon +50 %/+10 %, Kunpeng up to +80 %, TX2 +50-60 %/+40 %,
    #: A64FX +5-15 %.
    single_core_glups: dict[tuple[str, str], float] = field(default_factory=dict)


@dataclass(frozen=True)
class MachineModel:
    """Everything the performance models need to know about one node."""

    name: str
    spec: ProcessorSpec
    topology: Machine
    caches: CacheHierarchy
    memory: MemorySystem
    interconnect: Interconnect
    calibration: Calibration

    @property
    def clock_hz(self) -> float:
        return self.spec.clock_ghz * 1e9


def _xeon() -> MachineModel:
    spec = ProcessorSpec(
        name="Intel Xeon E5-2660 v3",
        vendor="Intel",
        clock_ghz=2.6,
        cores_per_processor=10,
        processors_per_node=2,
        threads_per_core=2,
        vector_pipeline="Double AVX2 Pipeline",
        dp_flops_per_cycle=16,
        isa="avx2",
        vector_bits=256,
        simd_pipelines=2,
        cache_line_bytes=64,
        numa_domains=2,
    )
    topo = Machine(spec)
    caches = CacheHierarchy(
        (
            CacheLevel("L1d", 32 * 1024, 64, shared_by_cores=1, latency_cycles=4),
            CacheLevel("L2", 256 * 1024, 64, shared_by_cores=1, latency_cycles=12),
            CacheLevel("L3", 25 * 1024 * 1024, 64, shared_by_cores=10, latency_cycles=40),
        )
    )
    memory = MemorySystem(
        topo,
        # 4ch DDR4-2133 per socket: ~59 GB/s STREAM COPY, ~11 GB/s per core.
        DomainBandwidthModel(peak_gbs=59.0, per_core_gbs=11.0),
    )
    net = Interconnect(
        name="InfiniBand EDR (JUAWEI)",
        latency_s=2.0e-6,
        bandwidth_gbs=12.5,
        injection_efficiency=0.9,
    )
    cal = Calibration(
        stencil2d_efficiency=0.92,
        stencil1d_efficiency=0.87,
        per_step_overhead_s=3.5e-3,
        network_overlap=True,
        blocking_floats=False,
        blocking_doubles=False,
        # The simd rates exceed the single-core bandwidth cap (10.1 GB/s
        # x AI), so the *observed* single-core gains come out at the
        # paper's ~+50 % (float) / ~+10 % (double).
        single_core_glups={
            ("float32", "auto"): 0.56,
            ("float32", "simd"): 0.93,
            ("float64", "auto"): 0.38,
            ("float64", "simd"): 0.46,
        },
    )
    return MachineModel(XEON_E5_2660V3, spec, topo, caches, memory, net, cal)


def _kunpeng() -> MachineModel:
    spec = ProcessorSpec(
        name="HiSilicon Kunpeng 916",
        vendor="HiSilicon/Huawei",
        clock_ghz=2.4,
        cores_per_processor=64,
        processors_per_node=1,
        threads_per_core=1,
        vector_pipeline="Single NEON Pipeline",
        dp_flops_per_cycle=4,
        isa="neon",
        vector_bits=128,
        simd_pipelines=1,
        cache_line_bytes=64,
        numa_domains=4,
    )
    topo = Machine(spec)
    caches = CacheHierarchy(
        (
            CacheLevel("L1d", 32 * 1024, 64, shared_by_cores=1, latency_cycles=4),
            CacheLevel("L2", 256 * 1024, 64, shared_by_cores=1, latency_cycles=11),
            CacheLevel("L3", 16 * 1024 * 1024, 64, shared_by_cores=16, latency_cycles=45),
        )
    )
    memory = MemorySystem(
        topo,
        # Per 16-core domain ~25.6 GB/s; almost-linear growth to 16 cores
        # (per_core = peak/16).  This linearity is what makes a partially
        # populated domain the critical path (Fig 5 dips at 40/56 cores).
        DomainBandwidthModel(peak_gbs=25.6, per_core_gbs=1.6),
    )
    net = Interconnect(
        name="InfiniBand EDR (JUAWEI, Hi1616 injection-limited)",
        latency_s=1.0e-3,  # effective; the NIC path stalls (Sec. VII-A)
        bandwidth_gbs=12.5,
        injection_efficiency=0.08,
        congestion_per_node_s=5.0e-3,
    )
    cal = Calibration(
        stencil2d_efficiency=0.90,
        stencil1d_efficiency=0.85,
        per_step_overhead_s=3.0e-3,
        network_overlap=False,  # cannot hide latency (Sec. VII-A)
        blocking_floats=False,
        blocking_doubles=False,
        single_core_glups={
            ("float32", "auto"): 0.072,
            ("float32", "simd"): 0.130,  # up to +80 %
            ("float64", "auto"): 0.045,
            ("float64", "simd"): 0.066,
        },
    )
    return MachineModel(KUNPENG_916, spec, topo, caches, memory, net, cal)


def _thunderx2() -> MachineModel:
    spec = ProcessorSpec(
        name="Marvell ThunderX2",
        vendor="Marvell",
        clock_ghz=2.4,
        cores_per_processor=32,
        processors_per_node=2,  # 1228.8 GFLOP/s = 2.4 x 8 x 64 cores
        threads_per_core=4,
        vector_pipeline="Double NEON Pipeline",
        dp_flops_per_cycle=8,
        isa="neon",
        vector_bits=128,
        simd_pipelines=2,
        cache_line_bytes=64,
        numa_domains=2,
        notes="Table I prints 1 processor/node but its 1228 GFLOP/s peak "
        "requires the dual-socket Sage configuration; we encode 2 x 32.",
    )
    topo = Machine(spec)
    caches = CacheHierarchy(
        (
            CacheLevel("L1d", 32 * 1024, 64, shared_by_cores=1, latency_cycles=4),
            CacheLevel("L2", 256 * 1024, 64, shared_by_cores=1, latency_cycles=9),
            CacheLevel("L3", 32 * 1024 * 1024, 64, shared_by_cores=32, latency_cycles=40),
        )
    )
    memory = MemorySystem(
        topo,
        # 8ch DDR4-2666 per socket: ~118 GB/s, ~9 GB/s per core.
        DomainBandwidthModel(peak_gbs=118.0, per_core_gbs=9.0),
    )
    net = Interconnect(
        name="InfiniBand EDR (Sage)",
        latency_s=2.0e-6,
        bandwidth_gbs=12.5,
        injection_efficiency=0.9,
    )
    cal = Calibration(
        stencil2d_efficiency=0.92,
        stencil1d_efficiency=0.80,
        per_step_overhead_s=3.0e-3,
        network_overlap=True,
        # Aggressive next-line prefetchers give implicit blocking; doubles
        # only switch at >= 16 cores (Sec. VII-B, "interesting switch").
        blocking_floats=True,
        blocking_doubles=True,
        blocking_doubles_from_cores=16,
        # The simd double rate exceeds the single-core bandwidth cap
        # (8.3 GB/s x AI), so observed gains land in the paper's bands:
        # +50-60 % floats, ~+40 % doubles.  The auto double rate matches
        # Table VI's cycle budget (~6 instr + ~2.5 backend-stall
        # cycles/LUP at 2.4 GHz ~= 0.25 GLUP/s).
        single_core_glups={
            ("float32", "auto"): 0.68,
            ("float32", "simd"): 1.10,
            ("float64", "auto"): 0.25,
            ("float64", "simd"): 0.40,
        },
    )
    return MachineModel(THUNDERX2, spec, topo, caches, memory, net, cal)


def _a64fx() -> MachineModel:
    spec = ProcessorSpec(
        name="Fujitsu (FX1000) A64FX",
        vendor="Fujitsu",
        clock_ghz=2.2,
        cores_per_processor=48,
        processors_per_node=1,
        threads_per_core=1,
        vector_pipeline="Double SVE 512-bit",
        dp_flops_per_cycle=32,
        isa="sve",
        vector_bits=512,
        simd_pipelines=2,
        cache_line_bytes=256,
        numa_domains=4,  # CMGs
        helper_cores=4,
    )
    topo = Machine(spec)
    caches = CacheHierarchy(
        (
            CacheLevel("L1d", 64 * 1024, 256, shared_by_cores=1, latency_cycles=5),
            CacheLevel("L2", 8 * 1024 * 1024, 256, shared_by_cores=12, latency_cycles=37),
        )
    )
    memory = MemorySystem(
        topo,
        # HBM2 per CMG: ~165 GB/s with GCC STREAM (~660 GB/s node, the
        # paper's footnote 2 configuration), ~22 GB/s per core.
        DomainBandwidthModel(peak_gbs=165.0, per_core_gbs=22.0),
    )
    net = Interconnect(
        name="TofuD (FX1000)",
        latency_s=1.5e-6,
        bandwidth_gbs=6.8,
        injection_efficiency=0.9,
    )
    cal = Calibration(
        stencil2d_efficiency=0.75,
        # Only ~24 % of STREAM reaches the 1D app: fine grains hit AMT
        # contention overheads (Sec. VII-B discusses exactly this).
        stencil1d_efficiency=0.24,
        per_step_overhead_s=3.0e-3,
        network_overlap=True,
        # 256 B lines: both precisions behave cache-blocked (Fig 6/7).
        blocking_floats=True,
        blocking_doubles=True,
        single_core_glups={
            ("float32", "auto"): 1.55,
            ("float32", "simd"): 1.70,  # only +10 % (Sec. VII-B: 5-15 %)
            ("float64", "auto"): 0.78,
            ("float64", "simd"): 0.86,
        },
    )
    return MachineModel(A64FX, spec, topo, caches, memory, net, cal)


_BUILDERS = {
    XEON_E5_2660V3: _xeon,
    KUNPENG_916: _kunpeng,
    THUNDERX2: _thunderx2,
    A64FX: _a64fx,
}

_CACHE: dict[str, MachineModel] = {}


def machine_names() -> tuple[str, ...]:
    """Registered machine model names, paper order."""
    return (XEON_E5_2660V3, KUNPENG_916, THUNDERX2, A64FX)


def machine(name: str) -> MachineModel:
    """Look up a calibrated machine model by registry name."""
    if name not in _BUILDERS:
        raise TopologyError(
            f"unknown machine {name!r}; available: {', '.join(machine_names())}"
        )
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]
