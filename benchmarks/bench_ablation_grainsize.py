"""Ablation: task grain size vs AMT overhead.

"Like every AMT model, HPX is known to have contention overheads when
the grain size is too small" (Sec. VII-B).  This ablation fixes the
total work and sweeps the number of tasks it is cut into: each task
carries a fixed scheduling overhead, so efficiency collapses below a
machine-dependent grain -- the effect behind A64FX's modest 1D rate.
"""

import pytest

from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool
from repro.reporting import Series, format_figure

TOTAL_WORK = 64.0  # virtual seconds of useful compute
PER_TASK_OVERHEAD = 2.0e-3  # virtual seconds of scheduling overhead
N_WORKERS = 8


def makespan_for_grain(n_tasks: int) -> float:
    pool = ThreadPool(N_WORKERS)
    work = TOTAL_WORK / n_tasks

    def task():
        ctx.add_cost(PER_TASK_OVERHEAD + work)

    for _ in range(n_tasks):
        pool.submit(task)
    return pool.run_all()


GRAINS = [8, 32, 128, 512, 2048, 8192]


def test_grain_size_sweep(benchmark, save_exhibit):
    times = benchmark.pedantic(
        lambda: {n: makespan_for_grain(n) for n in GRAINS}, rounds=1, iterations=1
    )
    ideal = TOTAL_WORK / N_WORKERS
    series = Series("makespan", [(n, times[n]) for n in GRAINS])
    efficiency = Series("efficiency", [(n, ideal / times[n]) for n in GRAINS])
    save_exhibit(
        "ablation_grainsize",
        format_figure(
            f"Ablation: grain size sweep ({TOTAL_WORK:.0f}s of work, "
            f"{N_WORKERS} workers, {PER_TASK_OVERHEAD * 1e3:.0f} ms/task overhead)",
            [series, efficiency],
            xlabel="tasks",
            y_format="{:.3f}",
        ),
    )
    # Coarse grains waste workers; the sweet spot beats both extremes.
    assert times[8] == pytest.approx(ideal, rel=0.01)  # 8 tasks / 8 workers: perfect
    # Efficiency decays monotonically once overhead dominates.
    assert times[512] < times[8192]
    # At 8192 tasks overhead is 8192 x 2 ms / 8 = 2.05s extra.
    assert times[8192] == pytest.approx(
        ideal + 8192 * PER_TASK_OVERHEAD / N_WORKERS, rel=0.01
    )


def test_efficiency_floor_at_tiny_grains():
    """Overhead-dominated regime: efficiency ~ work/(work+overhead)."""
    ideal = TOTAL_WORK / N_WORKERS
    t = makespan_for_grain(32768)
    efficiency = ideal / t
    expected = TOTAL_WORK / (TOTAL_WORK + 32768 * PER_TASK_OVERHEAD)
    assert efficiency == pytest.approx(expected, rel=0.02)
