"""Ablation: graceful degradation under parcel-ingress overload.

The overload-protection claim quantified: when a locality is offered
parcels faster than it can drain them, the admission controller keeps
the backlog *bounded* -- LOW-priority storm traffic is deferred and
shed at the ingress edge while the NORMAL-priority application traffic
rides credit-based flow control -- and the application's answer stays
bit-identical to an unloaded run.  This harness sweeps the
ingress-to-drain ratio and records the target locality's peak queue
depth with protection on and off.  Without protection the backlog
grows linearly with the offered load; with protection it plateaus, and
the difference is absorbed by the shed/defer counters instead of the
queue.
"""

import numpy as np

from repro.config import Config
from repro.reporting import Series, format_figure
from repro.runtime import context as ctx
from repro.runtime.runtime import Runtime
from repro.runtime.threads.hpx_thread import ThreadPriority
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX, STEPS = 64, 30
U0 = np.sin(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))

#: Offered-load multipliers: 1x is at drain capacity, 10x is the
#: ISSUE-level "10x ingress storm" scenario.
FACTORS = (1.0, 4.0, 10.0)

# Storm shape (mirrors ``repro run --overload``): each wave offers
# ``4 * factor`` sink tasks against a drain capacity of 4 per wave, so
# the factor is literally the ingress-to-drain ratio.
_WAVES = 20
_SINK_COST_S = 1e-3
_WAVE_DT_S = 2e-3


def _sink(cost: float) -> None:
    """Storm payload: pure virtual compute at the target locality."""
    ctx.add_cost(cost)


def _launch_storm(rt: Runtime, factor: float) -> dict:
    """Chain LOW-priority parcel waves at the last locality."""
    target = rt.n_localities - 1
    pool0 = rt.localities[0].pool
    per_wave = max(1, int(4 * factor))

    def wave(index: int) -> None:
        for _ in range(per_wave):
            rt.apply_at(target, _sink, _SINK_COST_S, priority=ThreadPriority.LOW)
        if index + 1 < _WAVES:
            pool0.submit(
                wave,
                index + 1,
                ready_time=pool0.now + _WAVE_DT_S,
                description=f"storm-wave#{index + 1}",
            )

    pool0.submit(wave, 0, description="storm-wave#0")
    return {"submitted": per_wave * _WAVES, "target_pool": rt.localities[target].pool}


def _storm_run(factor: float, protected: bool) -> dict:
    config = Config(overload__enabled=True) if protected else None
    with Runtime(n_localities=2, workers_per_locality=2, config=config) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams())
        solver.initialize(U0)
        storm = _launch_storm(rt, factor)
        solution = rt.run(lambda: solver.run(STEPS))
        controller = getattr(rt, "_overload", None)
        return {
            "solution": solution,
            "makespan": rt.makespan,
            "peak_depth": storm["target_pool"].peak_pending,
            "submitted": storm["submitted"],
            "shed": controller.parcels_shed if controller is not None else 0,
            "deferred": controller.parcels_deferred if controller is not None else 0,
        }


def overload_sweep() -> dict[str, list[dict]]:
    reference = heat1d_reference(U0, STEPS, Heat1DParams())
    runs: dict[str, list[dict]] = {"protected": [], "unprotected": []}
    for factor in FACTORS:
        for mode, protected in (("protected", True), ("unprotected", False)):
            run = _storm_run(factor, protected)
            # Overload never costs bits, only queue depth or sheds.
            assert np.array_equal(run["solution"], reference)
            runs[mode].append(run)
    return runs


def test_overload_bounds_queue_depth(benchmark, save_exhibit):
    data = benchmark(overload_sweep)
    protected = Series(
        "protected",
        [(f, run["peak_depth"]) for f, run in zip(FACTORS, data["protected"])],
    )
    unprotected = Series(
        "unprotected",
        [(f, run["peak_depth"]) for f, run in zip(FACTORS, data["unprotected"])],
    )
    text = format_figure(
        "Ablation: heat1d peak target-queue depth vs storm ingress factor "
        "(solutions bit-identical throughout)",
        [protected, unprotected],
        xlabel="ingress/drain ratio",
        y_format="{:.0f}",
    )
    save_exhibit("ablation_overload", text)
    prot_10x = data["protected"][-1]
    unprot_10x = data["unprotected"][-1]
    # Graceful degradation: at 10x the protected backlog is a fraction
    # of the unprotected one, and the missing parcels are accounted for
    # by the shed/defer counters rather than silently queued.
    assert prot_10x["peak_depth"] < unprot_10x["peak_depth"]
    assert prot_10x["shed"] + prot_10x["deferred"] > 0
    # Protection plateaus: scaling 4x -> 10x offered load must not scale
    # the protected backlog proportionally (the admission edge absorbs it).
    prot_4x = data["protected"][1]
    assert prot_10x["peak_depth"] <= 2 * max(1, prot_4x["peak_depth"])


def test_overload_overhead_is_bounded_when_healthy():
    """At drain capacity (1x) protection may not cost 2x in makespan."""
    protected = _storm_run(1.0, protected=True)
    unprotected = _storm_run(1.0, protected=False)
    assert protected["makespan"] <= 2.0 * unprotected["makespan"]
