"""Unit tests for the STREAM benchmark (model and host)."""

import pytest

from repro.errors import ValidationError
from repro.hardware import machine
from repro.perf import stream_host, stream_model
from repro.perf.stream import PAPER_ARRAY_ELEMENTS, STREAM_KERNELS


def test_model_full_node_values():
    """Fig 2 plateau levels from the calibrated memory models."""
    assert stream_model(machine("xeon-e5-2660v3"), 20).bandwidth_gbs == pytest.approx(118.0)
    assert stream_model(machine("kunpeng916"), 64).bandwidth_gbs == pytest.approx(102.4)
    assert stream_model(machine("thunderx2"), 64).bandwidth_gbs == pytest.approx(236.0)
    assert stream_model(machine("a64fx"), 48).bandwidth_gbs == pytest.approx(660.0)


def test_model_curve_monotone_nondecreasing(any_machine):
    values = [
        stream_model(any_machine, c).bandwidth_gbs
        for c in range(1, any_machine.spec.cores_per_node + 1)
    ]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_model_single_core(any_machine):
    one = stream_model(any_machine, 1).bandwidth_gbs
    assert one == pytest.approx(any_machine.memory.domain_model.per_core_gbs)


def test_model_saturates_before_full_node():
    """Each NUMA domain saturates with fewer cores than it has (the
    classic STREAM shape) on every machine except Kunpeng, whose domains
    are linear to the last core."""
    for name in ("xeon-e5-2660v3", "thunderx2", "a64fx"):
        m = machine(name)
        domain_cores = m.spec.cores_per_domain
        half = stream_model(m, domain_cores // 2).bandwidth_gbs
        full = stream_model(m, domain_cores).bandwidth_gbs
        assert full < 2 * half  # sub-linear: saturation before full domain


def test_model_default_array_size_is_papers():
    assert stream_model(machine("a64fx"), 1).array_elements == PAPER_ARRAY_ELEMENTS


def test_model_validation():
    with pytest.raises(ValidationError):
        stream_model(machine("a64fx"), 1, kernel="wipe")
    with pytest.raises(ValidationError):
        stream_model(machine("a64fx"), 1, array_elements=0)


def test_host_stream_runs_and_reports_positive_bandwidth():
    result = stream_host(array_elements=200_000, repeats=2)
    assert result.bandwidth_gbs > 0
    assert result.kernel == "copy"


@pytest.mark.parametrize("kernel", sorted(STREAM_KERNELS))
def test_host_all_kernels(kernel):
    result = stream_host(array_elements=100_000, repeats=1, kernel=kernel)
    assert result.bandwidth_gbs > 0


def test_host_validation():
    with pytest.raises(ValidationError):
        stream_host(kernel="blast")
    with pytest.raises(ValidationError):
        stream_host(array_elements=-1)
    with pytest.raises(ValidationError):
        stream_host(repeats=0)
