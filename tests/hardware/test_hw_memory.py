"""Unit tests for the NUMA bandwidth model."""

import pytest

from repro.errors import TopologyError
from repro.hardware import DomainBandwidthModel, machine


def test_domain_model_linear_then_flat():
    model = DomainBandwidthModel(peak_gbs=40.0, per_core_gbs=10.0)
    assert model.bandwidth(0) == 0.0
    assert model.bandwidth(1) == 10.0
    assert model.bandwidth(3) == 30.0
    assert model.bandwidth(4) == 40.0
    assert model.bandwidth(10) == 40.0  # saturated


def test_domain_model_efficiency_scales_curve():
    model = DomainBandwidthModel(peak_gbs=40.0, per_core_gbs=10.0, efficiency=0.5)
    assert model.bandwidth(4) == 20.0


def test_domain_model_validation():
    with pytest.raises(TopologyError):
        DomainBandwidthModel(0.0, 1.0)
    with pytest.raises(TopologyError):
        DomainBandwidthModel(10.0, 1.0, efficiency=1.5)
    with pytest.raises(TopologyError):
        DomainBandwidthModel(10.0, 1.0).bandwidth(-1)


def test_aggregate_bandwidth_sums_domains():
    m = machine("xeon-e5-2660v3")  # 2 domains x 59 GB/s, 11 GB/s per core
    mem = m.memory
    assert mem.aggregate_bandwidth(1) == pytest.approx(11.0)
    assert mem.aggregate_bandwidth(10) == pytest.approx(59.0)
    assert mem.aggregate_bandwidth(20) == pytest.approx(118.0)


def test_scatter_pinning_reaches_both_domains_early():
    mem = machine("xeon-e5-2660v3").memory
    assert mem.aggregate_bandwidth(2, pinning="scatter") == pytest.approx(22.0)
    # Compact: both workers in one socket -> same 22 (linear regime), but
    # at 8 workers compact is capped by one socket while scatter is not.
    assert mem.aggregate_bandwidth(8, pinning="compact") == pytest.approx(59.0)
    assert mem.aggregate_bandwidth(8, pinning="scatter") == pytest.approx(88.0)


def test_unknown_pinning_rejected():
    with pytest.raises(TopologyError):
        machine("a64fx").memory.aggregate_bandwidth(4, pinning="weird")


def test_lockstep_equals_aggregate_when_domains_balanced():
    mem = machine("kunpeng916").memory
    for cores in (16, 32, 48, 64):
        assert mem.lockstep_bandwidth(cores) == pytest.approx(
            mem.aggregate_bandwidth(cores)
        )


def test_lockstep_dips_with_partial_domain():
    """The Fig 5 mechanism: a partially populated domain drags the step."""
    mem = machine("kunpeng916").memory
    at_32 = mem.lockstep_bandwidth(32)
    at_40 = mem.lockstep_bandwidth(40)
    at_48 = mem.lockstep_bandwidth(48)
    assert at_40 < at_32  # the dip
    assert at_48 > at_32  # recovery once the third domain fills


def test_lockstep_never_exceeds_aggregate(any_machine):
    mem = any_machine.memory
    for cores in range(1, any_machine.spec.cores_per_node + 1):
        assert (
            mem.lockstep_bandwidth(cores) <= mem.aggregate_bandwidth(cores) + 1e-12
        )


def test_first_touch_equals_aggregate(any_machine):
    mem = any_machine.memory
    n = any_machine.spec.cores_per_node
    assert mem.first_touch_bandwidth(n) == mem.aggregate_bandwidth(n)


def test_per_core_bandwidth():
    mem = machine("xeon-e5-2660v3").memory
    assert mem.per_core_bandwidth(1) == pytest.approx(11.0)
    with pytest.raises(TopologyError):
        mem.per_core_bandwidth(0)
