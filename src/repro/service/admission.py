"""Admission control for job submission: quotas, backlog, breakers.

The service never sheds silently.  Every rejection is a
:class:`~repro.errors.JobShedError` carrying a ``retry_after`` hint, so
a well-behaved client backs off for exactly as long as the service
expects the condition to last:

* **Tenant backlog quota** -- a tenant with ``max_pending`` jobs
  already waiting is refused more, so one tenant cannot monopolise the
  store or the scheduler's memory.
* **Service backlog bound** -- a global cap on non-terminal jobs, the
  job-level analogue of the parcel layer's queue-depth limit.
* **Per-tenant circuit breaker** -- reuses the resilience layer's
  :class:`~repro.resilience.overload.CircuitBreaker`: a tenant whose
  jobs keep failing trips its breaker open and is refused until the
  reset window passes, letting one probe job through half-open.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, JobShedError
from ..resilience.overload import CircuitBreaker
from .clock import Clock

__all__ = ["AdmissionControl", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits and the tenant's fair-share weight."""

    weight: float = 1.0
    max_pending: int = 256
    max_active: int = 2

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")
        if self.max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if self.max_active < 1:
            raise ConfigError("max_active must be >= 1")


class AdmissionControl:
    """Gates submissions; the outcome is admit or JobShedError, never drop."""

    def __init__(
        self,
        clock: Clock,
        *,
        max_backlog: int = 1024,
        breaker_threshold: int = 5,
        breaker_reset_seconds: float = 30.0,
        default_quota: TenantQuota | None = None,
    ) -> None:
        if max_backlog < 1:
            raise ConfigError("max_backlog must be >= 1")
        self._clock = clock
        self.max_backlog = max_backlog
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_seconds = breaker_reset_seconds
        self.default_quota = default_quota or TenantQuota()
        self._quotas: dict[str, TenantQuota] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self.admitted = 0
        self.shed = 0

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def breaker(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_threshold, self.breaker_reset_seconds
            )
            self._breakers[tenant] = breaker
        return breaker

    def check(
        self, tenant: str, *, tenant_pending: int, total_backlog: int
    ) -> None:
        """Admit one submission or raise :class:`JobShedError`.

        ``tenant_pending`` counts the tenant's non-terminal jobs;
        ``total_backlog`` counts everyone's.  Callers pass live numbers
        from the store so admission reflects reality, not a shadow
        counter that can drift.
        """
        now = self._clock()
        breaker = self.breaker(tenant)
        verdict = breaker.allow(now)
        if verdict == "reject":
            self.shed += 1
            raise JobShedError(
                f"tenant {tenant!r} circuit breaker is open "
                f"({breaker.failures} consecutive job failures)",
                retry_after=breaker.retry_after(now),
            )
        quota = self.quota(tenant)
        if tenant_pending >= quota.max_pending:
            self.shed += 1
            raise JobShedError(
                f"tenant {tenant!r} backlog quota reached "
                f"({tenant_pending}/{quota.max_pending} jobs pending)",
                retry_after=1.0,
            )
        if total_backlog >= self.max_backlog:
            self.shed += 1
            raise JobShedError(
                f"service backlog bound reached "
                f"({total_backlog}/{self.max_backlog} jobs outstanding)",
                retry_after=1.0,
            )
        self.admitted += 1

    def record_outcome(self, tenant: str, *, failed: bool) -> None:
        """Feed job outcomes to the tenant's breaker."""
        breaker = self.breaker(tenant)
        if failed:
            breaker.record_failure(self._clock())
        else:
            breaker.record_success()
