"""Ablation: time-to-solution vs parcel fault rate.

The resilience claim quantified: on a lossy substrate the futurized
heat solver *never* loses correctness (solutions stay bit-identical to
the fault-free run -- retransmissions bridge every loss), it only loses
time.  This harness sweeps the drop rate and records the virtual
makespan, producing the time-to-solution degradation curve; a second
curve disables the transparent retry layer so the application-level
recovery rounds do the bridging.  Neither mode dominates: transparent
retries wait out the ack-timeout backoff; driver-level resends go out
immediately but re-wait the whole job each recovery round.
"""

import numpy as np
import pytest

from repro.config import Config
from repro.reporting import Series, format_figure
from repro.resilience import FaultInjector
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX, STEPS, SEED = 64, 50, 42
DROP_RATES = (0.0, 0.02, 0.05, 0.10, 0.15)
U0 = np.sin(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))


def _time_to_solution(drop_rate: float, retry: bool) -> tuple[float, np.ndarray]:
    injector = (
        FaultInjector(seed=SEED, drop_rate=drop_rate) if drop_rate > 0 else None
    )
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=2,
        workers_per_locality=2,
        fault_injector=injector,
        config=Config(parcel__retry=retry),
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams())
        solver.initialize(U0)
        solution = solver.run(STEPS) if retry else solver.run_resilient(STEPS)
        return rt.makespan, solution


def fault_sweep() -> dict[str, list[float]]:
    reference = heat1d_reference(U0, STEPS, Heat1DParams())
    times: dict[str, list[float]] = {"retry": [], "no-retry": []}
    for rate in DROP_RATES:
        for mode, retry in (("retry", True), ("no-retry", False)):
            makespan, solution = _time_to_solution(rate, retry)
            assert np.array_equal(solution, reference)  # faults never cost bits
            times[mode].append(makespan)
    return times


def test_time_to_solution_degrades_gracefully(benchmark, save_exhibit):
    data = benchmark(fault_sweep)
    with_retry = Series("transparent retry", list(zip(DROP_RATES, data["retry"])))
    recovery_only = Series(
        "recovery rounds only", list(zip(DROP_RATES, data["no-retry"]))
    )
    text = format_figure(
        "Ablation: heat1d time-to-solution vs parcel drop rate, Xeon x2 "
        "(virtual seconds; solutions bit-identical throughout)",
        [with_retry, recovery_only],
        xlabel="drop rate",
        y_format="{:.3e}",
    )
    save_exhibit("ablation_faults", text)
    # Faults cost time: the loss-free run is the fastest in both modes.
    # (The two modes trade differently: transparent retries wait out the
    # ack-timeout backoff, driver-level resends go out immediately but
    # re-wait the job per round -- neither dominates at every rate.)
    assert data["retry"][0] == min(data["retry"])
    assert data["no-retry"][0] == min(data["no-retry"])
    assert all(t >= data["retry"][0] for t in data["retry"][1:])


def test_retry_cost_is_bounded():
    """5% loss should cost well under one order of magnitude in makespan."""
    clean, _ = _time_to_solution(0.0, retry=True)
    faulty, _ = _time_to_solution(0.05, retry=True)
    assert clean < faulty < 10.0 * clean
