"""FairJobScheduler: weighted fairness, backoff delay room, removal."""

from repro.service import FairJobScheduler


def _drain(sched, now, skip=(), limit=100):
    order = []
    while len(order) < limit:
        picked = sched.next_job(now, skip_tenants=skip)
        if picked is None:
            break
        order.append(picked)
    return order


def test_round_robin_between_equal_tenants():
    sched = FairJobScheduler()
    for i in range(3):
        sched.enqueue("a", f"a{i}", not_before=0.0, now=0.0)
        sched.enqueue("b", f"b{i}", not_before=0.0, now=0.0)
    tenants = [tenant for tenant, _ in _drain(sched, 0.0)]
    assert tenants == ["a", "b", "a", "b", "a", "b"]


def test_weighted_tenant_served_proportionally():
    sched = FairJobScheduler()
    sched.set_weight("heavy", 2.0)
    sched.set_weight("light", 1.0)
    for i in range(8):
        sched.enqueue("heavy", f"h{i}", not_before=0.0, now=0.0)
        sched.enqueue("light", f"l{i}", not_before=0.0, now=0.0)
    order = [tenant for tenant, _ in _drain(sched, 0.0)][:9]
    # Over any window, heavy gets ~2x the service of light.
    assert order.count("heavy") == 6
    assert order.count("light") == 3


def test_fifo_within_a_tenant():
    sched = FairJobScheduler()
    for i in range(4):
        sched.enqueue("t", f"j{i}", not_before=0.0, now=0.0)
    assert [job for _, job in _drain(sched, 0.0)] == ["j0", "j1", "j2", "j3"]


def test_backlogged_tenant_cannot_starve_late_joiner():
    sched = FairJobScheduler()
    for i in range(50):
        sched.enqueue("hog", f"h{i}", not_before=0.0, now=0.0)
    # hog burns through some of its backlog first...
    for _ in range(10):
        sched.next_job(0.0)
    # ...then a new tenant shows up: it must be served immediately
    # (idle flows accrue no debt relative to the backlog's pass).
    sched.enqueue("newbie", "n0", not_before=0.0, now=0.0)
    picked = dict([sched.next_job(0.0), sched.next_job(0.0)])
    assert picked.get("newbie") == "n0"


def test_delay_room_holds_backoff_jobs():
    sched = FairJobScheduler()
    sched.enqueue("t", "late", not_before=5.0, now=0.0)
    sched.enqueue("t", "now", not_before=0.0, now=0.0)
    assert sched.delayed() == 1
    assert sched.pending("t") == 2
    assert sched.next_wakeup() == 5.0
    assert _drain(sched, 4.9) == [("t", "now")]
    assert _drain(sched, 5.0) == [("t", "late")]
    assert sched.delayed() == 0


def test_skip_tenants_leaves_queue_untouched():
    sched = FairJobScheduler()
    sched.enqueue("a", "a0", not_before=0.0, now=0.0)
    sched.enqueue("b", "b0", not_before=0.0, now=0.0)
    assert sched.next_job(0.0, skip_tenants={"a"}) == ("b", "b0")
    assert sched.next_job(0.0, skip_tenants={"a"}) is None
    assert sched.pending("a") == 1  # still queued, not lost
    assert sched.next_job(0.0) == ("a", "a0")


def test_remove_from_queue_and_delay_room():
    sched = FairJobScheduler()
    sched.enqueue("t", "queued", not_before=0.0, now=0.0)
    sched.enqueue("t", "delayed", not_before=9.0, now=0.0)
    assert sched.remove("t", "queued")
    assert sched.remove("t", "delayed")
    assert not sched.remove("t", "gone")
    assert len(sched) == 0
    assert _drain(sched, 10.0) == []


def test_pop_order_is_deterministic():
    def build():
        sched = FairJobScheduler()
        sched.set_weight("b", 3.0)
        for i in range(5):
            sched.enqueue("a", f"a{i}", not_before=0.0, now=0.0)
            sched.enqueue("b", f"b{i}", not_before=0.0, now=0.0)
            sched.enqueue("c", f"c{i}", not_before=float(i % 2), now=0.0)
        return _drain(sched, 2.0)

    assert build() == build()
