"""Fig 4: 2D stencil on Intel Xeon E5-2660 v3 (8192x131072, 100 steps).

Regenerates the four kernel-variant curves and checks the paper's
qualitative claims for this machine: explicit vectorization buys ~50 %
for floats and ~10 % for doubles below memory saturation, and both
variants collapse onto the roofline once the sockets saturate.
"""

import numpy as np
import pytest

from repro.exhibits import fig_2d_stencil, render_fig_2d
from repro.hardware import machine
from repro.perf import stencil2d_glups

MACHINE = "xeon-e5-2660v3"


def test_fig4_exhibit(benchmark, save_exhibit):
    series = benchmark(fig_2d_stencil, MACHINE)
    names = [s.name for s in series]
    assert names[:4] == ["Float", "Vector Float", "Double", "Vector Double"]
    save_exhibit("fig4_2d_xeon", render_fig_2d(MACHINE))


def test_fig4_vectorization_gains(benchmark):
    m = machine(MACHINE)
    gain_f = benchmark(
        lambda: stencil2d_glups(m, np.float32, "simd", 1)
        / stencil2d_glups(m, np.float32, "auto", 1)
        - 1
    )
    assert 0.40 <= gain_f <= 0.60  # "improvements of up to 50%"
    gain_d = (
        stencil2d_glups(m, np.float64, "simd", 1)
        / stencil2d_glups(m, np.float64, "auto", 1)
        - 1
    )
    assert 0.05 <= gain_d <= 0.15  # "only up to 10% improvements"


def test_fig4_saturation_collapses_variants():
    """At 20 cores both float variants sit on the same memory roofline."""
    m = machine(MACHINE)
    auto = stencil2d_glups(m, np.float32, "auto", 20)
    simd = stencil2d_glups(m, np.float32, "simd", 20)
    assert auto == pytest.approx(simd, rel=1e-9)
    # And the plateau is the roofline: BW x AI x efficiency.
    assert auto == pytest.approx(118.0 * 0.92 / 12.0, rel=1e-6)


def test_fig4_no_implicit_cache_blocking_on_x86():
    """64-byte lines: Xeon stays on the 3-transfers roofline."""
    from repro.perf.cost import transfers_per_update

    m = machine(MACHINE)
    for dtype in (np.float32, np.float64):
        assert transfers_per_update(m, dtype, 20) == 3.0
