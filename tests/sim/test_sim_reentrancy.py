"""Edge cases: engine re-entrancy and queue/cancel interactions."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue, SimulationEngine


def test_reentrant_run_rejected():
    engine = SimulationEngine()
    errors = []

    def evil():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule_at(1.0, evil)
    engine.run()
    assert len(errors) == 1


def test_reentrant_run_until_rejected():
    engine = SimulationEngine()
    errors = []

    def evil():
        try:
            engine.run_until(5.0)
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule_at(1.0, evil)
    engine.run_until(2.0)
    assert len(errors) == 1


def test_step_is_allowed_from_within_events():
    """Manual stepping is not guarded (the engine is not 'running')."""
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(2.0, lambda: fired.append("late"))

    def early():
        fired.append("early")
        engine.step()  # pulls the 2.0 event forward, legally

    engine.schedule_at(1.0, early)
    engine.step()
    assert fired == ["early", "late"]


def test_cancel_interleaved_with_pops():
    queue = EventQueue()
    events = [queue.push(float(i), lambda i=i: i) for i in range(6)]
    assert queue.cancel(events[0])
    assert queue.cancel(events[3])
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == [1.0, 2.0, 4.0, 5.0]


def test_cancel_then_len_consistent():
    queue = EventQueue()
    events = [queue.push(1.0, lambda: None) for _ in range(4)]
    queue.cancel(events[1])
    queue.cancel(events[2])
    assert len(queue) == 2
    queue.pop()
    queue.pop()
    assert len(queue) == 0
    with pytest.raises(SimulationError):
        queue.pop()


def test_peek_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(head)
    assert queue.peek_time() == 2.0
