"""Fig 3: distributed 1D stencil, strong and weak scaling.

Part (a) regenerates the figure from the cost model and asserts the
paper's headline numbers.  Part (b) *runs the actual distributed
application* on the virtual-time runtime (scaled-down point counts, the
paper's per-step cost injected from the model) and checks that the
simulated makespans reproduce the same scaling shape -- the functional
runtime and the analytic model must agree.
"""

import pytest

from repro.exhibits import fig3_1d_scaling, render_fig3
from repro.hardware import machine
from repro.observability import collect_metrics, latency_histograms
from repro.perf.cost import (
    STRONG_SCALING_POINTS,
    scaling_factor,
    stencil1d_node_glups,
    stencil1d_time,
)
from repro.runtime import Runtime
from repro.runtime.trace import Tracer
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile


def test_fig3_exhibit(benchmark, save_exhibit):
    data = benchmark(fig3_1d_scaling)
    assert set(data) == {"strong", "weak"}
    save_exhibit("fig3_1dstencil", render_fig3())


def test_fig3_paper_values(benchmark):
    xeon = machine("xeon-e5-2660v3")
    a64fx = machine("a64fx")
    factor = benchmark(scaling_factor, xeon, 8)
    assert factor == pytest.approx(7.36, rel=0.02)
    assert stencil1d_time(xeon, 1) == pytest.approx(28.0, rel=0.05)
    assert stencil1d_time(a64fx, 8) == pytest.approx(2.5, rel=0.05)


@pytest.mark.parametrize("name", ["xeon-e5-2660v3", "kunpeng916"])
def test_fig3_runtime_simulation_matches_model_shape(
    benchmark, name, save_exhibit, save_metrics
):
    """Drive the real futurized solver at 1 and 4 virtual nodes and check
    the virtual-time speedup against the analytic model."""
    m = machine(name)
    # Enough steps to amortise the chain-construction transient (the
    # staggered start_chain parcels offset the partitions by a few
    # network delays before the ring settles into its periodic regime).
    steps = 60
    points = 512  # numerical grid is tiny; *costs* are the real ones

    metrics: dict = {}

    def simulate(n_nodes: int) -> float:
        # Per-partition per-step cost from the calibrated node rate.
        local_points = STRONG_SCALING_POINTS // n_nodes
        rate = stencil1d_node_glups(m) * 1e9
        cost_per_step = local_points / rate + m.calibration.per_step_overhead_s
        tracer = Tracer()
        with Runtime(machine=m.name, n_localities=n_nodes, workers_per_locality=2) as rt:
            solver = DistributedHeat1D(
                rt, points, Heat1DParams(), cost_per_step=cost_per_step
            )
            solver.initialize(analytic_heat_profile(points))
            with tracer.attach(rt):
                rt.run(lambda: solver.run(steps))
            metrics["counters"] = collect_metrics(rt)["counters"]
            metrics["histograms"] = latency_histograms(tracer)
            return rt.makespan

    t1 = simulate(1)
    t4 = benchmark.pedantic(simulate, args=(4,), rounds=1, iterations=1)
    simulated_speedup = t1 / t4
    model_speedup = stencil1d_time(m, 1, total_points=STRONG_SCALING_POINTS) / (
        stencil1d_time(m, 4, total_points=STRONG_SCALING_POINTS)
    )
    # Same *shape*: Kunpeng far from linear, Xeon close to linear.
    assert simulated_speedup == pytest.approx(model_speedup, rel=0.35)
    if name == "kunpeng916":
        assert simulated_speedup < 3.5
    else:
        assert simulated_speedup > 3.0
    save_exhibit(
        f"fig3_runtime_{name}",
        f"{m.spec.name}: DES speedup(4 nodes) = {simulated_speedup:.2f} "
        f"(analytic model: {model_speedup:.2f}) over {steps} steps",
    )
    save_metrics(
        f"fig3_runtime_{name}",
        counters=metrics["counters"],
        histograms=metrics["histograms"],
        meta={"machine": name, "nodes": 4, "steps": steps},
    )
