"""Schema validation for the Chrome trace-event export.

The exported JSON must be loadable by Perfetto / ``chrome://tracing``:
a ``traceEvents`` array whose entries carry the phase-specific required
keys, with flow arrows (``s``/``f``) pairing parcel sends to handler
spans.  These tests pin that contract.
"""

import json

import pytest

from repro.observability import chrome_trace_events, export_chrome_trace
from repro.runtime import Runtime
from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.trace import Tracer

#: Keys every event must carry, per the trace-event format spec.
_COMMON_KEYS = {"name", "ph", "pid", "tid"}


@pytest.fixture(scope="module")
def traced_run():
    """One traced 2-locality heat-exchange-style run, shared read-only."""
    tracer = Tracer()
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=2
    ) as rt:
        with tracer.attach(rt):
            rt.run(
                lambda: [rt.async_at(1, abs, -i).get() for i in range(6)]
                and None
            )
    return tracer


def test_document_shape(traced_run):
    text = export_chrome_trace(traced_run)
    document = json.loads(text)
    assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert isinstance(document["traceEvents"], list)
    assert document["traceEvents"]


def test_every_event_is_well_formed(traced_run):
    for event in chrome_trace_events(traced_run):
        assert _COMMON_KEYS <= set(event), event
        assert event["ph"] in ("M", "X", "i", "s", "f")
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
        else:
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
            assert event["cat"] == "task"
        if event["ph"] in ("s", "f"):
            assert isinstance(event["id"], int)
        if event["ph"] == "i":
            assert event["s"] in ("t", "p")


def test_spans_cover_all_traced_tasks(traced_run):
    spans = [e for e in chrome_trace_events(traced_run) if e["ph"] == "X"]
    assert len(spans) == len(traced_run.records)


def test_metadata_names_every_pool_and_worker(traced_run):
    events = chrome_trace_events(traced_run)
    process_names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert {"job", "locality-0", "locality-1"} <= process_names
    thread_rows = [
        e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert len(thread_rows) == 4  # 2 localities x 2 workers


def test_flow_arrows_pair_and_bind_to_handler_spans(traced_run):
    events = chrome_trace_events(traced_run)
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    finishes = {e["id"]: e for e in events if e["ph"] == "f"}
    assert starts  # remote calls produced parcels
    assert set(starts) == set(finishes)  # every arrow has both ends
    spans = [e for e in events if e["ph"] == "X"]
    for parcel_id, finish in finishes.items():
        assert finish["bp"] == "e"
        # The finish step must land exactly on a handler span.
        enclosing = [
            s
            for s in spans
            if s["pid"] == finish["pid"]
            and s["tid"] == finish["tid"]
            and s["ts"] == finish["ts"]
        ]
        assert enclosing, f"flow {parcel_id} binds to no span"
        # And the arrow must point forward in time.
        assert starts[parcel_id]["ts"] <= finish["ts"]


def test_events_sorted_by_timestamp(traced_run):
    events = chrome_trace_events(traced_run)
    timestamps = [e.get("ts", -1.0) for e in events]
    assert timestamps == sorted(timestamps)


def test_steal_instants_present_for_unbalanced_pool():
    pool = ThreadPool(2, name="p")
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(8):
            pool.submit(lambda: ctx.add_cost(1.0), worker=0)
        pool.run_all()
    instants = [e for e in chrome_trace_events(tracer) if e["ph"] == "i"]
    assert instants
    assert all(e["name"] == "steal" for e in instants)


def test_export_writes_file(tmp_path, traced_run):
    path = tmp_path / "run.trace.json"
    text = traced_run.export_chrome_trace(str(path))
    assert path.read_text(encoding="utf-8") == text
    assert json.loads(text)["otherData"]["clock"] == "virtual"


def test_empty_tracer_exports_valid_document():
    document = json.loads(export_chrome_trace(Tracer()))
    phases = {e["ph"] for e in document["traceEvents"]}
    assert phases == {"M"}  # just the job process row
