"""Virtual-time counter sampling (``--hpx:print-counter-interval``).

HPX can print any set of performance counters every N milliseconds
while a job runs; the papers evaluating HPX drive whole experiments
off those time series.  This module is the analogue on the virtual
clock: :func:`sample_counters` runs a job while snapshotting a set of
counter paths every ``interval`` virtual seconds, yielding a
:class:`CounterTimeSeries` that serializes to CSV or JSON.

Sampling granularity: execution is cooperative, so counters are read
at *scheduling points* (task completions).  Each sample is taken at
the first scheduling point at or after its Δt boundary and timestamped
with the boundary; a long task that crosses several boundaries yields
several samples with the state observed when it finished.  Because
execution is deterministic, the series is bit-identical across runs
with the same configuration (and the same
:class:`~repro.resilience.faults.FaultInjector` seed, if any).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..errors import ValidationError
from ..runtime import perfcounters

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime

__all__ = ["CounterTimeSeries", "sample_counters"]


class CounterTimeSeries:
    """Aligned samples of a fixed set of counter paths over virtual time."""

    def __init__(self, paths: Sequence[str]) -> None:
        if not paths:
            raise ValidationError("counter time series needs at least one path")
        self.paths = list(paths)
        self.times: list[float] = []
        self.rows: list[list[float]] = []
        #: Return value of the sampled job (set by :func:`sample_counters`).
        self.result: Any = None

    def append(self, time: float, values: Sequence[float]) -> None:
        if len(values) != len(self.paths):
            raise ValidationError(
                f"sample has {len(values)} values for {len(self.paths)} paths"
            )
        if self.times and time < self.times[-1]:
            raise ValidationError("samples must be appended in time order")
        self.times.append(float(time))
        self.rows.append([float(v) for v in values])

    def __len__(self) -> int:
        return len(self.times)

    def values(self, path: str) -> list[float]:
        """One counter's sampled values, in time order."""
        try:
            column = self.paths.index(path)
        except ValueError:
            raise ValidationError(f"path {path!r} was not sampled") from None
        return [row[column] for row in self.rows]

    def to_csv(self) -> str:
        """``time,<path>,...`` header plus one row per sample."""
        lines = [",".join(["time"] + self.paths)]
        for time, row in zip(self.times, self.rows):
            lines.append(",".join([f"{time:.9g}"] + [f"{v:.9g}" for v in row]))
        return "\n".join(lines) + "\n"

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(
            {
                "paths": self.paths,
                "samples": [
                    {"time": time, "values": dict(zip(self.paths, row))}
                    for time, row in zip(self.times, self.rows)
                ],
            },
            indent=indent,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterTimeSeries({len(self.paths)} paths, {len(self)} samples)"
        )


class _Probe:
    """Reads the counters whenever the virtual high-water mark crosses
    the next Δt boundary.

    The high-water mark is the latest task finish time seen so far --
    pools interleave almost-causally, so individual finish times are
    not monotone, but the running maximum is.
    """

    def __init__(
        self,
        runtime: "Runtime",
        series: CounterTimeSeries,
        interval: float,
        max_samples: int,
    ) -> None:
        self.runtime = runtime
        self.series = series
        self.interval = interval
        self.max_samples = max_samples
        self.high_water = 0.0
        self.next_boundary = interval

    def snapshot(self) -> list[float]:
        return [perfcounters.query(self.runtime, p) for p in self.series.paths]

    def note(self, finish_time: float) -> None:
        if finish_time <= self.high_water:
            return
        self.high_water = finish_time
        while self.next_boundary <= self.high_water:
            self.series.append(self.next_boundary, self.snapshot())
            if len(self.series) >= self.max_samples:
                raise ValidationError(
                    f"exceeded {self.max_samples} samples at interval "
                    f"{self.interval}; is the job unbounded?"
                )
            self.next_boundary += self.interval


def sample_counters(
    runtime: "Runtime",
    main: Callable[..., Any],
    *args: Any,
    paths: Sequence[str],
    interval: float,
    kwargs: dict | None = None,
    max_samples: int = 1_000_000,
) -> CounterTimeSeries:
    """Run ``main`` on locality 0 while sampling ``paths`` every
    ``interval`` virtual seconds.

    The job is driven exactly like :meth:`Runtime.run`; every pool is
    instrumented so each task completion advances a high-water virtual
    clock, and the counters are snapshotted whenever it crosses a Δt
    boundary.  A final sample is taken at completion time; the job's
    return value is stored on the series as ``result``.

    Raises :class:`~repro.errors.ValidationError` on a non-positive
    interval or when ``max_samples`` is exceeded (a runaway-job guard);
    stalls raise the usual :class:`~repro.errors.DeadlockError` /
    :class:`~repro.errors.ParcelDeadLetterError`.
    """
    if interval <= 0.0:
        raise ValidationError("sample interval must be positive")
    series = CounterTimeSeries(paths)
    probe = _Probe(runtime, series, interval, max_samples)

    pools = [loc.pool for loc in runtime.localities]
    originals = []
    for pool in pools:
        original = pool._execute

        def sampled_execute(task, worker, original=original):
            original(task, worker)
            probe.note(task.finish_time)

        pool._execute = sampled_execute  # type: ignore[method-assign]
        originals.append((pool, original))
    try:
        future = runtime.localities[0].pool.submit(
            main, *args, kwargs=kwargs, description="sampled_main"
        )
        runtime.progress_until(future.is_ready)
    finally:
        for pool, original in originals:
            pool._execute = original  # type: ignore[method-assign]
    final_time = max(runtime.makespan, probe.high_water)
    if not series.times or series.times[-1] < final_time:
        series.append(final_time, probe.snapshot())
    series.result = future.get()
    return series
