"""Property-based tests for hardware models and AGAS invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import DomainBandwidthModel, machine, machine_names
from repro.runtime.agas import AgasService
from repro.runtime.parcel import deserialize, serialize
from repro.sim import EventQueue


@given(
    peak=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    per_core=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    cores=st.integers(min_value=0, max_value=128),
)
def test_domain_bandwidth_bounded_and_monotone(peak, per_core, cores):
    model = DomainBandwidthModel(peak_gbs=peak, per_core_gbs=per_core)
    bw = model.bandwidth(cores)
    assert 0.0 <= bw <= peak
    assert model.bandwidth(cores + 1) >= bw


@given(name=st.sampled_from(machine_names()), data=st.data())
@settings(max_examples=80)
def test_lockstep_never_exceeds_aggregate_anywhere(name, data):
    m = machine(name)
    cores = data.draw(st.integers(min_value=1, max_value=m.spec.cores_per_node))
    pinning = data.draw(st.sampled_from(["compact", "scatter"]))
    lockstep = m.memory.lockstep_bandwidth(cores, pinning)
    aggregate = m.memory.aggregate_bandwidth(cores, pinning)
    assert 0 < lockstep <= aggregate + 1e-9


@given(name=st.sampled_from(machine_names()), data=st.data())
@settings(max_examples=40)
def test_aggregate_bandwidth_monotone_in_cores(name, data):
    m = machine(name)
    cores = data.draw(st.integers(min_value=1, max_value=m.spec.cores_per_node - 1))
    assert (
        m.memory.aggregate_bandwidth(cores + 1)
        >= m.memory.aggregate_bandwidth(cores) - 1e-9
    )


@given(name=st.sampled_from(machine_names()), data=st.data())
@settings(max_examples=40)
def test_transfer_time_monotone_in_bytes(name, data):
    net = machine(name).interconnect
    small = data.draw(st.integers(min_value=0, max_value=10**6))
    extra = data.draw(st.integers(min_value=0, max_value=10**6))
    assert net.transfer_time(small + extra) >= net.transfer_time(small)


@given(times=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=100))
def test_event_queue_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(times)


@given(ops=st.lists(st.integers(min_value=1, max_value=5), max_size=30))
def test_agas_refcount_never_negative(ops):
    """incref by k then decref k times one-by-one always lands back at the
    prior count; the object dies exactly when the count hits zero."""
    agas = AgasService(1)
    gid = agas.register(object(), 0)
    expected = 1
    for k in ops:
        assert agas.incref(gid, k) == expected + k
        for _ in range(k):
            agas.decref(gid)
        assert agas.refcount(gid) == expected
    assert agas.decref(gid) == 0
    assert gid not in agas


json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.tuples(children, children),
    ),
    max_leaves=20,
)


@given(payload=json_like)
@settings(max_examples=80)
def test_parcel_serialization_roundtrip(payload):
    assert deserialize(serialize(payload)) == payload
