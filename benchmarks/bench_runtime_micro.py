"""Microbenchmarks of the runtime itself (real wall-clock numbers).

These measure the Python runtime's own overheads -- task spawn/execute
throughput, future round-trips, channel hand-offs, parcel round-trips --
the analogues of HPX's ``future_overhead`` benchmark suite.
"""

from repro.runtime import Channel, Runtime, async_, dataflow, when_all
from repro.runtime.threads.pool import ThreadPool


def test_task_spawn_throughput(benchmark):
    """Submit + drain 1000 empty tasks on a bare pool."""

    def run():
        pool = ThreadPool(4)
        for _ in range(1000):
            pool.submit(lambda: None)
        pool.run_all()
        return pool.tasks_executed

    assert benchmark(run) == 1000


def test_future_roundtrip_overhead(benchmark):
    with Runtime(workers_per_locality=2) as rt:

        def main():
            total = 0
            for _ in range(200):
                total += async_(lambda: 1).get()
            return total

        assert benchmark(rt.run, main) == 200


def test_dataflow_chain_overhead(benchmark):
    with Runtime(workers_per_locality=2) as rt:

        def main():
            future = dataflow(lambda: 0)
            for _ in range(300):
                future = dataflow(lambda x: x + 1, future)
            return future.get()

        assert benchmark(rt.run, main) == 300


def test_channel_handoff_throughput(benchmark):
    with Runtime(workers_per_locality=2) as rt:

        def main():
            channel = Channel()
            n = 500

            def producer():
                for i in range(n):
                    channel.set(i)

            async_(producer)
            total = 0
            for _ in range(n):
                total += channel.get_sync()
            return total

        assert benchmark(rt.run, main) == sum(range(500))


def test_parcel_roundtrip_overhead(benchmark):
    """Cross-locality action invocation incl. serialization both ways."""
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=2) as rt:

        def main():
            futures = [rt.async_at(1, abs, -i) for i in range(100)]
            return sum(f.get() for f in when_all(futures).get())

        assert benchmark(rt.run, main) == sum(range(100))


def _locality_id():
    from repro.runtime import context as ctx

    return ctx.here().locality_id


def test_collectives_all_reduce(benchmark):
    """Job-wide reduction over four localities (broadcast + fold)."""
    import operator

    from repro.runtime import collectives

    locality_id = _locality_id

    with Runtime(machine="a64fx", n_localities=4, workers_per_locality=2) as rt:

        def main():
            return collectives.all_reduce(rt, locality_id, operator.add)

        assert benchmark(rt.run, main) == 0 + 1 + 2 + 3


def test_remote_channel_roundtrip(benchmark):
    """Location-transparent channel hosted on another locality."""
    from repro.runtime.lco import RemoteChannel

    with Runtime(machine="a64fx", n_localities=2, workers_per_locality=2) as rt:
        channel = RemoteChannel.create(rt, locality_id=1)

        def main():
            channel.set(41).get()
            return channel.get_sync() + 1

        assert benchmark(rt.run, main) == 42


def test_fan_out_fan_in(benchmark):
    """The classic fork-join: 500-way fan-out, when_all fan-in."""
    with Runtime(workers_per_locality=4) as rt:

        def main():
            futures = [async_(lambda i=i: i * i) for i in range(500)]
            return sum(f.get() for f in when_all(futures).get())

        assert benchmark(rt.run, main) == sum(i * i for i in range(500))
