"""Property-based tests for priority scheduling and virtual-time bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import context as ctx
from repro.runtime.threads.hpx_thread import HpxThread, ThreadPriority
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.threads.scheduler import make_scheduler


@given(
    scheduler_name=st.sampled_from(["fifo", "static", "work-stealing"]),
    priorities=st.lists(st.sampled_from(list(ThreadPriority)), max_size=30),
)
@settings(max_examples=60)
def test_single_worker_service_order_respects_priority(scheduler_name, priorities):
    """On one worker, any push sequence drains HIGH >= NORMAL >= LOW and
    FIFO within each level."""
    sched = make_scheduler(scheduler_name, 1)
    tasks = []
    for i, priority in enumerate(priorities):
        task = HpxThread(lambda: None, description=f"{i}", priority=priority)
        sched.push(task, worker_hint=0)
        tasks.append(task)
    drained = []
    while True:
        task = sched.acquire(0)
        if task is None:
            break
        drained.append(task)
    assert len(drained) == len(tasks)
    # Priorities non-increasing in service order...
    served_priorities = [t.priority for t in drained]
    assert served_priorities == sorted(served_priorities, reverse=True)
    # ...and FIFO within each level.
    for level in ThreadPriority:
        pushed = [t.description for t in tasks if t.priority == level]
        served = [t.description for t in drained if t.priority == level]
        assert served == pushed


@given(
    costs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.sampled_from(list(ThreadPriority)),
        ),
        max_size=25,
    ),
    n_workers=st.integers(1, 6),
)
@settings(max_examples=50)
def test_priorities_never_change_total_work(costs, n_workers):
    """Priorities reorder execution but conserve total busy time."""
    pool = ThreadPool(n_workers)
    for cost, priority in costs:
        pool.submit(lambda c=cost: ctx.add_cost(c), priority=priority)
    makespan = pool.run_all()
    total = sum(c for c, _ in costs)
    busy = sum(w.available_at for w in pool.workers)
    # Workers' end times include idle tails only up to the makespan.
    assert busy >= total - 1e-9
    assert makespan <= total + 1e-9


@given(seed=st.integers(0, 2**16))
@settings(max_examples=25)
def test_execution_is_deterministic(seed):
    """Same submissions -> identical schedules, twice."""
    import random

    def build_and_run():
        rng = random.Random(seed)
        pool = ThreadPool(3)
        order = []
        for i in range(12):
            cost = rng.uniform(0, 2)
            priority = rng.choice(list(ThreadPriority))
            pool.submit(
                lambda i=i, c=cost: (ctx.add_cost(c), order.append(i)),
                priority=priority,
            )
        makespan = pool.run_all()
        return order, makespan

    assert build_and_run() == build_and_run()
