"""Wire protocol for cross-process parcel transport.

Messages between the driver (locality 0) and the workers are tuples
``(kind, ...)`` encoded with the parcel layer's own
:func:`~repro.runtime.parcel.serialization.serialize` -- the same
encode-once format parcels already use -- and framed by
``multiprocessing.Connection.send_bytes``.  Parcel payloads inside a
``"parcels"`` message are the *already-encoded* bytes produced by
``Runtime._encode``; they are never re-pickled, only wrapped.

Message kinds
-------------
``("parcels", [entry, ...])``
    Batch of parcels for this process, ``entry = (source, destination,
    payload, target_gid, target_locality, token, fire_and_forget,
    priority)``.  ``token`` is ``(origin_locality, seq)`` for sends that
    expect a reply, ``None`` for fire-and-forget.
``("reply", origin, token, ok, data)``
    Result of a tokened parcel: ``data`` is the serialized value when
    ``ok``, the serialized exception otherwise.  Routed to ``origin``.
``("create", origin, gid, home, data)``
    AGAS mirror of a new registration; ``data`` is the serialized
    component (decoded only by the home process).
``("resolve", req_id, gid, origin)`` / ``("resolved", req_id, gid, home)``
    Synchronous AGAS brokering for a GID unknown locally (``home`` is
    -1 when the driver does not know it either).
``("sync", seq)`` / ("sync-ack", seq, worker, busy)``
    Termination-detection round: the worker acks with ``busy`` True
    while it has pending tasks, outstanding reply tokens, or sent
    traffic since its last ack.
``("stop",)`` / ``("stopped", worker, stats)``
    Clean shutdown; the worker answers with its runtime statistics
    (perfcounter aggregation back to locality 0) and exits.
``("abort",)``
    Error-path shutdown: exit immediately, no draining.
``("error", worker, text)``
    A worker process died; ``text`` is its formatted traceback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..parcel.serialization import deserialize, serialize

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection  # repro-lint: disable=PX201

    from ..parcel.parcel import Parcel

__all__ = ["encode_message", "decode_message", "parcel_entry", "send_message"]


def encode_message(message: tuple) -> bytes:
    """Frame one protocol message as wire bytes."""
    return serialize(message)


def decode_message(data: bytes) -> tuple:
    """Inverse of :func:`encode_message`."""
    return deserialize(data)


def send_message(conn: "Connection", message: tuple) -> int:
    """Encode and write one message; returns the byte count written."""
    data = encode_message(message)
    conn.send_bytes(data)
    return len(data)


def parcel_entry(
    parcel: "Parcel", destination: int, token: tuple[int, int] | None
) -> tuple[Any, ...]:
    """The wire entry for one cross-process parcel.

    ``by_ref_body`` deliberately does not travel: a zero-copy loopback
    send downgrades to the real serialized payload the moment it crosses
    a process boundary.
    """
    return (
        parcel.source_locality,
        destination,
        parcel.payload,
        parcel.target_gid,
        parcel.target_locality,
        token,
        parcel.fire_and_forget,
        parcel.priority,
    )
