"""PAPI-like hardware counter registers.

The paper reads Linux ``perf``/PAPI counters to explain performance
differences (Tables III-VI).  :class:`CounterSet` is the register file:
kernels and models increment named counters; readers snapshot them.  The
*prediction* of counter values for the four machines lives in
:mod:`repro.perf.counters`; this module is only the mechanism.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..errors import ReproError

__all__ = [
    "CounterSet",
    "PAPI_TOT_INS",
    "PAPI_TOT_CYC",
    "PAPI_L1_TCM",
    "PAPI_L2_TCM",
    "PAPI_L3_TCM",
    "STALL_FRONTEND",
    "STALL_BACKEND",
    "MEM_BYTES_READ",
    "MEM_BYTES_WRITTEN",
]

# Canonical counter names (PAPI preset names where they exist).
PAPI_TOT_INS = "PAPI_TOT_INS"  # total instructions retired
PAPI_TOT_CYC = "PAPI_TOT_CYC"  # total cycles
PAPI_L1_TCM = "PAPI_L1_TCM"  # L1 total cache misses
PAPI_L2_TCM = "PAPI_L2_TCM"  # L2 total cache misses
PAPI_L3_TCM = "PAPI_L3_TCM"  # last-level cache misses
STALL_FRONTEND = "STALL_FRONTEND"  # perf stalled-cycles-frontend
STALL_BACKEND = "STALL_BACKEND"  # perf stalled-cycles-backend
MEM_BYTES_READ = "MEM_BYTES_READ"
MEM_BYTES_WRITTEN = "MEM_BYTES_WRITTEN"

_KNOWN = {
    PAPI_TOT_INS,
    PAPI_TOT_CYC,
    PAPI_L1_TCM,
    PAPI_L2_TCM,
    PAPI_L3_TCM,
    STALL_FRONTEND,
    STALL_BACKEND,
    MEM_BYTES_READ,
    MEM_BYTES_WRITTEN,
}


class CounterSet(Mapping[str, int]):
    """A mutable register file of named 64-bit-style event counters."""

    __slots__ = ("_values", "_frozen")

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._values: dict[str, int] = {}
        self._frozen = False
        if initial:
            for name, value in initial.items():
                self.add(name, value)

    @staticmethod
    def _check_name(name: str) -> None:
        if name not in _KNOWN:
            raise ReproError(
                f"unknown hardware counter {name!r}; known: {sorted(_KNOWN)}"
            )

    def add(self, name: str, count: int | float) -> None:
        """Increment ``name`` by ``count`` (must be non-negative)."""
        self._check_name(name)
        if self._frozen:
            raise ReproError("counter set is frozen (snapshot); cannot modify")
        if count < 0:
            raise ReproError(f"counter increment must be non-negative, got {count}")
        self._values[name] = self._values.get(name, 0) + int(round(count))

    def read(self, name: str) -> int:
        """Read a counter (0 if never incremented)."""
        self._check_name(name)
        return self._values.get(name, 0)

    def snapshot(self) -> "CounterSet":
        """An immutable copy, like reading out the PMU at a sample point."""
        copy = CounterSet(dict(self._values))
        copy._frozen = True
        return copy

    def diff(self, earlier: "CounterSet") -> "CounterSet":
        """Counter deltas since an ``earlier`` snapshot."""
        result = CounterSet()
        for name in set(self._values) | set(earlier._values):
            delta = self.read(name) - earlier.read(name)
            if delta < 0:
                raise ReproError(f"counter {name} went backwards")
            if delta:
                result.add(name, delta)
        return result

    def reset(self) -> None:
        if self._frozen:
            raise ReproError("counter set is frozen (snapshot); cannot reset")
        self._values.clear()

    # Mapping protocol -------------------------------------------------------
    def __getitem__(self, name: str) -> int:
        return self.read(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover
        body = ", ".join(f"{k}={v:.3e}" for k, v in sorted(self._values.items()))
        return f"CounterSet({body})"
