"""The execution-backend seam: how a Runtime turns queued work into progress.

A :class:`Runtime` always owns localities, pools, AGAS, and a parcelport;
what differs between a deterministic simulation and a real multi-core run
is *where the other localities live*.  An :class:`ExecutionBackend`
answers exactly that question:

* the :class:`~repro.runtime.backend.virtual.VirtualClockBackend` says
  "right here" -- every locality is a cooperatively-stepped pool in this
  process and every hook below is a no-op, which keeps the simulation
  hot path (and its bit-exact virtual timings) untouched;
* the :class:`~repro.runtime.backend.multiprocess.MultiprocessBackend`
  says "one OS process each" -- parcels whose destination is another
  process are intercepted at the router and carried over pipes in the
  existing encode-once wire format, and stalls block on the transport
  instead of raising :class:`~repro.errors.DeadlockError`.

The Runtime consults the backend through a single nullable reference
(``runtime._remote``), so the virtual backend costs one ``is None``
check per progress step and nothing on the send path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..agas.component import Component
    from ..agas.gid import Gid
    from ..parcel.parcel import Parcel
    from ..runtime import Runtime

__all__ = ["ExecutionBackend"]


class ExecutionBackend:
    """Base class and default (inert) behaviour for execution backends.

    Subclasses override the subset of hooks their transport needs; the
    defaults describe a backend where every locality is local, so the
    virtual-clock backend is this class with a name.
    """

    #: Stable identifier, matching the ``runtime.backend`` config value.
    name: str = "base"

    #: True when localities live in other OS processes.  The Runtime
    #: caches ``backend if backend.distributed else None`` as its
    #: ``_remote`` reference, so hot paths pay one None-check.
    distributed: bool = False

    #: Locality id this process is responsible for (0 = driver/console).
    my_id: int = 0

    def attach(self, runtime: "Runtime") -> None:
        """Bind to the owning runtime; called once from ``Runtime.__init__``."""
        self.runtime = runtime

    # Lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Bring up the transport (spawn processes, connect pipes)."""

    def quiesce(self) -> None:
        """Drive the job to a globally idle state before shutdown.

        Called from ``Runtime.stop`` *before* the final local drain and
        quiescence check, so cross-process traffic still in flight can
        land and be executed.
        """

    def stop(self) -> None:
        """Tear down the transport; collect remote statistics."""

    def abort(self) -> None:
        """Best-effort teardown on the error path (no draining)."""

    # Parcel transport ------------------------------------------------------
    def forward_parcel(self, parcel: "Parcel", destination: int) -> None:
        """Carry ``parcel`` to the process owning ``destination``.

        Only called when ``distributed`` and the destination is not
        ``my_id``; the parcel's payload is already real wire bytes
        (``parcel.serialize`` is mandatory in distributed mode), and its
        ``by_ref_body`` must NOT travel -- dropping it is the zero-copy
        auto-downgrade.
        """
        raise NotImplementedError

    def maybe_service(self) -> bool:
        """Cheap periodic poll from the progress loop.

        Returns True when inbound traffic was dispatched (the caller
        re-evaluates its predicate).  Must be cheap enough to call once
        per executed task.
        """
        return False

    def poll(self) -> bool:
        """Non-blocking service pass; True when anything was dispatched."""
        return False

    def flush(self) -> None:
        """Push any locally-queued outbound wire traffic."""

    def on_stall(self) -> bool:
        """The progress loop found no runnable work anywhere.

        Block (bounded) on the transport; return True when something was
        dispatched so the caller re-evaluates, False to let the runtime
        raise its usual stall diagnosis.
        """
        return False

    # AGAS ------------------------------------------------------------------
    def component_registered(
        self, component: "Component", gid: "Gid", home: int
    ) -> None:
        """Mirror a new registration to the other processes."""

    # Observability ---------------------------------------------------------
    def counters(self) -> dict[str, float]:
        """Backend-level statistics (perfcounter source; see
        ``/backend{total}/...`` paths)."""
        return {}

    def worker_stats(self) -> dict[int, dict[str, Any]]:
        """Per-remote-process runtime statistics aggregated back to the
        driver at shutdown (empty until ``stop`` on the driver)."""
        return {}
