"""Fast-path determinism: optimisations change wall time, never answers.

PR5's runtime fast paths (zero-copy loopback parcels, O(1) scheduler
pops, cheap probes) are only admissible if the *virtual-time* results
they produce are bit-identical to the slow paths they replace.  This
suite pins that invariant for the config-gated piece -- the
``parcel.zero_copy`` loopback fast path -- across every scheduler:

* identical virtual makespans,
* identical ``/threads{total}`` perfcounters,
* identical stencil field contents (checksums and exact arrays),
* identical parcel *and byte* counters (zero-copy must keep charging the
  honest serialized sizes even though it skips the loopback decode).

It also pins the encode-once accounting at the port level: a
retransmitted parcel charges exactly the same byte count every attempt,
because the wire bytes travel *with* the parcel instead of being
re-encoded per transmission.
"""

import numpy as np
import pytest

from repro.config import Config
from repro.errors import SerializationError
from repro.runtime import perfcounters
from repro.runtime.parcel.parcel import Parcel
from repro.runtime.parcel.parcelport import LoopbackParcelport
from repro.runtime.parcel.serialization import serialize
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams
from repro.stencil.jacobi2d_dist import DistributedJacobi2D

SCHEDULERS = ["fifo", "static", "work-stealing"]

COUNTERS = (
    "/threads{total}/count/cumulative",
    "/threads{total}/queue/length",
    "/parcels{total}/count/sent",
)


def _config(scheduler: str, zero_copy: bool) -> Config:
    return Config(threads__scheduler=scheduler, parcel__zero_copy=zero_copy)


def _fingerprint(rt: Runtime) -> dict:
    fp = {path: perfcounters.query(rt, path) for path in COUNTERS}
    fp["makespan"] = rt.makespan
    fp["parcels_sent"] = rt.parcelport.parcels_sent
    fp["bytes_sent"] = rt.parcelport.bytes_sent
    fp["parcels_delivered"] = rt.parcelport.parcels_delivered
    return fp


def _heat_run(scheduler: str, zero_copy: bool):
    nx = 64
    u0 = np.cos(np.linspace(0.0, 2.0 * np.pi, nx, endpoint=False))
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        config=_config(scheduler, zero_copy),
    ) as rt:
        solver = DistributedHeat1D(
            rt, nx, Heat1DParams(), partitions_per_locality=2, cost_per_step=1e-4
        )
        solver.initialize(u0)
        field = rt.run(lambda: solver.run(25))
        return field, _fingerprint(rt)


def _jacobi_run(scheduler: str, zero_copy: bool):
    ny, nx = 18, 16
    rng = np.random.default_rng(7)
    grid = rng.random((ny, nx))
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        config=_config(scheduler, zero_copy),
    ) as rt:
        solver = DistributedJacobi2D(
            rt, ny, nx, partitions_per_locality=1, cost_per_step=1e-4
        )
        solver.initialize(grid)
        field = rt.run(lambda: solver.run(12))
        return field, _fingerprint(rt)


def _storm_run(scheduler: str, zero_copy: bool):
    n = 60
    payload = list(range(32))
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        config=_config(scheduler, zero_copy),
    ) as rt:

        def main() -> int:
            futures = [rt.async_at(1, _echo_len, payload, i) for i in range(n)]
            return sum(f.get() for f in futures)

        total = rt.run(main)
        assert total == sum(len(payload) + i for i in range(n))
        return total, _fingerprint(rt)


def _echo_len(payload, i):
    return len(payload) + i


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_zero_copy_heat1d_bit_identical(scheduler):
    field_off, fp_off = _heat_run(scheduler, zero_copy=False)
    field_on, fp_on = _heat_run(scheduler, zero_copy=True)
    assert fp_on == fp_off
    assert float(np.sum(field_on)) == float(np.sum(field_off))
    np.testing.assert_array_equal(field_on, field_off)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_zero_copy_jacobi2d_bit_identical(scheduler):
    field_off, fp_off = _jacobi_run(scheduler, zero_copy=False)
    field_on, fp_on = _jacobi_run(scheduler, zero_copy=True)
    assert fp_on == fp_off
    assert float(np.sum(field_on)) == float(np.sum(field_off))
    np.testing.assert_array_equal(field_on, field_off)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_zero_copy_parcel_storm_bit_identical(scheduler):
    total_off, fp_off = _storm_run(scheduler, zero_copy=False)
    total_on, fp_on = _storm_run(scheduler, zero_copy=True)
    assert total_on == total_off
    assert fp_on == fp_off


def test_zero_copy_still_validates_picklability():
    """The fast path skips the loopback *decode*, never the encode: an
    unpicklable argument must fail identically with the gate on."""
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        config=Config(parcel__zero_copy=True),
    ) as rt:
        unpicklable = open(__file__)  # noqa: SIM115 - deliberately unshippable
        try:
            with pytest.raises(SerializationError):
                rt.run(lambda: rt.async_at(1, _echo_len, unpicklable, 0).get())
        finally:
            unpicklable.close()


def test_retransmit_charges_encoded_size_every_attempt():
    """Encode-once accounting: every transmission of one parcel charges
    the same, honest byte count -- the wire bytes ride on the parcel."""
    port = LoopbackParcelport()
    delivered = []
    port.install_router(lambda parcel, arrival: delivered.append(parcel))
    body = (("__plain__", _echo_len, None), (list(range(50)), 3), {})
    data = serialize(body)
    parcel = Parcel(source_locality=0, payload=data, target_locality=1)
    assert parcel.size_bytes == len(data) + 64
    port.send(parcel)
    port.retransmit(parcel)
    port.retransmit(parcel)
    assert parcel.attempts == 3
    assert port.parcels_sent == 3
    assert port.bytes_sent == 3 * parcel.size_bytes == 3 * (len(data) + 64)
