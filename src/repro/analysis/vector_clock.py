"""Vector clocks over HPX-thread ids.

The race detector tracks happens-before with one logical clock component
per HPX-thread (keyed by ``tid``; the synthetic main context is tid 0).
Clocks are sparse dicts: a task's clock maps every thread whose causal
past it has absorbed to the latest event counter it has seen from that
thread.

An *epoch* ``(tid, count)`` names one event of one thread; epoch ``e``
happened-before a clock ``C`` iff ``C[e.tid] >= e.count`` -- the classic
FastTrack check, sufficient here because a thread's accesses carry its
own monotonically increasing component.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["VectorClock", "Epoch"]

#: One event of one thread: ``(tid, that thread's clock component)``.
Epoch = Tuple[int, int]


class VectorClock:
    """A sparse vector clock; missing components are implicitly 0."""

    __slots__ = ("_c",)

    def __init__(self, components: Dict[int, int] | None = None) -> None:
        self._c: Dict[int, int] = dict(components) if components else {}

    # Construction ----------------------------------------------------------
    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    # Core operations -------------------------------------------------------
    def tick(self, tid: int) -> int:
        """Advance ``tid``'s own component; returns the new value."""
        value = self._c.get(tid, 0) + 1
        self._c[tid] = value
        return value

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum (absorb ``other``'s causal past), in place."""
        mine = self._c
        for tid, count in other._c.items():
            if count > mine.get(tid, 0):
                mine[tid] = count

    def epoch(self, tid: int) -> Epoch:
        """The epoch of ``tid``'s latest event as seen by this clock."""
        return (tid, self._c.get(tid, 0))

    def dominates(self, epoch: Epoch) -> bool:
        """True iff the event named by ``epoch`` happened-before this clock."""
        tid, count = epoch
        return self._c.get(tid, 0) >= count

    # Introspection ---------------------------------------------------------
    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def __getitem__(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def __len__(self) -> int:
        return len(self._c)

    def __iter__(self) -> Iterator[int]:
        return iter(self._c)

    def __le__(self, other: "VectorClock") -> bool:
        """Pointwise ``<=`` (this clock's past is contained in ``other``'s)."""
        if not isinstance(other, VectorClock):
            return NotImplemented
        theirs = other._c
        return all(count <= theirs.get(tid, 0) for tid, count in self._c.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        # Zero components are not observable; normalise before comparing.
        mine = {t: c for t, c in self._c.items() if c}
        theirs = {t: c for t, c in other._c.items() if c}
        return mine == theirs

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{t}:{c}" for t, c in sorted(self._c.items()))
        return f"VC({{{inner}}})"
