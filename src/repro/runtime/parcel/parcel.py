"""The parcel: ParalleX's active message."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ...errors import ParcelError
from ..agas.gid import Gid

__all__ = ["Parcel"]

_ids = itertools.count(1)


@dataclass
class Parcel:
    """Work shipped to data.

    Exactly one of ``target_gid`` (component action: AGAS resolves the
    current home) or ``target_locality`` (plain action on a node) is set.
    ``payload`` holds the *serialized* ``(action, args, kwargs)`` tuple;
    the destination deserializes it -- see
    :mod:`repro.runtime.parcel.serialization`.
    """

    source_locality: int
    payload: bytes
    target_gid: Optional[Gid] = None
    target_locality: Optional[int] = None
    #: Virtual send time at the source.
    send_time: float = 0.0
    parcel_id: int = field(default_factory=lambda: next(_ids))
    #: Transmissions so far (maintained by the parcelport; retries of a
    #: lost parcel re-send the same object with a bumped count).
    attempts: int = 0

    def __post_init__(self) -> None:
        if (self.target_gid is None) == (self.target_locality is None):
            raise ParcelError(
                "parcel needs exactly one of target_gid or target_locality"
            )
        if self.source_locality < 0:
            raise ParcelError("negative source locality")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise ParcelError("payload must be serialized bytes")

    @property
    def size_bytes(self) -> int:
        """Wire size (payload plus a modelled 64-byte header)."""
        return len(self.payload) + 64
