"""Virtual-time counter sampling: determinism, boundaries, serialization."""

import json

import pytest

from repro.errors import ValidationError
from repro.observability import CounterTimeSeries, sample_counters
from repro.runtime import Runtime
from repro.runtime import context as ctx
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

PATHS = [
    "/threads{total}/count/cumulative",
    "/threads{total}/idle-rate",
    "/parcels{total}/count/sent",
]


def _heat_series(steps=6):
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=2
    ) as rt:
        solver = DistributedHeat1D(rt, 64, Heat1DParams(), cost_per_step=1.0)
        solver.initialize(analytic_heat_profile(64))
        return sample_counters(
            rt, lambda: solver.run(steps), paths=PATHS, interval=1.0
        )


def test_heat1d_sampling_is_deterministic():
    """Acceptance: the same configuration yields a bit-identical series."""
    first, second = _heat_series(), _heat_series()
    assert first.to_csv() == second.to_csv()
    assert first.times == second.times
    assert first.rows == second.rows


def test_samples_land_on_interval_boundaries():
    series = _heat_series()
    assert len(series) >= 3
    # All but the final completion-time sample sit on exact boundaries.
    for time in series.times[:-1]:
        assert time == pytest.approx(round(time))
    assert series.times == sorted(series.times)


def test_counters_are_monotone_where_cumulative():
    series = _heat_series()
    for path in ("/threads{total}/count/cumulative", "/parcels{total}/count/sent"):
        values = series.values(path)
        assert values == sorted(values)
        assert values[-1] > 0.0


def test_final_sample_at_completion_and_result_stored():
    with Runtime(n_localities=1, workers_per_locality=2) as rt:
        series = sample_counters(
            rt,
            lambda: ctx.add_cost(3.5) or 42,
            paths=["/threads{total}/count/cumulative"],
            interval=1.0,
        )
    assert series.result == 42
    assert series.times[-1] == pytest.approx(rt.makespan)
    # Boundaries 1, 2, 3 crossed by the single task, plus the final sample.
    assert len(series) == 4


def test_pools_restored_after_sampling():
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        pool = rt.localities[0].pool
        original = pool._execute
        sample_counters(
            rt, lambda: None, paths=["/runtime/uptime"], interval=1.0
        )
        assert pool._execute == original


def test_interval_must_be_positive():
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        with pytest.raises(ValidationError):
            sample_counters(rt, lambda: None, paths=PATHS, interval=0.0)


def test_series_validates_appends():
    series = CounterTimeSeries(["a", "b"])
    series.append(1.0, [1.0, 2.0])
    with pytest.raises(ValidationError):
        series.append(2.0, [1.0])  # wrong arity
    with pytest.raises(ValidationError):
        series.append(0.5, [0.0, 0.0])  # time went backwards
    with pytest.raises(ValidationError):
        series.values("c")  # unknown path
    with pytest.raises(ValidationError):
        CounterTimeSeries([])


def test_csv_and_json_round_trip():
    series = CounterTimeSeries(["x", "y"])
    series.append(1.0, [0.5, 2.0])
    series.append(2.0, [1.5, 4.0])
    csv = series.to_csv()
    assert csv.splitlines()[0] == "time,x,y"
    assert csv.splitlines()[1] == "1,0.5,2"
    document = json.loads(series.to_json())
    assert document["paths"] == ["x", "y"]
    assert document["samples"][1] == {
        "time": 2.0,
        "values": {"x": 1.5, "y": 4.0},
    }
