"""Unit tests for the Virtual Node Scheme layout."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.simd import VnsLayout


def test_layout_shape():
    layout = VnsLayout(width=18, lanes=4)  # 16 interior / 4 lanes = chunk 4
    assert layout.chunk == 4
    assert layout.packed_rows == 6


def test_invalid_layouts_rejected():
    with pytest.raises(LayoutError):
        VnsLayout(18, 0)
    with pytest.raises(LayoutError):
        VnsLayout(2, 1)
    with pytest.raises(LayoutError):
        VnsLayout(18, 5)  # 16 interior not divisible by 5


def test_pack_row_positions():
    layout = VnsLayout(10, 2)  # interior 8, chunk 4
    row = np.arange(10.0)
    packed = layout.pack_row(row)
    # lane 0 holds interior elements 1..4, lane 1 holds 5..8.
    assert packed[1:-1, 0].tolist() == [1.0, 2.0, 3.0, 4.0]
    assert packed[1:-1, 1].tolist() == [5.0, 6.0, 7.0, 8.0]
    # halos: lane 0 left = global boundary, lane 1 left = lane 0's last.
    assert packed[0, 0] == 0.0
    assert packed[0, 1] == 4.0
    assert packed[-1, 0] == 5.0  # lane 0 right = lane 1's first
    assert packed[-1, 1] == 9.0  # global right boundary


def test_roundtrip():
    layout = VnsLayout(34, 8)
    row = np.linspace(-1, 1, 34)
    assert np.allclose(layout.unpack_row(layout.pack_row(row)), row)


def test_pack_row_wrong_shape_rejected():
    layout = VnsLayout(10, 2)
    with pytest.raises(LayoutError):
        layout.pack_row(np.zeros(11))
    with pytest.raises(LayoutError):
        layout.unpack_row(np.zeros((3, 2)))


def test_neighbour_property():
    """The load-bearing invariant: with fresh halos, packed[j-1]/[j+1]
    are exactly the x-1/x+1 neighbours of packed[j]."""
    layout = VnsLayout(26, 4)
    row = np.arange(26.0)
    packed = layout.pack_row(row)
    for j in range(1, layout.chunk + 1):
        for lane in range(4):
            x = 1 + lane * layout.chunk + (j - 1)
            assert packed[j, lane] == row[x]
            assert packed[j - 1, lane] == row[x - 1]
            assert packed[j + 1, lane] == row[x + 1]


def test_refresh_halo_after_update():
    layout = VnsLayout(10, 2)
    row = np.arange(10.0)
    packed = layout.pack_row(row)
    packed[1:-1, :] *= 2.0  # simulate a stencil write of the interior
    layout.refresh_halo(packed)
    assert packed[0, 1] == 8.0  # lane 0's last interior (4) doubled
    assert packed[-1, 0] == 10.0  # lane 1's first interior (5) doubled
    # Global boundary halos untouched (Dirichlet).
    assert packed[0, 0] == 0.0
    assert packed[-1, 1] == 9.0


def test_refresh_halo_single_lane_is_noop():
    layout = VnsLayout(10, 1)
    packed = layout.pack_row(np.arange(10.0))
    before = packed.copy()
    layout.refresh_halo(packed)
    assert np.array_equal(packed, before)


def test_grid_roundtrip():
    layout = VnsLayout(18, 4)
    rng = np.random.default_rng(7)
    grid = rng.random((5, 18))
    assert np.allclose(layout.unpack_grid(layout.pack_grid(grid)), grid)


def test_pack_grid_wrong_shape():
    layout = VnsLayout(18, 4)
    with pytest.raises(LayoutError):
        layout.pack_grid(np.zeros((5, 20)))
    with pytest.raises(LayoutError):
        layout.unpack_grid(np.zeros((5, 6, 3)))


def test_dtype_preserved():
    layout = VnsLayout(10, 2)
    packed = layout.pack_row(np.arange(10, dtype=np.float32))
    assert packed.dtype == np.float32
    assert layout.unpack_row(packed).dtype == np.float32
