"""Property-based tests: the SIMD layer against NumPy ground truth."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.simd import AVX2, NEON, Pack, VnsLayout, sve

ISAS = [NEON, AVX2, sve(512)]

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


def lane_arrays(isa, dtype=np.float64):
    return arrays(dtype, isa.lanes(np.dtype(dtype)), elements=finite)


@given(data=st.data(), isa=st.sampled_from(ISAS))
def test_pack_add_matches_numpy(data, isa):
    a = data.draw(lane_arrays(isa))
    b = data.draw(lane_arrays(isa))
    result = (Pack(isa, a) + Pack(isa, b)).to_array()
    assert np.array_equal(result, a + b)


@given(data=st.data(), isa=st.sampled_from(ISAS))
def test_pack_mul_matches_numpy(data, isa):
    a = data.draw(lane_arrays(isa))
    b = data.draw(lane_arrays(isa))
    assert np.array_equal((Pack(isa, a) * Pack(isa, b)).to_array(), a * b)


@given(data=st.data(), isa=st.sampled_from(ISAS))
def test_pack_fma_matches_numpy(data, isa):
    a = data.draw(lane_arrays(isa))
    b = data.draw(lane_arrays(isa))
    c = data.draw(lane_arrays(isa))
    result = Pack(isa, a).fma(Pack(isa, b), Pack(isa, c)).to_array()
    assert np.allclose(result, a * b + c, rtol=1e-12)


@given(data=st.data(), isa=st.sampled_from(ISAS))
def test_pack_hadd_matches_numpy_sum(data, isa):
    a = data.draw(lane_arrays(isa))
    assert Pack(isa, a).hadd() == float(a.sum(dtype=np.float64))


@given(data=st.data(), isa=st.sampled_from(ISAS))
def test_slide_left_then_right_keeps_middle(data, isa):
    a = data.draw(lane_arrays(isa))
    pack = Pack(isa, a)
    round_trip = pack.slide_left(0.0).slide_right(0.0).to_array()
    # Lane 0 is destroyed, the rest of the interior survives shifted back.
    assert np.array_equal(round_trip[1:-1], a[1:-1])
    assert round_trip[0] == 0.0


@given(data=st.data(), isa=st.sampled_from(ISAS))
def test_shuffle_is_permutation(data, isa):
    lanes = isa.lanes(np.float64)
    a = data.draw(lane_arrays(isa))
    perm = data.draw(st.permutations(range(lanes)))
    shuffled = Pack(isa, a).shuffle(perm).to_array()
    assert sorted(shuffled.tolist()) == sorted(a.tolist())
    for out_lane, src_lane in enumerate(perm):
        assert shuffled[out_lane] == a[src_lane]


@given(
    lanes=st.sampled_from([1, 2, 4, 8, 16]),
    chunk=st.integers(min_value=1, max_value=32),
    data=st.data(),
)
@settings(max_examples=60)
def test_vns_roundtrip_any_geometry(lanes, chunk, data):
    width = 2 + lanes * chunk
    row = data.draw(arrays(np.float64, width, elements=finite))
    layout = VnsLayout(width, lanes)
    assert np.array_equal(layout.unpack_row(layout.pack_row(row)), row)


@given(
    lanes=st.sampled_from([2, 4, 8]),
    chunk=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
@settings(max_examples=40)
def test_vns_neighbour_invariant(lanes, chunk, data):
    """packed[j-1]/[j+1] are the true x-neighbours for every interior x."""
    width = 2 + lanes * chunk
    row = data.draw(arrays(np.float64, width, elements=finite))
    layout = VnsLayout(width, lanes)
    packed = layout.pack_row(row)
    for lane in range(lanes):
        for j in range(1, chunk + 1):
            x = 1 + lane * chunk + (j - 1)
            assert packed[j, lane] == row[x]
            assert packed[j - 1, lane] == row[x - 1]
            assert packed[j + 1, lane] == row[x + 1]


@given(
    lanes=st.sampled_from([2, 4]),
    chunk=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=40)
def test_vns_refresh_restores_neighbour_invariant_after_write(lanes, chunk, data):
    width = 2 + lanes * chunk
    row = data.draw(arrays(np.float64, width, elements=finite))
    layout = VnsLayout(width, lanes)
    packed = layout.pack_row(row)
    packed[1:-1, :] = packed[1:-1, :] * 0.5 + 1.0  # arbitrary interior update
    layout.refresh_halo(packed)
    unpacked = layout.unpack_row(packed)
    repacked = layout.pack_row(unpacked)
    assert np.array_equal(packed, repacked)
