"""Unit tests for the topology tree and pinning."""

import pytest

from repro.errors import PinningError, TopologyError
from repro.hardware import CpuSet, machine


def test_cpuset_preserves_order_and_dedups():
    cs = CpuSet([3, 1, 3, 2])
    assert list(cs) == [3, 1, 2]
    assert len(cs) == 3


def test_cpuset_negative_rejected():
    with pytest.raises(TopologyError):
        CpuSet([-1])


def test_cpuset_set_operations():
    a = CpuSet([0, 1, 2])
    b = CpuSet([2, 3])
    assert list(a.union(b)) == [0, 1, 2, 3]
    assert list(a.intersection(b)) == [2]
    assert a.first(2) == CpuSet([0, 1])


def test_cpuset_equality_ignores_order():
    assert CpuSet([1, 2]) == CpuSet([2, 1])
    assert hash(CpuSet([1, 2])) == hash(CpuSet([2, 1]))


def test_machine_tree_shape_xeon():
    topo = machine("xeon-e5-2660v3").topology
    assert len(topo.sockets) == 2
    assert len(topo.domains) == 2
    assert topo.n_cores == 20
    # 2 SMT threads per core
    assert len(topo.cores[0].pus) == 2


def test_machine_tree_shape_a64fx():
    topo = machine("a64fx").topology
    assert len(topo.domains) == 4  # CMGs
    assert topo.n_cores == 48
    assert all(d.n_cores == 12 for d in topo.domains)


def test_core_lookup_and_domain():
    topo = machine("kunpeng916").topology
    core = topo.core(17)
    assert core.core_id == 17
    assert topo.domain_of_core(17).domain_id == 1  # 16 cores per domain


def test_core_lookup_out_of_range():
    with pytest.raises(TopologyError):
        machine("a64fx").topology.core(48)


def test_pin_compact_uses_first_smt_thread():
    topo = machine("xeon-e5-2660v3").topology  # 2 PUs per core
    cpuset = topo.pin_compact(3)
    # PUs 0,2,4: the physical (smt 0) PU of cores 0,1,2.
    assert list(cpuset) == [0, 2, 4]


def test_pin_compact_fills_domains_in_order():
    m = machine("kunpeng916")
    counts = m.topology.cores_per_domain_for(m.topology.pin_compact(40))
    assert counts == {0: 16, 1: 16, 2: 8}


def test_pin_scatter_round_robins_domains():
    m = machine("kunpeng916")
    counts = m.topology.cores_per_domain_for(m.topology.pin_scatter(6))
    assert counts == {0: 2, 1: 2, 2: 1, 3: 1}


def test_pin_too_many_workers_rejected():
    topo = machine("thunderx2").topology
    with pytest.raises(PinningError):
        topo.pin_compact(topo.n_cores + 1)
    with pytest.raises(PinningError):
        topo.pin_scatter(0)


def test_cores_per_domain_for_unknown_pu():
    m = machine("a64fx")
    with pytest.raises(PinningError):
        m.topology.cores_per_domain_for(CpuSet([10_000]))


def test_all_machines_have_consistent_trees(any_machine):
    topo = any_machine.topology
    spec = any_machine.spec
    assert topo.n_cores == spec.cores_per_node
    assert len(topo.domains) == spec.numa_domains
    pu_ids = [pu.pu_id for c in topo.cores for pu in c.pus]
    assert pu_ids == sorted(pu_ids)
    assert len(set(pu_ids)) == len(pu_ids) == spec.pus_per_node
