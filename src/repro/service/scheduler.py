"""Weighted fair scheduling of pending jobs across tenants.

A single FIFO ready queue lets one chatty tenant starve everyone else.
:class:`FairJobScheduler` instead layers per-tenant queues under stride
scheduling -- the runtime's generic
:class:`~repro.runtime.threads.scheduler.WeightedFairQueues` -- so over
any window each backlogged tenant is served in proportion to its
configured weight, regardless of how deep anyone's backlog is.

Jobs in retry backoff (``not_before`` in the future) park in a delay
room and only enter their tenant's queue once eligible, so a tenant
cannot burn its fair share on jobs that are not yet runnable.
"""

from __future__ import annotations

from typing import Container, Optional

from ..runtime.threads.scheduler import WeightedFairQueues

__all__ = ["FairJobScheduler"]


class FairJobScheduler:
    """Per-tenant fair queues plus a delay room for backoff."""

    def __init__(self) -> None:
        self._queues: WeightedFairQueues[str] = WeightedFairQueues()
        # job_id -> (tenant, not_before) for jobs waiting out a backoff.
        self._delayed: dict[str, tuple[str, float]] = {}

    def set_weight(self, tenant: str, weight: float) -> None:
        self._queues.set_weight(tenant, weight)

    def enqueue(self, tenant: str, job_id: str, *, not_before: float, now: float) -> None:
        """Make a pending job schedulable (immediately or after backoff)."""
        if not_before > now:
            self._delayed[job_id] = (tenant, not_before)
        else:
            self._queues.push(tenant, job_id)

    def promote(self, now: float) -> int:
        """Move delay-room jobs whose backoff has elapsed into the queues."""
        ready = sorted(
            job_id
            for job_id, (_, not_before) in self._delayed.items()
            if not_before <= now
        )
        for job_id in ready:
            tenant, _ = self._delayed.pop(job_id)
            self._queues.push(tenant, job_id)
        return len(ready)

    def next_job(
        self, now: float, *, skip_tenants: Container[str] = ()
    ) -> Optional[tuple[str, str]]:
        """Pop ``(tenant, job_id)`` for the fairest eligible tenant.

        ``skip_tenants`` holds tenants currently at their concurrency
        quota; their queued jobs stay put and their virtual pass is not
        charged.
        """
        self.promote(now)
        return self._queues.pop(skip=skip_tenants)

    def remove(self, tenant: str, job_id: str) -> bool:
        """Drop a job wherever it is queued (cancellation)."""
        if job_id in self._delayed:
            del self._delayed[job_id]
            return True
        return self._queues.remove(tenant, job_id)

    def pending(self, tenant: Optional[str] = None) -> int:
        """Jobs waiting (queued or delayed), optionally for one tenant."""
        queued = self._queues.pending(tenant)
        if tenant is None:
            return queued + len(self._delayed)
        return queued + sum(
            1 for owner, _ in self._delayed.values() if owner == tenant
        )

    def delayed(self) -> int:
        return len(self._delayed)

    def next_wakeup(self) -> Optional[float]:
        """Earliest ``not_before`` in the delay room (idle-loop hint)."""
        if not self._delayed:
            return None
        return min(not_before for _, not_before in self._delayed.values())

    def __len__(self) -> int:
        return self.pending()
