"""Deriving the roofline's arithmetic-intensity inputs from first
principles.

The analytic cost model (and the paper) assume 3 memory transfers per
lattice-site update when three rows fit in cache, 5 when they do not,
and 2 in the streaming-store / implicit-blocking regime.  This harness
*derives* those numbers by running the exact Jacobi access trace through
the LRU set-associative cache simulator, and records the derivation as
an exhibit.
"""

import pytest

from repro.hardware.cachesim import CacheSim, jacobi_row_traffic
from repro.reporting import format_table


SCENARIOS = [
    # (label, cache kB, line B, write-allocate, ny, nx, elem, expected B/LUP)
    ("doubles, 3 rows fit (paper baseline)", 32, 64, True, 32, 512, 8, 24.0),
    ("floats, 3 rows fit (paper baseline)", 32, 64, True, 32, 1024, 4, 12.0),
    ("doubles, rows too large (worst case)", 32, 64, True, 12, 4096, 8, 40.0),
    ("doubles, streaming stores (blocked regime)", 32, 64, False, 32, 512, 8, 16.0),
    ("doubles, 256 B lines (A64FX geometry)", 32, 256, True, 32, 512, 8, 24.0),
]


def derive_all() -> list[tuple[str, float, float]]:
    rows = []
    for label, kb, line, wa, ny, nx, elem, expected in SCENARIOS:
        cache = CacheSim(kb * 1024, line, 8, write_allocate=wa)
        measured = jacobi_row_traffic(cache, ny, nx, elem_bytes=elem, sweeps=2)
        rows.append((label, expected, measured))
    return rows


def test_derivation_exhibit(benchmark, save_exhibit):
    rows = benchmark.pedantic(derive_all, rounds=1, iterations=1)
    table = format_table(
        ["scenario", "assumed B/LUP", "simulated B/LUP", "error"],
        [
            [label, f"{expected:.0f}", f"{measured:.2f}", f"{measured / expected - 1:+.1%}"]
            for label, expected, measured in rows
        ],
    )
    save_exhibit(
        "cachesim_derivation",
        "Derivation: memory traffic per lattice-site update "
        "(LRU set-associative cache, exact 5-point trace)\n" + table,
    )
    for label, expected, measured in rows:
        assert measured == pytest.approx(expected, rel=0.10), label


def test_transition_point_matches_capacity(benchmark):
    """Sweep the row size: traffic jumps from 3 to 5 transfers right
    where three rows stop fitting in the cache."""

    def sweep():
        out = {}
        for nx in (256, 512, 1024, 2048, 4096):
            cache = CacheSim(32 * 1024, 64, 8)
            out[nx] = jacobi_row_traffic(cache, 12, nx, sweeps=2)
        return out

    traffic = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # 32 KiB / (3 rows x 8 B) ~ 1365 elements: 1024 fits, 2048 does not.
    assert traffic[512] == pytest.approx(24.0, rel=0.1)
    assert traffic[1024] == pytest.approx(24.0, rel=0.15)
    assert traffic[2048] == pytest.approx(40.0, rel=0.15)
    assert traffic[4096] == pytest.approx(40.0, rel=0.1)
