"""1D heat-equation solvers (paper Sec. IV-A, V-A, VII-A).

Three implementations of the 3-point stencil of Eq. (3), all with
periodic boundaries (as in the canonical HPX ``1d_stencil`` the paper's
benchmark derives from):

* :func:`heat1d_reference` -- plain NumPy, the numerical ground truth;
* :class:`Heat1DPartitioned` -- shared-memory solver structured exactly
  like Listing 1: the grid is cut into ``nlp`` partitions and each time
  step is an ``hpx::parallel::for_each`` over partitions;
* :class:`DistributedHeat1D` -- the fully distributed, *futurized*
  solver used for Fig 3: one :class:`Heat1DPartition` component per
  locality slot, halo values travelling as parcels, and a per-partition
  dataflow chain so network latencies hide under compute (no global
  barrier anywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Any

from ..errors import ConfigError, ValidationError
from ..runtime import context as ctx
from ..runtime.agas.component import Component
from ..runtime.algorithms import ExecutionPolicy, for_each, for_each_block, seq
from ..runtime.futures import Future, Promise, make_ready_future, when_all
from ..runtime.lco.dataflow import dataflow
from ..runtime.runtime import Runtime
from .grid import Layout  # noqa: F401  (re-exported type alias)
from .recovery import run_with_recovery

__all__ = [
    "Heat1DParams",
    "heat1d_reference",
    "Heat1DPartitioned",
    "Heat1DPartition",
    "DistributedHeat1D",
]


@dataclass(frozen=True)
class Heat1DParams:
    """Discretisation of Eq. (2): ``du/dt = alpha * d2u/dx2``."""

    alpha: float = 1.0
    dt: float = 4.0e-5
    dx: float = 1.0e-2

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.dt <= 0 or self.dx <= 0:
            raise ValidationError("alpha, dt and dx must all be positive")

    @property
    def k(self) -> float:
        """The stencil coefficient ``alpha * dt / dx^2`` of Eq. (3)."""
        return self.alpha * self.dt / (self.dx * self.dx)

    def check_stability(self) -> None:
        """Explicit Euler needs ``k <= 1/2`` or the solution blows up."""
        if self.k > 0.5:
            raise ValidationError(
                f"unstable discretisation: alpha*dt/dx^2 = {self.k:.4g} > 0.5"
            )


def heat1d_reference(u0: np.ndarray, steps: int, params: Heat1DParams) -> np.ndarray:
    """Ground-truth periodic 3-point stencil, vectorized NumPy."""
    if steps < 0:
        raise ValidationError("steps must be non-negative")
    u = np.array(u0, dtype=np.float64, copy=True)
    k = params.k
    for _ in range(steps):
        u = u + k * (np.roll(u, 1) - 2.0 * u + np.roll(u, -1))
    return u


def _update_interior(u: np.ndarray, left: float, right: float, k: float) -> np.ndarray:
    """One stencil step over a chunk given its two halo values."""
    new = np.empty_like(u)
    if u.shape[0] == 1:
        new[0] = u[0] + k * (left - 2.0 * u[0] + right)
        return new
    new[1:-1] = u[1:-1] + k * (u[:-2] - 2.0 * u[1:-1] + u[2:])
    new[0] = u[0] + k * (left - 2.0 * u[0] + u[1])
    new[-1] = u[-1] + k * (u[-2] - 2.0 * u[-1] + right)
    return new


class Heat1DPartitioned:
    """Shared-memory solver in the shape of Listing 1.

    The grid is a flat array of ``nx`` points cut into ``nlp``
    partitions; each time step applies ``stencil_update`` to every
    partition through ``for_each(policy, range(nlp), ...)``.  Periodic
    halos come straight from the shared array (no messages on one node).
    """

    def __init__(self, nx: int, nlp: int, params: Heat1DParams | None = None) -> None:
        if nlp < 1:
            raise ValidationError("need at least one partition")
        if nx < nlp or nx % nlp != 0:
            raise ValidationError(
                f"{nx} points do not split evenly into {nlp} partitions"
            )
        self.nx = nx
        self.nlp = nlp
        self.local_nx = nx // nlp
        self.params = params or Heat1DParams()
        self.params.check_stability()
        self._u = [np.zeros(nx), np.zeros(nx)]
        self.steps_done = 0

    def initialize(self, u0: np.ndarray) -> None:
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.shape != (self.nx,):
            raise ValidationError(f"expected initial field of shape ({self.nx},)")
        self._u[0][...] = u0
        self._u[1][...] = u0

    def _stencil_update(self, i: int, t: int) -> None:
        """Update partition ``i`` for time step ``t`` (Listing 1 body)."""
        curr = self._u[t % 2]
        new = self._u[(t + 1) % 2]
        lo = i * self.local_nx
        hi = (i + 1) * self.local_nx
        left = curr[(lo - 1) % self.nx]
        right = curr[hi % self.nx]
        new[lo:hi] = _update_interior(curr[lo:hi], left, right, self.params.k)

    def _stencil_update_block(self, parts: range, t: int) -> None:
        """Fused Listing 1 body: one update over a run of partitions.

        Every partition reads halos from the *previous* time level, so a
        contiguous run of partitions is just a wider 3-point stencil over
        their combined span -- the interior partition boundaries resolve
        to exactly the ``curr`` values the per-partition updates would
        read, and :func:`_update_interior` applies the identical
        expression per element.  Bit-identical to updating the
        partitions one by one, minus the per-partition Python dispatch
        and slice bookkeeping.
        """
        curr = self._u[t % 2]
        new = self._u[(t + 1) % 2]
        lo = parts.start * self.local_nx
        hi = parts.stop * self.local_nx
        left = curr[(lo - 1) % self.nx]
        right = curr[hi % self.nx]
        new[lo:hi] = _update_interior(curr[lo:hi], left, right, self.params.k)

    def run(
        self, steps: int, policy: ExecutionPolicy = seq, fused: bool = True
    ) -> np.ndarray:
        """Iterate ``steps`` time steps; returns the final field.

        ``fused`` (default) drives each time step through
        :func:`~repro.runtime.algorithms.for_each_block`: the same chunk
        partitioning and one HPX-thread per chunk as the per-partition
        path, but each thread applies one vectorized update over its
        whole span of partitions.  Results and virtual makespans are
        bit-identical either way (the determinism tests assert it);
        ``fused=False`` keeps the literal Listing 1 shape.
        """
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        for t in range(self.steps_done, self.steps_done + steps):
            if fused:
                for_each_block(
                    policy,
                    0,
                    self.nlp,
                    lambda rng, t=t: self._stencil_update_block(rng, t),
                )
            else:
                for_each(
                    policy, range(self.nlp), lambda i, t=t: self._stencil_update(i, t)
                )
        self.steps_done += steps
        return self.solution()

    def solution(self) -> np.ndarray:
        return np.array(self._u[self.steps_done % 2], copy=True)


class Heat1DPartition(Component):
    """One locality's share of the distributed 1D grid.

    Halo values for step ``t`` arrive via :meth:`deposit_halo` (shipped
    as parcels by the neighbours) and are matched with per-``(step,
    side)`` promises -- a tiny channel.  :meth:`advance` consumes them,
    steps the local field, and immediately sends the *new* boundary
    values for step ``t+1``, so neighbours can run ahead; nothing ever
    blocks.
    """

    def __init__(
        self,
        data: np.ndarray,
        params: Heat1DParams,
        cost_per_step: float = 0.0,
    ) -> None:
        super().__init__()
        self.u = np.array(data, dtype=np.float64, copy=True)
        self.params = params
        #: Virtual compute seconds one local step costs (cost model hook).
        self.cost_per_step = float(cost_per_step)
        self._halos: dict[tuple[int, str], Promise] = {}
        #: Boundary values as sent per step, for fault recovery: a
        #: neighbour that lost a halo parcel can ask for it again.
        self._edge_log: dict[int, tuple[float, float]] = {}
        self._runtime: Runtime | None = None
        self._left_gid = None
        self._right_gid = None
        self.steps_done = 0
        self._chain_until: int | None = None
        #: Completion future of the most recently built chain.
        self.final_future: Future = make_ready_future(0)

    # Wiring -----------------------------------------------------------------
    def connect(self, runtime: Runtime, left_gid, right_gid) -> None:
        """Install neighbour GIDs (periodic ring)."""
        self._runtime = runtime
        self._left_gid = left_gid
        self._right_gid = right_gid

    def connect_ring(self, left_gid, right_gid) -> None:
        """Remote-safe :meth:`connect`: runs as a component action on the
        home locality and wires the *executing* runtime (in distributed
        mode each process has its own), so the driver never has to ship a
        Runtime reference."""
        self.connect(ctx.current().runtime, left_gid, right_gid)

    def chain_result(self, target: int) -> int:
        """Build the chain to absolute step ``target`` and wait for it.

        The remote-safe run protocol: the reply parcel of this one invoke
        is the completion signal, so the driver never reads
        ``final_future`` across a process boundary.  Blocking here is
        cooperative -- the home pool keeps executing the chain (and
        remote halos keep landing) underneath the wait.
        """
        self.ensure_chain(target)
        return self.final_future.get()  # repro-lint: disable=PX301

    def _halo_promise(self, step: int, side: str) -> Promise:
        key = (step, side)
        if key not in self._halos:
            self._halos[key] = Promise()
        return self._halos[key]

    def halo_future(self, step: int, side: str) -> Future:
        """Future for the ``side`` ("left"/"right") halo of ``step``."""
        return self._halo_promise(step, side).get_future()

    # Remote surface ----------------------------------------------------------
    def deposit_halo(self, step: int, side: str, value: float) -> None:
        """A neighbour's boundary value arriving (component action).

        Idempotent: redelivery (a duplicated parcel, or a recovery
        resend) of an already-deposited halo is ignored -- the stencil is
        deterministic, so the value is necessarily identical.
        """
        if side not in ("left", "right"):
            raise ValidationError(f"halo side must be left/right, got {side!r}")
        promise = self._halo_promise(step, side)
        if not promise.is_ready():
            promise.set_value(float(value))

    def send_boundaries(self, step: int) -> None:
        """Ship this partition's current edges to both neighbours.

        The left edge is the *right* halo of the left neighbour and vice
        versa.
        """
        runtime = self._require_runtime()
        self.mark_read("u")
        left_edge, right_edge = float(self.u[0]), float(self.u[-1])
        self._edge_log[step] = (left_edge, right_edge)
        runtime.invoke_apply(self._left_gid, "deposit_halo", step, "right", left_edge)
        runtime.invoke_apply(self._right_gid, "deposit_halo", step, "left", right_edge)

    def resend_boundaries(self, step: int) -> bool:
        """Re-ship the logged boundary values of ``step`` (fault recovery).

        Returns False when this partition has not produced the values for
        ``step`` yet -- its own chain will send them in due course.
        """
        logged = self._edge_log.get(step)
        if logged is None:
            return False
        runtime = self._require_runtime()
        left_edge, right_edge = logged
        runtime.invoke_apply(self._left_gid, "deposit_halo", step, "right", left_edge)
        runtime.invoke_apply(self._right_gid, "deposit_halo", step, "left", right_edge)
        return True

    def advance(self, t: int, left: float, right: float) -> int:
        """Apply step ``t`` given its halos; send halos for ``t+1``."""
        if t != self.steps_done:
            raise ValidationError(
                f"advance({t}) out of order; partition is at step {self.steps_done}"
            )
        self.mark_write("u")
        self.u = _update_interior(self.u, left, right, self.params.k)
        if self.cost_per_step:
            ctx.add_cost(self.cost_per_step)
        self.steps_done += 1
        # Drop the consumed promises so memory stays bounded over long runs,
        # and keep only a bounded window of resendable edge history.
        self._halos.pop((t, "left"), None)
        self._halos.pop((t, "right"), None)
        self._edge_log.pop(t - 64, None)
        self.send_boundaries(self.steps_done)
        return self.steps_done

    def start_chain(self, steps: int) -> None:
        """Build the futurized time-step chain on this locality.

        Runs *as a component action on the home locality*, so every
        dataflow body it creates is scheduled on the home pool.  The
        chain for step ``t`` fires when step ``t-1`` is done and both
        halos of ``t`` have arrived -- pure continuation flow.
        """
        self.ensure_chain(self.steps_done + steps)

    def ensure_chain(self, target: int) -> None:
        """Build or extend the chain up to *absolute* step ``target``.

        Idempotent and race-free under recovery: the target is absolute,
        so a re-invocation that arrives after the partition has advanced
        (or whose original request raced a concurrent resend) extends the
        live chain exactly to ``target`` instead of overshooting.  A
        chain already built to ``target`` or beyond is left alone.
        """
        self._require_runtime()
        if self._chain_until is not None and self._chain_until >= target:
            return
        if self._chain_until is None:
            # Fresh chain (or resuming after a completed one): the last
            # advance of the previous chain already sent the boundaries
            # for step ``steps_done``; step 0 must seed them itself.
            built = self.steps_done
            if built == 0:
                self.send_boundaries(0)
            prev: Future = make_ready_future(built)
        else:
            # Live chain ending below target: append to its tail.
            built = self._chain_until
            prev = self.final_future
        self._chain_until = target
        for t in range(built, target):
            prev = dataflow(
                lambda left, right, _done, t=t: self.advance(t, left, right),
                self.halo_future(t, "left"),
                self.halo_future(t, "right"),
                prev,
            )
        self.final_future = prev

    def local_solution(self) -> np.ndarray:
        self.mark_read("u")
        return np.array(self.u, copy=True)

    # Checkpoint protocol ------------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Snapshot the field, step count and resendable edge history.

        Taken at epoch quiescence, so the volatile chain state (halo
        promises, dataflow tail) is reconstructible and deliberately
        excluded.  The edge log rides along because a post-rollback
        neighbour may need edges from *before* the epoch re-sent.
        """
        return {
            "u": np.array(self.u, copy=True),
            "steps_done": self.steps_done,
            "edge_log": dict(self._edge_log),
            "params": self.params,
            "cost_per_step": self.cost_per_step,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Roll back to a :meth:`checkpoint_state` snapshot, in place."""
        self.u = np.array(state["u"], dtype=np.float64, copy=True)
        self.params = state["params"]
        self.cost_per_step = float(state["cost_per_step"])
        self.steps_done = int(state["steps_done"])
        self._edge_log = dict(state["edge_log"])
        self.reset_chain()

    def reset_chain(self) -> None:
        """Abandon the live chain and halo-matching state (crash rollback).

        Safe only at a global stall: the progress engine has proven no
        queued task references the old promises, so the next
        ``ensure_chain`` starts a fresh timeline from ``steps_done``.
        """
        self._halos = {}
        self._chain_until = None
        self.final_future = make_ready_future(self.steps_done)

    def _require_runtime(self) -> Runtime:
        if self._runtime is None or self._left_gid is None or self._right_gid is None:
            raise ValidationError("partition is not connected; call connect() first")
        return self._runtime


class DistributedHeat1D:
    """Driver for the fully distributed solver (Fig 3's application).

    Splits ``nx`` points over ``partitions_per_locality * n_localities``
    partitions laid out round the periodic ring in locality-major order,
    registers each partition as a component on its locality, and runs
    the futurized chains to completion.
    """

    def __init__(
        self,
        runtime: Runtime,
        nx: int,
        params: Heat1DParams | None = None,
        partitions_per_locality: int = 1,
        cost_per_step: float = 0.0,
    ) -> None:
        n_parts = runtime.n_localities * partitions_per_locality
        if nx < n_parts or nx % n_parts != 0:
            raise ValidationError(
                f"{nx} points do not split evenly into {n_parts} partitions"
            )
        self.runtime = runtime
        self.nx = nx
        self.params = params or Heat1DParams()
        self.params.check_stability()
        self.n_partitions = n_parts
        self.local_nx = nx // n_parts
        self.partitions_per_locality = partitions_per_locality
        self.cost_per_step = cost_per_step
        self._gids: list = []
        self._parts: list[Heat1DPartition] = []
        # Absolute step count driven so far (distributed mode cannot read
        # ``part.steps_done`` across processes).
        self._steps_run = 0

    def initialize(self, u0: np.ndarray) -> None:
        """Create and connect the partition components from ``u0``."""
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.shape != (self.nx,):
            raise ValidationError(f"expected initial field of shape ({self.nx},)")
        self._gids.clear()
        self._parts.clear()
        for p in range(self.n_partitions):
            locality = p // self.partitions_per_locality
            chunk = u0[p * self.local_nx : (p + 1) * self.local_nx]
            part = Heat1DPartition(chunk, self.params, self.cost_per_step)
            gid = self.runtime.new_component(part, locality_id=locality)
            self._gids.append(gid)
            self._parts.append(part)
        n = self.n_partitions
        if self.runtime.distributed:
            # The live partition objects are the home processes' copies;
            # wire them there (partitions homed at locality 0 resolve to
            # the driver's own objects, so those connect locally too).
            when_all(
                [
                    self.runtime.invoke_async(
                        self._gids[p],
                        "connect_ring",
                        self._gids[(p - 1) % n],
                        self._gids[(p + 1) % n],
                    )
                    for p in range(n)
                ]
            ).get()
            return
        for p, part in enumerate(self._parts):
            part.connect(self.runtime, self._gids[(p - 1) % n], self._gids[(p + 1) % n])

    def run(self, steps: int) -> np.ndarray:
        """Run ``steps`` time steps; returns the assembled global field."""
        if not self._parts:
            raise ValidationError("call initialize() before run()")
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if steps > 0:
            if self.runtime.distributed:
                target = self._steps_run + steps
                when_all(
                    [
                        self.runtime.invoke_async(gid, "chain_result", target)
                        for gid in self._gids
                    ]
                ).get()
                self._steps_run = target
            else:
                chains = [
                    self.runtime.invoke_async(gid, "start_chain", steps)
                    for gid in self._gids
                ]
                when_all(chains).get()  # chains are *built*; now wait for completion
                when_all([part.final_future for part in self._parts]).get()
                self._steps_run += steps
        return self.solution()

    def run_resilient(
        self,
        steps: int,
        max_recovery_rounds: int = 3,
        checkpoint_every: int | None = None,
    ) -> np.ndarray:
        """Run ``steps`` steps, surviving parcel loss and locality outages.

        The transparent retry layer already bridges transient faults; on
        top of it, :func:`~repro.stencil.recovery.run_with_recovery`
        re-drives dead-lettered work (recovery rounds) and -- when a
        locality is confirmed permanently dead -- decommissions it,
        re-homes its partitions onto the survivors, and restarts from the
        last coordinated checkpoint epoch (``checkpoint_every`` steps
        apart; default from the ``checkpoint.interval`` config knob).
        The result is bit-identical to a fault-free :meth:`run`.
        """
        if self.runtime.distributed:
            raise ConfigError(
                "run_resilient requires the virtual-clock backend "
                "(runtime.backend='virtual'): checkpoint recovery drives "
                "partition objects directly and replays virtual time"
            )
        if not self._parts:
            raise ValidationError("call initialize() before run()")
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if steps == 0:
            return self.solution()
        run_with_recovery(
            self.runtime,
            self._parts,
            self._gids,
            steps,
            self._resend_stuck,
            max_recovery_rounds=max_recovery_rounds,
            checkpoint_every=checkpoint_every,
        )
        return self.solution()

    def _resend_stuck(self, p: int, stuck_at: int) -> None:
        """Ask partition ``p``'s ring neighbours to re-send its halos."""
        n = self.n_partitions
        self._parts[(p - 1) % n].resend_boundaries(stuck_at)
        self._parts[(p + 1) % n].resend_boundaries(stuck_at)

    def solution(self) -> np.ndarray:
        """Gather the global field (driver-side, for verification)."""
        if self.runtime.distributed:
            futures = [
                self.runtime.invoke_async(gid, "local_solution")
                for gid in self._gids
            ]
            return np.concatenate([future.get() for future in futures])
        return np.concatenate([part.local_solution() for part in self._parts])
