"""Set-associative cache simulator: deriving the stencil's memory traffic.

The roofline analysis of Sec. V-B rests on an assumption -- "three memory
transfers per lattice-site update, provided three rows fit in cache" --
and Sec. VII-B's surprises (implicit blocking, the 5-transfer regime for
oversized rows) are all statements about what a cache actually does to
the 5-point access stream.  This module checks those statements
mechanistically: an LRU, write-back/write-allocate, set-associative
cache runs the exact access trace of a 2D Jacobi sweep and reports bytes
moved to/from memory per lattice-site update.

The simulator is deliberately small-scale (counts, not timing); tests
use it to *derive* the 24 B/LUP (rows fit), 40 B/LUP (rows too big) and
16 B/LUP (non-temporal stores) figures the analytic cost model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError

__all__ = ["CacheSim", "CacheStats", "jacobi_row_traffic", "jacobi_blocked_traffic"]


@dataclass
class CacheStats:
    """Traffic accounting for one simulated access stream."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    bytes_from_memory: int = 0
    bytes_to_memory: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def total_traffic(self) -> int:
        return self.bytes_from_memory + self.bytes_to_memory


class CacheSim:
    """LRU set-associative cache, write-back + (optional) write-allocate.

    Addresses are byte addresses; each access touches one line (the
    stencil trace only issues element-sized, aligned accesses).
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 64,
        associativity: int = 8,
        write_allocate: bool = True,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise TopologyError("cache geometry must be positive")
        if size_bytes % (line_bytes * associativity) != 0:
            raise TopologyError(
                f"size {size_bytes} not divisible into {associativity}-way "
                f"sets of {line_bytes}-byte lines"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.write_allocate = write_allocate
        self.n_sets = size_bytes // (line_bytes * associativity)
        # Per set: ordered dict of tag -> dirty flag; insertion order is
        # recency order (last = most recent).
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def _touch(self, cache_set: dict[int, bool], tag: int) -> None:
        dirty = cache_set.pop(tag)
        cache_set[tag] = dirty  # reinsert as most recent

    def _fill(self, cache_set: dict[int, bool], tag: int, dirty: bool) -> None:
        if len(cache_set) >= self.associativity:
            victim_tag, victim_dirty = next(iter(cache_set.items()))
            del cache_set[victim_tag]
            if victim_dirty:
                self.stats.writebacks += 1
                self.stats.bytes_to_memory += self.line_bytes
        cache_set[tag] = dirty

    def read(self, address: int, size: int = 8) -> bool:
        """Simulate a load; returns True on hit."""
        self.stats.accesses += 1
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            self.stats.hits += 1
            self._touch(cache_set, tag)
            return True
        self.stats.misses += 1
        self.stats.bytes_from_memory += self.line_bytes
        self._fill(cache_set, tag, dirty=False)
        return False

    def write(self, address: int, size: int = 8) -> bool:
        """Simulate a store; returns True on hit."""
        self.stats.accesses += 1
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            self.stats.hits += 1
            self._touch(cache_set, tag)
            cache_set[tag] = True  # mark dirty (keeps recency position)
            return True
        self.stats.misses += 1
        if self.write_allocate:
            # Write miss: fetch the line, then dirty it.
            self.stats.bytes_from_memory += self.line_bytes
            self._fill(cache_set, tag, dirty=True)
        else:
            # Non-temporal / streaming store: straight to memory.
            self.stats.bytes_to_memory += size
        return False

    def flush(self) -> None:
        """Write back all dirty lines (end-of-run accounting)."""
        for cache_set in self._sets:
            for tag, dirty in cache_set.items():
                if dirty:
                    self.stats.writebacks += 1
                    self.stats.bytes_to_memory += self.line_bytes
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


def jacobi_row_traffic(
    cache: CacheSim,
    ny: int,
    nx: int,
    elem_bytes: int = 8,
    sweeps: int = 1,
    warmup_sweeps: int = 1,
) -> float:
    """Run the exact 5-point row-sweep trace; return bytes/LUP.

    The trace mirrors :func:`repro.stencil.jacobi2d.update_row_scalar`:
    for each interior row ``y``, load ``curr[y-1][x]``, ``curr[y+1][x]``,
    ``curr[y][x-1]``, ``curr[y][x+1]`` and store ``next[y][x]``.  The two
    buffers ping-pong between sweeps.  ``warmup_sweeps`` run first so
    cold-start misses do not pollute the steady-state measurement.
    """
    if ny < 3 or nx < 3:
        raise TopologyError("grid must be at least 3x3")
    if sweeps < 1 or warmup_sweeps < 0:
        raise TopologyError("sweep counts must be positive")
    row_bytes = nx * elem_bytes
    base_a = 0
    base_b = ny * row_bytes  # the second buffer right after the first

    def sweep(src: int, dst: int) -> None:
        for y in range(1, ny - 1):
            for x in range(1, nx - 1):
                cache.read(src + (y - 1) * row_bytes + x * elem_bytes, elem_bytes)
                cache.read(src + (y + 1) * row_bytes + x * elem_bytes, elem_bytes)
                cache.read(src + y * row_bytes + (x - 1) * elem_bytes, elem_bytes)
                cache.read(src + y * row_bytes + (x + 1) * elem_bytes, elem_bytes)
                cache.write(dst + y * row_bytes + x * elem_bytes, elem_bytes)

    buffers = (base_a, base_b)
    for t in range(warmup_sweeps):
        sweep(buffers[t % 2], buffers[(t + 1) % 2])
    # Steady-state measurement.
    before_from = cache.stats.bytes_from_memory
    before_to = cache.stats.bytes_to_memory
    for t in range(warmup_sweeps, warmup_sweeps + sweeps):
        sweep(buffers[t % 2], buffers[(t + 1) % 2])
    moved = (
        cache.stats.bytes_from_memory
        - before_from
        + cache.stats.bytes_to_memory
        - before_to
    )
    lups = (ny - 2) * (nx - 2) * sweeps
    return moved / lups


def jacobi_blocked_traffic(
    cache: CacheSim,
    ny: int,
    nx: int,
    tile_nx: int,
    elem_bytes: int = 8,
    sweeps: int = 1,
    warmup_sweeps: int = 1,
) -> float:
    """The *explicitly cache-blocked* sweep's traffic in bytes/LUP.

    Instead of streaming whole rows, the sweep processes column tiles of
    ``tile_nx`` elements: all rows of one tile before moving right.
    When full rows overflow the cache (the 5-transfers regime of
    :func:`jacobi_row_traffic`), tiling restores row reuse inside each
    tile and recovers the 3-transfers figure -- the mechanism behind the
    paper's "a cache blocked version ... essentially reduces the number
    of memory transfers per iteration".
    """
    if ny < 3 or nx < 3:
        raise TopologyError("grid must be at least 3x3")
    if tile_nx < 2:
        raise TopologyError("tile width must be >= 2")
    if sweeps < 1 or warmup_sweeps < 0:
        raise TopologyError("sweep counts must be positive")
    row_bytes = nx * elem_bytes
    base_a = 0
    base_b = ny * row_bytes

    def sweep(src: int, dst: int) -> None:
        for x_lo in range(1, nx - 1, tile_nx):
            x_hi = min(x_lo + tile_nx, nx - 1)
            for y in range(1, ny - 1):
                for x in range(x_lo, x_hi):
                    cache.read(src + (y - 1) * row_bytes + x * elem_bytes, elem_bytes)
                    cache.read(src + (y + 1) * row_bytes + x * elem_bytes, elem_bytes)
                    cache.read(src + y * row_bytes + (x - 1) * elem_bytes, elem_bytes)
                    cache.read(src + y * row_bytes + (x + 1) * elem_bytes, elem_bytes)
                    cache.write(dst + y * row_bytes + x * elem_bytes, elem_bytes)

    buffers = (base_a, base_b)
    for t in range(warmup_sweeps):
        sweep(buffers[t % 2], buffers[(t + 1) % 2])
    before_from = cache.stats.bytes_from_memory
    before_to = cache.stats.bytes_to_memory
    for t in range(warmup_sweeps, warmup_sweeps + sweeps):
        sweep(buffers[t % 2], buffers[(t + 1) % 2])
    moved = (
        cache.stats.bytes_from_memory
        - before_from
        + cache.stats.bytes_to_memory
        - before_to
    )
    lups = (ny - 2) * (nx - 2) * sweeps
    return moved / lups
