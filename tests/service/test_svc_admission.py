"""Admission control: quotas, backlog bound, per-tenant breakers."""

import pytest

from repro.errors import ConfigError, JobShedError
from repro.service import AdmissionControl, ManualClock, TenantQuota


@pytest.fixture()
def clock():
    return ManualClock()


def test_admits_under_all_limits(clock):
    control = AdmissionControl(clock)
    control.check("t", tenant_pending=0, total_backlog=0)
    assert control.admitted == 1 and control.shed == 0


def test_tenant_quota_sheds_with_retry_after(clock):
    control = AdmissionControl(clock)
    control.set_quota("t", TenantQuota(max_pending=2))
    with pytest.raises(JobShedError, match="backlog quota") as info:
        control.check("t", tenant_pending=2, total_backlog=2)
    assert info.value.retry_after > 0
    assert control.shed == 1
    # Another tenant is unaffected by t's quota.
    control.check("u", tenant_pending=2, total_backlog=2)


def test_global_backlog_bound(clock):
    control = AdmissionControl(clock, max_backlog=10)
    with pytest.raises(JobShedError, match="backlog bound"):
        control.check("t", tenant_pending=0, total_backlog=10)


def test_breaker_opens_on_consecutive_failures_and_recovers(clock):
    control = AdmissionControl(clock, breaker_threshold=3, breaker_reset_seconds=5.0)
    for _ in range(3):
        control.record_outcome("t", failed=True)
    with pytest.raises(JobShedError, match="circuit breaker") as info:
        control.check("t", tenant_pending=0, total_backlog=0)
    assert 0 < info.value.retry_after <= 5.0
    # Reset window passes: half-open lets a probe submission through.
    clock.advance(5.0)
    control.check("t", tenant_pending=0, total_backlog=0)
    control.record_outcome("t", failed=False)
    control.check("t", tenant_pending=0, total_backlog=0)


def test_breaker_is_per_tenant(clock):
    control = AdmissionControl(clock, breaker_threshold=1)
    control.record_outcome("bad", failed=True)
    with pytest.raises(JobShedError):
        control.check("bad", tenant_pending=0, total_backlog=0)
    control.check("good", tenant_pending=0, total_backlog=0)


def test_successes_reset_the_failure_streak(clock):
    control = AdmissionControl(clock, breaker_threshold=2)
    control.record_outcome("t", failed=True)
    control.record_outcome("t", failed=False)
    control.record_outcome("t", failed=True)
    control.check("t", tenant_pending=0, total_backlog=0)  # streak never hit 2


def test_quota_validation():
    with pytest.raises(ConfigError):
        TenantQuota(weight=0.0)
    with pytest.raises(ConfigError):
        TenantQuota(max_pending=0)
    with pytest.raises(ConfigError):
        TenantQuota(max_active=0)
    with pytest.raises(ConfigError):
        AdmissionControl(ManualClock(), max_backlog=0)
