"""Futures and promises -- the foundational LCO.

Semantics follow HPX/C++ ``std::future``/``promise``:

* a :class:`Promise` is the write end, single-assignment (value *or*
  exception);
* a :class:`Future` is the read end; ``get()`` blocks (cooperatively:
  the calling HPX-thread helps the scheduler drain other work until the
  value arrives), re-raises stored exceptions, and is idempotent
  (shared-future semantics -- the paper's codes pass futures around
  freely);
* ``then`` attaches a continuation that runs as a new HPX-thread when
  the future becomes ready;
* :func:`when_all` / :func:`when_any` compose futures.

Virtual time: a promise records the virtual time at which it was
fulfilled; a task that reads the future inherits that as a dependency,
so makespans respect data flow.

Sanitizer integration: fulfilment, reads, combinator links and blocking
waits are reported through :mod:`repro.runtime.instrument`, and every
*demanded* state (a combinator or continuation target that some code is
counting on) is registered in a weak set so the runtime can detect the
silent-hang case -- quiescing while a demanded future can never become
ready (see :func:`pending_demands`).
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Iterable, List, Sequence

from ..errors import (
    BrokenPromiseError,
    FutureAlreadySetError,
    FutureError,
    FutureNotReadyError,
    FutureTimeoutError,
    RuntimeStateError,
)
from . import context as ctx
from . import instrument
from .context import _stack as _context_stack

__all__ = [
    "Future",
    "Promise",
    "make_ready_future",
    "make_exceptional_future",
    "when_all",
    "when_any",
    "when_each",
    "unwrap",
    "demand",
    "pending_demands",
]


class _SharedState:
    """State shared between one promise and any number of futures."""

    __slots__ = (
        "value",
        "exception",
        "ready",
        "ready_time",
        "callbacks",
        "broken",
        "demanded",
        "__weakref__",
    )

    def __init__(self) -> None:
        self.value: Any = None
        self.exception: BaseException | None = None
        self.ready = False
        self.broken = False
        self.ready_time = 0.0
        self.callbacks: List[Callable[[Future], None]] = []
        #: True once registered in the demanded-states registry; lets the
        #: (hot) fulfilment path skip the WeakKeyDictionary removal for
        #: the overwhelmingly common never-demanded state.
        self.demanded = False


#: States some continuation is counting on, with a human-readable label.
#: Weakly keyed: a demanded state that becomes garbage was never going to
#: resolve anyone's wait, so it drops out of the silent-hang check.
_demanded: "weakref.WeakKeyDictionary[_SharedState, str]" = weakref.WeakKeyDictionary()


def demand(state: _SharedState, label: str) -> None:
    """Register ``state`` as *demanded*: code downstream expects it to
    become ready.  Fulfilment clears the registration automatically."""
    state.demanded = True
    _demanded[state] = label


def pending_demands() -> List[str]:
    """Labels of demanded states that are still unfulfilled.

    A non-empty result at quiescence means some continuation chain can
    never fire -- the silent-hang failure mode the quiescence check (see
    ``runtime.quiescence`` config) warns about or raises on.
    """
    return sorted(label for state, label in _demanded.items() if not state.ready)


def pending_demand_states() -> List[tuple[_SharedState, str]]:
    """Unfulfilled demanded states with labels (runtime-internal: lets
    the quiescence check ignore demands that pre-date this run)."""
    return [(s, label) for s, label in _demanded.items() if not s.ready]


class Future:
    """Read end of an asynchronous value (shared-future semantics)."""

    __slots__ = ("_state",)

    def __init__(self, state: _SharedState) -> None:
        self._state = state

    # Introspection ---------------------------------------------------------
    def is_ready(self) -> bool:
        """True once a value or exception has been stored."""
        return self._state.ready

    def has_exception(self) -> bool:
        return self._state.ready and self._state.exception is not None

    @property
    def ready_time(self) -> float:
        """Virtual time at which the future became ready (0 if pending)."""
        return self._state.ready_time

    # Reading ----------------------------------------------------------------
    def get(self, timeout: float | None = None) -> Any:
        """Obtain the value, cooperatively waiting if necessary.

        Inside a runtime the calling task *helps the scheduler*: other
        runnable HPX-threads execute until this future is ready (HPX
        suspends the thread; helping is the cooperative equivalent).  The
        waiting task also inherits the producer's virtual finish time as
        a dependency.  With ``timeout`` (virtual seconds) the wait is
        bounded as in :meth:`wait_for`.
        """
        if timeout is not None:
            self.wait_for(timeout)
        state = self._state
        if not state.ready:
            probe = instrument.probe
            if probe is not None:
                probe.wait_enter(state, "future.get")
            try:
                self._help_until_ready()
            finally:
                if probe is not None:
                    probe.wait_exit(state)
            if not state.ready:
                raise FutureNotReadyError(
                    "future is not ready and no runnable work can make it so"
                )
        if instrument.enabled and (probe := instrument.probe) is not None:
            probe.state_read(state)
        frame = _context_stack[-1] if _context_stack else None
        if frame is not None and frame.task is not None:
            frame.task.note_dependency(state.ready_time)
        if state.exception is not None:
            raise state.exception
        return state.value

    def get_nowait(self) -> Any:
        """Non-blocking get; raises :class:`FutureNotReadyError` if pending."""
        state = self._state
        if not state.ready:
            raise FutureNotReadyError("future is not ready")
        if instrument.enabled and (probe := instrument.probe) is not None:
            probe.state_read(state)
        frame = _context_stack[-1] if _context_stack else None
        if frame is not None and frame.task is not None:
            frame.task.note_dependency(state.ready_time)
        if state.exception is not None:
            raise state.exception
        return state.value

    def _help_until_ready(self) -> None:
        """Drive the scheduler (job-wide when a runtime is active) until
        this future is ready."""
        frame = ctx.current_or_none()
        if frame is None:
            return
        if frame.runtime is not None:
            frame.runtime.progress_until(self.is_ready)
        elif frame.pool is not None:
            frame.pool.run_until(self.is_ready)

    def wait(self) -> None:
        """Wait for readiness without consuming the value."""
        state = self._state
        if not state.ready:
            probe = instrument.probe
            if probe is not None:
                probe.wait_enter(state, "future.wait")
            try:
                self._help_until_ready()
            finally:
                if probe is not None:
                    probe.wait_exit(state)
        if not state.ready:
            raise FutureNotReadyError(
                "future is not ready and no runnable work can make it so"
            )
        probe = instrument.probe
        if probe is not None:
            probe.state_read(state)

    def wait_for(self, timeout: float) -> None:
        """Wait at most ``timeout`` *virtual* seconds for readiness.

        The deadline is ``now + timeout`` on the caller's virtual clock.
        Only work that can start at or before the deadline is helped, so
        the wait cannot be satisfied by values produced after it -- a
        future whose ``ready_time`` lands past the deadline still times
        out.  On timeout the waiting task's clock advances to the
        deadline (it observed the whole window pass) and
        :class:`~repro.errors.FutureTimeoutError` is raised; readiness
        exactly *at* the deadline counts as ready.
        """
        if timeout < 0:
            raise FutureError(f"timeout must be non-negative, got {timeout!r}")
        state = self._state
        frame = ctx.current_or_none()
        now = 0.0
        if frame is not None and frame.pool is not None:
            now = frame.pool.now
        deadline = now + timeout
        if not state.ready:
            probe = instrument.probe
            if probe is not None:
                probe.wait_enter(state, f"future.wait_for({timeout!r})")
            try:
                if frame is not None and frame.runtime is not None:
                    frame.runtime.progress_before(self.is_ready, deadline)
                elif frame is not None and frame.pool is not None:
                    frame.pool.run_before(self.is_ready, deadline)
            finally:
                if probe is not None:
                    probe.wait_exit(state)
        if state.ready and state.ready_time <= deadline:
            probe = instrument.probe
            if probe is not None:
                probe.state_read(state)
            return
        task = ctx.current_task()
        if task is not None:
            task.note_dependency(deadline)
        raise FutureTimeoutError(
            f"future not ready within {timeout!r} virtual seconds "
            f"(deadline t={deadline!r})"
        )

    # Composition ------------------------------------------------------------
    def then(self, fn: Callable[[Future], Any]) -> "Future":
        """Attach a continuation; returns the continuation's future.

        ``fn`` receives *this* (ready) future, mirroring HPX's
        ``future::then``.  The continuation runs as a new HPX-thread on
        the current pool (or inline when no runtime is active).
        """
        promise = Promise()
        name = getattr(fn, "__name__", "continuation")
        demand(promise._state, f"then({name})")
        probe = instrument.probe
        if probe is not None:
            probe.state_linked([self._state], promise._state, f"then({name})")

        def run_continuation(_: Future) -> None:
            frame = ctx.current_or_none()

            def body() -> None:
                try:
                    promise.set_value(fn(self))
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    promise.set_exception(exc)

            if frame is not None and frame.pool is not None:
                frame.pool.submit(body, description="continuation")
            else:
                body()

        self._on_ready(run_continuation)
        return promise.get_future()

    def _on_ready(self, callback: Callable[[Future], None]) -> None:
        state = self._state
        if state.ready:
            callback(self)
        else:
            state.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover
        if not self._state.ready:
            return "Future(<pending>)"
        if self._state.exception is not None:
            return f"Future(<exception {type(self._state.exception).__name__}>)"
        return f"Future({self._state.value!r})"


class Promise:
    """Write end: single-assignment container fulfilling its futures."""

    __slots__ = ("_state", "_future_taken")

    def __init__(self) -> None:
        self._state = _SharedState()
        self._future_taken = False

    def get_future(self) -> Future:
        """Obtain a future for this promise (any number of times)."""
        return Future(self._state)

    def _fulfil(self) -> None:
        state = self._state
        state.ready = True
        # Inlined ``frame.pool.now`` (which would re-fetch the frame):
        # fulfilment is one of the hottest sites in the runtime.
        frame = _context_stack[-1] if _context_stack else None
        if frame is not None and frame.pool is not None:
            task = frame.task
            state.ready_time = (
                task.current_virtual_time() if task is not None else frame.pool.makespan
            )
        if state.demanded:
            state.demanded = False
            _demanded.pop(state, None)
        if instrument.enabled and (probe := instrument.probe) is not None:
            probe.state_fulfilled(state)
        callbacks = state.callbacks
        if callbacks:
            state.callbacks = []
            future = Future(state)
            for callback in callbacks:
                callback(future)

    def set_value(self, value: Any = None) -> None:
        """Store the value and wake all continuations."""
        if self._state.ready:
            raise FutureAlreadySetError("promise already satisfied")
        self._state.value = value
        self._fulfil()

    def set_exception(self, exc: BaseException) -> None:
        """Store an exception; readers of the future will re-raise it."""
        if self._state.ready:
            raise FutureAlreadySetError("promise already satisfied")
        if not isinstance(exc, BaseException):
            raise TypeError(f"set_exception needs an exception, got {exc!r}")
        self._state.exception = exc
        self._fulfil()

    def is_ready(self) -> bool:
        return self._state.ready

    def break_promise(self) -> None:
        """Mark the promise broken (producer died); readers get
        :class:`BrokenPromiseError`."""
        if not self._state.ready:
            self._state.broken = True
            self._state.exception = BrokenPromiseError(
                "the producing task terminated without setting a value"
            )
            self._fulfil()


def make_ready_future(value: Any = None) -> Future:
    """A future that is ready immediately (HPX ``make_ready_future``)."""
    promise = Promise()
    promise.set_value(value)
    return promise.get_future()


def make_exceptional_future(exc: BaseException) -> Future:
    """A ready future holding an exception."""
    promise = Promise()
    promise.set_exception(exc)
    return promise.get_future()


def when_all(futures: Iterable[Future], timeout: float | None = None) -> Future:
    """A future of the list of input futures, ready when all are.

    Mirrors HPX ``when_all``: the result value is the sequence of (ready)
    futures, so exceptions surface when the caller ``get``s the elements.
    With ``timeout`` (virtual seconds, measured from the caller's current
    virtual time) the returned future fails with
    :class:`~repro.errors.FutureTimeoutError` if any input is still
    pending at the deadline; inputs completing exactly at the deadline
    count as ready.  A timeout needs an active pool to host the virtual
    timer.
    """
    futs: Sequence[Future] = list(futures)
    promise = Promise()
    remaining = len(futs)
    if remaining == 0:
        promise.set_value([])
        return promise.get_future()
    demand(promise._state, f"when_all({len(futs)})")
    probe = instrument.probe
    if probe is not None:
        probe.state_linked(
            [f._state for f in futs], promise._state, f"when_all({len(futs)})"
        )
    done = False

    def one_ready(fut: Future) -> None:
        # Each input's release clock joins the result, so a reader of the
        # when_all future is ordered after *every* producer, not just the
        # one that happened to complete last.
        nonlocal remaining, done
        if instrument.enabled and (probe := instrument.probe) is not None:
            probe.state_read(fut._state)
            probe.state_contribute(promise._state)
        remaining -= 1
        if remaining == 0 and not done:
            done = True
            promise.set_value(list(futs))

    for fut in futs:
        fut._on_ready(one_ready)
    if timeout is not None and not promise.is_ready():

        def expire() -> None:
            nonlocal done
            if not done:
                done = True
                promise.set_exception(
                    FutureTimeoutError(
                        f"when_all: {remaining} of {len(futs)} future(s) still "
                        f"pending after {timeout!r} virtual seconds"
                    )
                )

        _arm_timer(expire, timeout)
    return promise.get_future()


def _arm_timer(fire: Callable[[], None], timeout: float) -> None:
    """Schedule ``fire`` as a virtual-time timer task at ``now + timeout``
    (it must itself check whether the guarded wait already completed)."""
    if timeout < 0:
        raise FutureError(f"timeout must be non-negative, got {timeout!r}")
    frame = ctx.current_or_none()
    if frame is None or frame.pool is None:
        raise RuntimeStateError(
            "a timeout needs an active thread pool to host the virtual timer"
        )
    pool = frame.pool
    # LOW priority: work completing exactly at the deadline is popped
    # before the timer, so fire-at-deadline counts as ready.
    from .threads.hpx_thread import ThreadPriority

    pool.submit(
        fire,
        ready_time=pool.now + timeout,
        description="when_all-timeout",
        priority=ThreadPriority.LOW,
    )


def when_each(
    futures: Iterable[Future], callback: Callable[[int, Future], None]
) -> Future:
    """Invoke ``callback(index, future)`` as each input becomes ready.

    Mirrors HPX ``when_each``: results are processed in *completion*
    order, not submission order.  The returned future becomes ready
    (value ``None``) after the last callback ran.
    """
    futs = list(futures)
    promise = Promise()
    if not futs:
        promise.set_value(None)
        return promise.get_future()
    remaining: Dict[str, int] = {"n": len(futs)}
    demand(promise._state, f"when_each({len(futs)})")
    probe = instrument.probe
    if probe is not None:
        probe.state_linked(
            [f._state for f in futs], promise._state, f"when_each({len(futs)})"
        )

    def make_handler(index: int) -> Callable[[Future], None]:
        def handler(future: Future) -> None:
            try:
                callback(index, future)
            finally:
                probe = instrument.probe
                if probe is not None:
                    probe.state_read(future._state)
                    probe.state_contribute(promise._state)
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    promise.set_value(None)

        return handler

    for i, fut in enumerate(futs):
        fut._on_ready(make_handler(i))
    return promise.get_future()


def unwrap(future: Future) -> Future:
    """Flatten a ``Future[Future[T]]`` into a ``Future[T]``.

    HPX futures unwrap implicitly on ``.then``; Python needs it spelled
    out.  Exceptions at either level propagate to the result.
    """
    promise = Promise()
    demand(promise._state, "unwrap")
    probe = instrument.probe
    if probe is not None:
        probe.state_linked([future._state], promise._state, "unwrap")

    def outer_ready(outer: Future) -> None:
        try:
            inner = outer.get_nowait()
        except BaseException as exc:  # noqa: BLE001 - forwarded
            promise.set_exception(exc)
            return
        if not isinstance(inner, Future):
            promise.set_value(inner)  # already flat: pass through
            return
        probe = instrument.probe
        if probe is not None:
            probe.state_linked([inner._state], promise._state, "unwrap(inner)")

        def inner_ready(resolved: Future) -> None:
            try:
                promise.set_value(resolved.get_nowait())
            except BaseException as exc:  # noqa: BLE001 - forwarded
                promise.set_exception(exc)

        inner._on_ready(inner_ready)

    future._on_ready(outer_ready)
    return promise.get_future()


def when_any(futures: Iterable[Future]) -> Future:
    """Ready when the first input is; value is ``(index, futures)``."""
    futs = list(futures)
    if not futs:
        raise ValueError("when_any needs at least one future")
    promise = Promise()
    done: Dict[str, bool] = {"fired": False}
    demand(promise._state, f"when_any({len(futs)})")
    probe = instrument.probe
    if probe is not None:
        probe.state_linked(
            [f._state for f in futs], promise._state,
            f"when_any({len(futs)})", mode="any",
        )

    def make_callback(index: int) -> Callable[[Future], None]:
        def fired(fut: Future) -> None:
            if not done["fired"]:
                done["fired"] = True
                probe = instrument.probe
                if probe is not None:
                    probe.state_read(fut._state)
                promise.set_value((index, futs))

        return fired

    for i, fut in enumerate(futs):
        fut._on_ready(make_callback(i))
    return promise.get_future()
