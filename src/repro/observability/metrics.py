"""One-call metrics collection: counters + histogram summaries.

Benchmarks (and the CLI) want a single JSON-ready artifact per run --
the runtime counters that explain the result plus the latency
distributions behind them.  :func:`collect_metrics` assembles it; the
actual file writing lives in :func:`repro.reporting.write_metrics_json`
so every artifact in ``benchmarks/out/`` has the same shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..runtime import perfcounters
from .histograms import latency_histograms

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from ..runtime.trace import Tracer

__all__ = ["STANDARD_COUNTERS", "collect_metrics"]

#: The counters every metrics artifact reports by default: enough to
#: reconstruct the paper's utilization/latency arguments for a run.
STANDARD_COUNTERS = (
    "/threads{total}/count/cumulative",
    "/threads{total}/count/stolen",
    "/threads{total}/time/average",
    "/threads{total}/time/busy",
    "/threads{total}/idle-rate",
    "/parcels{total}/count/sent",
    "/parcels{total}/data/sent",
    "/parcels{total}/count/delivered",
    "/parcels{total}/time/average-latency",
    "/runtime/uptime",
)


def collect_metrics(
    runtime: "Runtime",
    tracer: "Tracer | None" = None,
    counters: Sequence[str] | None = None,
) -> dict:
    """Snapshot a runtime's counters (and a tracer's distributions).

    Returns a JSON-ready dict: ``{"counters": {path: value},
    "histograms": {name: summary}}`` -- histograms only when a tracer
    that observed the run is supplied.
    """
    paths = list(counters) if counters is not None else list(STANDARD_COUNTERS)
    payload: dict = {
        "counters": {path: perfcounters.query(runtime, path) for path in paths}
    }
    if tracer is not None:
        payload["histograms"] = {
            name: histogram.summary()
            for name, histogram in latency_histograms(tracer).items()
        }
    return payload
