"""Parcel transport: active messages between localities.

A parcel carries *work to data*: destination GID (or locality), the
action to run there, serialized arguments, and an optional continuation
that routes the result back.  The parcelport delivers parcels with a
modelled network delay taken from the machine's
:class:`~repro.hardware.interconnect.Interconnect` -- this is where the
Kunpeng 916's weak fabric enters the 1D-stencil simulation.
"""

from .serialization import serialize, deserialize, serialized_size
from .parcel import Parcel
from .parcelport import Parcelport, LoopbackParcelport, NetworkParcelport

__all__ = [
    "serialize",
    "deserialize",
    "serialized_size",
    "Parcel",
    "Parcelport",
    "LoopbackParcelport",
    "NetworkParcelport",
]
