"""ParalleX sanitizer suite: race detector, deadlock detector, lint.

Three cooperating tools that check the model's central contract --
futures, LCOs and parcels are the only legal ordering edges between
HPX-threads:

* :class:`~repro.analysis.race.RaceDetector` -- dynamic vector-clock
  happens-before race detection over instrumented component state;
* :class:`~repro.analysis.deadlock.DeadlockDetector` -- wait-for-graph
  deadlock detection, including silent-quiescence hangs;
* :mod:`repro.analysis.lint` -- AST-based static rules
  (``python -m repro.analysis.lint src``).

Typical dynamic use::

    from repro import analysis

    with analysis.attach() as sanitizers:
        rt = Runtime(...)
        rt.run(main)          # raises DataRaceError / DeadlockError
    print(sanitizers.race.findings())

See ``docs/analysis.md`` for the happens-before model and the lint
rule catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from ..runtime import instrument
from .deadlock import DeadlockDetector, WaitGraph

# The schedule-space explorer is exposed as the submodule (its entry
# point is ``explore.explore(...)``); the classes clients subclass or
# construct are re-exported flat.
from . import explore  # noqa: F401 - re-export
from .explore import (
    ExploreApp,
    ExploreReport,
    ScheduleController,
    register_app,
    replay_file,
)
from .race import AccessRecord, RaceDetector
from .vector_clock import Epoch, VectorClock

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.trace import Tracer

__all__ = [
    "AccessRecord",
    "DeadlockDetector",
    "Epoch",
    "ExploreApp",
    "ExploreReport",
    "RaceDetector",
    "Sanitizers",
    "ScheduleController",
    "VectorClock",
    "WaitGraph",
    "attach",
    "explore",
    "register_app",
    "replay_file",
    "wait_graph",
    "wait_graph_dot",
]


class Sanitizers:
    """The detectors installed by one :func:`attach` context."""

    def __init__(
        self, race: RaceDetector | None, deadlock: DeadlockDetector | None
    ) -> None:
        self.race = race
        self.deadlock = deadlock


@contextmanager
def attach(
    races: bool = True,
    deadlocks: bool = True,
    tracer: "Tracer | None" = None,
    report: str = "raise",
) -> Iterator[Sanitizers]:
    """Install the dynamic sanitizers for the duration of a ``with`` block.

    ``report`` controls the race detector ("raise" stops at the first
    race, "collect" accumulates into ``sanitizers.race.findings()``).
    With ``tracer`` given, findings are also emitted as ``TraceEvent``s
    of kind ``"race"`` / ``"deadlock"``.
    """
    race = RaceDetector(tracer=tracer, report=report) if races else None
    deadlock = DeadlockDetector(tracer=tracer) if deadlocks else None
    for probe in (race, deadlock):
        if probe is not None:
            instrument.install(probe)
    try:
        yield Sanitizers(race, deadlock)
    finally:
        for probe in (race, deadlock):
            if probe is not None:
                instrument.uninstall(probe)


def wait_graph() -> WaitGraph:
    """The live wait-for graph of the installed deadlock detector.

    Returns an empty :class:`WaitGraph` when no detector is attached.
    """
    for probe in instrument.active_probes():
        if isinstance(probe, DeadlockDetector):
            return probe.wait_graph()
    return WaitGraph()


def wait_graph_dot() -> str:
    """The live wait-for graph rendered as Graphviz DOT."""
    return wait_graph().to_dot()
