"""JobService lifecycle: leases, retries, recovery, fairness, counters."""

import pytest

from repro.errors import JobShedError, JobStateError
from repro.service import (
    JobService,
    JobState,
    ManualClock,
    ServicePolicy,
    TenantQuota,
)

#: Fast-failing policy for deterministic tests (no real stencil work).
FAST = ServicePolicy(
    lease_seconds=10.0,
    max_attempts=3,
    retry_base_seconds=1.0,
    retry_factor=2.0,
    retry_cap_seconds=4.0,
    sync_journal=False,
)


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def service(tmp_path, clock):
    with JobService(tmp_path / "svc", clock=clock, policy=FAST) as svc:
        yield svc


def _submit_faulty(service, tenant="t", fails=0, key=None, **kw):
    job, created = service.submit(
        tenant, "faulty", {"fail_attempts": fails}, dedupe_key=key, **kw
    )
    return job


class TestLifecycle:
    def test_submit_claim_run_complete(self, service):
        job = _submit_faulty(service)
        claimed, lease = service.claim("w1")
        assert claimed.job_id == job.job_id
        assert claimed.state is JobState.CLAIMED
        assert claimed.attempts == 1
        assert lease.owner == "w1" and lease.expires_at == 10.0
        service.start(job.job_id, "w1")
        done = service.complete(job.job_id, "w1", {"digest": "d"})
        assert done.state is JobState.DONE
        assert done.result == {"digest": "d"}
        assert service.query_counter("/jobs{t}/count/completed") == 1

    def test_claim_order_is_fair_across_tenants(self, service):
        service.set_quota("a", TenantQuota(weight=1.0, max_active=8))
        service.set_quota("b", TenantQuota(weight=1.0, max_active=8))
        for i in range(2):
            _submit_faulty(service, "a", key=f"a{i}")
            _submit_faulty(service, "b", key=f"b{i}")
        order = [service.claim(f"w{i}")[0].tenant for i in range(4)]
        assert order == ["a", "b", "a", "b"]

    def test_claim_respects_max_active_quota(self, service):
        service.set_quota("t", TenantQuota(max_active=1))
        _submit_faulty(service, key="one")
        _submit_faulty(service, key="two")
        assert service.claim("w1") is not None
        assert service.claim("w2") is None  # tenant at concurrency cap
        service.start(service.store.jobs(states=[JobState.CLAIMED])[0].job_id, "w1")
        assert service.claim("w2") is None  # still one active job

    def test_foreign_or_stale_workers_cannot_act(self, service, clock):
        job = _submit_faulty(service)
        service.claim("w1")
        with pytest.raises(JobStateError, match="live lease"):
            service.start(job.job_id, "w2")
        clock.advance(11.0)  # w1's lease expires
        with pytest.raises(JobStateError, match="live lease"):
            service.complete(job.job_id, "w1", {})

    def test_cancel_pending_and_claimed(self, service):
        first = _submit_faulty(service, key="first")
        second = _submit_faulty(service, key="second")
        claimed, _ = service.claim("w1")  # FIFO within a tenant
        assert claimed.job_id == first.job_id
        cancelled = service.cancel(second.job_id)  # still pending
        assert cancelled.state is JobState.CANCELLED
        service.cancel(first.job_id)  # claimed: lease revoked with it
        assert service.claim("w2") is None  # nothing left to claim
        with pytest.raises(JobStateError, match="exactly-once"):
            service.cancel(first.job_id)

    def test_run_one_drives_to_done(self, service):
        job = _submit_faulty(service, fails=0)
        settled = service.run_one("w1")
        assert settled.state is JobState.DONE

    def test_shed_submission_carries_retry_after(self, service):
        service.set_quota("t", TenantQuota(max_pending=1))
        _submit_faulty(service, key="fill")
        with pytest.raises(JobShedError) as info:
            _submit_faulty(service, key="over")
        assert info.value.retry_after > 0
        assert service.query_counter("/jobs{t}/count/shed") == 1
        # The shed submission was never journalled.
        assert len(service.store) == 1


class TestRetries:
    def test_failed_attempt_requeues_with_backoff(self, service, clock):
        job = _submit_faulty(service, fails=1)
        settled = service.run_one("w1")  # attempt 1 fails -> backoff
        assert settled.state is JobState.PENDING
        assert settled.not_before == 1.0  # base * factor**0
        assert service.claim("w1") is None  # still in backoff
        clock.advance(1.0)
        settled = service.run_one("w1")  # attempt 2 succeeds
        assert settled.state is JobState.DONE
        assert settled.attempts == 2
        assert service.query_counter("/jobs{t}/count/retried") == 1

    def test_backoff_grows_and_caps(self, service, clock):
        job = _submit_faulty(service, fails=10, max_attempts=4)
        delays = []
        for _ in range(3):
            before = clock.now
            settled = service.run_one("w1")
            assert settled.state is JobState.PENDING
            delays.append(settled.not_before - before)
            clock.advance(settled.not_before - before)
        assert delays == [1.0, 2.0, 4.0]  # capped at retry_cap_seconds

    def test_budget_exhaustion_fails_with_cause(self, service, clock):
        job = _submit_faulty(service, fails=10, max_attempts=2)
        for _ in range(2):
            settled = service.run_one("w1")
            clock.advance(5.0)
        assert settled.state is JobState.FAILED
        assert "injected failure" in settled.failure
        assert "2/2 attempts" in settled.failure
        assert service.query_counter("/jobs{t}/count/failed") == 1
        assert service.claim("w1") is None


class TestLeaseExpiry:
    def test_dead_workers_job_is_reclaimed(self, service, clock):
        job = _submit_faulty(service)
        service.claim("dead-worker")
        service.start(job.job_id, "dead-worker")
        assert service.claim("w2") is None  # lease still live
        clock.advance(10.0)  # dead-worker never renews
        # The claim that notices the expiry harvests it and requeues the
        # job with retry backoff; once that elapses it is re-claimable.
        assert service.claim("w2") is None
        assert service.query_counter("/jobs{t}/count/lease-expired") == 1
        clock.advance(1.0)
        reclaimed, lease = service.claim("w2")
        assert reclaimed.job_id == job.job_id
        assert lease.owner == "w2"
        assert reclaimed.attempts == 2
        assert any(e.kind == "lease_expired" for e in service.events)

    def test_renewal_keeps_the_lease_alive(self, service, clock):
        job = _submit_faulty(service)
        service.claim("w1")
        for _ in range(3):
            clock.advance(6.0)
            service.renew(job.job_id, "w1")
        assert service.claim("w2") is None  # renewed lease still owns it

    def test_expiry_consumes_retry_budget_to_failure(self, service, clock):
        job = _submit_faulty(service, max_attempts=2)
        for worker in ("w1", "w2"):
            claimed = service.claim(worker)
            if claimed is None:
                clock.advance(5.0)
                claimed = service.claim(worker)
            clock.advance(10.0)  # worker dies every time
        service.expire_leases()
        final = service.store.get(job.job_id)
        assert final.state is JobState.FAILED
        assert "lease expired" in final.failure


class TestRecovery:
    def test_restart_requeues_claimed_and_running(self, tmp_path, clock):
        root = tmp_path / "svc"
        with JobService(root, clock=clock, policy=FAST) as svc:
            svc.set_quota("t", TenantQuota(max_active=8))
            running = _submit_faulty(svc, key="running")
            claimed = _submit_faulty(svc, key="claimed")
            finished = _submit_faulty(svc, key="finished")
            svc.claim("w1")  # FIFO: claims "running"
            svc.start(running.job_id, "w1")
            svc.claim("w2")  # claims "claimed"
            svc.claim("w3")  # claims "finished"
            svc.start(finished.job_id, "w3")
            svc.complete(finished.job_id, "w3", {"digest": "x"})
            fresh = _submit_faulty(svc, key="fresh")

        # SIGKILL-equivalent: the store is simply reopened; no worker
        # survives, no lease manager state carries over.
        with JobService(root, clock=clock, policy=FAST) as svc2:
            assert svc2.recovered_jobs == 3  # running, claimed, fresh
            states = {j.dedupe_key: j.state for j in svc2.store.jobs()}
            assert states["running"] is JobState.PENDING
            assert states["claimed"] is JobState.PENDING
            assert states["finished"] is JobState.DONE  # terminal untouched
            assert states["fresh"] is JobState.PENDING
            assert svc2.query_counter("/jobs{t}/count/requeued") == 2
            # Attempt counts survive: the requeued jobs already burned one.
            by_key = {j.dedupe_key: j for j in svc2.store.jobs()}
            assert by_key["running"].attempts == 1
            assert by_key["claimed"].attempts == 1
            # And everything non-terminal is claimable again.
            drained = svc2.drain("recovery-worker")
            assert drained == 3
            assert all(j.terminal for j in svc2.store.jobs())

    def test_restart_preserves_dedupe_and_never_reterminates(self, tmp_path, clock):
        root = tmp_path / "svc"
        with JobService(root, clock=clock, policy=FAST) as svc:
            original = _submit_faulty(svc, key="k")
            svc.run_one("w1")
        with JobService(root, clock=clock, policy=FAST) as svc2:
            again, created = svc2.submit("t", "faulty", {}, dedupe_key="k")
            assert not created
            assert again.job_id == original.job_id
            assert again.state is JobState.DONE
            with pytest.raises(JobStateError, match="exactly-once"):
                svc2.cancel(original.job_id)
            # Durable counters were rebuilt from the journal.
            assert svc2.query_counter("/jobs{t}/count/submitted") == 1
            assert svc2.query_counter("/jobs{t}/count/completed") == 1


class TestObservability:
    def test_per_tenant_counters_and_events(self, service, clock):
        _submit_faulty(service, "alice", key="a")
        job = _submit_faulty(service, "bob", fails=1, key="b")
        service.run_one("w1")  # alice's job -> done
        service.run_one("w1")  # bob's job -> retry backoff
        clock.advance(1.0)
        service.run_one("w1")  # bob's job -> done
        counters = service.counters()
        assert counters["/jobs{alice}/count/submitted"] == 1
        assert counters["/jobs{alice}/count/completed"] == 1
        assert counters["/jobs{bob}/count/retried"] == 1
        assert counters["/jobs{bob}/count/completed"] == 1
        kinds = [e.kind for e in service.events]
        assert kinds.count("job_submitted") == 2
        assert "job_retried" in kinds
        assert kinds.count("job_done") == 2

    def test_event_hook_mirrors_events(self, service):
        seen = []
        service.event_hook = seen.append
        _submit_faulty(service, key="k")
        assert [e.kind for e in seen] == ["job_submitted"]
        assert seen[0].args["tenant"] == "t"
