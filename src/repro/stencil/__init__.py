"""The paper's benchmark applications.

* :mod:`~repro.stencil.grid` -- the custom ``Grid`` container of
  Listing 2 (double-buffered, scalar or Virtual-Node-Scheme layout);
* :mod:`~repro.stencil.heat1d` -- Sec. IV-A / V-A: the 1D heat equation,
  as a serial kernel, a shared-memory partitioned solver (Listing 1),
  and the fully distributed channel-based solver used for Fig 3;
* :mod:`~repro.stencil.jacobi2d` -- Sec. IV-B / V-B: the shared-memory
  2D Jacobi solver with auto-vectorized ("scalar") and explicitly
  vectorized (VNS/pack) kernels used for Figs 4-8;
* :mod:`~repro.stencil.validation` -- analytic solutions and error norms
  used to verify both solvers numerically.
"""

from .grid import Grid, GridPair
from .heat1d import (
    heat1d_reference,
    Heat1DPartitioned,
    Heat1DPartition,
    DistributedHeat1D,
    Heat1DParams,
)
from .jacobi2d import Jacobi2D, jacobi_reference_step
from .jacobi2d_dist import Jacobi2DPartition, DistributedJacobi2D
from .validation import (
    analytic_heat_profile,
    discrete_heat_decay_factor,
    l2_error,
    max_error,
    jacobi_dense_solution,
)

__all__ = [
    "Grid",
    "GridPair",
    "heat1d_reference",
    "Heat1DPartitioned",
    "Heat1DPartition",
    "DistributedHeat1D",
    "Heat1DParams",
    "Jacobi2D",
    "jacobi_reference_step",
    "Jacobi2DPartition",
    "DistributedJacobi2D",
    "analytic_heat_profile",
    "discrete_heat_decay_factor",
    "l2_error",
    "max_error",
    "jacobi_dense_solution",
]
