"""Parcelports: how parcels reach the destination locality.

The port computes the *arrival time* of each parcel and hands it to a
router callback installed by the runtime (which decodes the payload and
spawns the handler task at that virtual time).  Two ports exist:

* :class:`LoopbackParcelport` -- zero-delay, for single-node runs;
* :class:`NetworkParcelport` -- delays from the machine's
  :class:`~repro.hardware.interconnect.Interconnect`.  When the platform
  cannot progress communication in the background (``overlap=False`` --
  the Kunpeng 916 case), the *sending task* is charged the transfer
  time, so communication eats into compute exactly as the paper
  describes.
"""

from __future__ import annotations

from typing import Callable

from ...errors import ParcelError
from ...hardware.interconnect import Interconnect
from .. import context as ctx
from .parcel import Parcel

__all__ = ["Parcelport", "LoopbackParcelport", "NetworkParcelport"]

#: Router signature: (parcel, arrival_time) -> None.
Router = Callable[[Parcel, float], None]


class Parcelport:
    """Base parcelport: statistics plus the router hookup."""

    def __init__(self) -> None:
        self._router: Router | None = None
        self.parcels_sent = 0
        self.bytes_sent = 0

    def install_router(self, router: Router) -> None:
        """The runtime installs its decode-and-dispatch callback here."""
        self._router = router

    def send(self, parcel: Parcel) -> float:
        """Ship a parcel; returns its arrival time."""
        if self._router is None:
            raise ParcelError("parcelport has no router installed (runtime not booted)")
        arrival = self._arrival_time(parcel)
        self.parcels_sent += 1
        self.bytes_sent += parcel.size_bytes
        self._router(parcel, arrival)
        return arrival

    def _arrival_time(self, parcel: Parcel) -> float:
        raise NotImplementedError


class LoopbackParcelport(Parcelport):
    """In-process delivery with no modelled delay."""

    def _arrival_time(self, parcel: Parcel) -> float:
        return parcel.send_time


class NetworkParcelport(Parcelport):
    """Delivery over a modelled interconnect.

    ``resolve_destination`` maps a parcel to its destination locality
    (installed by the runtime, since GID-addressed parcels need AGAS).
    """

    def __init__(
        self,
        interconnect: Interconnect,
        n_localities: int,
        overlap: bool = True,
    ) -> None:
        super().__init__()
        if n_localities < 1:
            raise ParcelError("need at least one locality")
        self.interconnect = interconnect
        self.n_localities = n_localities
        self.overlap = overlap
        self._resolve: Callable[[Parcel], int] | None = None

    def install_resolver(self, resolve: Callable[[Parcel], int]) -> None:
        self._resolve = resolve

    def _arrival_time(self, parcel: Parcel) -> float:
        if self._resolve is None:
            raise ParcelError("parcelport has no destination resolver installed")
        destination = self._resolve(parcel)
        if destination == parcel.source_locality:
            return parcel.send_time
        delay = self.interconnect.transfer_time(parcel.size_bytes, self.n_localities)
        if not self.overlap:
            # The platform cannot hide the transfer: the sending task pays
            # for it on its own core (Sec. VII-A, Kunpeng 916).
            ctx.add_cost(delay)
        return parcel.send_time + delay
