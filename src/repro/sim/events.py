"""Stable timestamped event queue.

Events at equal times fire in insertion order (FIFO), which makes the
engine deterministic without relying on comparison of callback objects.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True)
class Event:
    """A scheduled callback.

    ``seq`` breaks ties among events with equal ``time`` so ordering is the
    insertion order, never an arbitrary object comparison.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)

    def fire(self) -> Any:
        return self.action()


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``.

    Supports cancellation by tombstoning: ``cancel`` marks the event dead
    (O(1) via a pending-set) and ``pop`` skips dead entries lazily.
    """

    __slots__ = ("_heap", "_counter", "_dead", "_pending")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._dead: set[int] = set()
        self._pending: set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def push(self, time: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` at absolute virtual ``time``; returns a handle."""
        if time < 0.0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        event = Event(time=float(time), seq=next(self._counter), action=action)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._pending.add(event.seq)
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a scheduled event. Returns False if already fired/cancelled."""
        if event.seq not in self._pending:
            return False
        self._pending.discard(event.seq)
        self._dead.add(event.seq)
        return True

    def peek_time(self) -> float:
        """Time of the next live event (raises if empty)."""
        self._drop_dead()
        if not self._heap:
            raise SimulationError("peek on empty event queue")
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest live event (raises if empty)."""
        self._drop_dead()
        if not self._heap:
            raise SimulationError("pop on empty event queue")
        _, seq, event = heapq.heappop(self._heap)
        self._pending.discard(seq)
        return event

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][1] in self._dead:
            _, seq, _ = heapq.heappop(heap)
            self._dead.discard(seq)

    def clear(self) -> None:
        self._heap.clear()
        self._dead.clear()
        self._pending.clear()
