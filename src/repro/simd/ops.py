"""NSIMD-style free-function API over packs.

NSIMD exposes its operations as free functions (``nsimd::add(a, b)``,
``nsimd::loadu<pack<T>>(p)``, ``nsimd::addv`` ...) rather than methods;
generic C++ kernels are written against that surface.  This module
mirrors it so ported kernels read like their C++ originals, and adds
the masked-select (``if_else1``) NSIMD provides for branch-free code.

All functions are thin, validated wrappers over :class:`Pack`; the
tests pin each one to its NumPy ground truth.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimdError
from .isa import Isa
from .pack import Pack

__all__ = [
    "len_",
    "set1",
    "loadu",
    "storeu",
    "add",
    "sub",
    "mul",
    "div",
    "fma",
    "neg",
    "min_",
    "max_",
    "abs_",
    "sqrt",
    "addv",
    "shuffle",
    "if_else1",
    "cmp_lt",
    "cmp_le",
    "cmp_eq",
]


def len_(isa: Isa, dtype=np.float64) -> int:
    """Lane count of a pack (NSIMD ``len``)."""
    return isa.lanes(np.dtype(dtype))


def set1(isa: Isa, value: float, dtype=np.float64) -> Pack:
    """Broadcast a scalar to all lanes."""
    return Pack.set1(isa, value, dtype)


def loadu(isa: Isa, buffer: np.ndarray, offset: int = 0) -> Pack:
    """Unaligned load of one register from ``buffer[offset:]``."""
    return Pack.load(isa, buffer, offset)


def storeu(buffer: np.ndarray, pack: Pack, offset: int = 0) -> None:
    """Unaligned store of all lanes to ``buffer[offset:]``."""
    pack.store(buffer, offset)


def add(a: Pack, b: Pack | float) -> Pack:
    return a + b


def sub(a: Pack, b: Pack | float) -> Pack:
    return a - b


def mul(a: Pack, b: Pack | float) -> Pack:
    return a * b


def div(a: Pack, b: Pack | float) -> Pack:
    return a / b


def fma(a: Pack, b: Pack | float, c: Pack | float) -> Pack:
    """Fused multiply-add ``a * b + c``."""
    return a.fma(b, c)


def neg(a: Pack) -> Pack:
    return -a


def min_(a: Pack, b: Pack | float) -> Pack:
    return a.min(b)


def max_(a: Pack, b: Pack | float) -> Pack:
    return a.max(b)


def abs_(a: Pack) -> Pack:
    return a.abs()


def sqrt(a: Pack) -> Pack:
    return a.sqrt()


def addv(a: Pack) -> float:
    """Horizontal sum (NSIMD ``addv``)."""
    return a.hadd()


def shuffle(a: Pack, indices: Sequence[int]) -> Pack:
    return a.shuffle(indices)


def _mask_of(condition: Sequence[bool], pack: Pack) -> np.ndarray:
    mask = np.asarray(list(condition), dtype=bool)
    if mask.shape != (pack.lanes,):
        raise SimdError(
            f"mask of {mask.shape[0] if mask.ndim else 0} lanes for a "
            f"{pack.lanes}-lane pack"
        )
    return mask


def if_else1(condition: Sequence[bool], a: Pack, b: Pack) -> Pack:
    """Per-lane select: ``a`` where the mask is true, else ``b``
    (NSIMD ``if_else1``)."""
    if a.lanes != b.lanes or a.dtype != b.dtype:
        raise SimdError("if_else1 operands must match in lanes and dtype")
    mask = _mask_of(condition, a)
    return Pack(a.isa, np.where(mask, a.to_array(), b.to_array()))


def _compare(a: Pack, b: Pack | float, op) -> list[bool]:
    rhs = b.to_array() if isinstance(b, Pack) else np.full(a.lanes, b, dtype=a.dtype)
    if isinstance(b, Pack) and (b.lanes != a.lanes or b.dtype != a.dtype):
        raise SimdError("comparison operands must match in lanes and dtype")
    return [bool(v) for v in op(a.to_array(), rhs)]


def cmp_lt(a: Pack, b: Pack | float) -> list[bool]:
    """Per-lane ``a < b`` mask."""
    return _compare(a, b, np.less)


def cmp_le(a: Pack, b: Pack | float) -> list[bool]:
    """Per-lane ``a <= b`` mask."""
    return _compare(a, b, np.less_equal)


def cmp_eq(a: Pack, b: Pack | float) -> list[bool]:
    """Per-lane ``a == b`` mask."""
    return _compare(a, b, np.equal)
