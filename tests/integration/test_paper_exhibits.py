"""Integration: every paper exhibit renders and carries its signatures."""

import pytest

from repro.exhibits import (
    DTYPE_VARIANTS,
    counter_table,
    fig2_stream,
    fig3_1d_scaling,
    fig_2d_stencil,
    render_counter_table,
    render_fig2,
    render_fig3,
    render_fig_2d,
    render_table1,
    table1,
)
from repro.hardware import machine_names
from repro.perf.cost import PAPER_GRID_2D_LARGE


def test_table1_contains_all_machines():
    text = render_table1()
    for name in ("Xeon E5-2660 v3", "Kunpeng 916", "ThunderX2", "A64FX"):
        assert name in text
    headers, rows = table1()
    assert any("Peak Performance" in row[0] for row in rows)


def test_fig2_renders_every_machine():
    text = render_fig2()
    assert text.count("GB/s") == 4
    series = fig2_stream()
    assert {len(s.points) > 2 for s in series} == {True}


def test_fig2_scatter_variant():
    compact = fig2_stream(pinning="compact")
    scatter = fig2_stream(pinning="scatter")
    # Scatter exposes aggregate bandwidth earlier on multi-domain nodes.
    xeon_c = compact[0]
    xeon_s = scatter[0]
    mid = len(xeon_c.points) // 2
    assert xeon_s.ys()[mid] >= xeon_c.ys()[mid]


def test_fig3_contains_strong_and_weak():
    text = render_fig3()
    assert "Strong scaling" in text and "Weak scaling" in text
    data = fig3_1d_scaling()
    assert len(data["strong"]) == 4 and len(data["weak"]) == 4


@pytest.mark.parametrize("name", machine_names())
def test_fig_2d_renders_with_variants_and_peaks(name):
    series = fig_2d_stencil(name)
    names = [s.name for s in series]
    for label, _, _ in DTYPE_VARIANTS:
        assert label in names
    assert "Expected Peak Min (Float)" in names
    assert "Expected Peak Max (Double)" in names
    text = render_fig_2d(name)
    assert "GLUP/s" in text


def test_fig7_uses_large_grid_label():
    text = render_fig_2d("a64fx", PAPER_GRID_2D_LARGE)
    assert "Fig 7" in text and "196608" in text


@pytest.mark.parametrize("name", machine_names())
def test_counter_tables_have_four_variants(name):
    headers, rows = counter_table(name)
    assert [row[0] for row in rows] == [
        "Float",
        "Vector Float",
        "Double",
        "Vector Double",
    ]
    text = render_counter_table(name)
    assert "Hardware Counters" in text


def test_counter_table_numbers_match_paper_format():
    text = render_counter_table("xeon-e5-2660v3")
    assert "3.153e10" in text  # Table III's first instruction count
