"""DES cross-check for the 2D stencil: run the *actual* row-parallel
solver on a virtual-time pool shaped like each machine and verify the
makespan against the analytic model.

The analytic model says a full sweep costs ``rows x cost_per_row / P``;
the DES runs Listing 2's ``for_each`` over rows with per-row costs and
real scheduling, so chunking and load-balance effects are measured, not
assumed.  Numerics run on a scaled-down grid -- only the costs are
paper-scale.
"""

import numpy as np
import pytest

from repro.hardware import machine
from repro.perf import stencil2d_glups
from repro.runtime import Runtime, par
from repro.stencil import Jacobi2D

ROWS, COLS, STEPS = 64, 34, 4


@pytest.mark.parametrize("name", ["xeon-e5-2660v3", "a64fx"])
def test_des_2d_matches_analytic_rate(benchmark, save_exhibit, name):
    m = machine(name)
    workers = 8  # scaled-down node
    glups = stencil2d_glups(m, np.float32, "simd", workers)
    # Cost of one row update at the modelled rate.
    cost_per_row = (COLS - 2) / (glups * 1e9) * 1e6  # scaled x1e6 to make
    # virtual times O(0.1s) -- pure scaling, cancels in the comparison.

    def run() -> float:
        with Runtime(n_localities=1, workers_per_locality=workers) as rt:
            solver = Jacobi2D(ROWS, COLS, np.float32, cost_per_row=cost_per_row)
            solver.initialize()
            rt.run(lambda: solver.run(STEPS, par))
            return rt.makespan

    makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    interior_rows = ROWS - 2
    ideal = STEPS * interior_rows * cost_per_row / workers
    efficiency = ideal / makespan
    save_exhibit(
        f"des_2d_{name}",
        f"DES 2D cross-check on {m.spec.name}: virtual makespan "
        f"{makespan:.4f}s vs ideal {ideal:.4f}s "
        f"(parallel efficiency {efficiency:.0%}, {workers} workers, "
        f"{interior_rows} rows x {STEPS} steps)",
    )
    # Rows don't divide evenly into worker chunks; allow quantisation
    # loss but no more.
    assert 0.80 <= efficiency <= 1.0


def test_des_2d_chunking_effects(benchmark):
    """Oversized chunks serialize rows; the auto-partitioner does not."""
    workers = 8
    cost_per_row = 1.0

    def makespan_with(policy) -> float:
        with Runtime(n_localities=1, workers_per_locality=workers) as rt:
            solver = Jacobi2D(ROWS, COLS, np.float32, cost_per_row=cost_per_row)
            solver.initialize()
            rt.run(lambda: solver.run(1, policy))
            return rt.makespan

    auto = benchmark.pedantic(
        lambda: makespan_with(par), rounds=1, iterations=1
    )
    giant_chunks = makespan_with(par.with_chunk_size(ROWS))  # one chunk
    ideal = (ROWS - 2) * cost_per_row / workers
    assert auto <= ideal * 1.25
    assert giant_chunks == pytest.approx((ROWS - 2) * cost_per_row)  # serial


def test_des_2d_results_stay_correct_under_costing():
    """Attaching costs must not perturb the numerics."""
    plain = Jacobi2D(16, 18, np.float64)
    plain.initialize()
    expected = plain.run(10)
    with Runtime(n_localities=1, workers_per_locality=4) as rt:
        costed = Jacobi2D(16, 18, np.float64, cost_per_row=1.0)
        costed.initialize()
        out = rt.run(lambda: costed.run(10, par))
    assert np.array_equal(out, expected)
