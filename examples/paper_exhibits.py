#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Prints Table I, Fig 2 (STREAM), Fig 3 (1D scaling), Figs 4-8 (2D stencil
per machine, including the enlarged A64FX grid of Fig 7), and Tables
III-VI (hardware counters) from the calibrated models.

Run:  python examples/paper_exhibits.py
"""

from repro.exhibits import (
    render_counter_table,
    render_table2,
    render_fig2,
    render_fig3,
    render_fig_2d,
    render_table1,
)
from repro.perf.cost import PAPER_GRID_2D_LARGE


def main() -> None:
    sections = [
        render_table1(),
        render_table2(),
        render_fig2(),
        render_fig3(),
        render_fig_2d("xeon-e5-2660v3"),
        render_fig_2d("kunpeng916"),
        render_fig_2d("a64fx"),
        render_fig_2d("a64fx", PAPER_GRID_2D_LARGE),
        render_fig_2d("thunderx2"),
        render_counter_table("xeon-e5-2660v3"),
        render_counter_table("kunpeng916"),
        render_counter_table("a64fx"),
        render_counter_table("thunderx2"),
    ]
    print(("\n\n" + "=" * 78 + "\n\n").join(sections))


if __name__ == "__main__":
    main()
