"""The repro-specific static lint pass: rules, escape hatch, JSON mode."""

import json

from repro.analysis.lint import Finding, lint_paths, lint_source, main

# Fake paths: model rules (PX1xx/2xx/3xx) apply only inside a "repro"
# package directory; generic rules (PX4xx/5xx/6xx) apply everywhere.
IN_REPRO = "src/repro/fake_module.py"
OUTSIDE = "scripts/fake_script.py"


def codes(findings):
    return [f.code for f in findings]


# PX000 ----------------------------------------------------------------------
def test_syntax_error_reported_as_px000():
    found = lint_source("def broken(:\n", IN_REPRO)
    assert codes(found) == ["PX000"]


# PX101 ----------------------------------------------------------------------
def test_wall_clock_flagged_inside_repro():
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert "PX101" in codes(lint_source(src, IN_REPRO))


def test_sleep_and_datetime_now_flagged():
    src = (
        "import time\nimport datetime\n\n"
        "def f():\n"
        "    time.sleep(1)\n"
        "    return datetime.datetime.now()\n"
    )
    assert codes(lint_source(src, IN_REPRO)).count("PX101") == 2


def test_wall_clock_not_flagged_outside_repro():
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert "PX101" not in codes(lint_source(src, OUTSIDE))


# PX102 ----------------------------------------------------------------------
def test_unseeded_random_flagged():
    src = "import random\n\ndef f():\n    return random.random()\n"
    assert "PX102" in codes(lint_source(src, IN_REPRO))


def test_seeded_random_instance_allowed():
    src = "import random\n\ndef f():\n    return random.Random(42).random()\n"
    assert "PX102" not in codes(lint_source(src, IN_REPRO))


def test_unseeded_random_instance_flagged():
    src = "import random\n\ndef f():\n    return random.Random()\n"
    assert "PX102" in codes(lint_source(src, IN_REPRO))


# PX201 ----------------------------------------------------------------------
def test_threading_import_flagged():
    assert "PX201" in codes(lint_source("import threading\n", IN_REPRO))


def test_concurrent_futures_from_import_flagged():
    src = "from concurrent.futures import ThreadPoolExecutor as TPE\n"
    found = lint_source(src, IN_REPRO)
    assert "PX201" in codes(found)


# PX301 ----------------------------------------------------------------------
def test_blocking_get_in_component_action_flagged():
    src = (
        "from repro.runtime.agas.component import Component\n\n"
        "class Thing(Component):\n"
        "    def handler(self, fut):\n"
        "        return fut.get()\n"
    )
    assert "PX301" in codes(lint_source(src, IN_REPRO))


def test_private_methods_and_plain_classes_not_flagged():
    src = (
        "from repro.runtime.agas.component import Component\n\n"
        "class Thing(Component):\n"
        "    def _helper(self, fut):\n"
        "        return fut.get()\n\n"
        "class NotAComponent:\n"
        "    def handler(self, fut):\n"
        "        return fut.get()\n"
    )
    assert "PX301" not in codes(lint_source(src, IN_REPRO))


def test_get_with_timeout_not_flagged():
    src = (
        "from repro.runtime.agas.component import Component\n\n"
        "class Thing(Component):\n"
        "    def handler(self, fut):\n"
        "        return fut.get(timeout=1.0)\n"
    )
    assert "PX301" not in codes(lint_source(src, IN_REPRO))


# PX401 ----------------------------------------------------------------------
def test_set_after_retirement_flagged():
    src = (
        "def f(promise):\n"
        "    promise.break_promise()\n"
        "    promise.set_value(1)\n"
    )
    assert "PX401" in codes(lint_source(src, OUTSIDE))


def test_set_before_retirement_allowed():
    src = (
        "def f(promise):\n"
        "    promise.set_value(1)\n"
        "    promise.break_promise()\n"
    )
    assert "PX401" not in codes(lint_source(src, OUTSIDE))


# PX501 ----------------------------------------------------------------------
def test_mutable_default_flagged():
    src = "def f(items=[]):\n    return items\n"
    assert "PX501" in codes(lint_source(src, OUTSIDE))


def test_mutable_default_call_flagged():
    src = "def f(table=dict()):\n    return table\n"
    assert "PX501" in codes(lint_source(src, OUTSIDE))


def test_none_default_allowed():
    src = "def f(items=None):\n    return items or []\n"
    assert "PX501" not in codes(lint_source(src, OUTSIDE))


# PX601 ----------------------------------------------------------------------
def test_unused_import_flagged():
    src = "import os\n\nprint('no os here')\n"
    assert "PX601" in codes(lint_source(src, OUTSIDE))


def test_used_import_and_all_export_not_flagged():
    used = "import os\n\nprint(os.sep)\n"
    assert "PX601" not in codes(lint_source(used, OUTSIDE))
    exported = "import os\n\n__all__ = ['os']\n"
    assert "PX601" not in codes(lint_source(exported, OUTSIDE))


# Escape hatch ---------------------------------------------------------------
def test_line_disable_suppresses_only_that_line():
    src = (
        "import time\n\n"
        "def f():\n"
        "    a = time.sleep(1)  # repro-lint: disable=PX101\n"
        "    return time.sleep(2)\n"
    )
    found = lint_source(src, IN_REPRO)
    assert codes(found).count("PX101") == 1
    assert found[0].line == 5


def test_file_disable_suppresses_everywhere():
    src = (
        "# repro-lint: disable-file=PX101\n"
        "import time\n\n"
        "def f():\n"
        "    return time.sleep(1)\n"
    )
    assert "PX101" not in codes(lint_source(src, IN_REPRO))


def test_disable_all_suppresses_every_code():
    src = "def f(items=[]):  # repro-lint: disable=all\n    return items\n"
    assert lint_source(src, OUTSIDE) == []


# Entry point ----------------------------------------------------------------
def test_main_reports_findings_and_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PX501" in out and "1 finding(s)" in out


def test_main_json_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    assert main([str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "PX501"
    assert payload[0]["line"] == 1


def test_main_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("def f(x=None):\n    return x\n")
    assert main([str(good)]) == 0
    assert capsys.readouterr().out == ""


def test_repo_source_tree_is_lint_clean():
    """The blocking CI invariant: ``python -m repro.analysis.lint src``."""
    assert lint_paths(["src"]) == []


def test_finding_render_format():
    finding = Finding(path="a.py", line=3, col=7, code="PX101", message="m")
    assert finding.render() == "a.py:3:7: PX101 m"
