"""Components: AGAS-addressable objects with remotely invokable methods.

An HPX component is an object living in the global address space whose
methods are *component actions*: callers hold only the GID and invoke
methods through the runtime, which resolves the current home and ships a
parcel there if it is remote.  Subclass :class:`Component` and invoke
methods with ``Runtime.invoke`` / ``Runtime.invoke_async``.
"""

from __future__ import annotations

from typing import Any

from ...errors import AgasError
from .. import instrument
from .gid import Gid

__all__ = ["Component"]


class Component:
    """Base class for globally addressable objects.

    Instances are created *unregistered*; :meth:`bind` attaches the GID
    the runtime assigned.  ``on_migrated`` is called after AGAS moves the
    object so subclasses can adjust locality-dependent state.
    """

    def __init__(self) -> None:
        self._gid: Gid | None = None
        self._home: int | None = None

    # Registration plumbing (called by the runtime) ------------------------------
    def bind(self, gid: Gid, home: int) -> None:
        if self._gid is not None:
            raise AgasError(f"component already bound to {self._gid!r}")
        self._gid = gid
        self._home = home

    @property
    def gid(self) -> Gid:
        if self._gid is None:
            raise AgasError("component is not registered with AGAS")
        return self._gid

    @property
    def home(self) -> int:
        """Locality this component currently believes it lives on."""
        if self._home is None:
            raise AgasError("component is not registered with AGAS")
        return self._home

    def on_migrated(self, to_locality: int) -> None:
        """AGAS moved this object; update the cached home."""
        self._home = to_locality

    # Checkpoint protocol ----------------------------------------------------
    #: Extra attribute names the default snapshot skips, for subclasses
    #: whose transient machinery (promises, live chains) must not be
    #: serialized.  AGAS wiring is always skipped: a restored component
    #: keeps its current GID/home (re-homing is AGAS's job, not the
    #: checkpoint's).
    _checkpoint_exclude: tuple[str, ...] = ()

    def checkpoint_state(self) -> dict[str, Any]:
        """Picklable snapshot of the durable state
        (see :mod:`repro.resilience.checkpoint`)."""
        skip = {"_gid", "_home", *self._checkpoint_exclude}
        return {k: v for k, v in self.__dict__.items() if k not in skip}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild from a :meth:`checkpoint_state` snapshot, in place."""
        self.__dict__.update(state)

    # Sanitizer hooks --------------------------------------------------------
    def mark_read(self, field: str) -> None:
        """Report a read of mutable shared state named ``field``.

        Call from component actions (and local helpers) that consume
        state other tasks may mutate.  With a race detector attached
        (``repro.analysis.attach()``), two accesses to the same field
        that are not ordered by a future/LCO/parcel edge raise
        :class:`~repro.errors.DataRaceError`; without one this is a
        single predicate check.
        """
        probe = instrument.probe
        if probe is not None:
            probe.access(self, field, "read")

    def mark_write(self, field: str) -> None:
        """Report a write of mutable shared state named ``field``
        (see :meth:`mark_read`)."""
        probe = instrument.probe
        if probe is not None:
            probe.access(self, field, "write")

    # Remote-callable surface ------------------------------------------------------
    def act(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run a public method by name (the parcel layer's entry point)."""
        if method.startswith("_"):
            raise AgasError(f"action {method!r} is not public")
        fn = getattr(self, method, None)
        if fn is None or not callable(fn):
            raise AgasError(
                f"{type(self).__name__} has no action {method!r}"
            )
        return fn(*args, **kwargs)
