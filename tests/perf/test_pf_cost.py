"""Tests for the execution-time model: the paper's headline numbers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.hardware import machine
from repro.perf import (
    expected_peak_2d,
    scaling_factor,
    stencil1d_node_glups,
    stencil1d_time,
    stencil2d_glups,
    stencil2d_time,
)
from repro.perf.cost import (
    PAPER_GRID_2D_LARGE,
    transfers_per_update,
)


# 1D stencil: Fig 3 and Sec. VII-A -----------------------------------------------

class TestStencil1D:
    def test_xeon_strong_scaling_matches_paper(self):
        """'the application takes 28s ... and 3.8s ... the factor being 7.36'."""
        xeon = machine("xeon-e5-2660v3")
        assert stencil1d_time(xeon, 1) == pytest.approx(28.0, rel=0.05)
        assert stencil1d_time(xeon, 8) == pytest.approx(3.8, rel=0.05)
        assert scaling_factor(xeon, 8) == pytest.approx(7.36, rel=0.02)

    def test_a64fx_strong_scaling_matches_paper(self):
        """'18s ... and 2.5s ... the factor being ... 7.2'."""
        a64fx = machine("a64fx")
        assert stencil1d_time(a64fx, 1) == pytest.approx(18.0, rel=0.05)
        assert stencil1d_time(a64fx, 8) == pytest.approx(2.5, rel=0.05)
        assert scaling_factor(a64fx, 8) == pytest.approx(7.2, rel=0.02)

    def test_weak_scaling_flat_for_xeon_and_a64fx(self):
        """'12s and 7.5s respectively irrespective of the number of nodes'."""
        for name, expected in (("xeon-e5-2660v3", 12.0), ("a64fx", 7.5)):
            m = machine(name)
            times = [
                stencil1d_time(m, n, points_per_node=480_000_000)
                for n in (1, 2, 4, 8)
            ]
            assert times[0] == pytest.approx(expected, rel=0.05)
            # Flat: worst deviation < 5 %.
            assert max(times) / min(times) < 1.05

    def test_kunpeng_strong_scaling_is_poor(self):
        """Sec. VII-A: 'we do not observe linear scaling' on Kunpeng."""
        kunpeng = machine("kunpeng916")
        assert scaling_factor(kunpeng, 8) < 5.0
        # But the others scale well.
        assert scaling_factor(machine("thunderx2"), 8) > 6.5

    def test_kunpeng_weak_scaling_rises(self):
        """'a significant increase in execution times as we increase the
        number of nodes'."""
        kunpeng = machine("kunpeng916")
        times = [
            stencil1d_time(kunpeng, n, points_per_node=480_000_000)
            for n in (1, 2, 4, 8)
        ]
        assert times == sorted(times)
        assert times[-1] > 1.2 * times[0]

    def test_node_rate_ordering(self):
        """A64FX's fine-grain contention keeps its 1D rate far below the
        bandwidth ratio would suggest -- but still the fastest node."""
        rates = {
            name: stencil1d_node_glups(machine(name))
            for name in ("xeon-e5-2660v3", "kunpeng916", "thunderx2", "a64fx")
        }
        assert rates["a64fx"] > rates["xeon-e5-2660v3"]
        assert rates["thunderx2"] > rates["xeon-e5-2660v3"]
        # Bandwidth ratio a64fx/xeon is ~5.6x, the 1D rate ratio only ~1.5x.
        assert rates["a64fx"] / rates["xeon-e5-2660v3"] < 2.0

    def test_argument_validation(self):
        xeon = machine("xeon-e5-2660v3")
        with pytest.raises(ValidationError):
            stencil1d_time(xeon, 0)
        with pytest.raises(ValidationError):
            stencil1d_time(xeon, 2, total_points=1, points_per_node=1)


# 2D stencil: Figs 4-8 and Sec. VII-B ----------------------------------------------

class TestStencil2D:
    def test_a64fx_execution_times_match_paper(self):
        """'less than 2s for scalar and vector floats and about 3.5s for
        ... doubles while utilizing all 48 compute cores'."""
        a64fx = machine("a64fx")
        for mode in ("auto", "simd"):
            assert stencil2d_time(a64fx, np.float32, mode, 48) < 2.0
            assert stencil2d_time(a64fx, np.float64, mode, 48) == pytest.approx(
                3.5, rel=0.15
            )

    def test_a64fx_larger_grid_same_rate(self):
        """Fig 7: no performance benefit from the 1.5x grid."""
        a64fx = machine("a64fx")
        small = stencil2d_glups(a64fx, np.float32, "simd", 48)
        large_time = stencil2d_time(
            a64fx, np.float32, "simd", 48, grid=PAPER_GRID_2D_LARGE
        )
        ny, nx = PAPER_GRID_2D_LARGE
        large = (ny - 2) * (nx - 2) * 100 / large_time / 1e9
        assert large == pytest.approx(small, rel=1e-6)

    def test_vectorization_gain_bands(self):
        """Sec. VII-B single-core improvement bands per machine."""
        bands = {
            "xeon-e5-2660v3": {"float32": (0.40, 0.60), "float64": (0.05, 0.15)},
            "kunpeng916": {"float32": (0.5, 0.9), "float64": (0.2, 0.9)},
            "thunderx2": {"float32": (0.50, 0.60), "float64": (0.30, 0.45)},
            "a64fx": {"float32": (0.05, 0.15), "float64": (0.05, 0.15)},
        }
        for name, per_dtype in bands.items():
            m = machine(name)
            for dtype_name, (lo, hi) in per_dtype.items():
                dtype = np.float32 if dtype_name == "float32" else np.float64
                auto = stencil2d_glups(m, dtype, "auto", 1)
                simd = stencil2d_glups(m, dtype, "simd", 1)
                gain = simd / auto - 1
                assert lo <= gain <= hi, f"{name} {dtype_name}: gain {gain:.2f}"

    def test_kunpeng_numa_dips(self):
        """Fig 5: dips when a NUMA domain is partially saturated."""
        kunpeng = machine("kunpeng916")
        glups = {
            c: stencil2d_glups(kunpeng, np.float32, "simd", c)
            for c in (32, 40, 48, 56, 64)
        }
        assert glups[40] < glups[32]  # the 32->40 drop
        assert glups[48] > glups[40]  # recovery
        assert glups[56] < glups[48]  # second dip
        assert glups[64] > glups[56]


    def test_blocking_transfers_switch(self):
        """TX2 doubles switch from 3 to 2 transfers at 16 cores."""
        tx2 = machine("thunderx2")
        assert transfers_per_update(tx2, np.float64, 8) == 3.0
        assert transfers_per_update(tx2, np.float64, 16) == 2.0
        assert transfers_per_update(tx2, np.float32, 1) == 2.0
        xeon = machine("xeon-e5-2660v3")
        assert transfers_per_update(xeon, np.float32, 20) == 3.0

    def test_large_cache_line_machines_beat_3_transfer_peak(self):
        """Sec. VII-B: ~49 % boost over the 3-transfers expectation."""
        for name in ("a64fx", "thunderx2"):
            m = machine(name)
            n = m.spec.cores_per_node
            achieved = stencil2d_glups(m, np.float32, "simd", n)
            peak_min = expected_peak_2d(m, np.float32, n, transfers=3)
            ratio = achieved / (peak_min * m.calibration.stencil2d_efficiency)
            assert ratio == pytest.approx(1.5, abs=0.02)

    def test_expected_peak_lines_ordering(self, any_machine):
        n = any_machine.spec.cores_per_node
        peak_min = expected_peak_2d(any_machine, np.float32, n, transfers=3)
        peak_max = expected_peak_2d(any_machine, np.float32, n, transfers=2)
        assert peak_max == pytest.approx(1.5 * peak_min)
        achieved = stencil2d_glups(any_machine, np.float32, "simd", n)
        assert achieved <= peak_max

    def test_floats_roughly_twice_doubles_at_saturation(self, any_machine):
        n = any_machine.spec.cores_per_node
        f = stencil2d_glups(any_machine, np.float32, "simd", n)
        d = stencil2d_glups(any_machine, np.float64, "simd", n)
        assert f / d == pytest.approx(2.0, rel=0.15)

    def test_performance_never_negative_or_absurd(self, any_machine):
        for cores in (1, any_machine.spec.cores_per_node):
            g = stencil2d_glups(any_machine, np.float64, "auto", cores)
            assert 0 < g < 200

    def test_validation(self):
        xeon = machine("xeon-e5-2660v3")
        with pytest.raises(ValidationError):
            stencil2d_glups(xeon, np.float32, "warp", 4)
        with pytest.raises(ValidationError):
            stencil2d_glups(xeon, np.float32, "auto", 0)
        with pytest.raises(ValidationError):
            stencil2d_glups(xeon, np.float32, "auto", 21)
