"""Deterministic fault injection for the parcel layer and localities.

The :class:`FaultInjector` is the single source of misfortune in a run:
the parcelport consults it for every transmission (drop, duplicate,
delay-spike, corrupt) and the runtime consults it to decide whether a
locality is down at a given virtual time.  Three properties make faults
usable as a *testbed* rather than chaos:

* **Seeded** -- every decision derives from the injector's seed.
* **Schedule-independent** -- the fate of a transmission is a pure
  function of ``(seed, parcel sequence number, attempt)``, so two runs
  with the same seed inject the *same* fault schedule even if task
  interleaving differs in intermediate states.
* **Virtual-time aware** -- locality failures are windows on the DES
  clock, not wall-clock timers, so they land at exactly the scheduled
  moment in every run.

One injector serves one :class:`~repro.runtime.runtime.Runtime`; build a
fresh injector per run to get the same schedule again.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.parcel.parcel import Parcel

__all__ = ["ParcelFate", "LocalityFailure", "FaultInjector"]

#: Fate kinds, in the order probability mass is assigned.
_KINDS = ("drop", "corrupt", "duplicate", "delay")


@dataclass(frozen=True)
class ParcelFate:
    """Outcome of one transmission attempt.

    ``kind`` is one of ``deliver | drop | corrupt | duplicate | delay``;
    ``extra_delay_s`` is the delay spike (for ``delay``) or the stagger
    between the two copies (for ``duplicate``).
    """

    kind: str
    extra_delay_s: float = 0.0

    @property
    def lost(self) -> bool:
        """True when the parcel never usably reaches the destination."""
        return self.kind in ("drop", "corrupt")


_DELIVER = ParcelFate("deliver")


@dataclass(frozen=True)
class LocalityFailure:
    """One scheduled node outage: down during ``[at, until)`` virtual s.

    ``permanent=True`` marks a crash rather than a reboot window: the
    node never comes back (``until`` must stay at the default infinity),
    and recovery requires AGAS re-homing plus a checkpoint restart
    instead of waiting out the window.
    """

    locality_id: int
    at: float
    until: float
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.locality_id < 0:
            raise ConfigError("locality id must be non-negative")
        if self.at < 0 or self.until <= self.at:
            raise ConfigError(
                f"failure window [{self.at}, {self.until}) is not a valid interval"
            )
        if self.permanent and self.until != float("inf"):
            raise ConfigError("a permanent failure cannot have an end time")

    def covers(self, time: float) -> bool:
        return self.at <= time < self.until


class FaultInjector:
    """Seeded source of parcel faults and locality outages."""

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_spike_s: float = 0.0,
    ) -> None:
        rates = (drop_rate, corrupt_rate, duplicate_rate, delay_rate)
        if any(r < 0 or r > 1 for r in rates):
            raise ConfigError("fault rates must lie in [0, 1]")
        if sum(rates) > 1.0 + 1e-12:
            raise ConfigError("fault rates must sum to at most 1")
        if delay_spike_s < 0:
            raise ConfigError("delay_spike_s must be non-negative")
        if delay_rate > 0 and delay_spike_s == 0:
            raise ConfigError("delay_rate needs a positive delay_spike_s")
        self.seed = seed
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.delay_spike_s = delay_spike_s
        self.locality_failures: list[LocalityFailure] = []
        #: Stable per-injector sequence numbers: the i-th *distinct* parcel
        #: this injector ever sees gets sequence i.  Global parcel ids vary
        #: across runs in one process; sequence numbers do not.
        self._sequence: dict[int, int] = {}

    # Locality outages -------------------------------------------------------
    def fail_locality(
        self,
        locality_id: int,
        at: float,
        until: float = float("inf"),
        permanent: bool = False,
    ) -> "FaultInjector":
        """Schedule a node outage; returns self for chaining.

        With ``permanent=True`` the locality crashes at ``at`` and never
        recovers; the resilient drivers detect this (ack-timeout
        escalation in the parcelport) and respond by decommissioning the
        node, re-homing its components, and restarting from the last
        checkpoint epoch rather than waiting for a reboot.
        """
        self.locality_failures.append(
            LocalityFailure(locality_id, at, until, permanent=permanent)
        )
        return self

    def locality_down(self, locality_id: int, time: float) -> bool:
        """Is ``locality_id`` inside an outage window at virtual ``time``?"""
        return any(
            f.locality_id == locality_id and f.covers(time)
            for f in self.locality_failures
        )

    def permanently_down(self, locality_id: int, time: float) -> bool:
        """Has ``locality_id`` suffered a permanent crash by ``time``?"""
        return any(
            f.permanent and f.locality_id == locality_id and f.covers(time)
            for f in self.locality_failures
        )

    @property
    def has_permanent_failures(self) -> bool:
        """Does the schedule contain any permanent crash?"""
        return any(f.permanent for f in self.locality_failures)

    def defer_until_up(self, locality_id: int, time: float) -> float:
        """Earliest virtual time >= ``time`` at which the locality is up.

        Chains through overlapping/adjacent windows so a restart landing
        inside another outage keeps deferring.
        """
        deferred = time
        moved = True
        while moved:
            moved = False
            for f in self.locality_failures:
                if f.locality_id == locality_id and f.covers(deferred):
                    deferred = f.until
                    moved = True
        return deferred

    # Parcel fates -----------------------------------------------------------
    def reserve(self, parcel: "Parcel") -> None:
        """Pin the parcel's fate-sequence index now (send order).

        The parcel coalescing layer transmits in per-destination flush
        order, not send order; reserving the first-come sequence index
        at enqueue time keeps every fate identical to an unbatched run.
        """
        self._sequence.setdefault(parcel.parcel_id, len(self._sequence))

    def parcel_fate(self, parcel: "Parcel", attempt: int) -> ParcelFate:
        """Decide the fate of transmission ``attempt`` of ``parcel``.

        Pure in ``(seed, sequence(parcel), attempt)``: re-asking returns
        the same answer, and retries (higher attempts) draw fresh fates.
        """
        seq = self._sequence.setdefault(parcel.parcel_id, len(self._sequence))
        rng = random.Random(f"{self.seed}:{seq}:{attempt}")
        draw = rng.random()
        threshold = 0.0
        for kind, rate in zip(
            _KINDS,
            (self.drop_rate, self.corrupt_rate, self.duplicate_rate, self.delay_rate),
        ):
            threshold += rate
            if draw < threshold:
                if kind == "delay":
                    return ParcelFate("delay", self.delay_spike_s * (0.5 + rng.random()))
                if kind == "duplicate":
                    # The copies arrive staggered by a fraction of a spike
                    # (or back-to-back when no spike scale is configured).
                    return ParcelFate("duplicate", self.delay_spike_s * rng.random())
                return ParcelFate(kind)
        return _DELIVER

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.seed}, drop={self.drop_rate}, "
            f"corrupt={self.corrupt_rate}, duplicate={self.duplicate_rate}, "
            f"delay={self.delay_rate}, outages={len(self.locality_failures)})"
        )
