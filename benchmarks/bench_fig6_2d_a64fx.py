"""Fig 6: 2D stencil on Fujitsu A64FX (8192x131072, 100 steps).

Signature results: execution under 2 s (floats) / ~3.5 s (doubles) on 48
cores; results exceed the 3-transfers "Expected Peak Min" thanks to
256-byte cache lines (implicit blocking, ~49 % boost); explicit
vectorization only buys 5-15 %.
"""

import numpy as np
import pytest

from repro.exhibits import fig_2d_stencil, render_fig_2d
from repro.hardware import machine
from repro.perf import expected_peak_2d, stencil2d_glups, stencil2d_time

MACHINE = "a64fx"


def test_fig6_exhibit(benchmark, save_exhibit):
    series = benchmark(fig_2d_stencil, MACHINE)
    assert len(series) == 8
    save_exhibit("fig6_2d_a64fx", render_fig_2d(MACHINE))


def test_fig6_execution_times(benchmark):
    m = machine(MACHINE)
    t_float = benchmark(stencil2d_time, m, np.float32, "simd", 48)
    assert t_float < 2.0  # "less than 2s for scalar and vector floats"
    assert stencil2d_time(m, np.float32, "auto", 48) < 2.0
    assert stencil2d_time(m, np.float64, "simd", 48) == pytest.approx(3.5, rel=0.15)


def test_fig6_results_exceed_peak_min():
    """Measured points sit between Expected Peak Min and Max."""
    m = machine(MACHINE)
    for cores in (16, 32, 48):
        achieved = stencil2d_glups(m, np.float32, "simd", cores)
        peak_min = expected_peak_2d(m, np.float32, cores, transfers=3)
        peak_max = expected_peak_2d(m, np.float32, cores, transfers=2)
        assert achieved > peak_min * 0.9
        assert achieved <= peak_max


def test_fig6_small_vectorization_benefit():
    """Sec. VII-B: 'improvements are anywhere from 5% to 15%'."""
    m = machine(MACHINE)
    for dtype in (np.float32, np.float64):
        gain = (
            stencil2d_glups(m, dtype, "simd", 1)
            / stencil2d_glups(m, dtype, "auto", 1)
            - 1
        )
        assert 0.05 <= gain <= 0.15


def test_fig6_highest_absolute_performance():
    """A64FX's HBM makes it the fastest machine by far."""
    a64fx_glups = stencil2d_glups(machine(MACHINE), np.float32, "simd", 48)
    for other in ("xeon-e5-2660v3", "kunpeng916", "thunderx2"):
        m = machine(other)
        other_glups = stencil2d_glups(m, np.float32, "simd", m.spec.cores_per_node)
        assert a64fx_glups > 2 * other_glups
