"""The AGAS resolution service.

One logical service for the whole job (HPX hosts the authoritative
partition on locality 0).  It maps GIDs to ``(home locality, object)``,
maintains reference counts, and performs migration.  Resolution is the
*only* way to find an object: callers must not cache the home locality,
because migration invalidates it -- exactly the property the migration
tests exercise.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ...errors import AgasError, MigrationError, UnknownGidError
from .gid import Gid

__all__ = ["AgasService"]


class _Entry:
    __slots__ = ("obj", "home", "refcount", "pinned")

    def __init__(self, obj: Any, home: int) -> None:
        self.obj = obj
        self.home = home
        self.refcount = 1  # the creating reference
        self.pinned = 0  # active local accesses; migration must wait


class AgasService:
    """GID allocation, resolution, reference counting, migration."""

    def __init__(self, n_localities: int) -> None:
        if n_localities < 1:
            raise AgasError("AGAS needs at least one locality")
        self.n_localities = n_localities
        self._counters = [0] * n_localities
        self._table: dict[Gid, _Entry] = {}
        #: Called with (gid, obj) when a refcount hits zero.
        self.on_destroy: Callable[[Gid, Any], None] | None = None
        #: Cross-process resolution fallback (multiprocess backend): asked
        #: for ``(home, obj)`` when a GID is unknown locally; None means
        #: genuinely unregistered.  The answer is cached in the table.
        self.broker: Callable[[Gid], tuple[int, Any] | None] | None = None

    # Registration ---------------------------------------------------------------
    def register(self, obj: Any, home: int) -> Gid:
        """Bind ``obj`` to a fresh GID homed at locality ``home``."""
        self._check_locality(home)
        self._counters[home] += 1
        gid = Gid(msb_locality=home, lsb=self._counters[home])
        self._table[gid] = _Entry(obj, home)
        return gid

    def register_at(self, obj: Any, gid: Gid, home: int) -> Gid:
        """Bind ``obj`` under a fixed, externally-allocated GID.

        The cross-process mirroring primitive: every process replays the
        allocating process's registrations under identical GIDs (the
        non-home processes bind a placeholder).  Advances the local
        counter so a later local :meth:`register` cannot collide.
        """
        self._check_locality(home)
        if gid in self._table:
            raise AgasError(f"{gid!r} is already registered")
        counters = self._counters
        owner = gid.msb_locality
        if gid.lsb > counters[owner]:
            counters[owner] = gid.lsb
        self._table[gid] = _Entry(obj, home)
        return gid

    def unregister(self, gid: Gid) -> Any:
        """Forcefully unbind (used by tests/teardown); returns the object."""
        entry = self._lookup(gid)
        del self._table[gid]
        return entry.obj

    # Resolution ------------------------------------------------------------------
    def resolve(self, gid: Gid) -> tuple[int, Any]:
        """Current ``(home locality, object)`` for ``gid``."""
        entry = self._lookup(gid)
        return entry.home, entry.obj

    def home_of(self, gid: Gid) -> int:
        return self._lookup(gid).home

    def is_local(self, gid: Gid, locality: int) -> bool:
        return self._lookup(gid).home == locality

    def __contains__(self, gid: Gid) -> bool:
        return gid in self._table

    def __len__(self) -> int:
        return len(self._table)

    # Reference counting -----------------------------------------------------------
    def incref(self, gid: Gid, credits: int = 1) -> int:
        """Add ``credits`` references; returns the new count."""
        if credits < 1:
            raise AgasError(f"incref needs credits >= 1, got {credits}")
        entry = self._lookup(gid)
        entry.refcount += credits
        return entry.refcount

    def decref(self, gid: Gid, credits: int = 1) -> int:
        """Drop ``credits`` references; destroys the object at zero."""
        if credits < 1:
            raise AgasError(f"decref needs credits >= 1, got {credits}")
        entry = self._lookup(gid)
        if credits > entry.refcount:
            raise AgasError(
                f"refcount underflow for {gid!r}: {entry.refcount} - {credits}"
            )
        entry.refcount -= credits
        if entry.refcount == 0:
            del self._table[gid]
            if self.on_destroy is not None:
                self.on_destroy(gid, entry.obj)
            return 0
        return entry.refcount

    def refcount(self, gid: Gid) -> int:
        return self._lookup(gid).refcount

    # Pinning / migration -------------------------------------------------------------
    def pin(self, gid: Gid) -> None:
        """Mark the object as locally in use; blocks migration."""
        self._lookup(gid).pinned += 1

    def unpin(self, gid: Gid) -> None:
        entry = self._lookup(gid)
        if entry.pinned == 0:
            raise AgasError(f"unpin without pin for {gid!r}")
        entry.pinned -= 1

    def migrate(self, gid: Gid, to_locality: int) -> int:
        """Move the object's home; the GID stays valid.  Returns new home."""
        self._check_locality(to_locality)
        entry = self._lookup(gid)
        if entry.pinned:
            raise MigrationError(
                f"cannot migrate {gid!r}: pinned by {entry.pinned} local users"
            )
        entry.home = to_locality
        obj = entry.obj
        if hasattr(obj, "on_migrated"):
            obj.on_migrated(to_locality)
        return entry.home

    def gids_homed_at(self, locality: int) -> list[Gid]:
        """All GIDs currently homed at ``locality``, in registration order.

        GIDs are allocated ``(home locality, counter)``, so sorting gives
        a deterministic order independent of dict insertion history.
        """
        self._check_locality(locality)
        return sorted(gid for gid, entry in self._table.items() if entry.home == locality)

    def evacuate(
        self, from_locality: int, survivors: Sequence[int]
    ) -> list[tuple[Gid, int]]:
        """Re-home everything on ``from_locality`` onto ``survivors``.

        The permanent-crash recovery primitive: every GID homed at the
        dead locality is migrated round-robin across the survivors (in
        deterministic GID order, so a seeded run re-homes identically
        every time).  Reference counts and GIDs are preserved by
        :meth:`migrate`; a pinned object raises
        :class:`~repro.errors.MigrationError`, which at recovery time
        means state was lost mid-action -- the caller must restore from
        a checkpoint anyway.  Returns ``[(gid, new_home), ...]``.
        """
        if not survivors:
            raise AgasError("evacuation needs at least one surviving locality")
        for survivor in survivors:
            self._check_locality(survivor)
            if survivor == from_locality:
                raise AgasError(
                    f"locality {from_locality} cannot survive its own evacuation"
                )
        moved: list[tuple[Gid, int]] = []
        for i, gid in enumerate(self.gids_homed_at(from_locality)):
            new_home = survivors[i % len(survivors)]
            self.migrate(gid, new_home)
            moved.append((gid, new_home))
        return moved

    # Internals --------------------------------------------------------------------
    def _lookup(self, gid: Gid) -> _Entry:
        try:
            return self._table[gid]
        except KeyError:
            if self.broker is not None:
                resolved = self.broker(gid)
                if resolved is not None:
                    home, obj = resolved
                    entry = _Entry(obj, home)
                    self._table[gid] = entry
                    return entry
            raise UnknownGidError(f"{gid!r} is not (or no longer) registered") from None

    def _check_locality(self, locality: int) -> None:
        if not 0 <= locality < self.n_localities:
            raise AgasError(
                f"locality {locality} out of range [0, {self.n_localities})"
            )
