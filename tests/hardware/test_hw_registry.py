"""Registry tests: the four machines match Table I exactly."""

import pytest

from repro.errors import TopologyError
from repro.hardware import machine, machine_names


def test_four_machines_registered():
    assert machine_names() == ("xeon-e5-2660v3", "kunpeng916", "thunderx2", "a64fx")


def test_unknown_machine_rejected():
    with pytest.raises(TopologyError):
        machine("epyc")


def test_lookup_is_cached():
    assert machine("a64fx") is machine("a64fx")


# Table I rows ---------------------------------------------------------------

def test_table1_clock_speeds():
    assert machine("xeon-e5-2660v3").spec.clock_ghz == 2.6
    assert machine("kunpeng916").spec.clock_ghz == 2.4
    assert machine("thunderx2").spec.clock_ghz == 2.4
    assert machine("a64fx").spec.clock_ghz == 2.2


def test_table1_threads_per_core():
    assert machine("xeon-e5-2660v3").spec.threads_per_core == 2
    assert machine("kunpeng916").spec.threads_per_core == 1
    assert machine("thunderx2").spec.threads_per_core == 4
    assert machine("a64fx").spec.threads_per_core == 1


def test_table1_dp_flops_per_cycle():
    assert machine("xeon-e5-2660v3").spec.dp_flops_per_cycle == 16
    assert machine("kunpeng916").spec.dp_flops_per_cycle == 4
    assert machine("thunderx2").spec.dp_flops_per_cycle == 8
    assert machine("a64fx").spec.dp_flops_per_cycle == 32


def test_table1_peak_gflops():
    """The bottom row of Table I, computed not copied."""
    assert machine("xeon-e5-2660v3").spec.peak_gflops == pytest.approx(832.0)
    assert machine("kunpeng916").spec.peak_gflops == pytest.approx(614.4)
    assert machine("thunderx2").spec.peak_gflops == pytest.approx(1228.8)
    assert machine("a64fx").spec.peak_gflops == pytest.approx(3379.2)


def test_a64fx_helper_cores_and_sve():
    spec = machine("a64fx").spec
    assert spec.helper_cores == 4
    assert spec.isa == "sve"
    assert spec.vector_bits == 512
    assert spec.cores_per_node == 48


def test_vector_isas():
    assert machine("xeon-e5-2660v3").spec.isa == "avx2"
    assert machine("kunpeng916").spec.isa == "neon"
    assert machine("thunderx2").spec.isa == "neon"


def test_calibration_vectorization_bands(any_machine):
    """The single-core rates must respect simd >= auto for each dtype."""
    rates = any_machine.calibration.single_core_glups
    for dtype in ("float32", "float64"):
        assert rates[(dtype, "simd")] >= rates[(dtype, "auto")]
        assert rates[(dtype, "auto")] > 0


def test_only_kunpeng_lacks_network_overlap():
    overlap = {name: machine(name).calibration.network_overlap for name in machine_names()}
    assert overlap == {
        "xeon-e5-2660v3": True,
        "kunpeng916": False,
        "thunderx2": True,
        "a64fx": True,
    }


def test_blocking_flags():
    """Large-cache-line machines get implicit blocking (Sec. VII-B)."""
    assert not machine("xeon-e5-2660v3").calibration.blocking_floats
    assert not machine("kunpeng916").calibration.blocking_floats
    assert machine("thunderx2").calibration.blocking_floats
    assert machine("thunderx2").calibration.blocking_doubles_from_cores == 16
    assert machine("a64fx").calibration.blocking_floats
    assert machine("a64fx").calibration.blocking_doubles


def test_stream_bandwidth_ordering():
    """Fig 2's vertical ordering: A64FX's HBM dwarfs everything."""
    full = {
        name: machine(name).memory.aggregate_bandwidth(
            machine(name).spec.cores_per_node
        )
        for name in machine_names()
    }
    assert full["a64fx"] > 2 * full["thunderx2"]
    assert full["thunderx2"] > full["xeon-e5-2660v3"]
    assert abs(full["xeon-e5-2660v3"] - full["kunpeng916"]) < 30
