"""LCO deadlock detection over a wait-for graph of blocked HPX-threads.

A ParalleX deadlock is a cycle through synchronisation objects: thread A
blocks on a future produced by thread B, which blocks on an LCO that
only A can release.  In the cooperative runtime such cycles surface as a
scheduler stall (no runnable work while a wait is unsatisfied) or -- the
nastier variant -- as a *silent quiescent exit* where the job drains
normally but some continuation chain never fired (e.g. a dataflow cycle
whose first stage was never launched).

:class:`DeadlockDetector` listens to the runtime's instrumentation
events and maintains a :class:`WaitGraph` with three node kinds:

* **threads** -- HPX-threads currently blocked in ``Future.get`` /
  ``wait`` / LCO waits (``wait_enter``/``wait_exit``);
* **shared states** -- promise/future states, edged to whatever must
  happen for them to become ready: their producing thread
  (thread-result promises) or their source states
  (``when_all``/``when_any``/``dataflow``/``then`` links);
* **buffers** -- channels and semaphores, as pseudo-sources of the
  promises their ``get``/``acquire`` handed out.

On ``stalled`` the detector raises :class:`~repro.errors.DeadlockError`
with the rendered cycle (``thread -> LCO -> thread -> ...``) when one
exists, or the rendered blocked-wait chains otherwise.  On ``quiesced``
it raises if any linked continuation target never became ready -- the
silent-hang case.  :func:`repro.analysis.wait_graph` exposes the live
graph for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from ..errors import DeadlockError
from ..runtime import context as ctx
from ..runtime.instrument import Probe
from ..runtime.threads.hpx_thread import ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.threads.hpx_thread import HpxThread
    from ..runtime.trace import Tracer

__all__ = ["DeadlockDetector", "WaitGraph"]


@dataclass(frozen=True)
class _Link:
    """``target`` becomes ready from ``sources`` (combinator edge)."""

    target: int
    sources: Tuple[int, ...]
    label: str
    mode: str  # "all" | "any"


@dataclass
class WaitGraph:
    """A snapshot of who waits on what, renderable for humans.

    ``edges`` maps node keys to successor keys ("waits on" direction);
    ``names`` maps node keys to display labels; ``waiters`` lists the
    blocked-thread node keys the traversal starts from.
    """

    edges: Dict[int, List[int]] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)
    waiters: List[int] = field(default_factory=list)

    def name(self, key: int) -> str:
        return self.names.get(key, f"node@{key:#x}")

    def find_cycle(self) -> List[int] | None:
        """First dependency cycle found, as a node-key list (no repeat)."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}
        roots = list(self.waiters) + list(self.edges)
        for root in roots:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            path: List[int] = []
            colour[root] = GREY
            path.append(root)
            while stack:
                node, idx = stack[-1]
                succs = self.edges.get(node, [])
                if idx < len(succs):
                    stack[-1] = (node, idx + 1)
                    succ = succs[idx]
                    state = colour.get(succ, WHITE)
                    if state == GREY:
                        return path[path.index(succ):]
                    if state == WHITE:
                        colour[succ] = GREY
                        path.append(succ)
                        stack.append((succ, 0))
                else:
                    stack.pop()
                    path.pop()
                    colour[node] = BLACK
        return None

    def render_cycle(self, cycle: Sequence[int]) -> str:
        parts = [self.name(key) for key in cycle]
        parts.append(self.name(cycle[0]))
        return " -> ".join(parts)

    def render_chains(self, limit: int = 12) -> str:
        """One line per blocked thread: what it waits on, transitively."""
        lines: List[str] = []
        for waiter in self.waiters:
            chain = [waiter]
            seen = {waiter}
            node = waiter
            while len(chain) < limit:
                succs = self.edges.get(node, [])
                nxt = next((s for s in succs if s not in seen), None)
                if nxt is None:
                    break
                chain.append(nxt)
                seen.add(nxt)
                node = nxt
            lines.append(" -> ".join(self.name(key) for key in chain))
        return "\n".join(lines)

    def render(self) -> str:
        cycle = self.find_cycle()
        if cycle is not None:
            return "wait cycle: " + self.render_cycle(cycle)
        if not self.waiters and not self.edges:
            return "wait graph: empty (no blocked threads, no pending links)"
        return "blocked waits:\n" + self.render_chains()

    def to_dot(self) -> str:
        """Render as Graphviz DOT: blocked threads are boxes, awaited
        states ellipses, and any wait cycle is highlighted in red."""
        cycle = self.find_cycle() or []
        cycle_nodes = set(cycle)
        cycle_edges = {
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        }

        def quote(text: str) -> str:
            return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'

        nodes = dict(self.names)
        for src, dsts in self.edges.items():
            nodes.setdefault(src, self.name(src))
            for dst in dsts:
                nodes.setdefault(dst, self.name(dst))
        for waiter in self.waiters:
            nodes.setdefault(waiter, self.name(waiter))
        lines = ["digraph waitfor {", "  rankdir=LR;", "  node [fontsize=10];"]
        for key in sorted(nodes):
            # Thread nodes are negative tids (see DeadlockDetector); 0 is
            # the main context.  Everything else is a shared state.
            shape = "box" if key <= 0 else "ellipse"
            attrs = f"shape={shape}"
            if key in cycle_nodes:
                attrs += ", color=red, penwidth=2"
            elif key in self.waiters:
                attrs += ", style=bold"
            lines.append(f"  n{key & 0xFFFFFFFFFFFFFFFF} [label={quote(nodes[key])}, {attrs}];")
        for src in sorted(self.edges):
            for dst in self.edges[src]:
                style = " [color=red, penwidth=2]" if (src, dst) in cycle_edges else ""
                lines.append(
                    f"  n{src & 0xFFFFFFFFFFFFFFFF} -> n{dst & 0xFFFFFFFFFFFFFFFF}{style};"
                )
        lines.append("}")
        return "\n".join(lines)


class DeadlockDetector(Probe):
    """Wait-for-graph deadlock detection for the cooperative runtime.

    With ``tracer`` given, each finding is also appended to the trace as
    a ``TraceEvent`` of kind ``"deadlock"``.
    """

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self.tracer = tracer
        #: (thread-or-None, state key, detail) for each active block.
        self._waits: List[Tuple[Any, int, str]] = []
        #: state key -> producing HPX-thread (thread-result promises).
        self._producers: Dict[int, Any] = {}
        self._links: List[_Link] = []
        self._fulfilled: set[int] = set()
        self._labels: Dict[int, str] = {}
        #: Strong refs keyed by id() so keys cannot be recycled.
        self._keepalive: Dict[int, Any] = {}
        #: Graph snapshotted when a stall/hang verdict fired.  The live
        #: ``wait_graph()`` empties as the DeadlockError unwinds the
        #: blocked frames (each runs its ``wait_exit``), so post-mortem
        #: consumers (CLI ``--dot``, the schedule explorer's replay
        #: files) read the verdict-time graph from here.
        self.last_graph: WaitGraph | None = None

    def _pin(self, obj: Any) -> int:
        key = id(obj)
        self._keepalive[key] = obj
        return key

    # Probe events ----------------------------------------------------------
    def task_created(self, parent: "HpxThread | None", task: "HpxThread") -> None:
        promise = getattr(task, "promise", None)
        state = getattr(promise, "_state", None)
        if state is not None:
            self._producers[self._pin(state)] = task

    def state_fulfilled(self, state: Any) -> None:
        self._fulfilled.add(self._pin(state))

    def state_linked(
        self, sources: Sequence[Any], target: Any, label: str, mode: str = "all"
    ) -> None:
        keys = tuple(self._pin(s) for s in sources)
        self._links.append(_Link(self._pin(target), keys, label, mode))

    def lco_labelled(self, state: Any, label: str) -> None:
        self._labels[self._pin(state)] = label

    def forgiven(self, context: Any = None) -> None:
        """A checkpoint rollback abandoned every pending continuation by
        design: count their targets as settled so the exit verdict only
        reports chains lost *after* the recovery point."""
        for link in self._links:
            self._fulfilled.add(link.target)

    def wait_enter(self, state: Any, detail: str = "") -> None:
        self._waits.append((ctx.current_task(), self._pin(state), detail))

    def wait_exit(self, state: Any) -> None:
        key = id(state)
        for i in range(len(self._waits) - 1, -1, -1):
            if self._waits[i][1] == key:
                del self._waits[i]
                return

    # Graph construction ----------------------------------------------------
    def wait_graph(self) -> WaitGraph:
        graph = WaitGraph()

        def thread_key(task: Any) -> int:
            return -task.tid if task is not None else 0

        def thread_name(task: Any) -> str:
            if task is None:
                return "main context"
            return f"thread #{task.tid} ({task.description})"

        def state_name(key: int) -> str:
            label = self._labels.get(key)
            if label is not None:
                return label
            producer = self._producers.get(key)
            if producer is not None:
                return f"future<result of thread #{producer.tid} ({producer.description})>"
            return f"future@{key:#x}"

        def add_edge(src: int, dst: int) -> None:
            succs = graph.edges.setdefault(src, [])
            if dst not in succs:
                succs.append(dst)

        def add_state(key: int) -> None:
            graph.names.setdefault(key, state_name(key))
            if key in self._fulfilled:
                return
            producer = self._producers.get(key)
            if producer is not None and producer.state is not ThreadState.TERMINATED:
                tkey = thread_key(producer)
                graph.names.setdefault(tkey, thread_name(producer))
                add_edge(key, tkey)

        for task, key, detail in self._waits:
            tkey = thread_key(task)
            graph.names.setdefault(tkey, thread_name(task))
            if tkey not in graph.waiters:
                graph.waiters.append(tkey)
            add_state(key)
            if detail and key not in self._labels:
                graph.names[key] = f"{graph.names[key]} [{detail}]"
            add_edge(tkey, key)

        for link in self._links:
            if link.target in self._fulfilled:
                continue
            pending = [k for k in link.sources if k not in self._fulfilled]
            if link.mode == "any" and len(pending) < len(link.sources):
                continue  # at least one source fired; target just unobserved
            add_state(link.target)
            if link.label and link.target not in self._labels:
                graph.names[link.target] = f"{graph.names[link.target]} [{link.label}]"
            for skey in pending:
                add_state(skey)
                add_edge(link.target, skey)

        # Blocked threads also block everything their result feeds.
        for task, _key, _detail in self._waits:
            if task is None:
                continue
            state = getattr(getattr(task, "promise", None), "_state", None)
            if state is not None and id(state) in self._keepalive:
                skey = id(state)
                if skey not in self._fulfilled:
                    graph.names.setdefault(skey, state_name(skey))
                    add_edge(skey, thread_key(task))

        return graph

    def pending_links(self) -> List[_Link]:
        """Combinator targets that never became ready (lost continuations)."""
        return [link for link in self._links if link.target not in self._fulfilled]

    # Verdicts --------------------------------------------------------------
    def _emit(self, graph: WaitGraph, verdict: str) -> None:
        if self.tracer is None:
            return
        from ..runtime.trace import TraceEvent

        frame = ctx.current_or_none()
        pool = frame.pool if frame is not None else None
        self.tracer.events.append(
            TraceEvent(
                kind="deadlock",
                time=pool.now if pool is not None else 0.0,
                pool=pool.name if pool is not None else "",
                worker_id=frame.worker_id if frame is not None else None,
                args={"verdict": verdict, "graph": graph.render()},
            )
        )

    def stalled(self, context: Any = None) -> None:
        graph = self.wait_graph()
        self.last_graph = graph
        cycle = graph.find_cycle()
        self._emit(graph, "stall")
        if cycle is not None:
            raise DeadlockError(
                "deadlock: no runnable work and the wait-for graph has a "
                "cycle\n  " + graph.render_cycle(cycle)
            )
        raise DeadlockError(
            "deadlock: no runnable work while HPX-threads are blocked\n"
            + graph.render_chains()
        )

    def quiesced(self, context: Any = None) -> None:
        lost = self.pending_links()
        if not lost and not self._waits:
            return
        graph = self.wait_graph()
        self.last_graph = graph
        self._emit(graph, "quiesced-with-pending")
        cycle = graph.find_cycle()
        if cycle is not None:
            raise DeadlockError(
                "silent hang: the job quiesced but a continuation cycle "
                "never fired\n  " + graph.render_cycle(cycle)
            )
        detail = "\n".join(
            f"  {graph.name(link.target)} still waiting on "
            + ", ".join(graph.name(k) for k in link.sources
                        if k not in self._fulfilled)
            for link in lost
        )
        raise DeadlockError(
            "silent hang: the job quiesced with continuations that can "
            "never fire\n" + (detail or graph.render_chains())
        )
