"""Metrics collection: the JSON-ready artifact behind benchmarks/CLI."""

import pytest

from repro.observability import STANDARD_COUNTERS, collect_metrics
from repro.runtime import Runtime
from repro.runtime.trace import Tracer


@pytest.fixture()
def traced_runtime():
    tracer = Tracer()
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1
    ) as rt:
        with tracer.attach(rt):
            rt.run(lambda: rt.async_at(1, abs, -2).get())
        yield rt, tracer


def test_collect_metrics_standard_counters(traced_runtime):
    rt, _ = traced_runtime
    metrics = collect_metrics(rt)
    assert set(metrics) == {"counters"}
    assert set(metrics["counters"]) == set(STANDARD_COUNTERS)
    assert all(isinstance(v, float) for v in metrics["counters"].values())
    assert metrics["counters"]["/runtime/uptime"] > 0.0


def test_collect_metrics_with_tracer(traced_runtime):
    rt, tracer = traced_runtime
    metrics = collect_metrics(rt, tracer=tracer)
    assert set(metrics) == {"counters", "histograms"}
    assert set(metrics["histograms"]) == {
        "task_duration",
        "queue_delay",
        "parcel_latency",
    }
    for summary in metrics["histograms"].values():
        assert {"count", "mean", "p50", "p95", "p99"} <= set(summary)


def test_collect_metrics_custom_counters(traced_runtime):
    rt, _ = traced_runtime
    metrics = collect_metrics(rt, counters=["/runtime/uptime"])
    assert list(metrics["counters"]) == ["/runtime/uptime"]
