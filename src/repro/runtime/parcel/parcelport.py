"""Parcelports: how parcels reach the destination locality.

The port computes the *arrival time* of each parcel and hands it to a
router callback installed by the runtime (which decodes the payload and
spawns the handler task at that virtual time).  Two ports exist:

* :class:`LoopbackParcelport` -- zero-delay, for single-node runs;
* :class:`NetworkParcelport` -- delays from the machine's
  :class:`~repro.hardware.interconnect.Interconnect`.  When the platform
  cannot progress communication in the background (``overlap=False`` --
  the Kunpeng 916 case), the *sending task* is charged the transfer
  time, so communication eats into compute exactly as the paper
  describes.

When a :class:`~repro.resilience.faults.FaultInjector` is installed the
port becomes lossy: every transmission gets a fate (deliver, drop,
corrupt, duplicate, delay-spike).  A :class:`RetryPolicy` layers
reliable delivery on top -- lost parcels are retransmitted after an
ack-timeout with capped exponential backoff, all on the virtual clock,
and land in the dead-letter queue once attempts are exhausted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ...errors import ConfigError, ParcelDeadLetterError, ParcelError, ParcelShedError
from ...hardware.interconnect import Interconnect
from .. import context as ctx
from .parcel import Parcel

if TYPE_CHECKING:  # pragma: no cover
    from ...resilience.faults import FaultInjector
    from ...resilience.overload import OverloadController
    from .batcher import ParcelBatcher

__all__ = ["RetryPolicy", "Parcelport", "LoopbackParcelport", "NetworkParcelport"]

#: Router signature: (parcel, arrival_time) -> None.
Router = Callable[[Parcel, float], None]

#: Retry-scheduler signature: (parcel, retransmit_at_virtual_time) -> None.
RetryScheduler = Callable[[Parcel, float], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Ack-timeout retransmission with capped exponential backoff.

    ``attempt`` counts *transmissions already made*, so the wait before
    retransmission ``k+1`` is ``min(base * backoff**(k-1), cap)``.  With
    ``enabled=False`` the first loss dead-letters immediately (the
    "retry disabled" ablation).
    """

    enabled: bool = True
    max_attempts: int = 8
    base_timeout_s: float = 1e-5
    max_timeout_s: float = 64e-5
    backoff: float = 2.0
    #: Jitter fraction in [0, 1]: each retry timeout is scaled by a
    #: seeded factor in ``[1 - jitter, 1]`` so retries toward a
    #: recovering locality de-synchronize instead of stampeding it.
    #: 0 (the default) keeps the historical synchronized schedule.
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_timeout_s <= 0 or self.max_timeout_s <= 0:
            raise ConfigError("retry timeouts must be positive")
        if self.max_timeout_s < self.base_timeout_s:
            raise ConfigError("max_timeout_s must be >= base_timeout_s")
        if self.backoff < 1.0:
            raise ConfigError("backoff factor must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("retry jitter must be in [0, 1]")

    def timeout(self, attempt: int) -> float:
        """Ack-timeout after transmission number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigError("attempt numbers are 1-based")
        return min(self.base_timeout_s * self.backoff ** (attempt - 1), self.max_timeout_s)

    def jittered_timeout(self, attempt: int, sequence: int) -> float:
        """:meth:`timeout` scaled by seeded downward jitter.

        ``sequence`` is a stable per-parcel index (insertion order into
        the port's retry map), so the jitter is a pure function of
        ``(seed, sequence, attempt)`` -- bit-identical across runs and
        independent of dict iteration order.  Downward-only jitter keeps
        every timeout under the backoff cap.
        """
        base = self.timeout(attempt)
        if self.jitter == 0.0:
            return base
        rng = random.Random(f"{self.seed}:retry:{sequence}:{attempt}")
        return base * (1.0 - self.jitter * rng.random())


class Parcelport:
    """Base parcelport: statistics, the router hookup, and loss handling."""

    def __init__(self) -> None:
        self._router: Router | None = None
        self._retry_scheduler: RetryScheduler | None = None
        #: Installed by the runtime when fault injection is requested.
        self.fault_injector: "FaultInjector | None" = None
        self.retry_policy: RetryPolicy | None = None
        #: Installed by the runtime when ``overload.enabled`` is set;
        #: gates every first-time :meth:`send` through admission control.
        self.overload: "OverloadController | None" = None
        #: Installed by the runtime when ``parcel.batching`` is set;
        #: first-time sends are coalesced per destination (see
        #: :mod:`repro.runtime.parcel.batcher`).
        self.batcher: "ParcelBatcher | None" = None
        #: Dead-letter queue bound (0 = unbounded); the runtime sets it
        #: from ``overload.dlq_max``.  Oldest entries are evicted first;
        #: assigning a smaller bound trims (and counts) immediately.
        self._dlq_max = 0
        self.parcels_sent = 0
        self.bytes_sent = 0
        #: Transmissions the router accepted (wire-level deliveries; a
        #: duplicated parcel counts twice, dedupe happens at the action
        #: layer) and their accumulated send-to-arrival virtual latency.
        self.parcels_delivered = 0
        self.latency_total_s = 0.0
        self.parcels_dropped = 0
        self.parcels_corrupted = 0
        self.parcels_duplicated = 0
        self.parcels_delayed = 0
        self.parcels_retried = 0
        self.parcels_retransmitted = 0
        self.parcels_dead_lettered = 0
        #: Sheds appended to the dead-letter queue (kept separate from
        #: :attr:`parcels_dead_lettered`, which stays "retries exhausted"
        #: for the overload conservation law).  Together they reconcile
        #: the queue length: ``len(dead_letters) == dead_lettered +
        #: shed_lettered - dlq_evicted`` at all times.
        self.parcels_shed_lettered = 0
        self.parcels_dlq_evicted = 0
        #: Stable parcel -> jitter-sequence mapping for
        #: :meth:`RetryPolicy.jittered_timeout` (insertion order, the
        #: FaultInjector idiom, so jitter never depends on id recycling).
        self._retry_sequence: dict[int, int] = {}
        #: Parcels given up on, as ``(parcel, reason)`` -- the dead-letter
        #: queue.  The progress engine raises when a job stalls with
        #: entries here; resilient applications may drain it and recover.
        self.dead_letters: list[tuple[Parcel, str]] = []
        #: Ack-timeout escalation: localities a parcel was dead-lettered
        #: against after exhausting every retransmission while the
        #: destination was unreachable.  A suspicion is *evidence*, not a
        #: verdict -- the destination may merely be inside a transient
        #: outage window.  Resilient drivers cross-check against the
        #: fault schedule (``FaultInjector.permanently_down``) before
        #: declaring a node dead, and clear the set each recovery round.
        self.suspected_dead: set[int] = set()

    def install_router(self, router: Router) -> None:
        """The runtime installs its decode-and-dispatch callback here."""
        self._router = router

    def install_retry_scheduler(self, scheduler: RetryScheduler) -> None:
        """The runtime installs the virtual-time retransmission hook here."""
        self._retry_scheduler = scheduler

    def send(self, parcel: Parcel) -> float:
        """Ship a parcel; returns its (nominal) arrival time.

        With an :attr:`overload` controller installed the send is gated
        by admission control first: the parcel may be transmitted,
        stalled awaiting a send credit, deferred (LOW priority), or shed
        with a :class:`~repro.errors.ParcelShedError`.  Stalled and
        deferred parcels are re-sent later by the runtime's resume
        scheduler (they re-enter here already holding their credit, or
        with a bumped deferral count).  Retransmissions of lost parcels
        go through :meth:`retransmit` and are never re-admitted.
        """
        if self._router is None:
            raise ParcelError("parcelport has no router installed (runtime not booted)")
        controller = self.overload
        if controller is not None and not parcel.holds_credit:
            verdict, detail = controller.admit(parcel)
            if verdict == "shed":
                assert detail is not None
                reason, retry_after = detail
                self._shed(parcel, reason, retry_after=retry_after)
                return parcel.send_time
            if verdict in ("stall", "defer"):
                return parcel.send_time
        batcher = self.batcher
        if batcher is not None:
            return batcher.enqueue(parcel)
        return self._transmit(parcel)

    def retransmit(self, parcel: Parcel) -> float:
        """Re-send a lost parcel (called by the runtime's retry task).

        Retransmissions bypass coalescing (they are latency-sensitive),
        but any open batch toward the same destination is flushed first
        so the retry cannot overtake queued first sends.
        """
        batcher = self.batcher
        if batcher is not None:
            batcher.flush_for(parcel)
        self.parcels_retransmitted += 1
        return self._transmit(parcel)

    def _transmit(self, parcel: Parcel) -> float:
        router = self._router
        if router is None:
            raise ParcelError("parcelport has no router installed (runtime not booted)")
        arrival = self._arrival_time(parcel)
        parcel.attempts += 1
        if self.fault_injector is None:
            # Fault-free fast path: no fates to draw, no loss machinery.
            router(parcel, arrival)
            self.parcels_sent += 1
            self.bytes_sent += parcel.size_bytes
            self.parcels_delivered += 1
            latency = arrival - parcel.send_time
            if latency > 0.0:
                self.latency_total_s += latency
            return arrival
        fate = self.fault_injector.parcel_fate(parcel, parcel.attempts)
        if fate.lost:
            # The parcel left the NIC but never usably arrived: it counts
            # as sent, then the loss machinery decides retry vs dead-letter.
            self.parcels_sent += 1
            self.bytes_sent += parcel.size_bytes
            if fate.kind == "corrupt":
                self.parcels_corrupted += 1
                self._handle_loss(parcel, "corrupted in flight")
            else:
                self.parcels_dropped += 1
                self._handle_loss(parcel, "dropped in flight")
            return arrival
        if fate.kind == "delay":
            arrival += fate.extra_delay_s
        router(parcel, arrival)
        # Statistics move only after the router accepted the parcel: a
        # raising router must not leave phantom counts behind.
        self.parcels_sent += 1
        self.bytes_sent += parcel.size_bytes
        self.parcels_delivered += 1
        latency = arrival - parcel.send_time
        if latency > 0.0:
            self.latency_total_s += latency
        if fate.kind == "delay":
            self.parcels_delayed += 1
        if fate.kind == "duplicate":
            dup_arrival = arrival + fate.extra_delay_s
            router(parcel, dup_arrival)
            self.parcels_sent += 1
            self.bytes_sent += parcel.size_bytes
            self.parcels_delivered += 1
            self.latency_total_s += max(0.0, dup_arrival - parcel.send_time)
            self.parcels_duplicated += 1
        return arrival

    def report_loss(
        self, parcel: Parcel, reason: str, destination: int | None = None
    ) -> None:
        """Runtime-side loss (e.g. the destination locality was down).

        ``destination`` identifies the unreachable locality; it is
        remembered on the parcel so that, should every retransmission
        fail the same way, the final dead-lettering escalates the
        destination into :attr:`suspected_dead`.
        """
        if destination is not None:
            parcel.unreachable_destination = destination
        self.parcels_dropped += 1
        self._handle_loss(parcel, reason)

    def _handle_loss(self, parcel: Parcel, reason: str) -> None:
        policy = self.retry_policy
        if (
            policy is not None
            and policy.enabled
            and parcel.attempts < policy.max_attempts
            and self._retry_scheduler is not None
        ):
            self.parcels_retried += 1
            if policy.jitter > 0.0:
                seq = self._retry_sequence.setdefault(
                    parcel.parcel_id, len(self._retry_sequence)
                )
                wait = policy.jittered_timeout(parcel.attempts, seq)
            else:
                wait = policy.timeout(parcel.attempts)
            self._retry_scheduler(parcel, parcel.send_time + wait)
            return
        self.parcels_dead_lettered += 1
        self._dead_letter(parcel, reason)
        if self.overload is not None:
            # The controller releases the credit, feeds the breaker, and
            # escalates into suspected_dead when the breaker opens.
            self.overload.on_parcel_failed(parcel, parcel.send_time)
        else:
            destination = parcel.unreachable_destination
            if destination is not None:
                self.suspected_dead.add(destination)
        exc = ParcelDeadLetterError(
            f"parcel #{parcel.parcel_id} gave up after {parcel.attempts} "
            f"transmission(s): {reason}"
        )
        promise = parcel.reply_promise
        if promise is not None and not promise.is_ready():
            promise.set_exception(exc)

    @property
    def dlq_max(self) -> int:
        """Dead-letter queue bound (0 = unbounded).

        Assigning a smaller bound mid-run trims the queue immediately,
        counting every dropped entry in :attr:`parcels_dlq_evicted` --
        the queue length and the dead-letter counters stay mutually
        consistent at every moment, not just after the next append.
        """
        return self._dlq_max

    @dlq_max.setter
    def dlq_max(self, bound: int) -> None:
        if bound < 0:
            raise ConfigError("dlq_max must be >= 0 (0 = unbounded)")
        self._dlq_max = bound
        self._trim_dead_letters()

    def _trim_dead_letters(self) -> None:
        bound = self._dlq_max
        if bound > 0:
            excess = len(self.dead_letters) - bound
            if excess > 0:
                del self.dead_letters[:excess]
                self.parcels_dlq_evicted += excess

    def _dead_letter(self, parcel: Parcel, reason: str) -> None:
        """Append to the dead-letter queue, evicting oldest past the bound."""
        self.dead_letters.append((parcel, reason))
        self._trim_dead_letters()

    def _shed(self, parcel: Parcel, reason: str, retry_after: float = 0.0) -> None:
        """Admission control refused the parcel: dead-letter it as a shed.

        Sheds are *not* counted in :attr:`parcels_dead_lettered` (which
        stays "retries exhausted" so the overload conservation law
        ``completed + shed + dead_lettered == submitted`` holds); they
        land in the same queue, tagged, and fail the reply promise with
        :class:`~repro.errors.ParcelShedError` carrying the retry hint.
        """
        self.parcels_shed_lettered += 1
        self._dead_letter(parcel, f"shed: {reason}")
        exc = ParcelShedError(
            f"parcel #{parcel.parcel_id} shed by admission control: {reason}",
            retry_after=retry_after,
        )
        promise = parcel.reply_promise
        if promise is not None and not promise.is_ready():
            promise.set_exception(exc)

    def _arrival_time(self, parcel: Parcel) -> float:
        raise NotImplementedError


class LoopbackParcelport(Parcelport):
    """In-process delivery with no modelled delay."""

    def _arrival_time(self, parcel: Parcel) -> float:
        return parcel.send_time


class NetworkParcelport(Parcelport):
    """Delivery over a modelled interconnect.

    ``resolve_destination`` maps a parcel to its destination locality
    (installed by the runtime, since GID-addressed parcels need AGAS).
    """

    def __init__(
        self,
        interconnect: Interconnect,
        n_localities: int,
        overlap: bool = True,
    ) -> None:
        super().__init__()
        if n_localities < 1:
            raise ParcelError("need at least one locality")
        self.interconnect = interconnect
        self.n_localities = n_localities
        self.overlap = overlap
        self._resolve: Callable[[Parcel], int] | None = None

    def install_resolver(self, resolve: Callable[[Parcel], int]) -> None:
        self._resolve = resolve

    def _arrival_time(self, parcel: Parcel) -> float:
        if self._resolve is None:
            raise ParcelError("parcelport has no destination resolver installed")
        destination = self._resolve(parcel)
        if destination == parcel.source_locality:
            return parcel.send_time
        delay = self.interconnect.transfer_time(parcel.size_bytes, self.n_localities)
        if not self.overlap:
            # The platform cannot hide the transfer: the sending task pays
            # for it on its own core (Sec. VII-A, Kunpeng 916).
            ctx.add_cost(delay)
        return parcel.send_time + delay
