"""Histogram math, summaries, and tracer-derived distributions."""

import pytest

from repro.errors import ValidationError
from repro.observability import (
    Histogram,
    latency_histograms,
    parcel_latency_histogram,
    queue_delay_histogram,
    task_duration_histogram,
)
from repro.runtime import Runtime
from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.trace import Tracer


def test_percentiles_interpolate():
    histogram = Histogram("h", values=range(1, 101))  # 1..100
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(100.0) == 100.0
    assert histogram.percentile(50.0) == pytest.approx(50.5)
    assert histogram.percentile(95.0) == pytest.approx(95.05)


def test_percentile_edge_cases():
    assert Histogram("empty").percentile(50.0) == 0.0
    assert Histogram("one", values=[7.0]).percentile(99.0) == 7.0
    with pytest.raises(ValidationError):
        Histogram("h", values=[1.0]).percentile(101.0)
    with pytest.raises(ValidationError):
        Histogram("h", values=[1.0]).percentile(-1.0)


def test_summary_shape():
    summary = Histogram("delays", unit="s", values=[1.0, 2.0, 3.0]).summary()
    assert summary == {
        "name": "delays",
        "unit": "s",
        "count": 3,
        "min": 1.0,
        "max": 3.0,
        "mean": 2.0,
        "p50": 2.0,
        "p95": pytest.approx(2.9),
        "p99": pytest.approx(2.98),
    }


def test_render_bins_and_guards():
    histogram = Histogram("h", values=[0.0, 0.1, 0.1, 0.9])
    view = histogram.render(bins=2, width=10)
    assert "4 samples" in view
    assert view.count("#") > 0
    with pytest.raises(ValidationError):
        histogram.render(bins=0)
    assert "(no samples)" in Histogram("empty").render()
    assert "all =" in Histogram("flat", values=[2.0, 2.0]).render()


def test_tracer_histograms():
    pool = ThreadPool(1, name="p")
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(2.0))
        pool.submit(lambda: ctx.add_cost(4.0))  # queues behind the first
        pool.run_all()
    durations = task_duration_histogram(tracer)
    assert durations.count == 2
    assert sorted(durations.values) == [2.0, 4.0]
    delays = queue_delay_histogram(tracer)
    assert sorted(delays.values) == [0.0, 2.0]


def test_parcel_latency_histogram_from_distributed_run():
    tracer = Tracer()
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1
    ) as rt:
        with tracer.attach(rt):
            rt.run(lambda: rt.async_at(1, abs, -5).get())
    histograms = latency_histograms(tracer)
    assert set(histograms) == {"task_duration", "queue_delay", "parcel_latency"}
    latency = parcel_latency_histogram(tracer)
    assert latency.count >= 1
    assert latency.summary()["max"] > 0.0
