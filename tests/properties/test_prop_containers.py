"""Property-based tests for the partitioned vector and collectives."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers import PartitionedVector
from repro.runtime import Runtime
from repro.runtime.actions import action


@action(name="prop.sum_segment")
def _sum_segment(data):
    return float(np.sum(data))


@given(
    size=st.integers(1, 40),
    n_localities=st.integers(1, 4),
    segments_per_locality=st.integers(1, 3),
)
@settings(max_examples=30, deadline=None)
def test_segments_partition_index_space(size, n_localities, segments_per_locality):
    with Runtime(n_localities=n_localities, workers_per_locality=1) as rt:
        vec = PartitionedVector(
            rt, size, segments_per_locality=segments_per_locality
        )
        seen = [vec.segment_of(i) for i in range(size)]
        # Every index maps to exactly one (segment, offset) pair.
        assert len(set(seen)) == size
        # Offsets within a segment are contiguous from zero.
        by_segment: dict[int, list[int]] = {}
        for seg, off in seen:
            by_segment.setdefault(seg, []).append(off)
        for offsets in by_segment.values():
            assert offsets == list(range(len(offsets)))


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=24,
    ),
    n_localities=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_gather_roundtrip(values, n_localities):
    data = np.array(values)
    with Runtime(n_localities=n_localities, workers_per_locality=1) as rt:
        vec = PartitionedVector(rt, len(values), initial=data)
        assert np.array_equal(rt.run(vec.to_array), data)


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 11), st.floats(-100, 100, allow_nan=False)),
        max_size=20,
    )
)
@settings(max_examples=25, deadline=None)
def test_set_get_matches_plain_array(writes):
    reference = np.zeros(12)
    with Runtime(n_localities=3, workers_per_locality=1) as rt:
        vec = PartitionedVector(rt, 12)

        def main():
            for index, value in writes:
                vec.set(index, value)
                reference[index] = value
            return [vec.get(i) for i in range(12)]

        result = rt.run(main)
    assert np.allclose(result, reference)


@given(
    values=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=20, deadline=None)
def test_distributed_reduce_equals_local_sum(values):
    data = np.array(values)
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        vec = PartitionedVector(rt, len(values), initial=data)
        total = rt.run(lambda: vec.reduce("prop.sum_segment", operator.add, 0.0))
    assert total == float(np.sum(data)) or abs(total - np.sum(data)) < 1e-6
