"""Parcel coalescing: pack small same-destination parcels into one wire message.

On cheap cores the per-message cost (syscall, header, NIC doorbell)
dominates small-parcel traffic; HPX's parcelport coalescing amortizes it
by letting messages ride together.  The :class:`ParcelBatcher` is that
layer for this runtime: :meth:`Parcelport.send
<repro.runtime.parcel.parcelport.Parcelport.send>` appends each
cross-locality parcel to a per-destination batch, and the batch goes out
as *one wire message* when it fills (``parcel.batch_max_parcels``),
grows past the byte budget (``parcel.batch_max_bytes``), or its
virtual-clock linger expires (``parcel.batch_linger_s``; 0 means "flush
when the sending task yields", which is the next progress-engine step).

Per-parcel semantics are preserved exactly: every inner parcel still
goes through :meth:`Parcelport._transmit
<repro.runtime.parcel.parcelport.Parcelport._transmit>` individually, so
acks, retries, credits, receiver-side dedupe, fault injection, and the
``parcels``/``bytes`` statistics are all applied per inner parcel and
PR 6's ``completed + shed + dead_lettered == submitted`` conservation
law is untouched.  What coalescing changes is the *message-level*
accounting, reported through new ``/parcels{total}/batch/*``
perfcounters (wire messages, inner parcels, amortized header bytes).

Determinism contract (the default ``batch_linger_s = 0``):

* batches are per-destination FIFO, so each destination pool receives
  its handler tasks in exactly the unbatched relative order;
* with zero linger every pending batch is flushed before the progress
  engine executes another task, so a batch only ever holds the sends of
  the task currently running;
* the runtime flushes a destination's batch before submitting any
  direct task to that pool from the same task (reply deliveries,
  retransmissions), closing the one remaining reordering window;
* the fault-injection sequence index is reserved at enqueue time, so a
  parcel draws the same fates batched or not.

Under those rules batching on/off is bit-identical in solutions,
virtual makespans, and per-parcel counters (the determinism tests and
the hypothesis property prove it under all three schedulers, with and
without faults).  A nonzero linger deliberately trades delivery
latency -- and with it strict timing identity -- for larger batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .parcel import Parcel

if TYPE_CHECKING:  # pragma: no cover
    from .parcelport import Parcelport

__all__ = ["ParcelBatcher"]

_INF = float("inf")

#: Event-hook signature (patched by the tracer): (kind, time, parcel_id, args).
EventHook = Callable[[str, float, Optional[int], "dict[str, object]"], None]


class _Batch:
    """One open per-destination wire message being assembled."""

    __slots__ = ("parcels", "bytes", "deadline")

    def __init__(self, deadline: float) -> None:
        self.parcels: list[Parcel] = []
        self.bytes = 0
        #: Virtual time at which the linger timer flushes this batch;
        #: ``-inf`` when linger is zero (due at the very next yield).
        self.deadline = deadline


class ParcelBatcher:
    """Per-destination parcel coalescing with flush-on-full/bytes/linger."""

    def __init__(
        self,
        port: "Parcelport",
        resolve: Callable[[Parcel], int],
        max_parcels: int = 16,
        max_bytes: int = 16384,
        linger_s: float = 0.0,
    ) -> None:
        self._port = port
        self._resolve = resolve
        self.max_parcels = max_parcels
        self.max_bytes = max_bytes
        self.linger_s = linger_s
        self._batches: dict[int, _Batch] = {}
        #: Parcels currently held in open batches (gauge).
        self.pending = 0
        # Message-level statistics (perfcounter sources).
        self.messages_flushed = 0
        self.parcels_batched = 0
        #: Modelled header bytes one wire message amortizes over its
        #: inner parcels: 64 * (k - 1) per flush of k.
        self.header_bytes_saved = 0
        self.flushes_full = 0
        self.flushes_bytes = 0
        self.flushes_linger = 0
        self.flushes_forced = 0
        #: Tracer patch point; called as ``hook(kind, time, parcel_id, args)``.
        self.event_hook: EventHook | None = None

    def enqueue(self, parcel: Parcel) -> float:
        """Admit a parcel into its destination's open batch.

        Local (same-locality) parcels bypass coalescing entirely: there
        is no wire message to amortize, and holding them would reorder
        them against the sending task's direct pool submissions.
        """
        destination = self._resolve(parcel)
        if destination == parcel.source_locality:
            return self._port._transmit(parcel)
        injector = self._port.fault_injector
        if injector is not None:
            # Fates are seeded by a first-come sequence index; reserving
            # it now (send order) instead of at the coalesced transmit
            # keeps every fate identical to the unbatched run.
            injector.reserve(parcel)
            # A parcel the network will lose never occupies batch space:
            # transmitting it now lets the loss machinery (retry
            # scheduling, dead-lettering) run at the send point, exactly
            # where the unbatched port would discover it.  The fate is a
            # pure function of (parcel, attempt), so _transmit re-draws
            # the same verdict.
            if injector.parcel_fate(parcel, parcel.attempts + 1).lost:
                return self._port._transmit(parcel)
        batch = self._batches.get(destination)
        if batch is None:
            deadline = (
                parcel.send_time + self.linger_s if self.linger_s > 0.0 else -_INF
            )
            batch = self._batches[destination] = _Batch(deadline)
        batch.parcels.append(parcel)
        batch.bytes += parcel.size_bytes
        self.pending += 1
        if len(batch.parcels) >= self.max_parcels:
            self._flush(destination, "full")
        elif batch.bytes >= self.max_bytes:
            self._flush(destination, "bytes")
        return parcel.send_time

    def flush_due(self, now_hint: float) -> bool:
        """Flush every batch whose linger deadline is at or before
        ``now_hint`` (the progress engine's next virtual start; ``inf``
        drains everything).  Returns True when anything was flushed --
        the engine then re-evaluates before stepping a task."""
        if not self._batches:
            return False
        due = [
            destination
            for destination, batch in self._batches.items()
            if batch.deadline <= now_hint
        ]
        for destination in due:
            self._flush(destination, "linger")
        return bool(due)

    def flush_all(self) -> None:
        """Drain every open batch unconditionally (progress-loop exit:
        a parcel the application already sent must reach the wire even
        though no further task will be stepped)."""
        for destination in list(self._batches):
            self._flush(destination, "forced")

    def flush_destination(self, destination: int) -> None:
        """Flush one destination's open batch (ordering hook: called
        before the runtime submits a non-parcel task to that pool)."""
        if destination in self._batches:
            self._flush(destination, "forced")

    def flush_for(self, parcel: Parcel) -> None:
        """Flush the batch ahead of an out-of-band transmit of ``parcel``
        (retransmissions bypass coalescing but must not overtake queued
        first sends to the same destination)."""
        self.flush_destination(self._resolve(parcel))

    def _flush(self, destination: int, reason: str) -> None:
        batch = self._batches.pop(destination)
        parcels = batch.parcels
        count = len(parcels)
        self.pending -= count
        self.messages_flushed += 1
        self.parcels_batched += count
        self.header_bytes_saved += 64 * (count - 1)
        if reason == "full":
            self.flushes_full += 1
        elif reason == "bytes":
            self.flushes_bytes += 1
        elif reason == "linger":
            self.flushes_linger += 1
        else:
            self.flushes_forced += 1
        if self.linger_s > 0.0 and reason == "linger":
            # The message legally departs at its linger deadline: parcels
            # held past their send time leave when the timer fires.
            for parcel in parcels:
                if parcel.send_time < batch.deadline:
                    parcel.send_time = batch.deadline
        hook = self.event_hook
        if hook is not None:
            hook(
                "parcel_batch_flush",
                max(parcel.send_time for parcel in parcels),
                None,
                {
                    "destination": destination,
                    "parcels": count,
                    "bytes": batch.bytes,
                    "reason": reason,
                },
            )
        transmit = self._port._transmit
        for parcel in parcels:
            transmit(parcel)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParcelBatcher(pending={self.pending}, "
            f"messages={self.messages_flushed}, batched={self.parcels_batched})"
        )
