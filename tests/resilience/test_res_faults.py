"""Unit tests for the fault injector and the retry policy."""

import pytest

from repro.errors import ConfigError
from repro.resilience import FaultInjector, LocalityFailure, ParcelFate, RetryPolicy
from repro.runtime.parcel import Parcel


def _parcel():
    return Parcel(source_locality=0, payload=b"x" * 32, target_locality=1)


# FaultInjector construction ---------------------------------------------------

def test_rates_must_lie_in_unit_interval():
    with pytest.raises(ConfigError):
        FaultInjector(drop_rate=-0.1)
    with pytest.raises(ConfigError):
        FaultInjector(corrupt_rate=1.5)


def test_rates_must_sum_to_at_most_one():
    with pytest.raises(ConfigError):
        FaultInjector(drop_rate=0.6, corrupt_rate=0.6)


def test_delay_rate_needs_spike_scale():
    with pytest.raises(ConfigError):
        FaultInjector(delay_rate=0.1)
    FaultInjector(delay_rate=0.1, delay_spike_s=1e-5)  # fine


def test_negative_spike_rejected():
    with pytest.raises(ConfigError):
        FaultInjector(delay_spike_s=-1.0)


# Parcel fates -----------------------------------------------------------------

def test_zero_rates_always_deliver():
    inj = FaultInjector(seed=1)
    for _ in range(50):
        assert inj.parcel_fate(_parcel(), attempt=1).kind == "deliver"


def test_fate_is_pure_in_seed_sequence_attempt():
    inj = FaultInjector(seed=9, drop_rate=0.3, delay_rate=0.2, delay_spike_s=1e-5)
    parcel = _parcel()
    first = inj.parcel_fate(parcel, attempt=1)
    assert inj.parcel_fate(parcel, attempt=1) == first  # re-asking is stable


def test_same_seed_same_schedule_across_injectors():
    """Two injectors with one seed assign identical fates by arrival order,
    even though the parcels have different global ids."""
    inj_a = FaultInjector(seed=4, drop_rate=0.4)
    inj_b = FaultInjector(seed=4, drop_rate=0.4)
    fates_a = [inj_a.parcel_fate(_parcel(), 1).kind for _ in range(40)]
    fates_b = [inj_b.parcel_fate(_parcel(), 1).kind for _ in range(40)]
    assert fates_a == fates_b
    assert "drop" in fates_a and "deliver" in fates_a


def test_different_seeds_differ():
    inj_a = FaultInjector(seed=0, drop_rate=0.5)
    inj_b = FaultInjector(seed=1, drop_rate=0.5)
    parcels = [_parcel() for _ in range(40)]
    assert [inj_a.parcel_fate(p, 1).kind for p in parcels] != [
        inj_b.parcel_fate(p, 1).kind for p in parcels
    ]


def test_retries_draw_fresh_fates():
    inj = FaultInjector(seed=2, drop_rate=0.5)
    parcel = _parcel()
    kinds = {inj.parcel_fate(parcel, attempt=k).kind for k in range(1, 30)}
    assert kinds == {"drop", "deliver"}  # not stuck on one outcome


def test_lost_covers_drop_and_corrupt_only():
    assert ParcelFate("drop").lost
    assert ParcelFate("corrupt").lost
    assert not ParcelFate("deliver").lost
    assert not ParcelFate("duplicate", 1e-6).lost
    assert not ParcelFate("delay", 1e-6).lost


def test_delay_fate_carries_positive_spike():
    inj = FaultInjector(seed=3, delay_rate=1.0, delay_spike_s=2e-5)
    fate = inj.parcel_fate(_parcel(), 1)
    assert fate.kind == "delay"
    assert 1e-5 <= fate.extra_delay_s <= 3e-5  # 0.5..1.5 spikes


# Locality failures ------------------------------------------------------------

def test_failure_window_validation():
    with pytest.raises(ConfigError):
        LocalityFailure(-1, 0.0, 1.0)
    with pytest.raises(ConfigError):
        LocalityFailure(0, 2.0, 1.0)  # empty interval
    with pytest.raises(ConfigError):
        LocalityFailure(0, -1.0, 1.0)


def test_window_is_half_open():
    window = LocalityFailure(0, 1.0, 2.0)
    assert not window.covers(0.999)
    assert window.covers(1.0)
    assert window.covers(1.999)
    assert not window.covers(2.0)


def test_locality_down_respects_id_and_time():
    inj = FaultInjector().fail_locality(1, at=1.0, until=2.0)
    assert inj.locality_down(1, 1.5)
    assert not inj.locality_down(0, 1.5)
    assert not inj.locality_down(1, 2.5)


def test_defer_until_up_chains_overlapping_windows():
    inj = (
        FaultInjector()
        .fail_locality(0, at=1.0, until=2.0)
        .fail_locality(0, at=1.5, until=3.0)
    )
    assert inj.defer_until_up(0, 1.2) == 3.0
    assert inj.defer_until_up(0, 0.5) == 0.5  # before the outage: no defer
    assert inj.defer_until_up(0, 3.0) == 3.0


# RetryPolicy ------------------------------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        RetryPolicy(base_timeout_s=0.0)
    with pytest.raises(ConfigError):
        RetryPolicy(base_timeout_s=2.0, max_timeout_s=1.0)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff=0.5)


def test_backoff_schedule_doubles_then_caps():
    policy = RetryPolicy(base_timeout_s=1e-5, max_timeout_s=4e-5, backoff=2.0)
    assert policy.timeout(1) == pytest.approx(1e-5)
    assert policy.timeout(2) == pytest.approx(2e-5)
    assert policy.timeout(3) == pytest.approx(4e-5)
    assert policy.timeout(4) == pytest.approx(4e-5)  # capped
    assert policy.timeout(10) == pytest.approx(4e-5)


def test_attempt_numbers_are_one_based():
    with pytest.raises(ConfigError):
        RetryPolicy().timeout(0)
