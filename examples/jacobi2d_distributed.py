#!/usr/bin/env python3
"""Distributed 2D Jacobi: the paper's two studies combined.

The paper runs its 2D stencil shared-memory and its distributed study in
1D; this example runs the 2D kernel under the 1D solver's futurized
distribution pattern -- row blocks per locality, halo rows travelling as
parcels, per-partition dataflow chains -- and uses the distributed
residual reduction to iterate to convergence.

Run:  python examples/jacobi2d_distributed.py
"""

import numpy as np

from repro.hardware import machine
from repro.perf.cost import stencil2d_glups
from repro.reporting import format_table
from repro.runtime import Runtime
from repro.stencil import (
    DistributedJacobi2D,
    jacobi_dense_solution,
    max_error,
)

MACHINE = "thunderx2"
NY, NX = 26, 16  # laptop-scale numerics; the projection below is full-scale


def main() -> None:
    field = np.zeros((NY, NX))
    field[0, :] = 1.0  # hot top edge

    model = machine(MACHINE)
    with Runtime(machine=MACHINE, n_localities=4, workers_per_locality=2) as rt:
        solver = DistributedJacobi2D(rt, NY, NX, partitions_per_locality=2)
        solver.initialize(field)

        rows = []
        total_steps = 0
        for _ in range(6):
            rt.run(lambda: solver.run(60))
            total_steps += 60
            residual = rt.run(solver.residual)
            rows.append([total_steps, f"{residual:.3e}"])
        print(f"Distributed Jacobi on a virtual 4-node {model.spec.name} "
              f"cluster ({NY}x{NX} grid, 8 partitions):")
        print(format_table(["sweeps", "global residual (RMS)"], rows))

        solution = solver.solution()
        makespan = rt.makespan
        parcels = rt.parcelport.parcels_sent

    error = max_error(solution, jacobi_dense_solution(field))
    print(f"\nerror vs dense harmonic solution: {error:.2e}")
    print(f"halo parcels exchanged: {parcels}, virtual time: {makespan * 1e3:.2f} ms")

    # Full-scale projection from the calibrated model.
    n = model.spec.cores_per_node
    glups = stencil2d_glups(model, np.float32, "simd", n)
    print(
        f"\nAt paper scale (8192x131072 floats, {n} cores) the model puts "
        f"{model.spec.name} at {glups:.1f} GLUP/s -- see Fig 8's harness."
    )
    assert error < 1e-3


if __name__ == "__main__":
    main()
