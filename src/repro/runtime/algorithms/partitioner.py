"""Work partitioning for the parallel algorithms.

HPX's auto-partitioner aims for a few chunks per worker so stealing can
balance load without drowning the scheduler in tiny tasks; the same
heuristic lives in :func:`auto_chunk_size`.  Grain size is the lever the
paper pulls when discussing A64FX ("HPX is known to have contention
overheads when the grain size is too small") -- the grain-size ablation
benchmark sweeps exactly this.
"""

from __future__ import annotations

from ...errors import RuntimeStateError

__all__ = ["auto_chunk_size", "partition", "CHUNKS_PER_WORKER"]

#: Target chunks per worker for the auto partitioner (HPX uses 4x).
CHUNKS_PER_WORKER = 4


def auto_chunk_size(n_items: int, n_workers: int, min_chunk: int = 1) -> int:
    """Chunk size giving ~``CHUNKS_PER_WORKER`` chunks per worker."""
    if n_items < 0:
        raise RuntimeStateError("n_items must be non-negative")
    if n_workers < 1:
        raise RuntimeStateError("n_workers must be >= 1")
    if min_chunk < 1:
        raise RuntimeStateError("min_chunk must be >= 1")
    if n_items == 0:
        return min_chunk
    target_chunks = n_workers * CHUNKS_PER_WORKER
    size = -(-n_items // target_chunks)  # ceil
    return max(size, min_chunk)


def partition(start: int, stop: int, chunk_size: int) -> list[range]:
    """Cut ``[start, stop)`` into contiguous chunks of ``chunk_size``.

    The final chunk may be short.  Empty input yields no chunks.
    """
    if chunk_size < 1:
        raise RuntimeStateError(f"chunk size must be >= 1, got {chunk_size}")
    if stop < start:
        raise RuntimeStateError(f"empty-reversed range [{start}, {stop})")
    return [
        range(lo, min(lo + chunk_size, stop)) for lo in range(start, stop, chunk_size)
    ]
