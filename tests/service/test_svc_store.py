"""JobStore: strict state machine, idempotent submission, replay."""

import pytest

from repro.errors import JobStateError, UnknownJobError
from repro.service import JobState, JobStore, ManualClock, TERMINAL_STATES, read_journal


@pytest.fixture()
def store(tmp_path):
    with JobStore(tmp_path / "jobs.journal", clock=ManualClock(), sync=False) as s:
        yield s


def _drive(store, job_id, *states):
    for state in states:
        store.transition(job_id, state)


class TestStateMachine:
    def test_happy_path(self, store):
        job, created = store.submit("t", "stencil1d", {"nx": 8})
        assert created and job.state is JobState.PENDING
        _drive(store, job.job_id, JobState.CLAIMED, JobState.RUNNING, JobState.DONE)
        assert store.get(job.job_id).state is JobState.DONE
        assert store.get(job.job_id).terminal

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES, key=str))
    def test_terminal_states_are_absorbing(self, store, terminal):
        job, _ = store.submit("t", "stencil1d", {})
        if terminal is JobState.CANCELLED:
            _drive(store, job.job_id, terminal)
        else:
            _drive(store, job.job_id, JobState.CLAIMED, JobState.RUNNING, terminal)
        for target in JobState:
            with pytest.raises(JobStateError, match="exactly-once"):
                store.transition(job.job_id, target)

    def test_illegal_edges_refused_before_journalling(self, store, tmp_path):
        job, _ = store.submit("t", "stencil1d", {})
        before = (tmp_path / "jobs.journal").read_bytes()
        with pytest.raises(JobStateError):
            store.transition(job.job_id, JobState.DONE)  # pending -> done
        with pytest.raises(JobStateError):
            store.transition(job.job_id, JobState.RUNNING)  # pending -> running
        assert (tmp_path / "jobs.journal").read_bytes() == before

    def test_retry_requeue_edge(self, store):
        job, _ = store.submit("t", "stencil1d", {})
        _drive(
            store, job.job_id,
            JobState.CLAIMED, JobState.RUNNING, JobState.PENDING,
            JobState.CLAIMED, JobState.RUNNING, JobState.DONE,
        )
        assert store.get(job.job_id).state is JobState.DONE

    def test_unknown_job(self, store):
        with pytest.raises(UnknownJobError):
            store.get("job-nope")
        with pytest.raises(UnknownJobError):
            store.transition("job-nope", JobState.CLAIMED)

    def test_transition_rejects_foreign_fields(self, store):
        job, _ = store.submit("t", "stencil1d", {})
        with pytest.raises(JobStateError, match="may not set"):
            store.transition(job.job_id, JobState.CLAIMED, tenant="other")


class TestIdempotentSubmission:
    def test_resubmit_returns_original(self, store):
        first, created = store.submit("t", "stencil1d", {"nx": 8}, dedupe_key="k")
        assert created
        again, created = store.submit("t", "stencil1d", {"nx": 8}, dedupe_key="k")
        assert not created
        assert again.job_id == first.job_id
        assert len(store) == 1

    def test_resubmit_of_terminal_job_returns_it(self, store):
        job, _ = store.submit("t", "stencil1d", {}, dedupe_key="k")
        _drive(store, job.job_id, JobState.CANCELLED)
        again, created = store.submit("t", "stencil1d", {}, dedupe_key="k")
        assert not created and again.job_id == job.job_id
        assert again.state is JobState.CANCELLED

    def test_dedupe_keys_are_per_tenant(self, store):
        a, _ = store.submit("alice", "stencil1d", {}, dedupe_key="k")
        b, _ = store.submit("bob", "stencil1d", {}, dedupe_key="k")
        assert a.job_id != b.job_id

    def test_resubmit_journals_nothing(self, store, tmp_path):
        store.submit("t", "stencil1d", {}, dedupe_key="k")
        before = (tmp_path / "jobs.journal").read_bytes()
        store.submit("t", "stencil1d", {}, dedupe_key="k")
        assert (tmp_path / "jobs.journal").read_bytes() == before

    def test_no_dedupe_key_always_creates(self, store):
        a, _ = store.submit("t", "stencil1d", {})
        b, _ = store.submit("t", "stencil1d", {})
        assert a.job_id != b.job_id


class TestReplay:
    def test_replay_round_trips_everything(self, tmp_path):
        path = tmp_path / "jobs.journal"
        clock = ManualClock()
        with JobStore(path, clock=clock, sync=False) as store:
            done, _ = store.submit("t", "stencil1d", {"nx": 8}, dedupe_key="d")
            _drive(store, done.job_id, JobState.CLAIMED, JobState.RUNNING)
            clock.advance(3.0)
            store.transition(done.job_id, JobState.DONE, result={"digest": "abc"})
            failed, _ = store.submit("t", "faulty", {}, max_attempts=2)
            _drive(store, failed.job_id, JobState.CLAIMED)
            store.transition(failed.job_id, JobState.FAILED, failure="boom")
            pending, _ = store.submit("u", "stencil1d", {})

        with JobStore(path, clock=ManualClock(), sync=False) as replayed:
            assert len(replayed) == 3
            d = replayed.get(done.job_id)
            assert d.state is JobState.DONE
            assert d.result == {"digest": "abc"}
            assert d.updated_at == 3.0
            f = replayed.get(failed.job_id)
            assert f.state is JobState.FAILED and f.failure == "boom"
            assert replayed.get(pending.job_id).state is JobState.PENDING
            # Dedupe index survives replay.
            again, created = replayed.submit("t", "stencil1d", {}, dedupe_key="d")
            assert not created and again.job_id == done.job_id

    def test_job_ids_are_replay_stable_and_unique(self, tmp_path):
        path = tmp_path / "jobs.journal"
        with JobStore(path, clock=ManualClock(), sync=False) as store:
            ids = [store.submit("t", "stencil1d", {})[0].job_id for _ in range(5)]
        assert len(set(ids)) == 5
        with JobStore(path, clock=ManualClock(), sync=False) as replayed:
            fresh, _ = replayed.submit("t", "stencil1d", {})
        assert fresh.job_id not in ids

    def test_journal_is_append_only_across_sessions(self, tmp_path):
        path = tmp_path / "jobs.journal"
        with JobStore(path, clock=ManualClock(), sync=False) as store:
            job, _ = store.submit("t", "stencil1d", {})
        first = path.read_bytes()
        with JobStore(path, clock=ManualClock(), sync=False) as store:
            store.transition(job.job_id, JobState.CANCELLED)
        assert path.read_bytes().startswith(first)
        records, torn = read_journal(path)
        assert not torn
        assert [r["op"] for r in records] == ["submit", "transition"]
