"""Cyclic barrier LCO (HPX ``hpx::barrier``): reusable across generations."""

from __future__ import annotations

from ...errors import RuntimeStateError
from .. import instrument
from ..futures import Future, Promise

__all__ = ["Barrier"]


class Barrier:
    """``n_parties`` tasks synchronise; the barrier then resets itself.

    Each generation has its own promise, so a future obtained in
    generation ``g`` fires exactly when generation ``g`` completes --
    late arrivals for generation ``g+1`` cannot leak backwards.
    """

    def __init__(self, n_parties: int) -> None:
        if n_parties < 1:
            raise RuntimeStateError(f"barrier needs >= 1 parties, got {n_parties}")
        self.n_parties = n_parties
        self._arrived = 0
        self._generation = 0
        self._promise = Promise()

    @property
    def generation(self) -> int:
        """Completed-generation counter."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Parties that have arrived in the current generation."""
        return self._arrived

    def arrive(self) -> Future:
        """Register arrival; returns a future for this generation's release.

        The value of the future is the generation number that completed.
        """
        promise = self._promise
        generation = self._generation
        self._arrived += 1
        if self._arrived > self.n_parties:  # pragma: no cover - guarded below
            raise RuntimeStateError("barrier arrival overflow")
        probe = instrument.probe
        if probe is not None:
            # Each arrival contributes its clock: the released generation
            # is ordered after every party, not just the last arriver.
            probe.state_contribute(promise._state)
            probe.lco_labelled(
                promise._state,
                f"barrier(gen {generation}, {self._arrived}/{self.n_parties} arrived)",
            )
        future = promise.get_future()
        if self._arrived == self.n_parties:
            # Reset *before* firing: released tasks may immediately re-arrive.
            self._arrived = 0
            self._generation += 1
            self._promise = Promise()
            promise.set_value(generation)
        return future

    def arrive_and_wait(self) -> int:
        """Arrive and cooperatively wait for the generation to complete."""
        completed: int = self.arrive().get()
        return completed

    # Checkpoint protocol ----------------------------------------------------
    def checkpoint_state(self) -> dict[str, int]:
        """Snapshot the party count and completed-generation counter.

        Mid-generation arrivals are not captured: a coordinated
        checkpoint is taken at quiescence, where a sane barrier has no
        parties waiting (they could never be released after a restore).
        """
        return {"n_parties": self.n_parties, "generation": self._generation}

    def restore_state(self, state: dict[str, int]) -> None:
        """Rebuild from a :meth:`checkpoint_state` snapshot, in place."""
        if self._arrived:
            raise RuntimeStateError(
                f"cannot restore into a barrier with {self._arrived} "
                "parties waiting"
            )
        self.n_parties = int(state["n_parties"])
        self._generation = int(state["generation"])
        self._arrived = 0
        self._promise = Promise()
