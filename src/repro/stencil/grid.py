"""The custom ``Grid`` container of Listing 2.

``Grid`` abstracts the data layout of the stencil away from the kernel:
the same update code runs over a plain row-major array ("scalar", what
the auto-vectorizer sees) or over the Virtual-Node-Scheme pack layout
("vns", what explicit vectorization uses).  ``GridPair`` is the
double-buffered pair the Jacobi iteration ping-pongs between
(``U[t % 2]`` / ``U[(t+1) % 2]`` in Listing 2).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import LayoutError, ValidationError
from ..simd.layout import VnsLayout

__all__ = ["Grid", "GridPair"]

Layout = Literal["scalar", "vns"]


class Grid:
    """One 2D field of shape ``(ny, nx)`` (including boundary cells)."""

    def __init__(
        self,
        ny: int,
        nx: int,
        dtype=np.float64,
        layout: Layout = "scalar",
        lanes: int = 1,
    ) -> None:
        if ny < 3 or nx < 3:
            raise LayoutError(f"grid needs at least 3x3 cells, got {ny}x{nx}")
        dt = np.dtype(dtype)
        if dt.type not in (np.float32, np.float64):
            raise ValidationError(f"unsupported dtype {dt}")
        self.ny = ny
        self.nx = nx
        self.dtype = dt
        self.layout: Layout = layout
        if layout == "scalar":
            self._data = np.zeros((ny, nx), dtype=dt)
            self._vns: VnsLayout | None = None
        elif layout == "vns":
            self._vns = VnsLayout(nx, lanes)
            self._data = np.zeros((ny, self._vns.chunk + 2, lanes), dtype=dt)
        else:
            raise LayoutError(f"unknown layout {layout!r}")

    # Listing 2 surface ---------------------------------------------------------
    def row_size(self) -> int:
        """Row length in elements (``curr.row_size()``)."""
        return self.nx

    def in_(self, nx: int, ny: int) -> float:
        """Element access (``curr.in(nx, ny)``) -- layout-transparent."""
        if not (0 <= ny < self.ny and 0 <= nx < self.nx):
            raise LayoutError(f"index ({nx}, {ny}) outside {self.nx}x{self.ny}")
        if self.layout == "scalar":
            return float(self._data[ny, nx])
        return float(self.to_scalar_array()[ny, nx])

    # Bulk access ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The raw backing array (layout-dependent shape)."""
        return self._data

    @property
    def vns(self) -> VnsLayout:
        if self._vns is None:
            raise LayoutError("grid is in scalar layout; no VNS descriptor")
        return self._vns

    def fill_from(self, field: np.ndarray) -> None:
        """Load a scalar ``(ny, nx)`` field into this grid's layout."""
        field = np.asarray(field, dtype=self.dtype)
        if field.shape != (self.ny, self.nx):
            raise LayoutError(
                f"expected field of shape ({self.ny}, {self.nx}), got {field.shape}"
            )
        if self.layout == "scalar":
            self._data[...] = field
        else:
            self._data[...] = self.vns.pack_grid(field)

    def to_scalar_array(self) -> np.ndarray:
        """A scalar ``(ny, nx)`` copy regardless of layout."""
        if self.layout == "scalar":
            return np.array(self._data, copy=True)
        return self.vns.unpack_grid(self._data)

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"Grid({self.ny}x{self.nx}, {self.dtype}, {self.layout})"


class GridPair:
    """The double-buffered ``array_t<Container>`` of Listing 2."""

    def __init__(
        self,
        ny: int,
        nx: int,
        dtype=np.float64,
        layout: Layout = "scalar",
        lanes: int = 1,
    ) -> None:
        self.grids = (
            Grid(ny, nx, dtype, layout, lanes),
            Grid(ny, nx, dtype, layout, lanes),
        )

    def __getitem__(self, index: int) -> Grid:
        """``U[t % 2]`` indexing, exactly as in Listing 2."""
        return self.grids[index % 2]

    def current(self, t: int) -> Grid:
        return self.grids[t % 2]

    def next(self, t: int) -> Grid:
        return self.grids[(t + 1) % 2]

    def fill_from(self, field: np.ndarray) -> None:
        """Initialise both buffers (boundaries must exist in both)."""
        for grid in self.grids:
            grid.fill_from(field)
