"""ExecutionBackend seam: factory, defaults, config validation."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.errors import ConfigError
from repro.runtime.backend import (
    ExecutionBackend,
    VirtualClockBackend,
    create_backend,
)
from repro.runtime.backend.multiprocess import MultiprocessBackend
from repro.runtime.runtime import Runtime


def test_default_backend_is_virtual():
    backend = create_backend(Config())
    assert isinstance(backend, VirtualClockBackend)
    assert backend.name == "virtual"
    assert backend.distributed is False
    assert backend.my_id == 0


def test_factory_builds_multiprocess_backend():
    backend = create_backend(Config(runtime__backend="multiprocess"))
    assert isinstance(backend, MultiprocessBackend)
    assert backend.name == "multiprocess"
    assert backend.distributed is True
    assert backend.my_id == 0


def test_virtual_backend_is_inert():
    """The virtual backend must never inject work into the hot loop."""
    backend = VirtualClockBackend()
    assert backend.maybe_service() is False
    assert backend.poll() is False
    assert backend.on_stall() is False
    assert backend.counters() == {}
    assert backend.worker_stats() == {}
    backend.flush()  # no-op, must not raise


def test_base_backend_cannot_forward():
    with pytest.raises(NotImplementedError):
        ExecutionBackend().forward_parcel(None, 1)


def test_runtime_exposes_backend_and_distributed_flag():
    with Runtime(n_localities=1) as rt:
        assert isinstance(rt.backend, VirtualClockBackend)
        assert rt.distributed is False


def test_config_rejects_unknown_backend():
    with pytest.raises(ConfigError):
        Config(runtime__backend="threads")


def test_config_rejects_bad_process_count():
    with pytest.raises(ConfigError):
        Config(runtime__processes=-1)


def test_config_rejects_unknown_start_method():
    with pytest.raises(ConfigError):
        Config(runtime__mp_start_method="forkserver")


def test_config_rejects_nonpositive_stall_timeout():
    with pytest.raises(ConfigError):
        Config(runtime__mp_stall_timeout_s=0.0)


def test_config_rejects_nonpositive_sync_rounds():
    with pytest.raises(ConfigError):
        Config(runtime__mp_sync_rounds=0)


def test_virtual_runs_are_unaffected_by_backend_seam():
    """The backend hook in the hot loop must not change virtual results."""
    from repro.runtime import async_

    with Runtime(n_localities=2, workers_per_locality=2) as rt:
        result = rt.run(lambda: sum(async_(lambda i=i: i * i).get() for i in range(8)))
    assert result == sum(i * i for i in range(8))
