"""Unit tests for the counter model (Tables III-VI)."""

import pytest

from repro.errors import ValidationError
from repro.hardware import (
    PAPI_L2_TCM,
    PAPI_TOT_INS,
    STALL_BACKEND,
    STALL_FRONTEND,
    machine,
)
from repro.perf import COUNTER_STEPS, CounterModel
from repro.perf.counters import counter_lups


def test_counter_lups():
    assert counter_lups((4, 5), 10) == 2 * 3 * 10
    with pytest.raises(ValidationError):
        counter_lups((2, 5), 10)


def test_table3_regenerated_exactly():
    """Table III: Xeon instruction and cache-miss counts."""
    model = CounterModel(machine("xeon-e5-2660v3"))
    predicted = model.predict("float32", "auto")
    assert predicted[PAPI_TOT_INS] == pytest.approx(3.153e10, rel=1e-6)
    assert predicted[PAPI_L2_TCM] == pytest.approx(2.121e8, rel=1e-6)
    vec = model.predict("float32", "simd")
    assert vec[PAPI_TOT_INS] == pytest.approx(1.783e10, rel=1e-6)


def test_table5_regenerated_exactly():
    """Table V: A64FX stall counters."""
    model = CounterModel(machine("a64fx"))
    row = model.predict("float64", "simd")
    assert row[PAPI_TOT_INS] == pytest.approx(2.956e10, rel=1e-6)
    assert row[STALL_FRONTEND] == pytest.approx(3.56e8, rel=1e-6)
    assert row[STALL_BACKEND] == pytest.approx(1.443e10, rel=1e-6)


def test_table6_regenerated_exactly():
    """Table VI: ThunderX2."""
    model = CounterModel(machine("thunderx2"))
    row = model.predict("float64", "auto")
    assert row[PAPI_TOT_INS] == pytest.approx(8.065e10, rel=1e-6)
    assert row[PAPI_L2_TCM] == pytest.approx(5.716e9, rel=1e-6)
    assert row[STALL_BACKEND] == pytest.approx(3.298e10, rel=1e-6)


def test_counters_scale_linearly_with_work():
    model = CounterModel(machine("kunpeng916"))
    base = model.predict("float32", "auto")
    double_steps = model.predict("float32", "auto", steps=2 * COUNTER_STEPS)
    assert double_steps[PAPI_TOT_INS] == pytest.approx(
        2 * base[PAPI_TOT_INS], rel=1e-9
    )


def test_xeon_scalar_vector_instruction_ratio_is_2x():
    """Sec. VII-B: 'a 2x difference in instruction count' on Xeon."""
    model = CounterModel(machine("xeon-e5-2660v3"))
    for dtype in ("float32", "float64"):
        auto = model.per_lup(dtype, "auto")[PAPI_TOT_INS]
        simd = model.per_lup(dtype, "simd")[PAPI_TOT_INS]
        assert auto / simd == pytest.approx(2.0, rel=0.15)


def test_kunpeng_auto_vectorizes_well():
    """Sec. VII-B: 'a mere 5% improvement in instruction count'."""
    model = CounterModel(machine("kunpeng916"))
    auto = model.per_lup("float32", "auto")[PAPI_TOT_INS]
    simd = model.per_lup("float32", "simd")[PAPI_TOT_INS]
    assert 1.0 < auto / simd < 1.10


def test_kunpeng_simd_reduces_cache_misses_10_to_20_percent():
    model = CounterModel(machine("kunpeng916"))
    for dtype in ("float32", "float64"):
        auto = model.per_lup(dtype, "auto")[PAPI_L2_TCM]
        simd = model.per_lup(dtype, "simd")[PAPI_L2_TCM]
        assert 0.08 < 1 - simd / auto < 0.25


def test_tx2_backend_stalls_drop_with_explicit_simd():
    """Sec. VII-B: outstanding load/stores noticeably lower with NSIMD."""
    model = CounterModel(machine("thunderx2"))
    auto = model.per_lup("float32", "auto")[STALL_BACKEND]
    simd = model.per_lup("float32", "simd")[STALL_BACKEND]
    assert simd < 0.5 * auto


def test_a64fx_gcc_beats_nsimd_on_instruction_count():
    """Sec. VII-B: 'GCC does a better job of optimizing the instruction
    count than our explicitly vectorized code' on A64FX."""
    model = CounterModel(machine("a64fx"))
    for dtype in ("float32", "float64"):
        auto = model.per_lup(dtype, "auto")[PAPI_TOT_INS]
        simd = model.per_lup(dtype, "simd")[PAPI_TOT_INS]
        assert auto < simd


def test_counter_names_per_machine():
    assert PAPI_L2_TCM in CounterModel(machine("xeon-e5-2660v3")).counter_names()
    assert STALL_BACKEND in CounterModel(machine("a64fx")).counter_names()
    assert STALL_FRONTEND not in CounterModel(machine("thunderx2")).counter_names()


def test_effective_vector_width_plausible(any_machine):
    """Implied widths must be positive and bounded by 2x the ISA lanes
    (dual pipes can retire two packs per cycle-equivalent)."""
    model = CounterModel(any_machine)
    for dtype, elem in (("float32", 4), ("float64", 8)):
        lanes = any_machine.spec.simd_lanes(elem)
        for mode in ("auto", "simd"):
            width = model.effective_vector_width(dtype, mode)
            assert 0 < width <= 2 * lanes + 1


def test_structural_estimate_within_band(any_machine):
    """Calibrated instructions/LUP within 3x of the structural estimate."""
    model = CounterModel(any_machine)
    for dtype in ("float32", "float64"):
        for mode in ("auto", "simd"):
            measured = model.per_lup(dtype, mode)[PAPI_TOT_INS]
            structural = model.structural_instructions_per_lup(dtype, mode)
            assert structural / 3 < measured < structural * 3


def test_traffic_per_lup():
    model = CounterModel(machine("xeon-e5-2660v3"))
    assert model.traffic_per_lup_bytes("float64") == 24.0
    assert model.traffic_per_lup_bytes("float64", blocking=True) == 16.0


def test_invalid_variant_rejected():
    model = CounterModel(machine("a64fx"))
    with pytest.raises(ValidationError):
        model.per_lup("float16", "auto")
    with pytest.raises(ValidationError):
        model.per_lup("float32", "gpu")


def test_table_row_returns_paper_values():
    model = CounterModel(machine("kunpeng916"))
    row = model.table_row("float64", "simd")
    assert row[PAPI_TOT_INS] == 8.236e10
