"""Property-based tests for the stencil solvers' mathematical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.simd.isa import AVX2, NEON
from repro.stencil import (
    Heat1DParams,
    Heat1DPartitioned,
    Jacobi2D,
    heat1d_reference,
    jacobi_reference_step,
    max_error,
)

PARAMS = Heat1DParams()

bounded = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@given(u0=arrays(np.float64, 32, elements=bounded), steps=st.integers(0, 30))
@settings(max_examples=40)
def test_heat1d_conserves_mass(u0, steps):
    """Periodic diffusion conserves the discrete integral exactly."""
    u1 = heat1d_reference(u0, steps, PARAMS)
    assert u1.sum() == np.float64(u0).sum() or abs(u1.sum() - u0.sum()) < 1e-8


@given(u0=arrays(np.float64, 24, elements=bounded), steps=st.integers(0, 20))
@settings(max_examples=40)
def test_heat1d_maximum_principle(u0, steps):
    """Diffusion never creates new extrema (k <= 1/2 stability)."""
    u1 = heat1d_reference(u0, steps, PARAMS)
    assert u1.max() <= u0.max() + 1e-9
    assert u1.min() >= u0.min() - 1e-9


@given(
    a=arrays(np.float64, 16, elements=bounded),
    b=arrays(np.float64, 16, elements=bounded),
    steps=st.integers(0, 15),
)
@settings(max_examples=40)
def test_heat1d_linearity(a, b, steps):
    """The stencil operator is linear: S(a + b) = S(a) + S(b)."""
    combined = heat1d_reference(a + b, steps, PARAMS)
    separate = heat1d_reference(a, steps, PARAMS) + heat1d_reference(b, steps, PARAMS)
    assert np.allclose(combined, separate, atol=1e-7)


@given(
    u0=arrays(np.float64, 48, elements=bounded),
    nlp=st.sampled_from([1, 2, 3, 4, 6, 8]),
    steps=st.integers(0, 25),
)
@settings(max_examples=30)
def test_partitioned_solver_agnostic_to_partition_count(u0, nlp, steps):
    """Any partitioning produces the identical field (bitwise-stable
    arithmetic order within chunks differs, so allow roundoff)."""
    solver = Heat1DPartitioned(48, nlp, PARAMS)
    solver.initialize(u0)
    out = solver.run(steps)
    assert np.allclose(out, heat1d_reference(u0, steps, PARAMS), atol=1e-9)


@given(
    field=arrays(np.float64, (7, 9), elements=bounded),
    steps=st.integers(0, 10),
)
@settings(max_examples=40)
def test_jacobi_maximum_principle(field, steps):
    """Jacobi averaging keeps the interior inside the initial hull."""
    solver = Jacobi2D(7, 9, np.float64)
    solver.initialize(field)
    out = solver.run(steps)
    assert out.max() <= field.max() + 1e-9
    assert out.min() >= field.min() - 1e-9


@given(field=arrays(np.float64, (6, 10), elements=bounded), steps=st.integers(0, 12))
@settings(max_examples=40)
def test_jacobi_row_driver_equals_whole_grid_reference(field, steps):
    solver = Jacobi2D(6, 10, np.float64)
    solver.initialize(field)
    out = solver.run(steps)
    ref = np.array(field)
    for _ in range(steps):
        ref = jacobi_reference_step(ref)
    assert max_error(out, ref) < 1e-12


@given(
    field=arrays(np.float64, (5, 18), elements=bounded),
    isa=st.sampled_from([NEON, AVX2]),
    steps=st.integers(0, 10),
)
@settings(max_examples=40)
def test_jacobi_simd_equals_auto_for_random_fields(field, isa, steps):
    """The VNS kernel is *exactly* the scalar kernel, for any input."""
    auto = Jacobi2D(5, 18, np.float64, mode="auto")
    auto.initialize(field)
    simd = Jacobi2D(5, 18, np.float64, mode="simd", isa=isa)
    simd.initialize(field)
    assert max_error(auto.run(steps), simd.run(steps)) == 0.0


@given(field=arrays(np.float64, (6, 8), elements=bounded))
@settings(max_examples=30)
def test_jacobi_fixed_point_of_constant_field(field):
    """A constant field is a fixed point of the Jacobi sweep."""
    constant = np.full((6, 8), float(field[0, 0]))
    solver = Jacobi2D(6, 8, np.float64)
    solver.initialize(constant)
    assert max_error(solver.run(5), constant) == 0.0
