"""Three independent workers -- the DPOR pruning showcase.

Each worker writes its *own* result cell; no two tasks touch the same
state or the same LCO, so every interleaving is equivalent to the
reference schedule.  Exhaustive search still enumerates all 3! dispatch
orders; DPOR sees no dependent pair to reverse and proves the absence
of violations from the reference schedule alone.  Tests assert the gap
(the paper-level point of persistent-set reduction).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.explore import ExploreApp
from repro.runtime.agas.component import Component
from repro.runtime.runtime import Runtime


class Cell(Component):
    def __init__(self) -> None:
        super().__init__()
        self.value = 0.0

    def store(self, value: float) -> None:
        self.mark_write("value")
        self.value = value


def _build(rt: Runtime) -> Callable[[], Any]:
    cells = [Cell() for _ in range(3)]

    def job() -> list[float]:
        pool = rt.localities[0].pool
        futures = [
            pool.submit(cell.store, float(i), description=f"store-{i}")
            for i, cell in enumerate(cells)
        ]
        for f in futures:
            f.get()
        return [cell.value for cell in cells]

    return job


def make_app() -> ExploreApp:
    return ExploreApp(name="corpus/independent", build=_build,
                      n_localities=1, workers_per_locality=1)
