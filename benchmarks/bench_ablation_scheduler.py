"""Ablation: scheduler choice under load imbalance.

ParalleX's claim is that work-stealing absorbs the load imbalance that
static schedules cannot ("the scheduler deals with the load imbalance",
Sec. I).  This ablation runs an imbalanced task set -- a few heavy tasks
among many light ones -- through all three schedulers on the
virtual-time pool and compares makespans.
"""

import pytest

from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool

N_WORKERS = 8
LIGHT, HEAVY = 1.0, 12.0


def imbalanced_makespan(scheduler: str) -> float:
    """48 light + 8 heavy tasks; heavy ones all land on two workers'
    initial queues, so only stealing can spread them."""
    pool = ThreadPool(N_WORKERS, scheduler=scheduler)
    for i in range(48):
        pool.submit(lambda: ctx.add_cost(LIGHT), worker=i % N_WORKERS)
    for i in range(8):
        pool.submit(lambda: ctx.add_cost(HEAVY), worker=i % 2)
    return pool.run_all()


def test_work_stealing_beats_static(benchmark, save_exhibit):
    ws = benchmark(imbalanced_makespan, "work-stealing")
    static = imbalanced_makespan("static")
    fifo = imbalanced_makespan("fifo")
    total_work = 48 * LIGHT + 8 * HEAVY
    lower_bound = total_work / N_WORKERS
    save_exhibit(
        "ablation_scheduler",
        "Ablation: makespan of an imbalanced task set (8 workers, "
        f"ideal {lower_bound:.1f}s)\n"
        f"work-stealing: {ws:.1f}s   static: {static:.1f}s   fifo: {fifo:.1f}s",
    )
    assert ws < static
    # Stealing lands within Graham's bound of optimal.
    assert ws <= lower_bound + HEAVY
    # Static serialises the heavy tasks on two workers.
    assert static >= 4 * HEAVY


def test_balanced_load_makes_schedulers_equal():
    """With identical tasks, placement barely matters."""
    results = {}
    for scheduler in ("work-stealing", "static", "fifo"):
        pool = ThreadPool(4, scheduler=scheduler)
        for i in range(16):
            pool.submit(lambda: ctx.add_cost(1.0), worker=i % 4)
        results[scheduler] = pool.run_all()
    assert max(results.values()) == pytest.approx(min(results.values()))


def test_stealing_count_reflects_imbalance(benchmark):
    pool = ThreadPool(4, scheduler="work-stealing")
    for _ in range(20):
        pool.submit(lambda: ctx.add_cost(1.0), worker=0)  # all on worker 0
    benchmark.pedantic(pool.run_all, rounds=1, iterations=1)
    assert pool.steals >= 10  # most tasks must migrate
