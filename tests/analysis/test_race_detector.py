"""Dynamic happens-before race detection over instrumented components."""

import pytest

from repro import analysis
from repro.config import Config
from repro.errors import DataRaceError
from repro.runtime.agas.component import Component
from repro.runtime.futures import when_all
from repro.runtime.runtime import Runtime
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile
from repro.stencil.jacobi2d_dist import DistributedJacobi2D

import numpy as np


class Cell(Component):
    """A component with one racy field, for seeding races on purpose."""

    def __init__(self) -> None:
        super().__init__()
        self.x = 0

    def bump(self) -> int:
        self.mark_write("x")
        self.x += 1
        return self.x

    def peek(self) -> int:
        self.mark_read("x")
        return self.x


def test_seeded_write_write_race_raises_naming_both_sites():
    """Two sibling actions mutate one field with no ordering edge."""
    with pytest.raises(DataRaceError) as excinfo:
        with analysis.attach(deadlocks=False):
            with Runtime(n_localities=1, workers_per_locality=2) as rt:
                def main():
                    gid = rt.new_component(Cell())
                    f1 = rt.invoke_async(gid, "bump")
                    f2 = rt.invoke_async(gid, "bump")
                    for f in when_all([f1, f2]).get():
                        f.get()

                rt.run(main)
    err = excinfo.value
    message = str(err)
    assert "data race" in message
    assert "Cell" in message and ".x" in message
    # Both access sites are named, pointing at the racing method.
    assert err.current is not None and err.previous is not None
    assert "in bump" in err.current.site
    assert "in bump" in err.previous.site
    assert err.current.kind == "write" and err.previous.kind == "write"
    # The missing-edge explanation is part of the message.
    assert "happens-before" in message


def test_seeded_read_write_race_detected():
    with pytest.raises(DataRaceError) as excinfo:
        with analysis.attach(deadlocks=False):
            with Runtime(n_localities=1, workers_per_locality=2) as rt:
                def main():
                    gid = rt.new_component(Cell())
                    f1 = rt.invoke_async(gid, "bump")
                    f2 = rt.invoke_async(gid, "peek")
                    for f in when_all([f1, f2]).get():
                        f.get()

                rt.run(main)
    kinds = {excinfo.value.current.kind, excinfo.value.previous.kind}
    assert "write" in kinds


def test_future_edge_orders_accesses():
    """Reading the first action's future before issuing the second one
    creates a set->get edge; no race."""
    with analysis.attach(deadlocks=False):
        with Runtime(n_localities=1, workers_per_locality=2) as rt:
            def main():
                gid = rt.new_component(Cell())
                rt.invoke_async(gid, "bump").get()  # edge: fulfil -> read
                return rt.invoke_async(gid, "bump").get()

            assert rt.run(main) == 2


def test_collect_mode_accumulates_instead_of_raising():
    with analysis.attach(deadlocks=False, report="collect") as sanitizers:
        with Runtime(n_localities=1, workers_per_locality=2) as rt:
            def main():
                gid = rt.new_component(Cell())
                futures = [rt.invoke_async(gid, "bump") for _ in range(3)]
                for f in when_all(futures).get():
                    f.get()

            rt.run(main)
        findings = sanitizers.race.findings()
    assert findings, "unordered sibling writes must be collected"
    assert all(isinstance(f, DataRaceError) for f in findings)


@pytest.mark.parametrize("scheduler", ["fifo", "static", "work-stealing"])
def test_heat1d_demo_is_race_free(scheduler):
    """The futurized 1D stencil is clean under every scheduler policy."""
    config = Config(threads__scheduler=scheduler)
    with analysis.attach(deadlocks=False):
        with Runtime(
            n_localities=2, workers_per_locality=2, config=config
        ) as rt:
            solver = DistributedHeat1D(rt, 64, Heat1DParams(), cost_per_step=1.0)
            solver.initialize(analytic_heat_profile(64))
            result = rt.run(lambda: solver.run(3))
    assert np.isfinite(result).all()


@pytest.mark.parametrize("scheduler", ["fifo", "static", "work-stealing"])
def test_jacobi2d_demo_is_race_free(scheduler):
    """The 2D halo-exchange chain is clean under every scheduler policy."""
    config = Config(threads__scheduler=scheduler)
    with analysis.attach(deadlocks=False):
        with Runtime(
            n_localities=2, workers_per_locality=2, config=config
        ) as rt:
            solver = DistributedJacobi2D(rt, ny=6, nx=5)
            field = np.zeros((6, 5))
            field[0, :] = 1.0
            solver.initialize(field)
            result = rt.run(lambda: solver.run(3))
    assert np.isfinite(result).all()


def test_partitioned_vector_bulk_ops_are_race_free():
    from repro.containers.partitioned_vector import PartitionedVector

    with analysis.attach(deadlocks=False):
        with Runtime(n_localities=2, workers_per_locality=2) as rt:
            def main():
                vec = PartitionedVector(rt, 8, initial=1.0)
                vec.fill(2.0)
                vec.set(3, 5.0)
                return vec.to_array()

            out = rt.run(main)
    assert out[3] == 5.0 and out[0] == 2.0
