"""Overheads and artifacts of the observability layer.

Tracing and counter sampling are only usable if they are cheap enough
to leave on; these benchmarks measure the real wall-clock overhead of
(1) tracing a distributed run, (2) exporting Chrome trace-event JSON,
and (3) virtual-time counter sampling -- and write the resulting
artifacts (trace JSON, counter CSV, metrics JSON) to
``benchmarks/out/`` so EXPERIMENTS.md can reference them.
"""

import json

from repro.observability import (
    collect_metrics,
    latency_histograms,
    sample_counters,
)
from repro.runtime import Runtime
from repro.runtime.trace import Tracer
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

NODES, WORKERS, STEPS, POINTS = 2, 2, 12, 128


def _solver(rt):
    solver = DistributedHeat1D(rt, POINTS, Heat1DParams(), cost_per_step=1.0)
    solver.initialize(analytic_heat_profile(POINTS))
    return solver


def test_traced_run_overhead(benchmark, save_metrics):
    """A fully-traced distributed run (spans + parcel/steal events)."""

    def run():
        tracer = Tracer()
        with Runtime(
            machine="xeon-e5-2660v3", n_localities=NODES, workers_per_locality=WORKERS
        ) as rt:
            with tracer.attach(rt):
                rt.run(lambda: _solver(rt).run(STEPS))
            return tracer, collect_metrics(rt)["counters"]

    tracer, counters = benchmark(run)
    assert len(tracer.records) > STEPS
    assert tracer.events_of("parcel_send")
    save_metrics(
        "observability_traced_run",
        counters=counters,
        histograms=latency_histograms(tracer),
        meta={"nodes": NODES, "workers": WORKERS, "steps": STEPS},
    )


def test_chrome_trace_export(benchmark, exhibit_dir):
    """Serializing a traced run to Chrome trace-event JSON."""
    tracer = Tracer()
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=NODES, workers_per_locality=WORKERS
    ) as rt:
        with tracer.attach(rt):
            rt.run(lambda: _solver(rt).run(STEPS))
    path = exhibit_dir / "observability_demo.trace.json"
    text = benchmark(tracer.export_chrome_trace, str(path))
    document = json.loads(text)
    phases = {event["ph"] for event in document["traceEvents"]}
    assert {"X", "M", "s", "f"} <= phases


def test_counter_sampling_overhead(benchmark, exhibit_dir):
    """Sampling four counters every virtual second of the demo run."""

    def run():
        with Runtime(
            machine="xeon-e5-2660v3", n_localities=NODES, workers_per_locality=WORKERS
        ) as rt:
            solver = _solver(rt)
            return sample_counters(
                rt,
                lambda: solver.run(STEPS),
                paths=[
                    "/threads{total}/count/cumulative",
                    "/threads{total}/idle-rate",
                    "/parcels{total}/count/sent",
                    "/parcels{total}/time/average-latency",
                ],
                interval=1.0,
            )

    series = benchmark(run)
    assert len(series) >= STEPS
    (exhibit_dir / "observability_counter_series.csv").write_text(series.to_csv())
