"""Distributed data structures built on AGAS components.

HPX ships ``hpx::partitioned_vector`` -- a vector whose segments live on
different localities and are addressed through AGAS -- as the substrate
for its distributed algorithms.  :class:`PartitionedVector` reproduces
it, and the distributed stencil drivers show the pattern it abstracts.
"""

from .partitioned_vector import PartitionedVector

__all__ = ["PartitionedVector"]
