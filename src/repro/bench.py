"""The ``repro bench`` perf-regression harness.

Every hot-path change in the runtime must show up here before it lands:
the suite measures *real wall-clock* cost of the simulator itself (task
spawn/execute, future round-trips, parcel encode/route/decode, and the
fig3/fig4 stencil drivers) together with the *virtual-time* results each
workload produces.  The two kinds of number play different roles:

* ``wall_seconds`` (and the derived ``tasks_per_sec`` / ``parcels_per_sec``)
  is what optimisation PRs are judged by -- it may only go down;
* ``virtual_makespan`` is the model's *answer* and must stay bit-identical
  across optimisation PRs -- the determinism suite
  (``tests/runtime/test_rt_fastpath_determinism.py``) enforces the same
  invariant structurally.

The measurement protocol is the paper's best-of-N (Sec. VI, via
:func:`repro.perf.harness.run_best`): wall numbers are the minimum over
``repeats`` runs, which filters OS noise.

Results serialize to a schema-versioned JSON document (see
:data:`BENCH_SCHEMA`) so future PRs can diff against a committed
baseline -- ``repro bench --baseline BENCH_PR5.json`` fails when virtual
makespans drift at all or wall time regresses beyond
``--max-regression``.  ``docs/performance.md`` documents the workflow.

The module uses absolute imports only, so the file can be executed
against *any* checkout of the package (``PYTHONPATH=<seed>/src python
src/repro/bench.py``) -- that is how before/after numbers for a single
PR are produced from one working tree.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Any, Callable, Sequence

import numpy as np

from repro.config import Config
from repro.errors import ConfigError
from repro.perf.harness import run_best

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "SUITE",
    "run_suite",
    "compare_to_baseline",
    "write_bench_json",
    "main",
]

#: Schema tag stamped into every bench artifact.  Bump on shape changes.
BENCH_SCHEMA = "repro-bench-v1"

#: (full, quick) problem sizes per benchmark.
_SIZES = {
    "task_spawn": (20_000, 2_000),
    "future_roundtrip": (2_000, 300),
    "dataflow_chain": (3_000, 500),
    "channel_handoff": (4_000, 600),
    "fanout_fanin": (6_000, 800),
    "parcel_storm": (2_000, 300),
    "heat1d_steps": (40, 8),
    "jacobi2d_steps": (30, 6),
}

#: (full, quick) problem sizes for the ``scaling_cores`` workloads.  The
#: grids are deliberately much larger than the virtual-time benches so
#: that per-step NumPy compute dominates the cross-process transport.
_SCALING_SIZES = {
    # (nx, steps) -- split into _SCALING_PARTS partitions
    "heat1d": ((1 << 17, 20), (1 << 14, 5)),
    # (ny_interior_rows, nx, steps)
    "jacobi2d": ((128, 512, 20), (32, 64, 5)),
    # (n_handlers, array_size, sweeps)
    "parcel_storm": ((24, 100_000, 8), (8, 25_000, 3)),
}

#: Total partitions/handler-stride kept constant across process counts so
#: the numerics are bit-identical at every P.
_SCALING_PARTS = 4
_SCALING_PROCESSES = (1, 2, 4)

_REPEATS_FULL = 3
_REPEATS_QUICK = 2


class BenchResult(dict):
    """One benchmark's numbers (a dict with a stable key set).

    Keys: ``wall_seconds`` (best-of-N), ``samples`` (every repetition),
    ``tasks_per_sec``/``parcels_per_sec`` (throughput at the best wall
    time; ``None`` when not meaningful), ``virtual_makespan`` (``None``
    for bare-pool benches), ``n_tasks``/``n_parcels`` (work done per
    repetition).
    """


def _result(
    measurement: Any,
    n_tasks: int | None = None,
    n_parcels: int | None = None,
    virtual_makespan: float | None = None,
) -> BenchResult:
    wall = measurement.best
    return BenchResult(
        wall_seconds=wall,
        samples=list(measurement.samples),
        n_tasks=n_tasks,
        n_parcels=n_parcels,
        tasks_per_sec=(n_tasks / wall) if n_tasks and wall > 0 else None,
        parcels_per_sec=(n_parcels / wall) if n_parcels and wall > 0 else None,
        virtual_makespan=virtual_makespan,
    )


# Benchmarks ----------------------------------------------------------------


def _bench_task_spawn(n: int, repeats: int) -> BenchResult:
    """Submit + drain ``n`` empty tasks on a bare 4-worker pool."""
    from repro.runtime.threads.pool import ThreadPool

    def run() -> int:
        pool = ThreadPool(4)
        for _ in range(n):
            pool.submit(lambda: None)
        pool.run_all()
        return pool.tasks_executed

    measurement = run_best(run, repeats)
    assert measurement.result == n
    return _result(measurement, n_tasks=n)


def _bench_future_roundtrip(n: int, repeats: int) -> BenchResult:
    """``async_(...).get()`` round trips through a 2-worker runtime."""
    from repro.runtime import Runtime, async_

    def run() -> float:
        with Runtime(workers_per_locality=2) as rt:

            def main() -> int:
                total = 0
                for _ in range(n):
                    total += async_(lambda: 1).get()
                return total

            assert rt.run(main) == n
            return rt.makespan

    measurement = run_best(run, repeats)
    return _result(measurement, n_tasks=n, virtual_makespan=measurement.result)


def _bench_dataflow_chain(n: int, repeats: int) -> BenchResult:
    """A ``dataflow`` dependency chain of length ``n``."""
    from repro.runtime import Runtime, dataflow

    def run() -> float:
        with Runtime(workers_per_locality=2) as rt:

            def main() -> int:
                future = dataflow(lambda: 0)
                for _ in range(n):
                    future = dataflow(lambda x: x + 1, future)
                return future.get()

            assert rt.run(main) == n
            return rt.makespan

    measurement = run_best(run, repeats)
    return _result(measurement, n_tasks=n, virtual_makespan=measurement.result)


def _bench_channel_handoff(n: int, repeats: int) -> BenchResult:
    """Producer/consumer hand-offs through one channel."""
    from repro.runtime import Channel, Runtime, async_

    def run() -> float:
        with Runtime(workers_per_locality=2) as rt:

            def main() -> int:
                channel = Channel()

                def producer() -> None:
                    for i in range(n):
                        channel.set(i)

                async_(producer)
                total = 0
                for _ in range(n):
                    total += channel.get_sync()
                return total

            assert rt.run(main) == n * (n - 1) // 2
            return rt.makespan

    measurement = run_best(run, repeats)
    return _result(measurement, n_tasks=n, virtual_makespan=measurement.result)


def _bench_fanout_fanin(n: int, repeats: int) -> BenchResult:
    """``n``-way fan-out joined by one ``when_all``."""
    from repro.runtime import Runtime, async_, when_all

    def run() -> float:
        with Runtime(workers_per_locality=4) as rt:

            def main() -> int:
                futures = [async_(lambda i=i: i) for i in range(n)]
                return sum(f.get() for f in when_all(futures).get())

            assert rt.run(main) == n * (n - 1) // 2
            return rt.makespan

    measurement = run_best(run, repeats)
    return _result(measurement, n_tasks=n, virtual_makespan=measurement.result)


def _bench_parcel_storm(
    n: int,
    repeats: int,
    zero_copy: bool = False,
    overload: bool = False,
    batching: bool = False,
) -> BenchResult:
    """``n`` cross-locality plain actions with list payloads (loopback).

    Every invocation serializes its arguments and ships a parcel to the
    other locality plus a reply back, so this measures the full parcel
    path: encode, route, handler spawn, decode, reply.  With
    ``zero_copy`` the config-gated same-process fast path is enabled
    (encode still runs for validation and byte accounting; the loopback
    decode is skipped).  With ``overload`` the admission controller is
    in the send path (credit accounting + breaker checks per parcel),
    so the delta against plain ``parcel_storm`` is the overhead of
    overload protection when the system is healthy.  With ``batching``
    the per-destination parcel coalescer is in the send path, so the
    delta against plain ``parcel_storm`` is what coalescing costs (or
    saves) on loopback traffic -- virtual makespans are identical by
    the batcher's determinism contract.
    """
    from repro.runtime import Runtime, when_all

    config = None
    if zero_copy:
        config = Config(parcel__zero_copy=True)
    if overload:
        config = Config(overload__enabled=True)
    if batching:
        config = Config(parcel__batching=True)
    payload = list(range(64))

    def run() -> tuple[float, int]:
        with Runtime(n_localities=2, workers_per_locality=2, config=config) as rt:

            def main() -> int:
                futures = [
                    rt.async_at(1, _storm_handler, payload, i) for i in range(n)
                ]
                return sum(f.get() for f in when_all(futures).get())

            expected = sum(len(payload) + i for i in range(n))
            assert rt.run(main) == expected
            return rt.makespan, rt.parcelport.parcels_sent

    measurement = run_best(run, repeats)
    makespan, parcels = measurement.result
    return _result(
        measurement, n_tasks=n, n_parcels=parcels, virtual_makespan=makespan
    )


def _storm_handler(payload: Sequence[int], i: int) -> int:
    """Module-level so the parcel layer can serialize it by reference."""
    return len(payload) + i


def _bench_heat1d(steps: int, repeats: int) -> BenchResult:
    """The fig3 driver: distributed futurized 1D heat stencil."""
    from repro.runtime import Runtime
    from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    nx = 256

    def run() -> tuple[float, int, float]:
        with Runtime(n_localities=2, workers_per_locality=2) as rt:
            solver = DistributedHeat1D(
                rt, nx, Heat1DParams(), partitions_per_locality=2,
                cost_per_step=1e-4,
            )
            solver.initialize(analytic_heat_profile(nx))
            out = rt.run(lambda: solver.run(steps))
            tasks = sum(loc.pool.tasks_executed for loc in rt.localities)
            return rt.makespan, tasks, float(np.sum(out))

    measurement = run_best(run, repeats)
    makespan, tasks, _checksum = measurement.result
    return _result(measurement, n_tasks=tasks, virtual_makespan=makespan)


def _bench_jacobi2d(steps: int, repeats: int) -> BenchResult:
    """The fig4 driver: distributed 2D Jacobi stencil."""
    from repro.runtime import Runtime
    from repro.stencil.jacobi2d_dist import DistributedJacobi2D

    ny, nx = 34, 32

    def run() -> tuple[float, int, float]:
        with Runtime(n_localities=2, workers_per_locality=2) as rt:
            solver = DistributedJacobi2D(
                rt, ny, nx, partitions_per_locality=2, cost_per_step=1e-4
            )
            rng = np.random.default_rng(0)
            solver.initialize(rng.random((ny, nx)))
            out = rt.run(lambda: solver.run(steps))
            tasks = sum(loc.pool.tasks_executed for loc in rt.localities)
            return rt.makespan, tasks, float(np.sum(out))

    measurement = run_best(run, repeats)
    makespan, tasks, _checksum = measurement.result
    return _result(measurement, n_tasks=tasks, virtual_makespan=makespan)


def _scaling_compute_handler(seed: int, size: int, sweeps: int) -> float:
    """Module-level compute kernel for the scaling storm.

    Builds its working set locally from ``seed`` (nothing big rides the
    parcel), then runs ``sweeps`` vectorized passes -- real CPU work that
    each worker process executes outside every other process's GIL.
    """
    a = np.full(size, float(seed % 7 + 1))
    for _ in range(sweeps):
        a = np.sqrt(a * 1.0001 + float(seed % 13))
    return float(a.sum())


def _scaling_runtime(processes: int) -> "Any":
    """A multiprocess-backend runtime with one locality per process."""
    from repro.runtime import Runtime

    config = Config(
        runtime__backend="multiprocess", runtime__processes=processes
    )
    return Runtime(n_localities=processes, workers_per_locality=1, config=config)


def _scaling_heat1d(processes: int, quick: bool) -> tuple[float, float]:
    """(timed run seconds, checksum) -- spawn/teardown excluded."""
    from repro.perf.harness import time_call
    from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    nx, steps = _SCALING_SIZES["heat1d"][quick]
    with _scaling_runtime(processes) as rt:
        solver = DistributedHeat1D(
            rt, nx, Heat1DParams(),
            partitions_per_locality=_SCALING_PARTS // processes,
        )
        solver.initialize(analytic_heat_profile(nx))
        wall, out = time_call(lambda: solver.run(steps))
    return wall, float(np.sum(out))


def _scaling_jacobi2d(processes: int, quick: bool) -> tuple[float, float]:
    from repro.perf.harness import time_call
    from repro.stencil.jacobi2d_dist import DistributedJacobi2D

    rows, nx, steps = _SCALING_SIZES["jacobi2d"][quick]
    ny = rows + 2
    rng = np.random.default_rng(0)
    field = rng.random((ny, nx))
    with _scaling_runtime(processes) as rt:
        solver = DistributedJacobi2D(
            rt, ny, nx, partitions_per_locality=_SCALING_PARTS // processes
        )
        solver.initialize(field)
        wall, out = time_call(lambda: solver.run(steps))
    return wall, float(np.sum(out))


def _scaling_parcel_storm(processes: int, quick: bool) -> tuple[float, float]:
    from repro.perf.harness import time_call
    from repro.runtime import when_all

    n, size, sweeps = _SCALING_SIZES["parcel_storm"][quick]
    with _scaling_runtime(processes) as rt:

        def run() -> float:
            futures = [
                rt.async_at(i % processes, _scaling_compute_handler, i, size, sweeps)
                for i in range(n)
            ]
            return float(sum(f.get() for f in when_all(futures).get()))

        wall, total = time_call(run)
    return wall, total


_SCALING_WORKLOADS: dict[str, Callable[[int, bool], tuple[float, float]]] = {
    "heat1d": _scaling_heat1d,
    "jacobi2d": _scaling_jacobi2d,
    "parcel_storm": _scaling_parcel_storm,
}


def _bench_scaling_cores(quick: bool, repeats: int) -> dict[str, Any]:
    """Real multi-core scaling of the multiprocess backend.

    Runs each workload at 1, 2 and 4 OS processes with the *same total
    work* (constant partition/handler count), timing only the solve --
    process spawn and teardown are excluded.  Wall numbers are
    best-of-``repeats``; the checksums must agree across every process
    count (the backend bit-identity contract).  Speedups are only
    physically achievable when the host grants that many cores, so
    ``cpu_count`` is recorded alongside and this entry is informational:
    it carries no job-wide ``wall_seconds`` and is never gated by
    ``compare_to_baseline``.
    """
    workloads: dict[str, Any] = {}
    for name, fn in _SCALING_WORKLOADS.items():
        walls: dict[str, float] = {}
        checksums: list[float] = []
        for processes in _SCALING_PROCESSES:
            samples = []
            checksum = None
            for _ in range(repeats):
                wall, checksum = fn(processes, quick)
                samples.append(wall)
            walls[str(processes)] = min(samples)
            checksums.append(checksum)
        workloads[name] = {
            "wall_seconds": walls,
            "speedup_2x": walls["1"] / walls["2"] if walls["2"] > 0 else None,
            "speedup_4x": walls["1"] / walls["4"] if walls["4"] > 0 else None,
            "checksum_identical": len(set(checksums)) == 1,
        }
    return {
        "processes": list(_SCALING_PROCESSES),
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
        "best_speedup_4x": max(
            w["speedup_4x"] for w in workloads.values() if w["speedup_4x"]
        ),
        "checksums_identical": all(
            w["checksum_identical"] for w in workloads.values()
        ),
    }


#: name -> callable(quick, repeats) for every suite entry, in run order.
SUITE: dict[str, Callable[[bool, int], BenchResult]] = {
    "task_spawn": lambda quick, repeats: _bench_task_spawn(
        _SIZES["task_spawn"][quick], repeats
    ),
    "future_roundtrip": lambda quick, repeats: _bench_future_roundtrip(
        _SIZES["future_roundtrip"][quick], repeats
    ),
    "dataflow_chain": lambda quick, repeats: _bench_dataflow_chain(
        _SIZES["dataflow_chain"][quick], repeats
    ),
    "channel_handoff": lambda quick, repeats: _bench_channel_handoff(
        _SIZES["channel_handoff"][quick], repeats
    ),
    "fanout_fanin": lambda quick, repeats: _bench_fanout_fanin(
        _SIZES["fanout_fanin"][quick], repeats
    ),
    "parcel_storm": lambda quick, repeats: _bench_parcel_storm(
        _SIZES["parcel_storm"][quick], repeats
    ),
    "parcel_storm_zero_copy": lambda quick, repeats: _bench_parcel_storm(
        _SIZES["parcel_storm"][quick], repeats, zero_copy=True
    ),
    "parcel_storm_overload": lambda quick, repeats: _bench_parcel_storm(
        _SIZES["parcel_storm"][quick], repeats, overload=True
    ),
    "parcel_storm_batched": lambda quick, repeats: _bench_parcel_storm(
        _SIZES["parcel_storm"][quick], repeats, batching=True
    ),
    "fig3_heat1d": lambda quick, repeats: _bench_heat1d(
        _SIZES["heat1d_steps"][quick], repeats
    ),
    "fig4_jacobi2d": lambda quick, repeats: _bench_jacobi2d(
        _SIZES["jacobi2d_steps"][quick], repeats
    ),
    "scaling_cores": _bench_scaling_cores,
}

#: The composite "runtime micro" rollup is the sum of these entries --
#: the ISSUE-level speedup target is defined over this aggregate.
RUNTIME_MICRO_PARTS = (
    "task_spawn",
    "future_roundtrip",
    "dataflow_chain",
    "channel_handoff",
    "fanout_fanin",
)


def run_suite(
    quick: bool = False,
    names: Sequence[str] | None = None,
    repeats: int | None = None,
    report: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the (selected) suite; returns the schema-versioned document.

    Benchmarks whose prerequisites are missing in the running package
    (e.g. the ``parcel.zero_copy`` config key on a pre-PR5 checkout) are
    recorded as ``{"skipped": <reason>}`` instead of failing the run, so
    the same harness file produces before/after numbers for one PR.
    """
    selected = list(names) if names else list(SUITE)
    unknown = [name for name in selected if name not in SUITE]
    if unknown:
        raise ConfigError(f"unknown benchmark(s): {', '.join(sorted(unknown))}")
    n_repeats = repeats if repeats is not None else (
        _REPEATS_QUICK if quick else _REPEATS_FULL
    )
    results: dict[str, Any] = {}
    for name in selected:
        if report is not None:
            report(f"running {name} ...")
        try:
            results[name] = SUITE[name](quick, n_repeats)
        except ConfigError as exc:
            results[name] = {"skipped": str(exc)}
    micro = [
        results[name]
        for name in RUNTIME_MICRO_PARTS
        if name in results and "skipped" not in results[name]
    ]
    if micro:
        wall = sum(r["wall_seconds"] for r in micro)
        tasks = sum(r["n_tasks"] or 0 for r in micro)
        results["bench_runtime_micro"] = BenchResult(
            wall_seconds=wall,
            samples=[wall],
            n_tasks=tasks,
            n_parcels=None,
            tasks_per_sec=(tasks / wall) if wall > 0 else None,
            parcels_per_sec=None,
            virtual_makespan=None,
        )
    return {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "repeats": n_repeats,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "platform": _platform_metadata(),
        "results": results,
    }


def _platform_metadata() -> dict[str, Any]:
    """Host facts a reader needs to interpret the wall numbers."""
    config = Config()
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "backend": config.get_str("runtime.backend"),
        "processes": config.get_int("runtime.processes"),
    }


# Baseline comparison --------------------------------------------------------


def _baseline_results(baseline: dict[str, Any], mode: str) -> dict[str, Any]:
    """Pick the comparable results out of a baseline document.

    Accepts either a plain suite document or a before/after artifact
    (``BENCH_PR5.json`` style), which carries the ``after`` numbers in
    both modes (``after`` = full, ``after_quick`` = quick).  Problem
    sizes differ between modes, so a mode mismatch is a configuration
    error, not a regression.
    """
    if "results" in baseline:
        if baseline.get("mode") != mode:
            raise ConfigError(
                f"baseline was recorded in {baseline.get('mode')!r} mode but "
                f"this run is {mode!r}; sizes are not comparable"
            )
        return baseline["results"]
    key = "after" if mode == "full" else "after_quick"
    if key in baseline and "results" in baseline[key]:
        return baseline[key]["results"]
    raise ConfigError(
        f"baseline JSON has neither 'results' nor '{key}.results'"
    )


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.25,
) -> list[str]:
    """Regression check; returns a list of human-readable failures.

    Two rules, matching what each number means:

    * ``virtual_makespan`` must be *bit-identical* -- any drift means the
      optimisation changed the model's answer, not just its speed;
    * ``wall_seconds`` may not exceed the baseline by more than
      ``max_regression`` (relative).  Faster is always fine.

    The name sets must reconcile, too: a baseline bench missing from the
    current run is a *failure* (a silently dropped benchmark would let a
    regression in it pass the gate forever), while benches the baseline
    has never seen are reported loudly on stderr but do not fail -- new
    benchmarks must be able to land before their baseline is recorded.
    """
    failures: list[str] = []
    base = _baseline_results(baseline, current.get("mode", "full"))
    missing = sorted(set(base) - set(current["results"]))
    if missing:
        failures.append(
            "baseline benches missing from this run (renamed or dropped "
            "without updating the baseline?): " + ", ".join(missing)
        )
    unseen = sorted(set(current["results"]) - set(base))
    if unseen:
        print(
            "bench: WARNING: benches not present in the baseline "
            "(record a fresh baseline to gate them): " + ", ".join(unseen),
            file=sys.stderr,
        )
    for name, entry in current["results"].items():
        ref = base.get(name)
        if ref is None or "skipped" in entry or "skipped" in ref:
            continue
        ref_makespan = ref.get("virtual_makespan")
        cur_makespan = entry.get("virtual_makespan")
        if ref_makespan is not None and cur_makespan != ref_makespan:
            failures.append(
                f"{name}: virtual makespan drifted "
                f"{ref_makespan!r} -> {cur_makespan!r} (must be bit-identical)"
            )
        ref_wall = ref.get("wall_seconds")
        cur_wall = entry.get("wall_seconds")
        if ref_wall and cur_wall and cur_wall > ref_wall * (1.0 + max_regression):
            failures.append(
                f"{name}: wall time regressed {cur_wall / ref_wall:.2f}x "
                f"({ref_wall:.4f}s -> {cur_wall:.4f}s, "
                f"threshold {1.0 + max_regression:.2f}x)"
            )
    return failures


def write_bench_json(path: str, document: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_results(document: dict[str, Any]) -> str:
    """One line per benchmark, aligned for terminals."""
    lines = [
        f"repro bench ({document['mode']}, best of {document['repeats']}, "
        f"python {document['python']})"
    ]
    for name, entry in document["results"].items():
        if "skipped" in entry:
            lines.append(f"  {name:<24} SKIPPED: {entry['skipped']}")
            continue
        if "workloads" in entry:
            lines.append(
                f"  {name:<24} cpu_count={entry['cpu_count']}  "
                f"best 4-process speedup {entry['best_speedup_4x']:.2f}x  "
                f"checksums {'identical' if entry['checksums_identical'] else 'DRIFTED'}"
            )
            for wname, wl in entry["workloads"].items():
                walls = "  ".join(
                    f"P={p}: {wl['wall_seconds'][p] * 1e3:8.2f} ms"
                    for p in wl["wall_seconds"]
                )
                lines.append(
                    f"    {wname:<22} {walls}  "
                    f"(4x speedup {wl['speedup_4x']:.2f})"
                )
            continue
        parts = [f"{entry['wall_seconds'] * 1e3:9.2f} ms"]
        if entry.get("tasks_per_sec"):
            parts.append(f"{entry['tasks_per_sec']:>12.0f} tasks/s")
        if entry.get("parcels_per_sec"):
            parts.append(f"{entry['parcels_per_sec']:>10.0f} parcels/s")
        if entry.get("virtual_makespan") is not None:
            parts.append(f"makespan {entry['virtual_makespan']:.6g}s")
        lines.append(f"  {name:<24} " + "  ".join(parts))
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the runtime perf-regression suite (wall clock + "
        "virtual-time determinism) and optionally diff against a baseline.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem sizes (CI's perf-smoke job)",
    )
    parser.add_argument(
        "--only", nargs="+", metavar="NAME", choices=sorted(SUITE),
        help="run a subset of the suite",
    )
    parser.add_argument(
        "--repeats", type=int, metavar="N",
        help="repetitions per benchmark (default: 3, quick: 2)",
    )
    parser.add_argument(
        "--output", metavar="FILE", help="write the JSON document here"
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="compare against this committed bench JSON "
        "(plain document or before/after artifact)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="R",
        help="allowed relative wall-time regression vs the baseline "
        "(default 0.25; virtual makespans must always match exactly)",
    )
    args = parser.parse_args(argv)
    document = run_suite(
        quick=args.quick,
        names=args.only,
        repeats=args.repeats,
        report=lambda line: print(line, file=sys.stderr),
    )
    print(format_results(document))
    if args.output:
        write_bench_json(args.output, document)
        print(f"wrote {args.output}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = compare_to_baseline(
            document, baseline, max_regression=args.max_regression
        )
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
