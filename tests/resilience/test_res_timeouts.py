"""Virtual-time timeouts on futures, when_all and channels."""

import pytest

from repro.errors import (
    ChannelTimeoutError,
    FutureError,
    FutureTimeoutError,
    ReproError,
    RuntimeStateError,
    TimeoutError,
)
from repro.runtime import Channel, async_, async_after, when_all
from repro.runtime.futures import Promise, make_ready_future


def test_timeout_errors_sit_under_repro_error():
    assert issubclass(TimeoutError, ReproError)
    assert issubclass(FutureTimeoutError, TimeoutError)
    assert issubclass(ChannelTimeoutError, TimeoutError)


# Future.wait_for / get(timeout=) ----------------------------------------------

def test_negative_timeout_rejected():
    with pytest.raises(FutureError):
        make_ready_future(1).wait_for(-1.0)


def test_ready_future_passes_any_timeout():
    make_ready_future(1).wait_for(0.0)  # zero timeout on ready: fine


def test_zero_timeout_on_pending_times_out(rt):
    def main():
        pending = Promise().get_future()
        with pytest.raises(FutureTimeoutError):
            pending.wait_for(0.0)
        return True

    assert rt.run(main)


def test_wait_for_succeeds_when_value_lands_in_window(rt):
    def main():
        future = async_after(1e-4, lambda: 42)
        future.wait_for(1e-3)
        return future.get()

    assert rt.run(main) == 42


def test_fire_exactly_at_deadline_counts_as_ready(rt):
    def main():
        future = async_after(1e-4, lambda: "on time")
        future.wait_for(1e-4)  # ready_time == deadline
        return future.get()

    assert rt.run(main) == "on time"


def test_wait_for_times_out_before_value(rt):
    def main():
        future = async_after(1e-3, lambda: "late")
        with pytest.raises(FutureTimeoutError):
            future.wait_for(1e-4)
        # The value is NOT consumed by the timeout: a later full wait works.
        return future.get()

    assert rt.run(main) == "late"


def test_get_with_timeout_mirrors_wait_for(rt):
    def main():
        good = async_after(1e-5, lambda: 7).get(timeout=1e-3)
        with pytest.raises(FutureTimeoutError):
            async_after(1e-3, lambda: 8).get(timeout=1e-5)
        return good

    assert rt.run(main) == 7


def test_timeout_advances_the_waiters_clock(rt):
    """A timed-out waiter observed the whole window: its later work starts
    no earlier than the deadline."""

    def main():
        from repro.runtime import context as ctx

        pending = Promise().get_future()
        with pytest.raises(FutureTimeoutError):
            pending.wait_for(5e-4)
        return ctx.current_task().current_virtual_time()

    assert rt.run(main) >= 5e-4


# when_all(timeout=) -----------------------------------------------------------

def test_when_all_completes_within_timeout(rt):
    def main():
        futs = [async_(lambda i=i: i) for i in range(4)]
        ready = when_all(futs, timeout=1.0).get()
        return sorted(f.get() for f in ready)

    assert rt.run(main) == [0, 1, 2, 3]


def test_when_all_timeout_fires_on_straggler(rt):
    def main():
        fast = async_(lambda: 1)
        never = Promise().get_future()
        with pytest.raises(FutureTimeoutError, match="1 of 2"):
            when_all([fast, never], timeout=1e-4).get()
        return True

    assert rt.run(main)


def test_when_all_empty_ignores_timeout(rt):
    def main():
        return when_all([], timeout=0.0).get()

    assert rt.run(main) == []


def test_when_all_timeout_needs_a_pool():
    with pytest.raises(RuntimeStateError):
        when_all([Promise().get_future()], timeout=1.0)


# Channel.get(timeout=) --------------------------------------------------------

def test_channel_buffered_value_beats_timeout(rt):
    def main():
        channel = Channel("c")
        channel.set(5)
        return channel.get(timeout=0.0).get()

    assert rt.run(main) == 5


def test_channel_times_out_when_empty(rt):
    def main():
        channel = Channel("c")
        with pytest.raises(ChannelTimeoutError):
            channel.get(timeout=1e-4).get()
        # The timed-out waiter is gone: a later set pairs with a later get.
        channel.set("later")
        return channel.get_sync()

    assert rt.run(main) == "later"


def test_channel_value_arriving_in_window(rt):
    def main():
        channel = Channel("c")
        async_after(1e-4, lambda: channel.set("made it"))
        return channel.get_sync(timeout=1e-2)

    assert rt.run(main) == "made it"


def test_channel_negative_timeout_rejected(rt):
    def main():
        with pytest.raises(RuntimeStateError):
            Channel("c").get(timeout=-1.0)
        return True

    assert rt.run(main)


def test_channel_timeout_needs_a_pool():
    with pytest.raises(RuntimeStateError):
        Channel("c").get(timeout=1.0)
