"""SIMD instruction-set descriptors.

An :class:`Isa` answers one question -- how many lanes does a register
hold for a given element type -- and records the facts the instruction
cost model needs (pipelines, FMA).  The key design point reproduced from
the paper: AVX2/NEON widths are compile-time constants, while **SVE is
vector-length agnostic** -- the silicon decides.  GCC's
``-msve-vector-bits=N`` freezes the width so SVE types can live inside
ordinary containers (the paper's reason for choosing GCC); :func:`sve`
models exactly that choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimdError

__all__ = ["Isa", "FixedIsa", "SveIsa", "ScalarIsa", "AVX2", "NEON", "isa_for", "sve"]

_SUPPORTED_DTYPES = (np.float32, np.float64)


def _elem_bits(dtype: np.dtype) -> int:
    dt = np.dtype(dtype)
    if dt.type not in _SUPPORTED_DTYPES:
        raise SimdError(f"unsupported element type {dt}; use float32/float64")
    return dt.itemsize * 8


@dataclass(frozen=True)
class Isa:
    """Base descriptor: a named SIMD ISA with a register width in bits."""

    name: str
    register_bits: int
    pipelines: int = 1
    has_fma: bool = True

    def __post_init__(self) -> None:
        if self.register_bits not in (32, 64, 128, 256, 512, 1024, 2048):
            raise SimdError(f"{self.name}: invalid register width {self.register_bits}")
        if self.pipelines < 1:
            raise SimdError(f"{self.name}: pipelines must be >= 1")

    def lanes(self, dtype: np.dtype) -> int:
        """Lane count for ``dtype`` elements."""
        bits = _elem_bits(dtype)
        if self.register_bits < bits:
            raise SimdError(
                f"{self.name}: {bits}-bit elements do not fit a "
                f"{self.register_bits}-bit register"
            )
        return self.register_bits // bits

    @property
    def is_scalar(self) -> bool:
        return False


@dataclass(frozen=True)
class FixedIsa(Isa):
    """Compile-time fixed-width ISA (AVX2, NEON): sizes known statically."""


@dataclass(frozen=True)
class SveIsa(Isa):
    """Arm SVE with a frozen vector length.

    Hardware supports any multiple of 128 bits up to 2048; the paper pins
    512 (the A64FX width) via ``-msve-vector-bits=512`` so packs can be
    wrapped in containers.  Constructing this type *is* that compile-time
    freeze -- the ``portable`` flag records what was given up.
    """

    #: A frozen-width SVE binary only runs on silicon with that exact
    #: vector length; the ``__sizeless_struct`` route would be portable
    #: but cannot live inside containers (paper Sec. VIII).
    portable: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.register_bits % 128 != 0 or not 128 <= self.register_bits <= 2048:
            raise SimdError(
                f"SVE vector length must be a multiple of 128 in [128, 2048], "
                f"got {self.register_bits}"
            )


@dataclass(frozen=True)
class ScalarIsa(Isa):
    """Degenerate one-lane ISA: the auto-vectorization *source* semantics."""

    def lanes(self, dtype: np.dtype) -> int:
        _elem_bits(dtype)  # validate dtype
        return 1

    @property
    def is_scalar(self) -> bool:
        return True


#: Intel AVX2: 256-bit, dual pipe on Haswell.
AVX2 = FixedIsa("avx2", 256, pipelines=2)
#: Arm NEON/ASIMD: 128-bit. Pipeline count varies by core (Table I).
NEON = FixedIsa("neon", 128, pipelines=1)
#: Plain scalar execution.
SCALAR = ScalarIsa("scalar", 64, pipelines=1)


def sve(vector_bits: int = 512, pipelines: int = 2) -> SveIsa:
    """Create an SVE descriptor frozen at ``vector_bits`` (GCC-style)."""
    return SveIsa("sve", vector_bits, pipelines=pipelines)


def isa_for(name: str, vector_bits: int | None = None, pipelines: int | None = None) -> Isa:
    """Look up an ISA by registry name (``avx2``, ``neon``, ``sve``, ``scalar``)."""
    if name == "avx2":
        return AVX2 if pipelines in (None, 2) else FixedIsa("avx2", 256, pipelines=pipelines)
    if name == "neon":
        return NEON if pipelines in (None, 1) else FixedIsa("neon", 128, pipelines=pipelines)
    if name == "sve":
        return sve(vector_bits or 512, pipelines or 2)
    if name == "scalar":
        return SCALAR
    raise SimdError(f"unknown ISA {name!r}")
