"""Deterministic-replay mode switch for schedule exploration.

The schedule explorer (:mod:`repro.analysis.explore`) re-runs the same
job under many interleavings and replays recorded ones bit-identically.
Object reuse is the enemy of that: the thread-shell, parcel-shell and
execution-frame pools (PR 7) recycle objects whose *identity* leaks into
probe-side bookkeeping, and the parcel batcher coalesces sends whose
grouping depends on flush timing.  Under exploration every one of those
must be off.

Rather than sprinkling more ``instrument.enabled`` special cases through
the hot paths, this module is the single guard: the explorer (or any
client via ``Config(runtime__deterministic_replay=True)``) brackets a
run with :func:`enable`/:func:`disable` and every pooling/batching site
checks the one module-level boolean :data:`deterministic`.

``enable``/``disable`` nest (the explorer runs schedules in a loop and
a replayed schedule may itself build nested runtimes), so the flag only
drops when the outermost bracket exits.
"""

from __future__ import annotations

__all__ = ["deterministic", "enable", "disable"]

#: True while at least one deterministic-replay bracket is open.  Hot
#: call sites read this module attribute directly -- same pattern as
#: :data:`repro.runtime.instrument.enabled`.
deterministic: bool = False

_depth: int = 0


def enable() -> None:
    """Enter deterministic-replay mode (nests)."""
    global deterministic, _depth
    _depth += 1
    deterministic = True


def disable() -> None:
    """Leave deterministic-replay mode (outermost exit clears the flag)."""
    global deterministic, _depth
    if _depth > 0:
        _depth -= 1
    deterministic = _depth > 0
