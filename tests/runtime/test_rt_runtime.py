"""Integration tests for the Runtime: boot, run, components, parcels."""

import pytest

from repro.config import Config
from repro.errors import RuntimeStateError
from repro.runtime import Runtime, async_, when_all
from repro.runtime.agas import Component


def double(x):
    return 2 * x


def fail_remotely():
    raise RuntimeError("remote boom")


class Accumulator(Component):
    def __init__(self):
        super().__init__()
        self.total = 0

    def add(self, value):
        self.total += value
        return self.total

    def read(self):
        return self.total


def test_run_returns_value():
    with Runtime(workers_per_locality=2) as rt:
        assert rt.run(lambda: 123) == 123


def test_run_without_start_rejected():
    rt = Runtime()
    with pytest.raises(RuntimeStateError):
        rt.run(lambda: 1)


def test_double_start_rejected():
    rt = Runtime().start()
    try:
        with pytest.raises(RuntimeStateError):
            rt.start()
    finally:
        rt.stop()


def test_stop_without_start_rejected():
    with pytest.raises(RuntimeStateError):
        Runtime().stop()


def test_context_manager_cleans_up_on_error():
    with pytest.raises(ValueError):
        with Runtime() as rt:
            rt.run(lambda: 1)
            raise ValueError("user error")
    # A fresh runtime must boot fine afterwards (context stack intact).
    with Runtime() as rt:
        assert rt.run(lambda: 2) == 2


def test_machine_by_name_sets_workers():
    with Runtime(machine="xeon-e5-2660v3") as rt:
        assert rt.workers_per_locality == 20


def test_worker_count_validation():
    with pytest.raises(RuntimeStateError):
        Runtime(n_localities=0)
    with pytest.raises(RuntimeStateError):
        Runtime(workers_per_locality=0)
    with pytest.raises(RuntimeStateError):
        Runtime(machine="xeon-e5-2660v3", workers_per_locality=100)


def test_here_and_localities():
    with Runtime(n_localities=3, workers_per_locality=1) as rt:
        assert len(rt.find_all_localities()) == 3
        assert rt.run(lambda: rt.here().locality_id) == 0
        with pytest.raises(RuntimeStateError):
            rt.locality(3)


def test_async_at_remote_locality():
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=2) as rt:
        def main():
            return rt.async_at(1, double, 21).get()

        assert rt.run(main) == 42
        assert rt.parcelport.parcels_sent >= 1


def test_async_at_local_locality_loopback():
    with Runtime(n_localities=1, workers_per_locality=2) as rt:
        def main():
            return rt.async_at(0, double, 5).get()

        assert rt.run(main) == 10


def test_remote_exception_propagates():
    with Runtime(machine="a64fx", n_localities=2, workers_per_locality=2) as rt:
        def main():
            return rt.async_at(1, fail_remotely).get()

        with pytest.raises(RuntimeError, match="remote boom"):
            rt.run(main)


def test_registered_action_by_name():
    from repro.runtime.actions import action

    @action(name="test.triple")
    def triple(x):
        return 3 * x

    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        def main():
            return rt.async_at(1, "test.triple", 4).get()

        assert rt.run(main) == 12


def test_component_invoke():
    with Runtime(n_localities=2, workers_per_locality=2) as rt:
        acc = Accumulator()
        gid = rt.new_component(acc, locality_id=1)

        def main():
            rt.invoke(gid, "add", 10)
            rt.invoke(gid, "add", 5)
            return rt.invoke(gid, "read")

        assert rt.run(main) == 15


def test_component_migration_reroutes_parcels():
    with Runtime(n_localities=3, workers_per_locality=1) as rt:
        acc = Accumulator()
        gid = rt.new_component(acc, locality_id=0)

        def main():
            rt.invoke(gid, "add", 1)
            rt.agas.migrate(gid, 2)
            rt.invoke(gid, "add", 2)  # resolved to the new home
            return rt.invoke(gid, "read")

        assert rt.run(main) == 3
        assert rt.agas.home_of(gid) == 2


def test_new_component_requires_component():
    with Runtime() as rt:
        with pytest.raises(RuntimeStateError):
            rt.new_component(object())


def test_network_time_is_modelled():
    """Cross-locality calls must cost virtual network time; local ones not."""
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1) as rt:
        def main():
            return rt.async_at(1, double, 1).get()

        rt.run(main)
        # Round trip over IB: at least 2 x 2 us of virtual time.
        assert rt.makespan >= 2 * 2.0e-6


def test_kunpeng_charges_sender_for_transfers():
    """overlap=False (Kunpeng) bills the sending task for the wire time."""
    with Runtime(machine="kunpeng916", n_localities=2, workers_per_locality=1) as rt:
        def main():
            return rt.async_at(1, double, 1).get()

        rt.run(main)
        kunpeng_time = rt.makespan
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1) as rt:
        def main():
            return rt.async_at(1, double, 1).get()

        rt.run(main)
        xeon_time = rt.makespan
    assert kunpeng_time > 100 * xeon_time


def test_serialize_disabled_still_works():
    cfg = Config(**{"parcel__serialize": False})
    with Runtime(n_localities=2, workers_per_locality=1, config=cfg) as rt:
        def main():
            return rt.async_at(1, double, 8).get()

        assert rt.run(main) == 16


def test_fan_out_across_localities():
    with Runtime(machine="a64fx", n_localities=4, workers_per_locality=2) as rt:
        def main():
            futures = [rt.async_at(i, double, i) for i in range(4)]
            return [f.get() for f in when_all(futures).get()]

        assert rt.run(main) == [0, 2, 4, 6]


def test_progress_all_quiesces():
    with Runtime(workers_per_locality=2) as rt:
        def main():
            for i in range(10):
                async_(double, i)  # fire and forget
            return "done"

        rt.run(main)
        rt.progress_all()
        assert all(not loc.pool.pending() for loc in rt.localities)
