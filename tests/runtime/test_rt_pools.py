"""Object pools: recycled HpxThread/parcel shells must never leak state.

The hot paths recycle three kinds of shells -- HPX-thread objects
(``ThreadPool._shell_pool``), parcel objects (``Runtime._parcel_pool``)
and execution-context frames (``ThreadPool._frame_pool``).  Recycling is
only admissible if a reused shell is indistinguishable from a freshly
constructed one: fresh ids, fresh promises, no payloads or annexes from
the previous life.  These tests pin that, plus the safety gates (no
parcel pooling under fault injection or overload control, no thread
shells parked while instrumentation is live, failed tasks never
recycled).
"""

import pytest

from repro.errors import RuntimeStateError
from repro.resilience import FaultInjector
from repro.runtime import par, transform
from repro.runtime.runtime import Runtime
from repro.runtime.threads.hpx_thread import _NO_KWARGS
from repro.config import Config


def _remote_double(x):
    return 2 * x


# HPX-thread shells ------------------------------------------------------------


def test_thread_shells_park_cleared_and_reuse_with_fresh_identity():
    with Runtime(n_localities=1, workers_per_locality=2) as rt:
        pool = rt.localities[0].pool
        first = rt.run(lambda: transform(par, range(40), lambda x: x + 1))
        assert first == list(range(1, 41))
        assert pool._shell_pool, "completed tasks must be parked for reuse"
        # Parked shells hold no user state: body, args and kwargs are all
        # swapped for inert shared sentinels.
        for shell in pool._shell_pool:
            assert shell.args == ()
            assert shell.kwargs is _NO_KWARGS
            assert shell.fn() is None  # the parked placeholder body

        probe = pool._shell_pool[-1]  # next submit pops this exact shell
        old_tid, old_promise = probe.tid, probe._promise
        second = rt.run(lambda: transform(par, range(40), lambda x: x * 3))
        assert second == [x * 3 for x in range(40)]
        # The recycled shell came back with a brand-new identity: a fresh
        # tid and a fresh promise (the old promise's shared state may
        # still be in user hands).
        assert probe.tid != old_tid
        assert probe._promise is not old_promise


def test_thread_shell_reinit_still_validates_the_body():
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        pool = rt.localities[0].pool
        rt.run(lambda: transform(par, range(8), lambda x: x))
        assert pool._shell_pool  # the pooled-submit path is live
        with pytest.raises(RuntimeStateError, match="callable"):
            pool.submit("not callable")


def test_failed_tasks_are_never_recycled():
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        pool = rt.localities[0].pool

        def boom():
            raise ValueError("kept for the postmortem")

        def main():
            future = pool.submit(boom)
            try:
                future.get()
            except ValueError:
                pass

        rt.run(main)
        assert pool.failures
        failed_task = pool.failures[-1][0]
        assert failed_task not in pool._shell_pool
        # The failure record still knows what it was.
        assert failed_task.description == "boom"


def test_frame_pool_parks_cleared_frames():
    with Runtime(n_localities=1, workers_per_locality=2) as rt:
        pool = rt.localities[0].pool
        rt.run(lambda: transform(par, range(16), lambda x: x))
        assert pool._frame_pool
        for frame in pool._frame_pool:
            assert frame.task is None
            assert frame.extras is None


# Parcel shells ----------------------------------------------------------------


def test_parcel_shells_park_cleared_and_reuse_with_fresh_identity():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        assert rt._parcel_pool == []  # pooling enabled, nothing parked yet

        def main():
            futures = [rt.async_at(1, _remote_double, i) for i in range(12)]
            return [f.get() for f in futures]

        assert rt.run(main) == [2 * i for i in range(12)]
        shells = rt._parcel_pool
        assert shells, "handled parcels must be parked for reuse"
        # Parked shells hold no payload, no by-ref body, no reply hook.
        for shell in shells:
            assert shell.payload == b""
            assert shell.by_ref_body is None
            assert shell.reply_promise is None

        probe = shells[-1]  # the next send pops this exact shell
        old_id = probe.parcel_id
        assert rt.run(main) == [2 * i for i in range(12)]
        # Reuse re-keyed it: dedupe tables and fault sequences never see
        # a recycled shell under its previous parcel id.
        assert probe.parcel_id != old_id


def test_parcel_pool_disabled_under_fault_injection():
    with Runtime(
        n_localities=2,
        workers_per_locality=1,
        fault_injector=FaultInjector(seed=3, drop_rate=0.2),
    ) as rt:
        assert rt._parcel_pool is None

        def main():
            return rt.async_at(1, _remote_double, 21).get()

        assert rt.run(main) == 42  # retries still work, just unpooled


def test_parcel_pool_disabled_under_overload_control():
    with Runtime(
        n_localities=2,
        workers_per_locality=1,
        config=Config(overload__enabled=True),
    ) as rt:
        assert rt._parcel_pool is None

        def main():
            return rt.async_at(1, _remote_double, 21).get()

        assert rt.run(main) == 42
