"""Property: encode-once byte accounting == encode-per-attempt.

PR5 changed the parcel layer to serialize a body exactly once and carry
``(wire bytes, size)`` together on the parcel; every transmission
attempt then charges the precomputed size.  The old code re-derived the
size per attempt (a second pickle pass through ``serialized_size``).
The two accountings must agree for *any* picklable body and any number
of attempts -- otherwise the optimisation changed the cost model, not
just the speed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.parcel.parcel import Parcel
from repro.runtime.parcel.parcelport import LoopbackParcelport
from repro.runtime.parcel.serialization import serialize, serialized_size

# Arbitrary picklable parcel-body material: nested JSON-ish structures.
_payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4)
    | st.tuples(children, children),
    max_leaves=12,
)


@settings(max_examples=60, deadline=None)
@given(body=_payloads, attempts=st.integers(min_value=1, max_value=6))
def test_encode_once_matches_encode_per_attempt(body, attempts):
    data = serialize(body)
    parcel = Parcel(source_locality=0, payload=data, target_locality=1)

    # The parcel's precomputed size is the honest wire size plus the
    # modelled header, and measuring the carried bytes is free (no
    # second pickle pass).
    assert parcel.size_bytes == len(data) + 64
    assert serialized_size(data) == len(data)

    # What the old per-attempt accounting would have charged: re-encode
    # the body for every transmission and sum the sizes.
    per_attempt_total = sum(
        serialized_size(serialize(body)) + 64 for _ in range(attempts)
    )

    # What the port actually charges with encode-once accounting.
    port = LoopbackParcelport()
    port.install_router(lambda p, arrival: None)
    port.send(parcel)
    for _ in range(attempts - 1):
        port.retransmit(parcel)
    assert port.bytes_sent == attempts * parcel.size_bytes == per_attempt_total


@settings(max_examples=60, deadline=None)
@given(body=_payloads)
def test_serialized_size_reuses_carried_bytes(body):
    """``serialized_size`` measures already-encoded payloads directly."""
    data = serialize(body)
    assert serialized_size(data) == len(data)
    assert serialized_size(bytearray(data)) == len(data)
    # Unencoded payloads still take the slow path and agree with a real
    # encode.  (Raw bytes/bytearray bodies are excluded: by the
    # documented contract they *are* the wire bytes and are measured
    # directly, never re-encoded.)
    if not isinstance(body, (bytes, bytearray)):
        assert serialized_size(body) == len(serialize(body))
