"""Port-level tests for reliable delivery: retries, dead letters, stats."""

import pytest

from repro.errors import ParcelDeadLetterError
from repro.resilience import FaultInjector, RetryPolicy
from repro.runtime.futures import Promise
from repro.runtime.parcel import LoopbackParcelport, Parcel


def _parcel(payload=b"x" * 32):
    return Parcel(source_locality=0, payload=payload, target_locality=1)


def _port(injector=None, policy=None, scheduler=None):
    """A loopback port with a recording router and optional fault gear."""
    port = LoopbackParcelport()
    delivered = []
    port.install_router(lambda parcel, arrival: delivered.append((parcel, arrival)))
    port.fault_injector = injector
    port.retry_policy = policy
    if scheduler is not None:
        port.install_retry_scheduler(scheduler)
    return port, delivered


# Statistics correctness (regression) ------------------------------------------

def test_raising_router_leaves_no_phantom_stats():
    """Stats must move only after the router accepted the parcel: a router
    that raises (e.g. an unresolvable GID) must not inflate the counters."""
    port = LoopbackParcelport()

    def bad_router(parcel, arrival):
        raise RuntimeError("router rejected the parcel")

    port.install_router(bad_router)
    with pytest.raises(RuntimeError):
        port.send(_parcel())
    assert port.parcels_sent == 0
    assert port.bytes_sent == 0


def test_clean_send_counts_once():
    port, delivered = _port()
    parcel = _parcel()
    port.send(parcel)
    assert port.parcels_sent == 1
    assert port.bytes_sent == parcel.size_bytes
    assert len(delivered) == 1


# Fault fates at the port ------------------------------------------------------

def test_dropped_parcel_never_reaches_router_but_counts_as_sent():
    port, delivered = _port(injector=FaultInjector(seed=0, drop_rate=1.0))
    parcel = _parcel()
    port.send(parcel)
    assert delivered == []
    assert port.parcels_sent == 1  # it left the NIC
    assert port.parcels_dropped == 1
    assert port.parcels_dead_lettered == 1  # no retry policy installed


def test_corrupt_counts_separately_from_drop():
    port, delivered = _port(injector=FaultInjector(seed=0, corrupt_rate=1.0))
    port.send(_parcel())
    assert delivered == []
    assert port.parcels_corrupted == 1
    assert port.parcels_dropped == 0
    assert port.dead_letters[0][1] == "corrupted in flight"


def test_duplicate_delivers_twice_and_counts_twice():
    port, delivered = _port(injector=FaultInjector(seed=0, duplicate_rate=1.0))
    parcel = _parcel()
    port.send(parcel)
    assert len(delivered) == 2
    assert port.parcels_sent == 2
    assert port.bytes_sent == 2 * parcel.size_bytes
    assert port.parcels_duplicated == 1
    assert delivered[0][1] <= delivered[1][1]  # copies arrive in order


def test_delay_spike_pushes_arrival_later():
    inj = FaultInjector(seed=0, delay_rate=1.0, delay_spike_s=1e-4)
    port, delivered = _port(injector=inj)
    parcel = _parcel()
    nominal = parcel.send_time
    port.send(parcel)
    assert port.parcels_delayed == 1
    assert delivered[0][1] > nominal


# Retry and dead-letter machinery ----------------------------------------------

def test_loss_schedules_retry_with_backoff():
    scheduled = []
    policy = RetryPolicy(max_attempts=4, base_timeout_s=1e-5, max_timeout_s=1e-3)
    port, _ = _port(
        injector=FaultInjector(seed=0, drop_rate=1.0),
        policy=policy,
        scheduler=lambda parcel, at: scheduled.append((parcel, at)),
    )
    parcel = _parcel()
    port.send(parcel)
    assert port.parcels_retried == 1
    assert scheduled[0][1] == pytest.approx(parcel.send_time + 1e-5)
    # The runtime's retry task would call retransmit; emulate it.
    port.retransmit(parcel)
    assert parcel.attempts == 2
    assert scheduled[1][1] == pytest.approx(parcel.send_time + 2e-5)


def test_attempts_exhausted_dead_letters_and_fails_reply_promise():
    scheduled = []
    policy = RetryPolicy(max_attempts=3, base_timeout_s=1e-5, max_timeout_s=1e-3)
    port, _ = _port(
        injector=FaultInjector(seed=0, drop_rate=1.0),
        policy=policy,
        scheduler=lambda parcel, at: scheduled.append(parcel),
    )
    parcel = _parcel()
    parcel.reply_promise = Promise()
    port.send(parcel)
    port.retransmit(parcel)
    port.retransmit(parcel)  # third and last transmission
    assert parcel.attempts == 3
    assert port.parcels_retried == 2
    assert port.parcels_dead_lettered == 1
    assert len(port.dead_letters) == 1
    with pytest.raises(ParcelDeadLetterError):
        parcel.reply_promise.get_future().get()


def test_retry_disabled_dead_letters_on_first_loss():
    policy = RetryPolicy(enabled=False)
    port, _ = _port(
        injector=FaultInjector(seed=0, drop_rate=1.0),
        policy=policy,
        scheduler=lambda parcel, at: pytest.fail("must not schedule retries"),
    )
    port.send(_parcel())
    assert port.parcels_retried == 0
    assert port.parcels_dead_lettered == 1


def test_report_loss_feeds_same_machinery():
    scheduled = []
    port, _ = _port(
        policy=RetryPolicy(max_attempts=2),
        scheduler=lambda parcel, at: scheduled.append(parcel),
    )
    parcel = _parcel()
    parcel.attempts = 1  # it was transmitted, then the destination died
    port.report_loss(parcel, "locality 1 down")
    assert port.parcels_dropped == 1
    assert scheduled == [parcel]


def test_successful_retransmit_after_transient_drop():
    """Seeded so attempt 1 drops and attempt 2 delivers."""
    inj = FaultInjector(seed=1, drop_rate=0.5)
    parcel = _parcel()
    # Find out what this schedule does (pure function, so peeking is free).
    fates = [inj.parcel_fate(parcel, k).kind for k in (1, 2)]
    assert fates == ["drop", "deliver"]

    scheduled = []
    port, delivered = _port(
        injector=FaultInjector(seed=1, drop_rate=0.5),
        policy=RetryPolicy(max_attempts=8),
        scheduler=lambda p, at: scheduled.append(p),
    )
    fresh = Parcel(source_locality=0, payload=b"x" * 32, target_locality=1)
    port.send(fresh)
    assert delivered == [] and len(scheduled) == 1
    port.retransmit(fresh)
    assert len(delivered) == 1
    assert port.parcels_dead_lettered == 0
