"""Unit tests for parallel algorithms and execution policies."""

import operator

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import (
    BlockExecutor,
    PoolExecutor,
    for_each,
    for_loop,
    inclusive_scan,
    par,
    par_simd,
    reduce_,
    seq,
    simd,
    transform,
)
from repro.runtime.algorithms import auto_chunk_size, partition


# Policies ----------------------------------------------------------------------

def test_policy_flags():
    assert not seq.parallel and not seq.vectorize
    assert par.parallel and not par.vectorize
    assert not simd.parallel and simd.vectorize
    assert par_simd.parallel and par_simd.vectorize


def test_policy_on_executor(rt):
    executor = PoolExecutor(rt.localities[0].pool)
    bound = par.on(executor)
    assert bound.executor is executor
    assert par.executor is None  # original is untouched


def test_seq_cannot_take_executor(rt):
    executor = PoolExecutor(rt.localities[0].pool)
    with pytest.raises(RuntimeStateError):
        seq.on(executor)


def test_with_chunk_size():
    assert par.with_chunk_size(16).chunk_size == 16
    with pytest.raises(RuntimeStateError):
        par.with_chunk_size(0)


# Partitioner --------------------------------------------------------------------

def test_auto_chunk_size_targets_chunks_per_worker():
    # 1000 items / (4 workers x 4) = 62.5 -> 63.
    assert auto_chunk_size(1000, 4) == 63


def test_auto_chunk_size_min_chunk():
    assert auto_chunk_size(10, 4, min_chunk=8) == 8
    assert auto_chunk_size(0, 4) == 1


def test_auto_chunk_size_validation():
    with pytest.raises(RuntimeStateError):
        auto_chunk_size(-1, 2)
    with pytest.raises(RuntimeStateError):
        auto_chunk_size(1, 0)
    with pytest.raises(RuntimeStateError):
        auto_chunk_size(1, 1, min_chunk=0)


def test_partition_covers_range_once():
    chunks = partition(3, 20, 6)
    flat = [i for c in chunks for i in c]
    assert flat == list(range(3, 20))
    assert [len(c) for c in chunks] == [6, 6, 5]


def test_partition_empty():
    assert partition(5, 5, 3) == []


def test_partition_validation():
    with pytest.raises(RuntimeStateError):
        partition(0, 10, 0)
    with pytest.raises(RuntimeStateError):
        partition(10, 0, 1)


# for_each / for_loop ----------------------------------------------------------------

def test_for_each_seq_outside_runtime():
    out = []
    for_each(seq, [10, 20, 30], out.append)
    assert out == [10, 20, 30]


def test_for_each_par_outside_runtime_falls_back_to_seq():
    out = []
    for_each(par, range(5), out.append)
    assert out == [0, 1, 2, 3, 4]


def test_for_each_par_in_runtime(rt):
    out = []

    def main():
        for_each(par, range(100), out.append)

    rt.run(main)
    assert sorted(out) == list(range(100))


def test_for_each_empty(rt):
    rt.run(lambda: for_each(par, [], lambda x: 1 / 0))


def test_for_loop_indices(rt):
    out = []

    def main():
        for_loop(par, 5, 15, out.append)

    rt.run(main)
    assert sorted(out) == list(range(5, 15))


def test_for_loop_invalid_range():
    with pytest.raises(RuntimeStateError):
        for_loop(seq, 10, 5, lambda i: None)


def test_for_each_with_block_executor(rt):
    executor = BlockExecutor(rt.localities[0].pool)
    out = []

    def main():
        for_each(par.on(executor), range(20), out.append)

    rt.run(main)
    assert sorted(out) == list(range(20))


# transform / reduce / scan -------------------------------------------------------------

def test_transform_preserves_order(rt):
    def main():
        return transform(par, range(50), lambda x: x * x)

    assert rt.run(main) == [x * x for x in range(50)]


def test_transform_seq():
    assert transform(seq, [1, 2, 3], str) == ["1", "2", "3"]


def test_reduce_matches_sequential(rt):
    data = list(range(1, 101))

    def main():
        return reduce_(par, data, 0, operator.add)

    assert rt.run(main) == sum(data)


def test_reduce_empty():
    assert reduce_(seq, [], 42, operator.add) == 42


def test_reduce_non_commutative_but_associative(rt):
    """String concatenation: associative, order must be preserved."""
    words = [c for c in "parallex"]

    def main():
        return reduce_(par.with_chunk_size(3), words, "", operator.add)

    assert rt.run(main) == "parallex"


def test_inclusive_scan_matches_itertools(rt):
    import itertools

    data = list(range(1, 30))

    def main():
        return inclusive_scan(par.with_chunk_size(4), data, operator.add)

    assert rt.run(main) == list(itertools.accumulate(data))


def test_inclusive_scan_empty():
    assert inclusive_scan(seq, [], operator.add) == []


def test_inclusive_scan_single_chunk():
    assert inclusive_scan(seq, [5, 1, 2], operator.add) == [5, 6, 8]


def test_chunked_for_each_respects_chunk_size(rt):
    """With chunk_size=10 over 100 items, exactly 10 tasks are spawned."""
    pool = rt.localities[0].pool
    before = pool.tasks_executed

    def main():
        for_each(par.with_chunk_size(10), range(100), lambda i: None)

    rt.run(main)
    # main + 10 chunk tasks (when_all adds no tasks of its own).
    assert pool.tasks_executed - before == 11


# seq/par chunking identity (regression) ----------------------------------------
#
# The sequential fall-back in _submit_chunks used to collapse the whole
# index space into a single chunk while the parallel path partitioned it,
# so chunk-sensitive bodies (per-chunk setup cost, chunk-order
# reductions, fused block updates) saw different chunk shapes under seq
# and par.  Both paths now share one chunking rule.

def _record_chunks(rt, policy, n=103):
    from repro.runtime.algorithms import for_each_block

    chunks = []
    rt.run(lambda: for_each_block(policy, 0, n, chunks.append))
    return sorted(chunks, key=lambda rng: rng.start)


def test_seq_and_par_chunking_is_identical(rt):
    seq_chunks = _record_chunks(rt, seq)
    par_chunks = _record_chunks(rt, par)
    assert seq_chunks == par_chunks
    # The shared rule really partitions (the old bug made seq one chunk).
    assert len(seq_chunks) > 1
    covered = [i for rng in seq_chunks for i in rng]
    assert covered == list(range(103))


def test_seq_and_par_chunking_identical_with_explicit_chunk_size(rt):
    seq_chunks = _record_chunks(rt, seq.with_chunk_size(7))
    par_chunks = _record_chunks(rt, par.with_chunk_size(7))
    assert seq_chunks == par_chunks
    assert all(len(rng) <= 7 for rng in seq_chunks)


def test_seq_outside_runtime_chunks_for_one_worker():
    from repro.runtime.algorithms import for_each_block

    chunks = []
    for_each_block(seq, 0, 40, chunks.append)
    expected = partition(0, 40, auto_chunk_size(40, 1))
    assert chunks == expected


# Fused block algorithms ---------------------------------------------------------

def test_for_each_block_matches_for_each(rt):
    from repro.runtime.algorithms import for_each_block

    out_block = [0] * 60
    out_elem = [0] * 60

    def block_body(rng):
        for i in rng:
            out_block[i] = i * i

    def main():
        for_each_block(par, 0, 60, block_body)
        for_each(par, range(60), lambda i: out_elem.__setitem__(i, i * i))

    rt.run(main)
    assert out_block == out_elem == [i * i for i in range(60)]


def test_transform_block_concatenates_in_index_order(rt):
    from repro.runtime.algorithms import transform_block

    def main():
        return transform_block(par, 0, 50, lambda rng: [i * 3 for i in rng])

    assert rt.run(main) == [i * 3 for i in range(50)]


def test_block_algorithms_validate_index_space():
    from repro.runtime.algorithms import for_each_block, transform_block

    with pytest.raises(RuntimeStateError):
        for_each_block(seq, 10, 5, lambda rng: None)
    with pytest.raises(RuntimeStateError):
        transform_block(seq, 10, 5, lambda rng: [])
