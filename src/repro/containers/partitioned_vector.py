"""``hpx::partitioned_vector`` analogue: a distributed NumPy vector.

The vector's elements are split into near-equal contiguous segments, one
AGAS component per segment, distributed block-wise over the job's
localities.  All access goes through the runtime -- element reads/writes
and bulk map/reduce operations become component actions, so remote
segments cost parcels (and virtual network time) exactly like any other
distributed data.

Supports the operations HPX's container algorithms need:

* element access: ``get(i)`` / ``set(i, v)`` (sync),
  ``get_async`` / ``set_async`` (futures),
* bulk: ``fill``, ``map_inplace`` (a registered unary action applied to
  every segment in parallel), ``reduce`` (segment-local fold + ordered
  combine), ``to_array`` (gather),
* introspection: ``segment_of(i)``, ``segments``, ``len``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import ValidationError
from ..runtime.agas.component import Component
from ..runtime.futures import Future, when_all
from ..runtime.runtime import Runtime
from ..runtime.threads.executor import static_chunks

__all__ = ["PartitionedVector", "VectorSegment"]


class VectorSegment(Component):
    """One locality's contiguous slice of the vector."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__()
        self.data = np.array(data, dtype=np.float64, copy=True)

    def get_element(self, local_index: int) -> float:
        self.mark_read("data")
        return float(self.data[local_index])

    def set_element(self, local_index: int, value: float) -> None:
        self.mark_write("data")
        self.data[local_index] = value

    def fill(self, value: float) -> None:
        self.mark_write("data")
        self.data[...] = value

    def apply(self, fn: Callable[[np.ndarray], np.ndarray] | str) -> None:
        """Apply a whole-segment transform (must be shippable)."""
        if isinstance(fn, str):
            from ..runtime.actions import get_action

            fn = get_action(fn)
        self.mark_write("data")
        result = np.asarray(fn(self.data), dtype=np.float64)
        if result.shape != self.data.shape:
            raise ValidationError(
                f"segment transform changed shape {self.data.shape} -> {result.shape}"
            )
        self.data = result

    def local_reduce(self, fn: Callable[[np.ndarray], float] | str) -> float:
        if isinstance(fn, str):
            from ..runtime.actions import get_action

            fn = get_action(fn)
        self.mark_read("data")
        return float(fn(self.data))

    def read_all(self) -> np.ndarray:
        self.mark_read("data")
        return np.array(self.data, copy=True)


class PartitionedVector:
    """A fixed-size distributed vector of float64."""

    def __init__(
        self,
        runtime: Runtime,
        size: int,
        initial: float | np.ndarray = 0.0,
        segments_per_locality: int = 1,
    ) -> None:
        if size < 1:
            raise ValidationError("vector size must be >= 1")
        if segments_per_locality < 1:
            raise ValidationError("segments_per_locality must be >= 1")
        self.runtime = runtime
        self.size = size
        n_segments = min(size, runtime.n_localities * segments_per_locality)
        self._ranges = [r for r in static_chunks(size, n_segments) if r]
        if isinstance(initial, np.ndarray):
            initial = np.asarray(initial, dtype=np.float64)
            if initial.shape != (size,):
                raise ValidationError(
                    f"initial array must have shape ({size},), got {initial.shape}"
                )
        self._gids = []
        self._segments: list[VectorSegment] = []
        for seg_index, rng in enumerate(self._ranges):
            locality = seg_index % runtime.n_localities
            if isinstance(initial, np.ndarray):
                data = initial[rng.start : rng.stop]
            else:
                data = np.full(len(rng), float(initial))
            segment = VectorSegment(data)
            self._gids.append(runtime.new_component(segment, locality_id=locality))
            self._segments.append(segment)

    # Introspection ---------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    @property
    def n_segments(self) -> int:
        return len(self._ranges)

    def segment_of(self, index: int) -> tuple[int, int]:
        """``(segment id, local offset)`` for a global index."""
        if not 0 <= index < self.size:
            raise ValidationError(f"index {index} out of range [0, {self.size})")
        for seg_index, rng in enumerate(self._ranges):
            if rng.start <= index < rng.stop:
                return seg_index, index - rng.start
        raise ValidationError(f"index {index} not covered by any segment")  # pragma: no cover

    def home_of(self, index: int) -> int:
        """Locality currently hosting the element (follows migration)."""
        seg_index, _ = self.segment_of(index)
        return self.runtime.agas.home_of(self._gids[seg_index])

    # Element access -----------------------------------------------------------------
    def get_async(self, index: int) -> Future:
        seg_index, offset = self.segment_of(index)
        return self.runtime.invoke_async(self._gids[seg_index], "get_element", offset)

    def get(self, index: int) -> float:
        return self.get_async(index).get()

    def set_async(self, index: int, value: float) -> Future:
        seg_index, offset = self.segment_of(index)
        return self.runtime.invoke_async(
            self._gids[seg_index], "set_element", offset, float(value)
        )

    def set(self, index: int, value: float) -> None:
        self.set_async(index, value).get()

    # Bulk operations -----------------------------------------------------------------
    def fill(self, value: float) -> None:
        futures = [
            self.runtime.invoke_async(gid, "fill", float(value)) for gid in self._gids
        ]
        for future in when_all(futures).get():
            future.get()  # surface per-segment errors

    def map_inplace(self, fn: Callable[[np.ndarray], np.ndarray] | str) -> None:
        """Apply ``fn`` to every segment in parallel (must be shippable:
        a module-level function or a registered action name)."""
        futures = [self.runtime.invoke_async(gid, "apply", fn) for gid in self._gids]
        for future in when_all(futures).get():
            future.get()  # surface per-segment errors

    def reduce(
        self,
        segment_fn: Callable[[np.ndarray], float] | str,
        combine: Callable[[float, float], float],
        init: float,
    ) -> float:
        """Segment-local fold shipped to the data, combined in segment
        order (associative ``combine`` required for determinism)."""
        futures = [
            self.runtime.invoke_async(gid, "local_reduce", segment_fn)
            for gid in self._gids
        ]
        result = init
        for future in when_all(futures).get():
            result = combine(result, future.get())
        return result

    def to_array(self) -> np.ndarray:
        """Gather all segments into one local array."""
        futures = [self.runtime.invoke_async(gid, "read_all") for gid in self._gids]
        parts = [f.get() for f in when_all(futures).get()]
        return np.concatenate(parts) if parts else np.empty(0)

    def migrate_segment(self, seg_index: int, to_locality: int) -> None:
        """Move one segment's home (load balancing); indices stay valid."""
        if not 0 <= seg_index < self.n_segments:
            raise ValidationError(f"segment {seg_index} out of range")
        self.runtime.agas.migrate(self._gids[seg_index], to_locality)

    # Checkpoint / crash recovery --------------------------------------------------
    def checkpoint_state(self) -> list[dict[str, Any]]:
        """Snapshot every segment, so ``save_checkpoint(vec)`` captures
        the whole vector as one object."""
        return [segment.checkpoint_state() for segment in self._segments]

    def restore_state(self, state: list[dict[str, Any]]) -> None:
        """Restore all segments from a :meth:`checkpoint_state` snapshot."""
        if len(state) != len(self._segments):
            raise ValidationError(
                f"checkpoint has {len(state)} segments, vector has "
                f"{len(self._segments)}"
            )
        for segment, seg_state in zip(self._segments, state):
            segment.restore_state(seg_state)

    def segment_homes(self) -> list[int]:
        """Current home locality of every segment (follows migration --
        after :meth:`~repro.runtime.agas.service.AgasService.evacuate`
        re-homes a crashed locality's segments, this shows where the
        data now lives)."""
        return [self.runtime.agas.home_of(gid) for gid in self._gids]
