"""Exception hierarchy for the :mod:`repro` package.

Mirrors (loosely) the HPX error-code taxonomy: every error raised by the
runtime, the hardware models, or the SIMD layer derives from
:class:`ReproError` so callers can catch library failures without masking
programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RuntimeStateError",
    "FutureError",
    "FutureAlreadySetError",
    "FutureNotReadyError",
    "BrokenPromiseError",
    "ChannelClosedError",
    "TimeoutError",
    "FutureTimeoutError",
    "ChannelTimeoutError",
    "DeadlockError",
    "AgasError",
    "UnknownGidError",
    "MigrationError",
    "ParcelError",
    "SerializationError",
    "ParcelDeadLetterError",
    "ParcelShedError",
    "ResilienceError",
    "ReplayExhaustedError",
    "ReplicateError",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointCorruptionWarning",
    "ServiceError",
    "JournalCorruptError",
    "JobStateError",
    "UnknownJobError",
    "JobShedError",
    "TopologyError",
    "PinningError",
    "SimdError",
    "LaneMismatchError",
    "LayoutError",
    "SimulationError",
    "ConfigError",
    "ValidationError",
    "AnalysisError",
    "DataRaceError",
    "QuiescenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RuntimeStateError(ReproError):
    """The runtime was used in a state where the operation is invalid.

    Examples: scheduling work before :meth:`Runtime.start`, resolving an
    executor after shutdown, or double-starting a locality.
    """


class FutureError(ReproError):
    """Base class for future/promise protocol violations."""


class FutureAlreadySetError(FutureError):
    """A promise or future was given a value (or exception) twice."""


class FutureNotReadyError(FutureError):
    """A non-blocking ``get`` was attempted on a future with no value yet."""


class BrokenPromiseError(FutureError):
    """The producing task died without ever setting its promise."""


class ChannelClosedError(ReproError):
    """A ``set``/``get`` was attempted on a closed channel."""


class TimeoutError(ReproError):  # noqa: A001 - deliberate HPX-style name
    """Base of the timeout subtree: a deadline in *virtual* time passed.

    Deadlines are measured on the simulated clock, so a timeout is a
    deterministic property of the schedule, not of wall-clock load.
    """


class FutureTimeoutError(TimeoutError, FutureError):
    """``Future.wait_for``/``when_all(timeout=...)`` deadline expired."""


class ChannelTimeoutError(TimeoutError):
    """``Channel.get(timeout=...)`` produced no value by the deadline."""


class DeadlockError(ReproError):
    """The cooperative scheduler ran out of runnable work while tasks wait.

    Raised by the scheduler when every remaining task is suspended on an LCO
    that no runnable task can trigger -- the cooperative analogue of a hung
    ``pthread_join``.
    """


class AgasError(ReproError):
    """Base class for Active Global Address Space failures."""


class UnknownGidError(AgasError):
    """A GID could not be resolved to a live object."""


class MigrationError(AgasError):
    """An object migration could not be performed (e.g. pinned object)."""


class ParcelError(ReproError):
    """A parcel could not be delivered or decoded."""


class SerializationError(ParcelError):
    """An argument could not be serialized for remote dispatch."""


class ParcelDeadLetterError(ParcelError):
    """A parcel exhausted its delivery attempts and was dead-lettered.

    Raised on the sender's reply future, and by the progress engine when
    the job stalls with undeliverable parcels in the dead-letter queue.
    """


class ParcelShedError(ParcelDeadLetterError):
    """Admission control rejected the parcel (overload protection).

    Raised on the sender's reply future when the overload controller
    sheds a parcel instead of queueing it -- the destination is over its
    queue-depth limit, its circuit breaker is open, or a deferred
    LOW-priority parcel ran out of deferrals.  Subclasses
    :class:`ParcelDeadLetterError` so existing recovery drivers treat a
    shed like any other dead-lettered parcel.  ``retry_after`` hints how
    many *virtual* seconds the sender should wait before retrying (0.0
    when no estimate is available).
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ResilienceError(ReproError):
    """Base class for task-resiliency (replay/replicate) failures."""


class ReplayExhaustedError(ResilienceError):
    """``async_replay`` ran out of attempts without a valid result."""


class ReplicateError(ResilienceError):
    """``async_replicate`` found no replica result passing validation."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be saved, decoded, or restored."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint failed checksum verification on restore.

    The coordinated-snapshot store reacts by falling back to the newest
    older epoch that still verifies; this error escapes only when *no*
    retained checkpoint is intact.
    """


class CheckpointCorruptionWarning(UserWarning):
    """A retained checkpoint epoch failed verification and was skipped.

    Emitted (warning level) by
    :meth:`~repro.resilience.checkpoint.CheckpointStore.restore_latest_valid`
    when it falls back past a corrupt epoch: recovery still succeeds
    from an older snapshot, but re-computation ground was silently at
    stake, so the skip is surfaced via this warning, the
    ``/checkpoints{total}/count/corrupt-skipped`` perfcounter, and a
    ``checkpoint_corrupt_skipped`` trace event.
    """


class ServiceError(ReproError):
    """Base class for multi-tenant job-service failures."""


class JournalCorruptError(ServiceError):
    """A *non-final* journal record failed framing or checksum checks.

    A torn final record (the crash-mid-append case) is tolerated and
    dropped on replay; corruption anywhere earlier means the store
    cannot be trusted and replay refuses to proceed.
    """


class JobStateError(ServiceError):
    """An illegal job state transition was attempted.

    The job state machine is strict (``pending -> claimed -> running ->
    done | failed | cancelled`` with lease-expiry requeues back to
    ``pending``); in particular a *terminal* job never transitions
    again, which is what makes terminal states exactly-once.
    """


class UnknownJobError(ServiceError):
    """A job id could not be resolved in the store."""


class JobShedError(ServiceError):
    """Admission control rejected a job submission (never silently).

    Raised when the tenant is over quota, the service backlog is at its
    bound, or the tenant's circuit breaker is open.  ``retry_after``
    hints how many seconds the client should wait before resubmitting
    (0.0 when no estimate is available) -- the job-level analogue of
    :class:`ParcelShedError`.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class TopologyError(ReproError):
    """A hardware-topology query or construction was invalid."""


class PinningError(TopologyError):
    """A worker could not be bound to the requested processing unit."""


class SimdError(ReproError):
    """Base class for SIMD layer errors."""


class LaneMismatchError(SimdError):
    """Binary pack operation with differing lane counts."""


class LayoutError(SimdError):
    """Virtual-node-scheme layout transform got an incompatible shape."""


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly."""


class ConfigError(ReproError):
    """Invalid runtime configuration value."""


class ValidationError(ReproError):
    """A numerical validation check failed (stencil verification)."""


class AnalysisError(ReproError):
    """Base class for sanitizer findings (race/deadlock analysis)."""


class DataRaceError(AnalysisError):
    """Two unordered accesses to shared state, at least one a write.

    Raised by the happens-before race detector
    (:class:`repro.analysis.race.RaceDetector`).  ``location`` names the
    racing field; ``current`` and ``previous`` are the two
    :class:`~repro.analysis.race.AccessRecord`\\ s, each carrying the
    access site.
    """

    def __init__(
        self,
        message: str,
        location: str = "",
        current: object = None,
        previous: object = None,
    ) -> None:
        super().__init__(message)
        self.location = location
        self.current = current
        self.previous = previous


class QuiescenceWarning(ReproError, UserWarning):
    """The job drained with demanded futures still unfulfilled.

    Emitted (or escalated to :class:`DeadlockError` under
    ``runtime.quiescence = "raise"``) when a run ends while some
    continuation target -- a dataflow stage, combinator result, or
    channel read -- can never become ready: the silent-hang failure
    mode.
    """
