"""Multiprocess backend: real cross-process parcel roundtrips.

Each test spawns worker processes (one per non-zero locality), so the
runtimes here are kept deliberately tiny -- the point is the transport
semantics, not throughput.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import Config
from repro.runtime.agas.component import Component
from repro.runtime.agas.gid import Gid
from repro.runtime.agas.service import AgasService
from repro.runtime.futures import when_all
from repro.runtime.perfcounters import discover, query
from repro.runtime.runtime import Runtime


def _mp_runtime(n=2, workers=1, **extra):
    config = Config.from_mapping({"runtime.backend": "multiprocess", **extra})
    return Runtime(n_localities=n, workers_per_locality=workers, config=config)


def _double(values):
    return [2 * v for v in values]


def _np_sum(arr):
    return float(np.sum(arr))


def _boom(text):
    raise ValueError(text)


def _pid():
    return os.getpid()


class _Counter(Component):
    def __init__(self):
        super().__init__()
        self.total = 0

    def add(self, amount):
        self.mark_write("total")
        self.total += int(amount)
        return self.total

    def read(self):
        self.mark_read("total")
        return self.total


def test_async_at_roundtrip_plain_and_numpy():
    with _mp_runtime() as rt:
        assert rt.async_at(1, _double, [1, 2, 3]).get() == [2, 4, 6]
        assert rt.async_at(1, _np_sum, np.arange(10.0)).get() == 45.0
    counters = rt.backend.counters()
    assert counters["parcels_forwarded"] >= 2
    assert counters["wire_bytes_sent"] > 0


def test_remote_work_runs_in_another_process():
    with _mp_runtime() as rt:
        remote_pid = rt.async_at(1, _pid).get()
    assert remote_pid != os.getpid()


def test_exceptions_propagate_across_processes():
    with _mp_runtime() as rt:
        future = rt.async_at(1, _boom, "remote failure")
        with pytest.raises(ValueError, match="remote failure"):
            future.get()


def test_component_state_lives_in_home_process():
    with _mp_runtime() as rt:
        gid = rt.new_component(_Counter(), locality_id=1)
        assert rt.invoke_async(gid, "add", 5).get() == 5
        assert rt.invoke_async(gid, "add", 7).get() == 12
        assert rt.invoke_async(gid, "read").get() == 12
    assert rt.backend.counters()["agas_creates"] >= 1


def test_worker_to_worker_invoke_relays_through_driver():
    with _mp_runtime(n=3) as rt:
        gid = rt.new_component(_Counter(), locality_id=2)
        # A handler on locality 1 invoking a component homed at
        # locality 2: the parcel crosses worker->driver->worker.
        total = rt.async_at(1, _invoke_remote_add, gid, 9).get()
        assert total == 9
    assert rt.backend.counters()["parcels_relayed"] >= 1


def test_fire_and_forget_applies_before_shutdown():
    """apply_at work in flight is caught by the termination sync rounds."""
    with _mp_runtime() as rt:
        gid = rt.new_component(_Counter(), locality_id=1)
        for _ in range(4):
            rt.invoke_apply(gid, "add", 1)
        # No reply token exists; quiescence must still wait for the
        # remote applies, so a subsequent read sees all of them.
        assert rt.invoke_async(gid, "read").get() == 4


def test_fanout_over_all_localities():
    with _mp_runtime(n=4) as rt:
        futures = [rt.async_at(i % 4, _double, [i]) for i in range(12)]
        results = [f.get() for f in when_all(futures).get()]
    assert results == [[2 * i] for i in range(12)]


def test_zero_copy_downgrades_to_real_serialization():
    """parcel.zero_copy stays legal: cross-process sends carry real bytes."""
    with _mp_runtime(**{"parcel.zero_copy": True}) as rt:
        arr = np.linspace(0.0, 1.0, 257)
        assert rt.async_at(1, _np_sum, arr).get() == float(np.sum(arr))
    assert rt.backend.counters()["wire_bytes_sent"] > 0


def test_backend_perfcounters_query_and_discover():
    with _mp_runtime() as rt:
        rt.async_at(1, _double, [1]).get()
        assert query(rt, "/backend{total}/count/forwarded") >= 1.0
        assert query(rt, "/backend{total}/count/processes") == 2.0
        assert query(rt, "/backend{total}/data/sent") > 0.0
        paths = discover(rt)
        assert "/backend{total}/count/forwarded" in paths
        assert "/backend{total}/count/remote-tasks" in paths
    # Worker statistics land with the "stopped" handshake at shutdown.
    assert query(rt, "/backend{total}/count/remote-tasks") > 0.0


def test_backend_counters_read_zero_on_virtual():
    with Runtime(n_localities=2) as rt:
        assert query(rt, "/backend{total}/count/forwarded") == 0.0
        assert query(rt, "/backend{total}/count/processes") == 0.0
        assert all(not p.startswith("/backend") for p in discover(rt))


def test_worker_stats_aggregate_to_driver():
    with _mp_runtime(n=3) as rt:
        when_all([rt.async_at(i, _double, [i]) for i in (1, 2)]).get()
    stats = rt.backend.worker_stats()
    assert sorted(stats) == [1, 2]
    for worker_id, entry in stats.items():
        assert entry["locality"] == worker_id
        assert entry["tasks_executed"] > 0
        assert entry["pid"] != os.getpid()


def test_agas_broker_fallback_resolves_and_caches():
    """Unit-level: an unknown GID consults the broker once, then caches."""
    agas = AgasService(2)
    sentinel = object()
    calls = []

    def broker(gid):
        calls.append(gid)
        return (1, sentinel)

    agas.broker = broker
    gid = Gid(msb_locality=1, lsb=7)
    assert agas.resolve(gid) == (1, sentinel)
    assert agas.resolve(gid) == (1, sentinel)
    assert len(calls) == 1  # second hit answered from the cache


def test_agas_register_at_mirrors_fixed_gids():
    agas = AgasService(2)
    obj = object()
    gid = Gid(msb_locality=1, lsb=3)
    agas.register_at(obj, gid, home=1)
    assert agas.resolve(gid) == (1, obj)
    # The local counter advanced past the mirrored allocation, so a
    # fresh local registration cannot collide with it.
    fresh = agas.register(object(), home=1)
    assert fresh.lsb > 3


def _invoke_remote_add(gid, amount):
    from repro.runtime import context as ctx

    return ctx.current().runtime.invoke_async(gid, "add", amount).get()
