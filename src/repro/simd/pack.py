"""The NSIMD ``pack`` value type.

A :class:`Pack` is a small fixed-length vector of float32/float64 lanes
with value semantics: every operation returns a new pack, loads/stores
move lane-count-sized slabs, and the lane count is dictated by an
:class:`~repro.simd.isa.Isa`.  Backed by a NumPy array but deliberately
*not* a NumPy subclass -- like NSIMD, the pack API is the whole surface,
so kernels written against it are portable across ISAs (and testable
against their scalar twins).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from ..errors import LaneMismatchError, SimdError
from .isa import Isa

__all__ = ["Pack"]


class Pack:
    """An immutable SIMD register value."""

    __slots__ = ("_isa", "_data")

    def __init__(self, isa: Isa, data: np.ndarray) -> None:
        lanes = isa.lanes(data.dtype)
        if data.ndim != 1 or data.shape[0] != lanes:
            raise SimdError(
                f"pack for {isa.name}/{data.dtype} needs shape ({lanes},), "
                f"got {data.shape}"
            )
        self._isa = isa
        self._data = np.array(data, copy=True)
        self._data.flags.writeable = False

    # Constructors -----------------------------------------------------------
    @classmethod
    def set1(cls, isa: Isa, value: float, dtype=np.float64) -> "Pack":
        """Broadcast ``value`` to every lane (NSIMD ``set1``)."""
        lanes = isa.lanes(np.dtype(dtype))
        return cls(isa, np.full(lanes, value, dtype=dtype))

    @classmethod
    def zero(cls, isa: Isa, dtype=np.float64) -> "Pack":
        return cls.set1(isa, 0.0, dtype)

    @classmethod
    def iota(cls, isa: Isa, dtype=np.float64) -> "Pack":
        """Lane indices 0..L-1 (NSIMD ``iota``)."""
        lanes = isa.lanes(np.dtype(dtype))
        return cls(isa, np.arange(lanes, dtype=dtype))

    @classmethod
    def load(cls, isa: Isa, buffer: np.ndarray, offset: int = 0) -> "Pack":
        """Load one register's worth of contiguous elements (``loadu``)."""
        lanes = isa.lanes(buffer.dtype)
        if offset < 0 or offset + lanes > buffer.shape[0]:
            raise SimdError(
                f"load of {lanes} lanes at offset {offset} overruns buffer "
                f"of {buffer.shape[0]}"
            )
        return cls(isa, np.asarray(buffer[offset : offset + lanes]))

    def store(self, buffer: np.ndarray, offset: int = 0) -> None:
        """Store all lanes to contiguous memory (``storeu``)."""
        lanes = self.lanes
        if offset < 0 or offset + lanes > buffer.shape[0]:
            raise SimdError(
                f"store of {lanes} lanes at offset {offset} overruns buffer "
                f"of {buffer.shape[0]}"
            )
        if buffer.dtype != self.dtype:
            raise SimdError(f"store dtype mismatch: {buffer.dtype} != {self.dtype}")
        buffer[offset : offset + lanes] = self._data

    # Introspection ------------------------------------------------------------
    @property
    def isa(self) -> Isa:
        return self._isa

    @property
    def lanes(self) -> int:
        return self._data.shape[0]

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def to_array(self) -> np.ndarray:
        """Copy out the lane values."""
        return np.array(self._data, copy=True)

    def __iter__(self) -> Iterator[float]:
        return iter(self._data.tolist())

    def __len__(self) -> int:
        return self.lanes

    def lane(self, i: int) -> float:
        if not 0 <= i < self.lanes:
            raise SimdError(f"lane {i} out of range [0, {self.lanes})")
        return float(self._data[i])

    # Arithmetic ----------------------------------------------------------------
    def _coerce(self, other: "Pack | float | int") -> np.ndarray:
        if isinstance(other, Pack):
            if other.lanes != self.lanes:
                raise LaneMismatchError(
                    f"lane mismatch: {self.lanes} vs {other.lanes}"
                )
            if other.dtype != self.dtype:
                raise SimdError(f"dtype mismatch: {self.dtype} vs {other.dtype}")
            return other._data
        if isinstance(other, (int, float, np.floating)):
            return np.full(self.lanes, other, dtype=self.dtype)
        raise SimdError(f"cannot combine pack with {type(other).__name__}")

    def _binary(self, other: "Pack | float | int", op: Callable) -> "Pack":
        rhs = self._coerce(other)
        return Pack(self._isa, op(self._data, rhs).astype(self.dtype, copy=False))

    def __add__(self, other):  # noqa: D105
        return self._binary(other, np.add)

    __radd__ = __add__

    def __sub__(self, other):  # noqa: D105
        return self._binary(other, np.subtract)

    def __rsub__(self, other):  # noqa: D105
        rhs = self._coerce(other)
        return Pack(self._isa, (rhs - self._data).astype(self.dtype, copy=False))

    def __mul__(self, other):  # noqa: D105
        return self._binary(other, np.multiply)

    __rmul__ = __mul__

    def __truediv__(self, other):  # noqa: D105
        return self._binary(other, np.divide)

    def __neg__(self):  # noqa: D105
        return Pack(self._isa, -self._data)

    def fma(self, b: "Pack | float", c: "Pack | float") -> "Pack":
        """Fused multiply-add: ``self * b + c`` (one instruction on FMA ISAs)."""
        bb = self._coerce(b)
        cc = self._coerce(c)
        return Pack(self._isa, (self._data * bb + cc).astype(self.dtype, copy=False))

    def min(self, other: "Pack | float") -> "Pack":
        return self._binary(other, np.minimum)

    def max(self, other: "Pack | float") -> "Pack":
        return self._binary(other, np.maximum)

    def abs(self) -> "Pack":
        return Pack(self._isa, np.abs(self._data))

    def sqrt(self) -> "Pack":
        return Pack(self._isa, np.sqrt(self._data))

    # Horizontal / permute ---------------------------------------------------
    def hadd(self) -> float:
        """Horizontal sum of all lanes (NSIMD ``addv``)."""
        return float(self._data.sum(dtype=np.float64))

    def shuffle(self, indices: Sequence[int]) -> "Pack":
        """Arbitrary lane permute/gather (``tbl``/``permute``)."""
        idx = list(indices)
        if len(idx) != self.lanes:
            raise LaneMismatchError(
                f"shuffle needs {self.lanes} indices, got {len(idx)}"
            )
        if any(not 0 <= i < self.lanes for i in idx):
            raise SimdError(f"shuffle index out of range in {idx}")
        return Pack(self._isa, self._data[idx])

    def slide_left(self, fill: float = 0.0) -> "Pack":
        """Shift lanes toward index 0; the top lane is ``fill``.

        (``ext``/``palignr`` with a neighbour of constants.)
        """
        out = np.empty_like(self._data)
        out[:-1] = self._data[1:]
        out[-1] = fill
        return Pack(self._isa, out)

    def slide_right(self, fill: float = 0.0) -> "Pack":
        """Shift lanes away from index 0; lane 0 becomes ``fill``."""
        out = np.empty_like(self._data)
        out[1:] = self._data[:-1]
        out[0] = fill
        return Pack(self._isa, out)

    # Comparison -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pack):
            return NotImplemented
        return (
            self.lanes == other.lanes
            and self.dtype == other.dtype
            and bool(np.array_equal(self._data, other._data))
        )

    def __hash__(self) -> int:
        return hash((self.dtype.str, self._data.tobytes()))

    def allclose(self, other: "Pack", rtol: float = 1e-6) -> bool:
        self._coerce(other)
        return bool(np.allclose(self._data, other._data, rtol=rtol))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pack<{self._isa.name},{self.dtype}>({self._data.tolist()})"
