"""Schedule-space explorer throughput: schedules per second.

The explorer re-runs a job once per schedule, so its unit of cost is
the *controlled run* -- boot a fresh runtime, steer every dispatch,
tear down, judge the oracle.  This harness benchmarks that loop on a
small fan-out app whose schedule space is known exactly (4 independent
tasks: 4! = 24 interleavings, one DPOR equivalence class), asserting
the coverage numbers alongside the timing so a correctness regression
cannot hide inside a speed-up.
"""

from repro.analysis.explore import ExploreApp, explore

N_TASKS = 4


def _work(i):
    return i * i


def _build(rt):
    pool = rt.localities[0].pool

    def job():
        futures = [
            pool.submit(_work, i, description=f"w{i}") for i in range(N_TASKS)
        ]
        return sum(f.get() for f in futures)

    return job


APP = ExploreApp(
    name="bench/fanout",
    build=_build,
    n_localities=1,
    workers_per_locality=1,
)

EXPECTED_EXHAUSTIVE = 24  # 4! interleavings of 4 independent tasks


def test_explore_exhaustive_throughput(benchmark):
    report = benchmark(explore, APP, strategy="exhaustive", budget=100)
    assert report.exhausted
    assert report.schedules_run == EXPECTED_EXHAUSTIVE
    assert report.violation is None


def test_explore_dpor_prunes_and_is_cheaper(benchmark):
    """DPOR visits one representative of the single equivalence class."""
    report = benchmark(explore, APP, strategy="dpor", budget=100)
    assert report.exhausted
    assert report.schedules_run < EXPECTED_EXHAUSTIVE
    assert report.violation is None


def test_explore_random_walk_budget(benchmark):
    """Budgeted random walks: fixed 10-schedule spend per call."""
    report = benchmark(explore, APP, strategy="random", budget=10, seed=3)
    assert report.schedules_run == 10
    assert report.violation is None
