"""Performance measurement and modelling.

* :mod:`~repro.perf.timer` -- ``hpx::util::high_resolution_timer``
  analogue (wall and virtual clocks);
* :mod:`~repro.perf.roofline` -- Sec. III-C: arithmetic intensity and
  Eq. (1) ``min(CP, AI x BW)``;
* :mod:`~repro.perf.stream` -- the STREAM benchmark, both on the memory
  model (Fig 2) and as a real NumPy kernel on the host;
* :mod:`~repro.perf.counters` -- the hardware-counter model behind
  Tables III-VI;
* :mod:`~repro.perf.cost` -- the calibrated execution-time model behind
  Figs 3-8.
"""

from .timer import HighResolutionTimer
from .harness import Measurement, run_best, time_call
from .roofline import (
    arithmetic_intensity,
    attainable_performance,
    stencil2d_arithmetic_intensity,
)
from .stream import stream_model, stream_host, StreamResult
from .counters import CounterModel, COUNTER_GRID, COUNTER_STEPS
from .cost import (
    stencil2d_glups,
    stencil2d_time,
    expected_peak_2d,
    stencil1d_time,
    stencil1d_node_glups,
    scaling_factor,
)

__all__ = [
    "HighResolutionTimer",
    "Measurement",
    "run_best",
    "time_call",
    "arithmetic_intensity",
    "attainable_performance",
    "stencil2d_arithmetic_intensity",
    "stream_model",
    "stream_host",
    "StreamResult",
    "CounterModel",
    "COUNTER_GRID",
    "COUNTER_STEPS",
    "stencil2d_glups",
    "stencil2d_time",
    "expected_peak_2d",
    "stencil1d_time",
    "stencil1d_node_glups",
    "scaling_factor",
]
