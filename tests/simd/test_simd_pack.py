"""Unit tests for the Pack value type."""

import numpy as np
import pytest

from repro.errors import LaneMismatchError, SimdError
from repro.simd import AVX2, NEON, Pack, sve


def test_set1_broadcasts():
    p = Pack.set1(AVX2, 3.0, np.float32)
    assert p.lanes == 8
    assert all(v == 3.0 for v in p)


def test_zero_and_iota():
    assert Pack.zero(NEON).to_array().tolist() == [0.0, 0.0]
    assert Pack.iota(NEON, np.float32).to_array().tolist() == [0.0, 1.0, 2.0, 3.0]


def test_load_store_roundtrip():
    buffer = np.arange(16, dtype=np.float64)
    p = Pack.load(AVX2, buffer, offset=4)
    assert p.to_array().tolist() == [4.0, 5.0, 6.0, 7.0]
    out = np.zeros(16, dtype=np.float64)
    p.store(out, offset=8)
    assert out[8:12].tolist() == [4.0, 5.0, 6.0, 7.0]


def test_load_overrun_rejected():
    buffer = np.zeros(5, dtype=np.float64)
    with pytest.raises(SimdError):
        Pack.load(AVX2, buffer, offset=2)
    with pytest.raises(SimdError):
        Pack.load(AVX2, buffer, offset=-1)


def test_store_dtype_mismatch_rejected():
    p = Pack.set1(NEON, 1.0, np.float32)
    with pytest.raises(SimdError):
        p.store(np.zeros(8, dtype=np.float64))


def test_packs_are_immutable():
    p = Pack.set1(NEON, 1.0)
    with pytest.raises(ValueError):
        p._data[0] = 9.0  # the backing array is read-only
    arr = p.to_array()
    arr[0] = 9.0  # copies are writable and do not alias
    assert p.lane(0) == 1.0


def test_arithmetic_elementwise():
    a = Pack.iota(NEON, np.float32)
    b = Pack.set1(NEON, 2.0, np.float32)
    assert (a + b).to_array().tolist() == [2.0, 3.0, 4.0, 5.0]
    assert (a - b).to_array().tolist() == [-2.0, -1.0, 0.0, 1.0]
    assert (a * b).to_array().tolist() == [0.0, 2.0, 4.0, 6.0]
    assert (a / b).to_array().tolist() == [0.0, 0.5, 1.0, 1.5]
    assert (-a).to_array().tolist() == [0.0, -1.0, -2.0, -3.0]


def test_scalar_broadcast_operands():
    a = Pack.iota(NEON, np.float32)
    assert (a + 1).to_array().tolist() == [1.0, 2.0, 3.0, 4.0]
    assert (2 * a).to_array().tolist() == [0.0, 2.0, 4.0, 6.0]
    assert (1 - a).to_array().tolist() == [1.0, 0.0, -1.0, -2.0]


def test_fma():
    a = Pack.set1(NEON, 2.0)
    assert a.fma(3.0, 1.0).to_array().tolist() == [7.0, 7.0]


def test_min_max_abs_sqrt():
    a = Pack(NEON, np.array([-4.0, 9.0]))
    assert a.abs().to_array().tolist() == [4.0, 9.0]
    assert a.min(0.0).to_array().tolist() == [-4.0, 0.0]
    assert a.max(0.0).to_array().tolist() == [0.0, 9.0]
    assert a.abs().sqrt().to_array().tolist() == [2.0, 3.0]


def test_lane_mismatch_rejected():
    a = Pack.set1(AVX2, 1.0, np.float32)  # 8 lanes
    b = Pack.set1(NEON, 1.0, np.float32)  # 4 lanes
    with pytest.raises(LaneMismatchError):
        _ = a + b


def test_dtype_mismatch_rejected():
    a = Pack.set1(NEON, 1.0, np.float32)
    b = Pack.set1(NEON, 1.0, np.float64)  # 2 lanes - also lane mismatch
    with pytest.raises((LaneMismatchError, SimdError)):
        _ = a + b


def test_hadd():
    assert Pack.iota(AVX2, np.float32).hadd() == pytest.approx(28.0)


def test_shuffle():
    a = Pack.iota(NEON, np.float32)
    assert a.shuffle([3, 2, 1, 0]).to_array().tolist() == [3.0, 2.0, 1.0, 0.0]
    with pytest.raises(LaneMismatchError):
        a.shuffle([0, 1])
    with pytest.raises(SimdError):
        a.shuffle([0, 1, 2, 9])


def test_slides():
    a = Pack.iota(NEON, np.float32)
    assert a.slide_left(fill=-1.0).to_array().tolist() == [1.0, 2.0, 3.0, -1.0]
    assert a.slide_right(fill=-1.0).to_array().tolist() == [-1.0, 0.0, 1.0, 2.0]


def test_equality_and_hash():
    a = Pack.set1(NEON, 1.0)
    b = Pack.set1(NEON, 1.0)
    assert a == b
    assert hash(a) == hash(b)
    assert a != Pack.set1(NEON, 2.0)


def test_allclose():
    a = Pack.set1(NEON, 1.0)
    b = Pack.set1(NEON, 1.0 + 1e-9)
    assert a.allclose(b)


def test_wrong_shape_rejected():
    with pytest.raises(SimdError):
        Pack(AVX2, np.zeros((2, 2)))
    with pytest.raises(SimdError):
        Pack(AVX2, np.zeros(3, dtype=np.float64))  # needs 4 lanes


def test_sve_pack_lane_count_follows_frozen_width():
    p = Pack.set1(sve(1024), 1.0, np.float64)
    assert p.lanes == 16


def test_iteration_and_len():
    p = Pack.iota(NEON, np.float32)
    assert len(p) == 4
    assert list(p) == [0.0, 1.0, 2.0, 3.0]
    with pytest.raises(SimdError):
        p.lane(4)
