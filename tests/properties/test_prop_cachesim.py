"""Property-based tests for the cache simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cachesim import CacheSim, jacobi_row_traffic


def geometry():
    return st.tuples(
        st.sampled_from([8, 16, 32, 64]),  # size KiB
        st.sampled_from([32, 64, 128, 256]),  # line bytes
        st.sampled_from([1, 2, 4, 8]),  # ways
    )


@given(geom=geometry(), addresses=st.lists(st.integers(0, 1 << 20), max_size=200))
@settings(max_examples=50)
def test_reads_never_lose_bytes(geom, addresses):
    """Accounting invariants: hits + misses == accesses; read traffic is
    misses x line; no write-backs without writes."""
    kb, line, ways = geom
    cache = CacheSim(kb * 1024, line, ways)
    for address in addresses:
        cache.read(address)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(addresses)
    assert stats.bytes_from_memory == stats.misses * line
    assert stats.bytes_to_memory == 0


@given(geom=geometry(), addresses=st.lists(st.integers(0, 1 << 18), max_size=150))
@settings(max_examples=50)
def test_repeating_a_trace_only_improves_hit_rate(geom, addresses):
    """The second pass over any trace cannot miss more than the first."""
    kb, line, ways = geom
    cache = CacheSim(kb * 1024, line, ways)
    for address in addresses:
        cache.read(address)
    first_misses = cache.stats.misses
    for address in addresses:
        cache.read(address)
    second_misses = cache.stats.misses - first_misses
    assert second_misses <= first_misses


@given(geom=geometry(), data=st.data())
@settings(max_examples=40)
def test_occupancy_never_exceeds_capacity(geom, data):
    kb, line, ways = geom
    cache = CacheSim(kb * 1024, line, ways)
    addresses = data.draw(st.lists(st.integers(0, 1 << 22), max_size=300))
    for address in addresses:
        if data.draw(st.booleans()):
            cache.read(address)
        else:
            cache.write(address)
    assert cache.resident_lines <= cache.n_sets * ways


@given(
    ny=st.integers(4, 12),
    nx=st.sampled_from([64, 128, 256]),
    elem=st.sampled_from([4, 8]),
)
@settings(max_examples=20, deadline=None)
def test_stencil_traffic_within_physical_bounds(ny, nx, elem):
    """Bytes/LUP can never beat the compulsory write-back (one element)
    nor exceed the all-miss worst case (5 accesses x line)."""
    cache = CacheSim(32 * 1024, 64, 8)
    traffic = jacobi_row_traffic(cache, ny, nx, elem_bytes=elem, sweeps=1)
    assert traffic >= 0.0
    assert traffic <= 5 * 64  # every access a full-line miss


@given(
    ny=st.integers(4, 10),
    nx=st.sampled_from([64, 128]),
)
@settings(max_examples=15, deadline=None)
def test_simulator_is_deterministic(ny, nx):
    runs = []
    for _ in range(2):
        cache = CacheSim(16 * 1024, 64, 4)
        runs.append(jacobi_row_traffic(cache, ny, nx, sweeps=2))
    assert runs[0] == runs[1]
