"""Failure injection: errors must surface, never hang or vanish."""

import numpy as np
import pytest

from repro.errors import (
    ChannelClosedError,
    DeadlockError,
    SerializationError,
    ValidationError,
)
from repro.runtime import Channel, Runtime, async_, dataflow, when_all
from repro.runtime.agas import Component
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile


class FaultyComponent(Component):
    def __init__(self, fail_on_call: int) -> None:
        super().__init__()
        self.calls = 0
        self.fail_on_call = fail_on_call

    def work(self) -> int:
        self.calls += 1
        if self.calls == self.fail_on_call:
            raise RuntimeError(f"injected failure on call {self.calls}")
        return self.calls


def failing_action():
    raise OSError("remote disk on fire")


def test_remote_component_exception_reaches_caller():
    with Runtime(machine="a64fx", n_localities=2, workers_per_locality=1) as rt:
        comp = FaultyComponent(fail_on_call=2)
        gid = rt.new_component(comp, locality_id=1)

        def main():
            assert rt.invoke(gid, "work") == 1
            rt.invoke(gid, "work")  # boom

        with pytest.raises(RuntimeError, match="injected failure"):
            rt.run(main)
        # The component survives; later calls work.
        assert rt.run(lambda: rt.invoke(gid, "work")) == 3


def test_remote_plain_action_exception():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        with pytest.raises(OSError, match="disk on fire"):
            rt.run(lambda: rt.async_at(1, failing_action).get())


def test_unserializable_argument_fails_at_send_site():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        def main():
            rt.async_at(1, print, lambda: None)  # lambda cannot ship

        with pytest.raises(SerializationError):
            rt.run(main)


def test_exception_mid_dataflow_chain_poisons_the_tail():
    with Runtime(workers_per_locality=2) as rt:
        def main():
            a = dataflow(lambda: 1)
            b = dataflow(lambda x: x / 0, a)  # fails
            c = dataflow(lambda x: x + 1, b)  # must inherit the failure
            return c

        future = rt.run(main)
        with pytest.raises(ZeroDivisionError):
            future.get()


def test_exception_in_one_branch_does_not_block_siblings():
    with Runtime(workers_per_locality=2) as rt:
        def main():
            good = [async_(lambda i=i: i) for i in range(5)]
            bad = async_(lambda: 1 / 0)
            ready = when_all(good + [bad]).get()
            values = [f.get() for f in ready[:-1]]
            with pytest.raises(ZeroDivisionError):
                ready[-1].get()
            return values

        assert rt.run(main) == [0, 1, 2, 3, 4]


def test_channel_closed_mid_wait_raises_not_hangs():
    with Runtime(workers_per_locality=2) as rt:
        channel = Channel("doomed")

        def main():
            future = channel.get()
            async_(channel.close)
            with pytest.raises(ChannelClosedError):
                future.get()
            return "survived"

        assert rt.run(main) == "survived"


def test_missing_halo_deadlocks_cleanly():
    """Kill one partition's chain: its neighbours' waits must raise
    DeadlockError instead of hanging forever."""
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        solver = DistributedHeat1D(rt, 64, Heat1DParams())
        solver.initialize(analytic_heat_profile(64))

        def main():
            # Build the chain on partition 0 only; partition 1 stays dead.
            rt.invoke(solver._gids[0], "start_chain", 5)
            return solver._parts[0].final_future.get()

        with pytest.raises(DeadlockError):
            rt.run(main)


def test_context_stack_balanced_after_failures():
    from repro.runtime.context import current_or_none

    depth_before = 0 if current_or_none() is None else 1
    for _ in range(3):
        with pytest.raises(ValueError):
            with Runtime(workers_per_locality=1) as rt:
                rt.run(lambda: (_ for _ in ()).throw(ValueError("boom")))
    after = current_or_none()
    assert (0 if after is None else 1) == depth_before


def test_fire_and_forget_failures_are_recorded():
    with Runtime(workers_per_locality=2) as rt:
        from repro.runtime import apply

        rt.run(lambda: apply(lambda: 1 / 0))
        rt.progress_all()
        pool = rt.localities[0].pool
        assert any(isinstance(exc, ZeroDivisionError) for _, exc in pool.failures)


def test_solver_rejects_corrupt_input_before_spawning_work():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        solver = DistributedHeat1D(rt, 64, Heat1DParams())
        with pytest.raises(ValidationError):
            solver.initialize(np.full(64, np.nan)[:32])  # wrong shape
        # No stray components were registered by the failed initialize.
        assert len(rt.agas) == 0
