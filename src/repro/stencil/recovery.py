"""Shared crash-recovery driver for the distributed stencils.

Both distributed stencils -- heat1d's periodic ring and jacobi2d's row
blocks -- drive their ``run_resilient`` through
:func:`run_with_recovery`, which layers two recovery mechanisms over the
parcel retry machinery:

* **Dead-letter rounds** (transient faults): when the job stalls on
  dead-lettered work, drain the queue, re-invoke ``ensure_chain`` for
  every unfinished partition (idempotent on a live chain), and ask the
  neighbours of each stuck partition to re-send the halo values it waits
  on.  This is the recovery loop that previously lived in
  ``DistributedHeat1D.run_resilient``.
* **Checkpoint restart** (permanent crashes): partitions are snapshotted
  as coordinated epochs every ``checkpoint_every`` steps (the epoch
  barrier is the blocking ``when_all`` over the partitions' step
  futures: when it fires, no other work is runnable anywhere).  When a
  stall escalates to a *confirmed-dead* locality -- the parcelport
  suspected it after exhausting every retransmission, and the fault
  schedule says the outage is permanent -- the driver decommissions the
  node, re-homes its components onto the survivors
  (:meth:`~repro.runtime.agas.service.AgasService.evacuate`), restores
  every partition from the newest intact epoch, and re-drives the
  chains.  Because the stencils are deterministic, recomputation from
  the epoch produces bit-identical results, and redelivered halos from
  either timeline are idempotent.

The rollback is race-free by construction: recovery only runs when the
progress engine has proven that *no* runnable work exists anywhere, so
no queued task can touch the partitions' abandoned promises after
``restore_state`` resets them.

Partition contract (duck-typed; both stencil partitions satisfy it):
``steps_done``, an ``ensure_chain(absolute_target)`` component action,
``final_future``, and ``checkpoint_state()`` / ``restore_state()``
where restore also resets the live chain to a quiesced baseline.
``resend_stuck(p, step)`` is the stencil-specific callback asking
partition ``p``'s neighbours to re-send the halos of ``step``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import BrokenPromiseError, DeadlockError, ParcelDeadLetterError
from ..resilience.checkpoint import CheckpointStore
from ..runtime.futures import when_all
from ..runtime.runtime import Runtime

__all__ = ["run_with_recovery"]

#: ``resend_stuck(partition_index, stuck_step)`` callback signature.
ResendStuck = Callable[[int, int], None]


def _epoch_boundaries(start: int, target: int, every: int) -> list[int]:
    """Steps at which to quiesce: multiples of ``every``, then ``target``."""
    if every <= 0:
        return [target]
    bounds = list(range(start + every, target, every))
    bounds.append(target)
    return bounds


def _confirmed_dead(runtime: Runtime) -> list[int]:
    """Suspected localities whose outage the fault schedule confirms as
    permanent (and that are not already decommissioned)."""
    injector = runtime.fault_injector
    if injector is None:
        return []
    now = runtime.makespan
    return sorted(
        loc
        for loc in runtime.parcelport.suspected_dead
        if loc not in runtime.decommissioned and injector.permanently_down(loc, now)
    )


def _recover_from_crash(
    runtime: Runtime, parts: Sequence[Any], dead: list[int], store: CheckpointStore
) -> None:
    """Decommission the dead nodes, re-home, roll back to a checkpoint."""
    for loc in dead:
        runtime.decommission_locality(loc)
    survivors = [
        loc.locality_id
        for loc in runtime.localities
        if loc.locality_id not in runtime.decommissioned
    ]
    for loc in dead:
        runtime.agas.evacuate(loc, survivors)
    # Roll every partition back to one coordinated epoch (restore_state
    # also resets its live chain), then forgive the continuation chains
    # the rollback abandoned so the quiescence check stays meaningful.
    store.restore_latest_valid(parts)
    runtime.forgive_lost_continuations()


def _advance_to(
    runtime: Runtime,
    parts: Sequence[Any],
    gids: Sequence[Any],
    boundary: int,
    resend_stuck: ResendStuck,
    store: CheckpointStore | None,
    max_recovery_rounds: int,
) -> None:
    """Drive every partition to absolute step ``boundary``, recovering."""
    port = runtime.parcelport
    fruitless = 0
    while True:
        progress = [part.steps_done for part in parts]
        try:
            chains = [
                runtime.invoke_async(gid, "ensure_chain", boundary)
                for p, gid in enumerate(gids)
                if parts[p].steps_done < boundary
            ]
            # ``when_all(...).get()`` yields the member futures without
            # raising their stored exceptions (HPX semantics); each member
            # must be ``get`` explicitly or a dead-lettered invocation is
            # silently swallowed -- e.g. a crash at the last epoch leaves
            # the dead node's partition one step short while its stale
            # ``final_future`` from the previous epoch is already ready,
            # so the completion barrier below would pass regardless.
            for chain in when_all(chains).get():
                chain.get()
            when_all([part.final_future for part in parts]).get()
            for part in parts:
                part.final_future.get()
            return
        except (ParcelDeadLetterError, DeadlockError, BrokenPromiseError):
            # A DeadlockError here is a lost halo whose dead-letter
            # record was consumed by an earlier round (the partition
            # advanced *into* the gap after the queue was drained); it
            # is recoverable the same way.
            dead = _confirmed_dead(runtime)
            if dead:
                if store is None:
                    raise
                _recover_from_crash(runtime, parts, dead, store)
                fruitless = 0
            elif [part.steps_done for part in parts] == progress:
                fruitless += 1
                if fruitless > max_recovery_rounds:
                    raise
            else:
                fruitless = 0
            # The abandoned parcels are being re-driven; consume them.
            port.dead_letters.clear()
            port.suspected_dead.clear()
            for p, part in enumerate(parts):
                stuck_at = part.steps_done
                if stuck_at >= boundary:
                    continue
                # Whichever neighbour already produced the halos this
                # partition waits on re-sends them (idempotent).
                resend_stuck(p, stuck_at)


def run_with_recovery(
    runtime: Runtime,
    parts: Sequence[Any],
    gids: Sequence[Any],
    steps: int,
    resend_stuck: ResendStuck,
    *,
    max_recovery_rounds: int = 3,
    checkpoint_every: int | None = None,
) -> None:
    """Advance all partitions ``steps`` steps, surviving faults.

    ``checkpoint_every`` (epoch length in steps; default from
    ``checkpoint.interval``, 0 to disable periodic epochs) controls the
    coordinated-snapshot cadence.  An initial epoch is always taken when
    checkpointing is active *or* the fault schedule contains a permanent
    crash -- without a baseline, a crash before the first boundary would
    be unrecoverable.  Checkpoint/restore time is charged through the
    cost model (``checkpoint.cost_*`` knobs) and surfaces in the
    ``/checkpoints{total}`` perfcounters.
    """
    if checkpoint_every is None:
        checkpoint_every = runtime.config.get_int("checkpoint.interval")
    start = parts[0].steps_done
    target = start + steps
    injector = runtime.fault_injector
    store: CheckpointStore | None = None
    if checkpoint_every > 0 or (injector is not None and injector.has_permanent_failures):
        store = CheckpointStore(runtime=runtime)
        store.save(start, parts)
    for boundary in _epoch_boundaries(start, target, checkpoint_every):
        _advance_to(
            runtime, parts, gids, boundary, resend_stuck, store, max_recovery_rounds
        )
        if store is not None and checkpoint_every > 0 and boundary < target:
            store.save(boundary, parts)
