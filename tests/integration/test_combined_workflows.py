"""Cross-feature integration: the subsystems composed, as a user would."""

import operator

import numpy as np
import pytest

from repro.containers import PartitionedVector
from repro.runtime import Runtime, collectives, perfcounters, when_all
from repro.runtime.actions import action
from repro.runtime.lco import RemoteChannel
from repro.runtime.trace import Tracer
from repro.stencil import (
    DistributedHeat1D,
    Heat1DParams,
    analytic_heat_profile,
    heat1d_reference,
    l2_error,
)


@action(name="combo.norm2")
def norm2_segment(data):
    return float(np.dot(data, data))


def test_vector_migration_during_active_use():
    """Migrate segments while a computation keeps reading them."""
    with Runtime(machine="a64fx", n_localities=3, workers_per_locality=2) as rt:
        vec = PartitionedVector(rt, 12, initial=np.arange(12.0))

        def main():
            totals = []
            for round_ in range(3):
                vec.migrate_segment(round_, (round_ + 1) % 3)
                totals.append(vec.reduce("combo.norm2", operator.add, 0.0))
            return totals

        totals = rt.run(main)
    expected = float(np.dot(np.arange(12.0), np.arange(12.0)))
    assert totals == [pytest.approx(expected)] * 3


def test_solver_plus_counters_plus_trace():
    """The Fig 3 solver observed through both introspection layers."""
    tracer = Tracer()
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=2) as rt:
        solver = DistributedHeat1D(rt, 64, Heat1DParams(), cost_per_step=0.5)
        solver.initialize(analytic_heat_profile(64))
        with tracer.attach(rt):
            out = rt.run(lambda: solver.run(10))
        assert l2_error(out, heat1d_reference(analytic_heat_profile(64), 10, Heat1DParams())) < 1e-12
        executed = perfcounters.query(rt, "/threads{total}/count/cumulative")
        uptime = perfcounters.query(rt, "/runtime/uptime")
    assert executed == len(tracer.records)
    assert uptime == pytest.approx(tracer.makespan)
    assert uptime >= 10 * 0.5  # at least the sequential chain cost


def test_remote_channel_feeding_a_reduction():
    """Producer localities stream into a hosted channel; a consumer
    folds -- the pipeline pattern across three features."""
    with Runtime(machine="thunderx2", n_localities=3, workers_per_locality=2) as rt:
        channel = RemoteChannel.create(rt, locality_id=0, name="results")

        @action(name="combo.produce")
        def produce(gid_packed, base):
            from repro.runtime import context as ctx
            from repro.runtime.agas.gid import Gid

            runtime = ctx.current().runtime
            gid = Gid.unpack(gid_packed)
            for k in range(3):
                runtime.invoke(gid, "ch_set", base * 10 + k)
            return base

        def main():
            producers = [
                rt.async_at(loc, "combo.produce", channel.gid.pack(), loc)
                for loc in range(3)
            ]
            when_all(producers).get()
            values = sorted(channel.get_sync() for _ in range(9))
            return values

        values = rt.run(main)
    assert values == [0, 1, 2, 10, 11, 12, 20, 21, 22]


def test_collectives_over_solver_state():
    """A distributed max-reduction over per-locality solver chunks."""
    with Runtime(n_localities=4, workers_per_locality=1) as rt:
        solver = DistributedHeat1D(rt, 64, Heat1DParams())
        solver.initialize(analytic_heat_profile(64))
        rt.run(lambda: solver.run(5))

        def local_max():
            from repro.runtime import context as ctx

            loc = ctx.here().locality_id
            return float(np.max(np.abs(solver._parts[loc].local_solution())))

        # The solver objects are in-process; a registered action reads the
        # locality's own chunk.
        action(name="combo.local_max")(local_max)
        global_max = rt.run(
            lambda: collectives.all_reduce(rt, "combo.local_max", max)
        )
        direct = float(np.max(np.abs(solver.solution())))
    assert global_max == pytest.approx(direct)
