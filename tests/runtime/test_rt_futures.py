"""Unit tests for futures and promises."""

import pytest

from repro.errors import (
    BrokenPromiseError,
    FutureAlreadySetError,
    FutureNotReadyError,
)
from repro.runtime import Promise, make_ready_future, when_all, when_any
from repro.runtime.futures import make_exceptional_future


def test_promise_fulfils_future():
    promise = Promise()
    future = promise.get_future()
    assert not future.is_ready()
    promise.set_value(42)
    assert future.is_ready()
    assert future.get() == 42


def test_get_is_idempotent_shared_semantics():
    future = make_ready_future("x")
    assert future.get() == "x"
    assert future.get() == "x"


def test_multiple_futures_share_state():
    promise = Promise()
    f1, f2 = promise.get_future(), promise.get_future()
    promise.set_value(7)
    assert f1.get() == f2.get() == 7


def test_double_set_rejected():
    promise = Promise()
    promise.set_value(1)
    with pytest.raises(FutureAlreadySetError):
        promise.set_value(2)
    with pytest.raises(FutureAlreadySetError):
        promise.set_exception(ValueError())


def test_exception_propagates():
    promise = Promise()
    promise.set_exception(ValueError("boom"))
    future = promise.get_future()
    assert future.has_exception()
    with pytest.raises(ValueError, match="boom"):
        future.get()


def test_set_exception_requires_exception():
    with pytest.raises(TypeError):
        Promise().set_exception("not an exception")


def test_get_nowait_on_pending_raises():
    with pytest.raises(FutureNotReadyError):
        Promise().get_future().get_nowait()


def test_get_outside_runtime_on_pending_raises():
    with pytest.raises(FutureNotReadyError):
        Promise().get_future().get()


def test_broken_promise():
    promise = Promise()
    future = promise.get_future()
    promise.break_promise()
    with pytest.raises(BrokenPromiseError):
        future.get()


def test_break_after_set_is_noop():
    promise = Promise()
    promise.set_value(1)
    promise.break_promise()
    assert promise.get_future().get() == 1


def test_make_exceptional_future():
    future = make_exceptional_future(KeyError("k"))
    with pytest.raises(KeyError):
        future.get()


def test_then_runs_inline_outside_runtime():
    future = make_ready_future(10)
    doubled = future.then(lambda f: f.get() * 2)
    assert doubled.get() == 20


def test_then_on_pending_future():
    promise = Promise()
    chained = promise.get_future().then(lambda f: f.get() + 1)
    assert not chained.is_ready()
    promise.set_value(5)
    assert chained.get() == 6


def test_then_propagates_exception():
    future = make_ready_future(0)
    failed = future.then(lambda f: 1 // f.get())
    with pytest.raises(ZeroDivisionError):
        failed.get()


def test_when_all_empty():
    assert when_all([]).get() == []


def test_when_all_ready_order_preserved():
    p1, p2 = Promise(), Promise()
    combined = when_all([p1.get_future(), p2.get_future()])
    p2.set_value("b")
    assert not combined.is_ready()
    p1.set_value("a")
    values = [f.get() for f in combined.get()]
    assert values == ["a", "b"]


def test_when_any_reports_first_index():
    p1, p2 = Promise(), Promise()
    first = when_any([p1.get_future(), p2.get_future()])
    p2.set_value("late?")
    index, futures = first.get()
    assert index == 1
    assert futures[1].get() == "late?"


def test_when_any_empty_rejected():
    with pytest.raises(ValueError):
        when_any([])


def test_ready_time_defaults_to_zero_outside_runtime():
    assert make_ready_future(1).ready_time == 0.0


def test_blocking_get_inside_runtime(rt):
    from repro.runtime import async_

    def main():
        return async_(lambda: 21).get() * 2

    assert rt.run(main) == 42
