"""Help-stack inversion deadlock, reachable only with two preemptions.

Four workers cooperate through an AndGate and a Channel:

* ``contrib_a``   -- fills gate slot 0 immediately;
* ``contrib_b``   -- blocks for the channel token, then fills slot 1;
* ``producer``    -- puts the token into the channel;
* ``consumer``    -- waits for the gate to fire.

On the default FIFO schedule this always completes: ``contrib_b``
blocks, the cooperative scheduler "helps" by running ``producer``,
the token arrives, and everything unwinds.  But helping is a LIFO
stack: a task blocked *beneath* another blocked task cannot resume
until the one above it finishes.  If the explorer first dispatches
``contrib_b`` (preemption one: it blocks on the channel) and then
``consumer`` (preemption two: it blocks on the gate, on top of
``contrib_b``), then even after ``contrib_a`` and ``producer`` run,
``contrib_b`` is pinned under ``consumer`` and can never deliver slot 1
-- the gate never fires and the runtime stalls.  No single-schedule
sanitizer sees this; it needs exactly this two-preemption interleaving.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.explore import ExploreApp
from repro.runtime.lco import AndGate, Channel
from repro.runtime.runtime import Runtime


def _build(rt: Runtime) -> Callable[[], Any]:
    gate = AndGate(2)
    ch = Channel("token")

    def contrib_a() -> None:
        gate.set(0, 1)

    def contrib_b() -> None:
        value = ch.get_sync()
        gate.set(1, value)

    def producer() -> None:
        ch.set(7)

    def consumer() -> Any:
        return gate.get_future().get()

    def job() -> Any:
        pool = rt.localities[0].pool
        futures = [
            pool.submit(contrib_a, description="contrib-a"),
            pool.submit(contrib_b, description="contrib-b"),
            pool.submit(producer, description="producer"),
            pool.submit(consumer, description="consumer"),
        ]
        return [f.get() for f in futures]

    return job


def make_app() -> ExploreApp:
    return ExploreApp(name="corpus/andgate_deadlock", build=_build,
                      n_localities=1, workers_per_locality=1)
