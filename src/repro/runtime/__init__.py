"""The ParalleX execution-model runtime (HPX analogue).

ParalleX attacks the SLOW factors -- Starvation, Latencies, Overheads,
Waiting (contention) -- with lightweight threads, message-driven
computation, constraint-based synchronisation (LCOs) and a global address
space.  This package implements each subsystem of Fig 1 of the paper:

* **Threading** (:mod:`~repro.runtime.threads`): HPX-threads scheduled
  cooperatively on a pool of virtual cores; FIFO / static / work-stealing
  schedulers; NUMA-aware block executors.
* **LCOs** (:mod:`~repro.runtime.lco` and
  :mod:`~repro.runtime.futures`): futures, promises, latches, barriers,
  channels, semaphores, and-gates and ``dataflow``.
* **AGAS** (:mod:`~repro.runtime.agas`): global IDs, resolution,
  reference counting and object migration.
* **Parcel transport** (:mod:`~repro.runtime.parcel`): active messages
  between localities with serialization and a modelled network.
* **Parallel algorithms** (:mod:`~repro.runtime.algorithms`):
  ``for_each``/``for_loop``/``transform``/``reduce``/``scan`` with
  ``seq``/``par``/``simd`` execution policies, mirroring the HPX calls in
  Listings 1 and 2.

Execution is *functionally real* (Python callables run and produce real
values) while *time is virtual*: worker cores advance a simulated clock,
parcels arrive after modelled network delays, and task costs are
attributed via :func:`~repro.runtime.context.add_cost`.  This is the
substitution that lets a laptop reproduce cluster-scale scheduling
behaviour deterministically.
"""

from .futures import (
    Future,
    Promise,
    make_ready_future,
    when_all,
    when_any,
    when_each,
    unwrap,
)
from .lco import Latch, Barrier, Channel, CountingSemaphore, AndGate, dataflow
from .threads.pool import ThreadPool
from .threads.executor import PoolExecutor, BlockExecutor
from .actions import (
    action,
    async_,
    apply,
    sync,
    async_after,
    sleep_for,
    async_replay,
    async_replicate,
)
from .locality import Locality
from .runtime import Runtime
from . import perfcounters
from . import collectives
from .algorithms import (
    seq,
    par,
    simd,
    par_simd,
    for_each,
    for_loop,
    transform,
    reduce_,
    inclusive_scan,
)

__all__ = [
    "Future",
    "Promise",
    "make_ready_future",
    "when_all",
    "when_any",
    "when_each",
    "unwrap",
    "Latch",
    "Barrier",
    "Channel",
    "CountingSemaphore",
    "AndGate",
    "dataflow",
    "ThreadPool",
    "PoolExecutor",
    "BlockExecutor",
    "action",
    "async_",
    "apply",
    "sync",
    "async_after",
    "sleep_for",
    "async_replay",
    "async_replicate",
    "perfcounters",
    "collectives",
    "Locality",
    "Runtime",
    "seq",
    "par",
    "simd",
    "par_simd",
    "for_each",
    "for_loop",
    "transform",
    "reduce_",
    "inclusive_scan",
]
