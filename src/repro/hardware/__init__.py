"""Simulated hardware substrate.

The paper's numbers come from four physical nodes (Intel Xeon E5-2660 v3,
HiSilicon Kunpeng 916, Marvell ThunderX2, Fujitsu A64FX) that we do not
have.  This package models the pieces of those machines that the paper's
analysis actually depends on:

* :mod:`~repro.hardware.spec` -- the Table I datasheet numbers,
* :mod:`~repro.hardware.topology` -- sockets / NUMA domains / cores / PUs
  (an hwloc-like tree) plus thread-pinning,
* :mod:`~repro.hardware.caches` -- cache hierarchy and cache-line effects
  (the 256 B A64FX line drives the paper's "implicit cache blocking"),
* :mod:`~repro.hardware.memory` -- per-NUMA-domain bandwidth saturation
  (drives Fig 2 and the Kunpeng NUMA dips in Fig 5),
* :mod:`~repro.hardware.interconnect` -- the network model (drives the
  Kunpeng scaling failure in Fig 3),
* :mod:`~repro.hardware.counters` -- PAPI-like counter registers,
* :mod:`~repro.hardware.registry` -- the four calibrated machines.
"""

from .spec import ProcessorSpec
from .topology import Machine, Socket, NumaDomain, Core, ProcessingUnit, CpuSet
from .caches import CacheLevel, CacheHierarchy
from .memory import MemorySystem, DomainBandwidthModel
from .interconnect import Interconnect
from .counters import CounterSet, PAPI_TOT_INS, PAPI_L2_TCM, STALL_FRONTEND, STALL_BACKEND
from .registry import (
    machine,
    machine_names,
    XEON_E5_2660V3,
    KUNPENG_916,
    THUNDERX2,
    A64FX,
)

__all__ = [
    "ProcessorSpec",
    "Machine",
    "Socket",
    "NumaDomain",
    "Core",
    "ProcessingUnit",
    "CpuSet",
    "CacheLevel",
    "CacheHierarchy",
    "MemorySystem",
    "DomainBandwidthModel",
    "Interconnect",
    "CounterSet",
    "PAPI_TOT_INS",
    "PAPI_L2_TCM",
    "STALL_FRONTEND",
    "STALL_BACKEND",
    "machine",
    "machine_names",
    "XEON_E5_2660V3",
    "KUNPENG_916",
    "THUNDERX2",
    "A64FX",
]
