"""Unit tests for the action registry and async/apply/sync."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import apply, async_, sync
from repro.runtime.actions import action, get_action


def test_action_registers_by_qualname():
    @action
    def my_fn():
        return 1

    assert get_action(my_fn.action_name) is my_fn


def test_action_with_explicit_name():
    @action(name="custom.name")
    def other_fn():
        return 2

    assert get_action("custom.name") is other_fn


def test_conflicting_registration_rejected():
    @action(name="unique.slot")
    def f1():
        pass

    with pytest.raises(RuntimeStateError):
        @action(name="unique.slot")
        def f2():
            pass


def test_reregistering_same_function_ok():
    @action(name="idempotent.slot")
    def f():
        pass

    assert action(name="idempotent.slot")(f) is f


def test_unknown_action():
    with pytest.raises(RuntimeStateError):
        get_action("no.such.action")


def test_async_outside_runtime_rejected():
    with pytest.raises(RuntimeStateError):
        async_(lambda: 1)


def test_async_returns_future(rt):
    def main():
        return async_(lambda a, b: a + b, 1, b=2).get()

    assert rt.run(main) == 3


def test_apply_fire_and_forget(rt):
    hits = []

    def main():
        apply(hits.append, "x")
        return "scheduled"

    assert rt.run(main) == "scheduled"
    rt.progress_all()
    assert hits == ["x"]


def test_sync_waits(rt):
    def main():
        return sync(lambda: 99)

    assert rt.run(main) == 99
