"""Tests for the distributed 2D Jacobi (row-block decomposition)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime import Runtime
from repro.stencil import (
    DistributedJacobi2D,
    Jacobi2D,
    jacobi_dense_solution,
    jacobi_reference_step,
    max_error,
)


def hot_top(ny, nx):
    field = np.zeros((ny, nx))
    field[0, :] = 1.0
    return field


def reference(field, steps):
    out = np.array(field, dtype=np.float64)
    for _ in range(steps):
        out = jacobi_reference_step(out)
    return out


def run_distributed(field, steps, n_localities, parts_per_loc=1, machine="xeon-e5-2660v3"):
    ny, nx = field.shape
    with Runtime(machine=machine, n_localities=n_localities, workers_per_locality=2) as rt:
        solver = DistributedJacobi2D(rt, ny, nx, partitions_per_locality=parts_per_loc)
        solver.initialize(field)
        out = rt.run(lambda: solver.run(steps))
        makespan = rt.makespan
    return out, makespan


def test_matches_reference_two_localities():
    field = hot_top(18, 12)
    out, _ = run_distributed(field, 20, 2)
    assert max_error(out, reference(field, 20)) < 1e-12


def test_matches_reference_four_localities_two_parts_each():
    field = np.random.default_rng(3).random((18, 10))
    out, _ = run_distributed(field, 15, 4, parts_per_loc=2)
    assert max_error(out, reference(field, 15)) < 1e-12


def test_matches_shared_memory_solver():
    field = hot_top(10, 14)
    distributed, _ = run_distributed(field, 12, 2)
    shared = Jacobi2D(10, 14, np.float64)
    shared.initialize(field)
    assert max_error(distributed, shared.run(12)) < 1e-12


def test_boundaries_stay_fixed():
    field = np.random.default_rng(5).random((10, 8))
    out, _ = run_distributed(field, 10, 2)
    assert np.array_equal(out[0, :], field[0, :])
    assert np.array_equal(out[-1, :], field[-1, :])
    assert np.allclose(out[:, 0], field[:, 0])
    assert np.allclose(out[:, -1], field[:, -1])


def test_single_locality_degenerate():
    field = hot_top(6, 6)
    out, _ = run_distributed(field, 8, 1)
    assert max_error(out, reference(field, 8)) < 1e-13


def test_network_time_accrues():
    field = hot_top(18, 8)
    _, makespan = run_distributed(field, 10, 4)
    assert makespan > 0.0


def test_zero_steps_identity():
    field = np.random.default_rng(7).random((6, 6))
    out, _ = run_distributed(field, 0, 2)
    assert np.allclose(out, field)


def test_residual_decreases_towards_fixed_point():
    field = hot_top(10, 10)
    with Runtime(n_localities=2, workers_per_locality=2) as rt:
        solver = DistributedJacobi2D(rt, 10, 10)
        solver.initialize(field)
        rt.run(lambda: solver.run(5))
        early = rt.run(solver.residual)
        rt.run(lambda: solver.run(200))
        late = rt.run(solver.residual)
    assert late < early / 10


def test_converges_to_dense_solution():
    field = hot_top(10, 10)
    with Runtime(n_localities=2, workers_per_locality=2) as rt:
        solver = DistributedJacobi2D(rt, 10, 10)
        solver.initialize(field)
        out = rt.run(lambda: solver.run(2500))
    assert max_error(out, jacobi_dense_solution(field)) < 1e-9


def test_validation():
    with Runtime(n_localities=3, workers_per_locality=1) as rt:
        with pytest.raises(ValidationError):
            DistributedJacobi2D(rt, 12, 8)  # 10 interior rows vs 3 parts
        solver = DistributedJacobi2D(rt, 14, 8)
        with pytest.raises(ValidationError):
            solver.run(3)  # not initialised
        with pytest.raises(ValidationError):
            solver.initialize(np.zeros((14, 9)))
        solver.initialize(np.zeros((14, 8)))
        with pytest.raises(ValidationError):
            solver.run(-1)
