"""Unit tests for parcels, serialization, and parcelports."""

import numpy as np
import pytest

from repro.errors import ParcelError, SerializationError
from repro.hardware import Interconnect
from repro.runtime.agas import Gid
from repro.runtime.parcel import (
    LoopbackParcelport,
    NetworkParcelport,
    Parcel,
    deserialize,
    serialize,
    serialized_size,
)


# Serialization ------------------------------------------------------------------

def test_roundtrip_python_objects():
    payload = {"a": [1, 2.5, "three"], "b": (None, True)}
    assert deserialize(serialize(payload)) == payload


def test_roundtrip_numpy():
    arr = np.arange(10.0)
    out = deserialize(serialize(arr))
    assert np.array_equal(out, arr)


def test_unserializable_rejected_with_clear_error():
    with pytest.raises(SerializationError):
        serialize(lambda x: x)  # locally-defined lambda cannot ship


def test_unserializable_open_file():
    import sys

    with pytest.raises(SerializationError):
        serialize(sys.stdout.buffer)


def test_deserialize_garbage_rejected():
    with pytest.raises(SerializationError):
        deserialize(b"not a pickle")


def test_serialized_size_positive_and_monotone_in_payload():
    small = serialized_size(b"x" * 10)
    large = serialized_size(b"x" * 1000)
    assert 0 < small < large


# Parcel ---------------------------------------------------------------------------

def test_parcel_needs_exactly_one_target():
    with pytest.raises(ParcelError):
        Parcel(source_locality=0, payload=b"")
    with pytest.raises(ParcelError):
        Parcel(
            source_locality=0,
            payload=b"",
            target_gid=Gid(0, 1),
            target_locality=1,
        )


def test_parcel_payload_must_be_bytes():
    with pytest.raises(ParcelError):
        Parcel(source_locality=0, payload="text", target_locality=1)


def test_parcel_size_includes_header():
    parcel = Parcel(source_locality=0, payload=b"x" * 100, target_locality=1)
    assert parcel.size_bytes == 164


def test_parcel_ids_unique():
    a = Parcel(source_locality=0, payload=b"", target_locality=1)
    b = Parcel(source_locality=0, payload=b"", target_locality=1)
    assert a.parcel_id != b.parcel_id


# Parcelports -------------------------------------------------------------------------

def test_loopback_delivers_at_send_time():
    port = LoopbackParcelport()
    delivered = []
    port.install_router(lambda p, t: delivered.append((p, t)))
    parcel = Parcel(source_locality=0, payload=b"hi", target_locality=0, send_time=3.0)
    assert port.send(parcel) == 3.0
    assert delivered[0][1] == 3.0
    assert port.parcels_sent == 1
    assert port.bytes_sent == parcel.size_bytes


def test_send_without_router_rejected():
    port = LoopbackParcelport()
    with pytest.raises(ParcelError):
        port.send(Parcel(source_locality=0, payload=b"", target_locality=0))


def make_network_port(**kwargs):
    net = Interconnect("test", latency_s=1e-3, bandwidth_gbs=1.0)
    port = NetworkParcelport(net, n_localities=4, **kwargs)
    port.install_resolver(lambda p: p.target_locality)
    return port


def test_network_port_adds_delay_cross_locality():
    port = make_network_port()
    arrivals = []
    port.install_router(lambda p, t: arrivals.append(t))
    parcel = Parcel(source_locality=0, payload=b"x" * 936, target_locality=1, send_time=1.0)
    port.send(parcel)
    # 1 ms latency + 1000 B / 1 GB/s = 1 us.
    assert arrivals[0] == pytest.approx(1.0 + 1e-3 + 1e-6)


def test_network_port_same_locality_is_free():
    port = make_network_port()
    arrivals = []
    port.install_router(lambda p, t: arrivals.append(t))
    port.send(Parcel(source_locality=2, payload=b"", target_locality=2, send_time=5.0))
    assert arrivals[0] == 5.0


def test_network_port_needs_resolver():
    net = Interconnect("test", latency_s=0.0, bandwidth_gbs=1.0)
    port = NetworkParcelport(net, n_localities=2)
    port.install_router(lambda p, t: None)
    with pytest.raises(ParcelError):
        port.send(Parcel(source_locality=0, payload=b"", target_locality=1))


def test_network_port_validation():
    net = Interconnect("test", latency_s=0.0, bandwidth_gbs=1.0)
    with pytest.raises(ParcelError):
        NetworkParcelport(net, n_localities=0)
