"""Unit tests for the type-trait helpers (Listing 2 line 17)."""

import numpy as np
import pytest

from repro.errors import SimdError
from repro.simd import NEON, Pack
from repro.simd.typetraits import (
    element_kind,
    is_pack,
    is_pack_container,
    underlying_dtype,
)


def test_is_pack():
    assert is_pack(Pack.set1(NEON, 1.0))
    assert not is_pack(1.0)
    assert not is_pack(np.float64(1.0))


def test_pack_container_detection():
    packs = [Pack.set1(NEON, float(i)) for i in range(3)]
    assert is_pack_container(packs)
    assert element_kind(packs) == "pack"


def test_scalar_container_detection():
    assert not is_pack_container([1.0, 2.0])
    assert element_kind(np.zeros(4)) == "scalar"
    assert not is_pack_container([])


def test_mixed_container_rejected():
    with pytest.raises(SimdError):
        is_pack_container([Pack.set1(NEON, 1.0), 2.0])


def test_underlying_dtype_of_ndarray():
    assert underlying_dtype(np.zeros(3, dtype=np.float32)) == np.float32
    with pytest.raises(SimdError):
        underlying_dtype(np.zeros(3, dtype=np.int64))


def test_underlying_dtype_of_pack_container():
    packs = [Pack.set1(NEON, 1.0, np.float32)]
    assert underlying_dtype(packs) == np.float32


def test_underlying_dtype_of_float_list():
    assert underlying_dtype([1.0, 2.0]) == np.float64


def test_underlying_dtype_mixed_pack_dtypes_rejected():
    packs = [Pack.set1(NEON, 1.0, np.float32), Pack.set1(NEON, 1.0, np.float64)]
    with pytest.raises(SimdError):
        underlying_dtype(packs)


def test_underlying_dtype_empty_rejected():
    with pytest.raises(SimdError):
        underlying_dtype([])


def test_underlying_dtype_unsupported_rejected():
    with pytest.raises(SimdError):
        underlying_dtype(["a"])
