"""Table I: node specifications.

Regenerates the spec table from the machine registry (peaks are computed
from clock x FLOP/cycle x cores, not transcribed) and benchmarks a full
registry rebuild.
"""

from repro.exhibits import render_table1, table1
from repro.hardware.registry import _BUILDERS  # rebuild, bypassing the cache


def test_table1_exhibit(benchmark, save_exhibit):
    headers, rows = benchmark(table1)
    assert len(headers) == 5  # label column + 4 machines
    assert len(rows) == 7  # the seven spec rows of Table I
    save_exhibit("table1_specs", render_table1())


def test_registry_build_cost(benchmark):
    """Cost of constructing all four machine models from scratch."""

    def build_all():
        return [builder() for builder in _BUILDERS.values()]

    models = benchmark(build_all)
    assert len(models) == 4
