"""Unit tests for the high-resolution timer."""

import pytest

from repro.perf import HighResolutionTimer
from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool


def test_wall_timer_advances():
    timer = HighResolutionTimer()
    assert timer.elapsed() >= 0.0


def test_wall_timer_restart():
    timer = HighResolutionTimer()
    first = timer.restart()
    assert first >= 0.0
    assert timer.elapsed() <= first + 1.0


def test_virtual_timer_reads_pool_makespan():
    pool = ThreadPool(1)
    timer = HighResolutionTimer(pool)
    pool.submit(lambda: ctx.add_cost(2.5))
    pool.run_all()
    assert timer.elapsed() == pytest.approx(2.5)


def test_virtual_timer_restart():
    pool = ThreadPool(1)
    timer = HighResolutionTimer(pool)
    pool.submit(lambda: ctx.add_cost(1.0))
    pool.run_all()
    assert timer.restart() == pytest.approx(1.0)
    assert timer.elapsed() == pytest.approx(0.0)
    pool.submit(lambda: ctx.add_cost(3.0))
    pool.run_all()
    assert timer.elapsed() == pytest.approx(3.0)
