"""The lightweight HPX-thread (task) object.

An HPX-thread is far lighter than an OS thread: a callable, a promise for
its result, and scheduling metadata.  Here it also carries the virtual-
time bookkeeping: when it became runnable (``ready_time``), how much
virtual compute it has accrued (:meth:`accrue_cost`), and the latest
completion time of any future it consumed (:meth:`note_dependency`).  Its
virtual finish time is ``max(start, deps) + cost``.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable

from ...errors import RuntimeStateError
from ..futures import Future, Promise

__all__ = ["HpxThread", "ThreadState", "ThreadPriority"]

_ids = itertools.count(1)

#: Shared empty-kwargs sentinel: tasks only ever ``**``-unpack their
#: kwargs, so the (overwhelmingly common) no-kwargs spawn can share one
#: dict instead of allocating a fresh one per HPX-thread.
_NO_KWARGS: dict = {}


class ThreadState(enum.Enum):
    """Lifecycle of an HPX-thread (subset of HPX's state machine)."""

    PENDING = "pending"  # in a scheduler queue
    RUNNING = "running"  # executing on a worker
    SUSPENDED = "suspended"  # blocked on an LCO, helping the scheduler
    TERMINATED = "terminated"  # done (value or exception delivered)


class ThreadPriority(enum.IntEnum):
    """HPX thread priorities; higher values run first on each worker."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


class HpxThread:
    """One unit of user work plus its virtual-time accounting."""

    __slots__ = (
        "tid",
        "fn",
        "args",
        "kwargs",
        "_description",
        "state",
        "priority",
        "ready_time",
        "start_time",
        "finish_time",
        "worker_id",
        "_cost",
        "_deps_time",
        "_promise",
    )

    def __init__(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        description: str = "",
        ready_time: float = 0.0,
        priority: "ThreadPriority" = None,  # type: ignore[assignment]
    ) -> None:
        self.reinit(fn, args, kwargs, description, ready_time, priority)

    def reinit(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        description: str = "",
        ready_time: float = 0.0,
        priority: "ThreadPriority" = None,  # type: ignore[assignment]
    ) -> "HpxThread":
        """Reset a recycled shell for a brand-new logical task.

        Used by the thread pool's shell freelist: every slot is
        re-assigned -- including a fresh ``tid`` and a *fresh*
        :class:`~repro.runtime.futures.Promise` (the old promise's shared
        state may outlive the task in user hands) -- so a recycled shell
        is indistinguishable from a newly constructed one.
        """
        if not callable(fn):
            raise RuntimeStateError(f"task body must be callable, got {fn!r}")
        self.tid = next(_ids)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs if kwargs else _NO_KWARGS
        self._description = description
        self.state = ThreadState.PENDING
        self.priority = ThreadPriority.NORMAL if priority is None else ThreadPriority(priority)
        self.ready_time = ready_time if type(ready_time) is float else float(ready_time)
        self.start_time = 0.0
        self.finish_time = 0.0
        self.worker_id: int | None = None
        self._cost = 0.0
        self._deps_time = 0.0
        self._promise = Promise()
        return self

    @property
    def description(self) -> str:
        """Human-readable label, defaulting to the body's ``__name__``.

        Resolved lazily: only tracers, probes and error paths read it,
        so the (hot) spawn path should not pay the ``getattr``.
        """
        return self._description or getattr(self.fn, "__name__", "task")

    # Result plumbing ----------------------------------------------------------
    def get_future(self) -> Future:
        """Future for this task's return value."""
        return self._promise.get_future()

    @property
    def promise(self) -> Promise:
        return self._promise

    # Virtual-time accounting ----------------------------------------------------
    def accrue_cost(self, seconds: float) -> None:
        """Add ``seconds`` of modelled compute time to this task."""
        if seconds < 0:
            raise RuntimeStateError("cost must be non-negative")
        self._cost += seconds

    def note_dependency(self, ready_time: float) -> None:
        """Record that this task consumed a value produced at ``ready_time``."""
        if ready_time > self._deps_time:
            self._deps_time = ready_time

    @property
    def cost(self) -> float:
        return self._cost

    @property
    def deps_time(self) -> float:
        return self._deps_time

    def current_virtual_time(self) -> float:
        """The task's position on the virtual clock *right now*.

        ``max(start, latest dependency) + accrued cost`` -- used for the
        ready time of children it spawns and of promises it fulfils.
        """
        start = self.start_time
        deps = self._deps_time
        return (start if start >= deps else deps) + self._cost

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HpxThread(#{self.tid} {self.description!r} {self.state.value}"
            f" cost={self._cost:.3e})"
        )
