"""Wait-for-graph deadlock detection: stalls, cycles, silent hangs."""

import pytest

from repro import analysis
from repro.errors import DeadlockError
from repro.runtime import context as ctx
from repro.runtime.futures import Promise
from repro.runtime.lco import AndGate, Barrier, Channel
from repro.runtime.lco.dataflow import dataflow
from repro.runtime.runtime import Runtime
from repro.runtime.threads.pool import ThreadPool


def test_two_thread_future_cycle_renders_wait_cycle():
    """A waits on B's result while B waits on A's: the classic cycle.

    The detector must raise with the rendered cycle
    (thread -> future -> thread -> future -> ...), not the pool's
    generic stall message.
    """
    pool = ThreadPool(2)
    handles = {}

    def task_a():
        return handles["fb"].get()

    def task_b():
        return handles["fa"].get()

    with analysis.attach(races=False):
        fa = pool.submit(task_a, description="task-a")
        fb = pool.submit(task_b, description="task-b")
        handles.update(fa=fa, fb=fb)
        pool.run_all()

    with pytest.raises(DeadlockError) as excinfo:
        fa.get()
    message = str(excinfo.value)
    assert "wait-for graph has a cycle" in message
    assert "task-a" in message and "task-b" in message
    assert "->" in message  # the rendered thread -> LCO -> thread chain


def test_barrier_underfilled_deadlocks_with_lco_label():
    """2 of 3 parties arrive at a barrier: both block forever."""
    with pytest.raises(DeadlockError) as excinfo:
        with analysis.attach(races=False):
            with Runtime(n_localities=1, workers_per_locality=2) as rt:
                def main():
                    bar = Barrier(3)
                    ctx.current().pool.submit(
                        bar.arrive_and_wait, description="second-party"
                    )
                    bar.arrive_and_wait()

                rt.run(main)
    message = str(excinfo.value)
    assert "blocked" in message or "cycle" in message
    assert "2/3 arrived" in message


def test_channel_self_receive_deadlocks_with_channel_label():
    """A task receiving from a channel nobody ever feeds."""
    with pytest.raises(DeadlockError) as excinfo:
        with analysis.attach(races=False):
            with Runtime(n_localities=1, workers_per_locality=2) as rt:
                def main():
                    chan = Channel("loopback")
                    return chan.get_sync()

                rt.run(main)
    assert "channel.get('loopback')" in str(excinfo.value)


def test_and_gate_underfilled_deadlocks_with_slot_count():
    """Waiting on an and-gate with an unset slot blocks forever."""
    with pytest.raises(DeadlockError) as excinfo:
        with analysis.attach(races=False):
            with Runtime(n_localities=1, workers_per_locality=2) as rt:
                def main():
                    gate = AndGate(2)
                    gate.set(0, "only half")
                    return gate.get_future().get()

                rt.run(main)
    assert "1/2 slots set" in str(excinfo.value)


def test_silent_hang_lost_dataflow_raises_at_quiescence():
    """A dataflow whose dependency never fires: the job drains without
    blocking, but the continuation is silently lost."""
    with pytest.raises(DeadlockError, match="silent hang"):
        with analysis.attach(races=False):
            with Runtime(n_localities=1, workers_per_locality=2) as rt:
                def main():
                    never_set = Promise()
                    dataflow(lambda x: x, never_set.get_future())

                rt.run(main)


def test_wait_graph_is_empty_without_blocks():
    with analysis.attach(races=False):
        with Runtime(n_localities=1, workers_per_locality=2) as rt:
            rt.run(lambda: 42)
            graph = analysis.wait_graph()
    assert graph.find_cycle() is None
    assert "empty" in graph.render()


def test_wait_graph_without_detector_is_empty():
    graph = analysis.wait_graph()
    assert graph.waiters == [] and graph.edges == {}


def test_deadlock_emits_trace_event():
    from repro.runtime.trace import Tracer

    tracer = Tracer()
    pool = ThreadPool(1)
    orphan = Promise().get_future()
    with analysis.attach(races=False, tracer=tracer):
        failed = pool.submit(orphan.get, description="orphan-wait")
        pool.run_all()
    with pytest.raises(DeadlockError):
        failed.get()
    kinds = [event.kind for event in tracer.events]
    assert "deadlock" in kinds
