"""Asyncio HTTP gateway in front of a :class:`JobService`.

A deliberately small HTTP/1.1 front end (stdlib ``asyncio`` only -- the
repository bans thread pools) exposing the job lifecycle to clients::

    POST /v1/jobs                submit  {tenant, kind, params, dedupe_key?}
    GET  /v1/jobs                list    ?tenant=...&state=...
    GET  /v1/jobs/<id>           status
    POST /v1/jobs/<id>/cancel    cancel
    GET  /v1/counters            per-tenant service counters
    GET  /v1/healthz             liveness

Semantics mirror the service exactly: a deduped resubmission answers
``200`` with the *original* job (a fresh submit answers ``201``), and a
shed submission answers ``429`` with a ``Retry-After`` header -- the
HTTP spelling of :class:`~repro.errors.JobShedError`, never a silent
drop.  Handlers only touch the journal and in-memory indexes; the
actual work is driven by separate worker processes, so the gateway
stays responsive under load.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import (
    JobShedError,
    JobStateError,
    JournalCorruptError,
    UnknownJobError,
)
from .service import JobService

__all__ = ["JobGateway"]

_MAX_BODY = 1 << 20  # 1 MiB: job params are small; refuse absurd bodies.
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class JobGateway:
    """Serves the job API for one :class:`JobService`."""

    def __init__(self, service: JobService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # With port=0 the OS picks; record what we actually bound.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, headers = await self._handle_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500, reported
            status, payload, headers = 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write("\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body)
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, Any, dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}, {}
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}, {}
        if content_length > _MAX_BODY:
            return 413, {"error": "request body too large"}, {}
        raw = await reader.readexactly(content_length) if content_length else b""
        body: dict[str, Any] = {}
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"bad JSON body: {exc}"}, {}
            if not isinstance(body, dict):
                return 400, {"error": "JSON body must be an object"}, {}
        return self._route(method, target, body)

    # ------------------------------------------------------------------
    # routing

    def _route(
        self, method: str, target: str, body: dict[str, Any]
    ) -> tuple[int, Any, dict[str, str]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        if path == "/v1/healthz" and method == "GET":
            return 200, {"status": "ok", "open_jobs": len(self.service.open_jobs())}, {}
        if path == "/v1/counters" and method == "GET":
            return 200, self.service.counters(), {}
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list(query)
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            if rest.endswith("/cancel") and method == "POST":
                return self._cancel(rest[: -len("/cancel")])
            if "/" not in rest and method == "GET":
                return self._status(rest)
        return 404, {"error": f"no route for {method} {path}"}, {}

    def _submit(self, body: dict[str, Any]) -> tuple[int, Any, dict[str, str]]:
        tenant = body.get("tenant")
        kind = body.get("kind")
        params = body.get("params", {})
        if not isinstance(tenant, str) or not tenant:
            return 400, {"error": "submit needs a non-empty string 'tenant'"}, {}
        if not isinstance(kind, str) or not kind:
            return 400, {"error": "submit needs a non-empty string 'kind'"}, {}
        if not isinstance(params, dict):
            return 400, {"error": "'params' must be an object"}, {}
        try:
            job, created = self.service.submit(
                tenant,
                kind,
                params,
                dedupe_key=body.get("dedupe_key"),
                max_attempts=body.get("max_attempts"),
            )
        except JobShedError as exc:
            retry_after = max(0.0, exc.retry_after)
            return (
                429,
                {"error": str(exc), "retry_after": retry_after},
                {"Retry-After": str(max(1, math.ceil(retry_after)))},
            )
        except (ValueError, JournalCorruptError) as exc:
            return 400, {"error": str(exc)}, {}
        return (201 if created else 200), {
            "job": job.describe(),
            "created": created,
        }, {}

    def _status(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        try:
            return 200, self.service.status(job_id), {}
        except UnknownJobError as exc:
            return 404, {"error": str(exc)}, {}

    def _cancel(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        try:
            job = self.service.cancel(job_id)
        except UnknownJobError as exc:
            return 404, {"error": str(exc)}, {}
        except JobStateError as exc:
            return 409, {"error": str(exc)}, {}
        return 200, {"job": job.describe()}, {}

    def _list(self, query: dict[str, str]) -> tuple[int, Any, dict[str, str]]:
        try:
            jobs = self.service.list_jobs(
                tenant=query.get("tenant"), state=query.get("state")
            )
        except ValueError as exc:
            return 400, {"error": str(exc)}, {}
        return 200, {"jobs": [job.describe() for job in jobs]}, {}
