"""The discrete-event simulation engine.

A thin, deterministic event loop: events are popped in ``(time, seq)``
order, the virtual clock is advanced to the event time, and the event's
callback runs.  Callbacks may schedule further events (at or after the
current time).  ``run`` drains the queue; ``run_until`` stops at a deadline.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import SimulationError
from .clock import VirtualClock
from .events import Event, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Deterministic discrete-event loop over a :class:`VirtualClock`."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.queue = EventQueue()
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (statistics/debugging)."""
        return self._events_fired

    def schedule_at(self, time: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` at absolute virtual ``time`` (>= now)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule into the past: now={self.clock.now!r}, at={time!r}"
            )
        return self.queue.push(time, action)

    def schedule_after(self, delay: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.queue.push(self.clock.now + delay, action)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event."""
        return self.queue.cancel(event)

    def step(self) -> bool:
        """Fire the single earliest event. Returns False if queue was empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self._events_fired += 1
        event.fire()
        return True

    def run(self, max_events: int | None = None) -> float:
        """Drain the event queue; returns the final virtual time.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            fired = 0
            while self.queue:
                self.step()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
            return self.clock.now
        finally:
            self._running = False

    def run_until(self, deadline: float) -> float:
        """Fire events with ``time <= deadline``; advance the clock to it.

        The clock ends exactly at ``deadline`` even if no event fires there,
        matching the usual DES ``run_until`` contract.
        """
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline!r} is in the past (now={self.clock.now!r})"
            )
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while self.queue and self.queue.peek_time() <= deadline:
                self.step()
            self.clock.advance_to(deadline)
            return self.clock.now
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self.queue.clear()
        self.clock.reset()
        self._events_fired = 0
