"""The runtime: boots localities, routes parcels, drives progress.

A :class:`Runtime` stands for one job: ``n_localities`` virtual nodes,
each with a thread pool of one worker per (modelled) physical core, a
shared AGAS instance, and a parcelport whose delays come from the
machine model's interconnect.  Use it as a context manager::

    with Runtime(machine="xeon-e5-2660v3", n_localities=4) as rt:
        result = rt.run(main)

``rt.run`` executes ``main`` as the first HPX-thread on locality 0 and
cooperatively drives *all* localities until the result is ready --
including parcels that bounce work between nodes.
"""

from __future__ import annotations

import sys
import warnings
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..config import Config, default_config
from ..errors import (
    ConfigError,
    DeadlockError,
    ParcelDeadLetterError,
    ParcelError,
    QuiescenceWarning,
    RuntimeStateError,
)
from ..hardware.registry import MachineModel, machine as machine_lookup
from . import context as ctx
from . import instrument
from . import replay
from .context import _stack as _context_stack
from .futures import pending_demand_states
from .actions import get_action
from .agas.component import Component
from .backend import ExecutionBackend, create_backend
from .agas.gid import Gid
from .agas.service import AgasService
from .futures import Future, Promise
from .locality import Locality
from .parcel.parcel import Parcel
from .parcel.parcelport import (
    LoopbackParcelport,
    NetworkParcelport,
    Parcelport,
    RetryPolicy,
)
from .parcel.serialization import deserialize, serialize
from .threads.pool import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience.faults import FaultInjector

__all__ = ["Runtime"]

_INF = float("inf")


class Runtime:
    """One ParalleX job over one or more virtual localities."""

    def __init__(
        self,
        machine: str | MachineModel | None = None,
        n_localities: int = 1,
        workers_per_locality: int | None = None,
        config: Config | None = None,
        fault_injector: "FaultInjector | None" = None,
        _backend: "ExecutionBackend | None" = None,
    ) -> None:
        if n_localities < 1:
            raise RuntimeStateError("need at least one locality")
        self.config = config or default_config()
        self.fault_injector = fault_injector
        self._delivered_parcels: set[int] = set()
        #: Localities declared permanently dead (crash recovery).  Their
        #: queued work has been discarded and parcels routed to them are
        #: reported lost; AGAS re-homing moves their components away.
        self.decommissioned: set[int] = set()
        # Checkpoint/restore statistics (perfcounter sources, updated by
        # repro.resilience.checkpoint.CheckpointStore).
        self.checkpoints_saved = 0
        self.checkpoints_restored = 0
        self.checkpoint_fallbacks = 0
        self.checkpoint_corrupt_skipped = 0
        self.checkpoint_bytes_saved = 0
        self.checkpoint_save_time_s = 0.0
        self.checkpoint_restore_time_s = 0.0
        #: Patched by an attached Tracer: called as
        #: ``hook(kind, time, args)`` for checkpoint-layer events (a
        #: corrupt epoch skipped during restore, today).
        self.checkpoint_event_hook = None
        if isinstance(machine, str):
            machine = machine_lookup(machine)
        self.machine: Optional[MachineModel] = machine
        if workers_per_locality is None:
            workers_per_locality = (
                machine.spec.cores_per_node if machine is not None else 4
            )
        if workers_per_locality < 1:
            raise RuntimeStateError("need at least one worker per locality")
        self.n_localities = n_localities
        self.workers_per_locality = workers_per_locality
        self.agas = AgasService(n_localities)

        # Execution backend: where the localities live.  The default
        # virtual-clock backend is inert (every hook a no-op) so the
        # simulation paths below are bit-identical to the pre-backend
        # runtime.  Worker processes pass their pre-connected endpoint
        # via the private ``_backend`` parameter.
        self.backend: ExecutionBackend = (
            _backend if _backend is not None else create_backend(self.config)
        )
        self.backend.attach(self)
        #: Non-None exactly when other localities live in other OS
        #: processes; hot paths branch on this single reference.
        self._remote: ExecutionBackend | None = (
            self.backend if self.backend.distributed else None
        )
        if self._remote is not None:
            self._check_distributed_config(fault_injector)

        scheduler = self.config.get_str("threads.scheduler")
        steal_attempts = self.config.get_int("threads.steal_attempts")
        self.localities: list[Locality] = []
        for i in range(n_localities):
            core_ids = None
            if machine is not None and self.config.get_bool("threads.pin"):
                cpuset = machine.topology.pin_compact(
                    min(workers_per_locality, machine.spec.cores_per_node)
                )
                core_ids = list(cpuset)[:workers_per_locality]
                if len(core_ids) < workers_per_locality:
                    raise RuntimeStateError(
                        f"{machine.name} has only {len(core_ids)} physical cores; "
                        f"cannot pin {workers_per_locality} workers"
                    )
            pool = ThreadPool(
                workers_per_locality,
                scheduler=scheduler,
                core_ids=core_ids,
                name=f"locality-{i}",
                steal_attempts=steal_attempts,
            )
            self.localities.append(Locality(i, pool, self))

        # Parcel transport: a modelled network when we have a machine and
        # more than one node, otherwise loopback.
        self.parcelport: Parcelport
        if machine is not None and n_localities > 1:
            port = NetworkParcelport(
                machine.interconnect,
                n_localities,
                overlap=(
                    machine.calibration.network_overlap
                    and self.config.get_bool("parcel.overlap")
                ),
            )
            port.install_resolver(self._destination_of)
            self.parcelport = port
        else:
            self.parcelport = LoopbackParcelport()
        self.parcelport.install_router(self._route_parcel)
        # Hot-path config flags, resolved once: every parcel send consults
        # these, and Config.get_bool is a dict lookup plus type check.
        self._serialize_parcels = self.config.get_bool("parcel.serialize")
        self._zero_copy = self.config.get_bool("parcel.zero_copy") and isinstance(
            self.parcelport, LoopbackParcelport
        )
        self._network_port = isinstance(self.parcelport, NetworkParcelport)
        if fault_injector is not None:
            self.parcelport.fault_injector = fault_injector
            self.parcelport.retry_policy = self._retry_policy_from_config()
            self.parcelport.install_retry_scheduler(self._schedule_parcel_retry)
        # The dead-letter queue is bounded regardless of admission control
        # (a long outage window must not grow it without limit).
        self.parcelport.dlq_max = self.config.get_int("overload.dlq_max")
        self._overload = None
        if self.config.get_bool("overload.enabled"):
            from ..resilience.overload import OverloadController

            self._overload = OverloadController(self)
            self.parcelport.overload = self._overload
        # Parcel coalescing (see repro.runtime.parcel.batcher): per-
        # destination batches flushed on size/bytes/linger by the
        # progress engine.
        # Deterministic replay (schedule exploration) forbids every
        # reuse/coalescing optimisation whose observable behaviour
        # depends on object identity or flush timing: the parcel-shell
        # pool and the batcher below, plus the thread-shell and frame
        # pools inside each ThreadPool (those read the same flag via
        # repro.runtime.replay).
        self._deterministic_replay = (
            self.config.get_bool("runtime.deterministic_replay")
            or replay.deterministic
        )
        self._batcher = None
        if self.config.get_bool("parcel.batching") and not self._deterministic_replay:
            from .parcel.batcher import ParcelBatcher

            self._batcher = ParcelBatcher(
                self.parcelport,
                resolve=self._destination_of,
                max_parcels=self.config.get_int("parcel.batch_max_parcels"),
                max_bytes=self.config.get_int("parcel.batch_max_bytes"),
                linger_s=self.config.get_float("parcel.batch_linger_s"),
            )
            self.parcelport.batcher = self._batcher
        # Parcel-shell object pool.  Without fault injection or admission
        # control a parcel is unreferenced the moment its handler
        # finishes (no retries, no dedupe set, no credit bookkeeping), so
        # the hot loop recycles shells instead of allocating.  Any
        # at-least-once machinery disables the pool outright.
        self._parcel_pool: list[Parcel] | None = (
            []
            if (
                fault_injector is None
                and self._overload is None
                and not self._deterministic_replay
            )
            else None
        )
        self._started = False
        # Config-driven replay mode brackets the module-level flag for
        # the lifetime of this runtime so the thread pools (which cannot
        # see the config) observe it too; closed in stop().
        self._replay_bracket = False
        if (
            self.config.get_bool("runtime.deterministic_replay")
            and not replay.deterministic
        ):
            replay.enable()
            self._replay_bracket = True

    def _check_distributed_config(self, fault_injector: "FaultInjector | None") -> None:
        """Reject features whose semantics are defined on the virtual clock.

        The multiprocess backend runs on real wall time, so outage
        windows, credit timing, schedule replay, and modelled
        interconnects have no meaning there -- failing eagerly beats
        silently measuring something else.
        """
        requires = "requires the virtual-clock backend (runtime.backend='virtual')"
        if fault_injector is not None:
            raise ConfigError(
                f"fault injection {requires}: outage windows and parcel "
                "faults are defined on the virtual clock"
            )
        if self.config.get_bool("runtime.deterministic_replay") or replay.deterministic:
            raise ConfigError(
                f"deterministic replay / schedule exploration {requires}: "
                "real OS scheduling cannot be replayed"
            )
        if self.config.get_bool("overload.enabled"):
            raise ConfigError(
                f"overload admission control {requires}: credits and "
                "phi-accrual suspicion are virtual-clock quantities"
            )
        if self.machine is not None:
            raise ConfigError(
                f"modelled machine interconnects {requires}: the "
                "multiprocess backend measures the real host instead"
            )
        if not self.config.get_bool("parcel.serialize"):
            raise ConfigError(
                "parcel.serialize=False carries bodies by reference and "
                "cannot cross process boundaries"
            )
        processes = self.config.get_int("runtime.processes")
        if processes not in (0, self.n_localities):
            raise ConfigError(
                f"runtime.processes={processes} with n_localities="
                f"{self.n_localities}: the multiprocess backend runs one "
                "process per locality (use 0, or make them equal)"
            )

    def _retry_policy_from_config(self) -> RetryPolicy:
        """Reliable-delivery knobs, with the base ack-timeout derived from
        the network's round-trip estimate unless pinned explicitly."""
        base = self.config.get_float("parcel.retry_timeout_s")
        if base <= 0:
            if isinstance(self.parcelport, NetworkParcelport):
                base = self.parcelport.interconnect.rto_estimate(256, self.n_localities)
            else:
                base = 1e-5
        cap = self.config.get_float("parcel.retry_max_timeout_s")
        if cap <= 0:
            cap = 64.0 * base
        return RetryPolicy(
            enabled=self.config.get_bool("parcel.retry"),
            max_attempts=self.config.get_int("parcel.retry_max_attempts"),
            base_timeout_s=base,
            max_timeout_s=cap,
            backoff=self.config.get_float("parcel.retry_backoff"),
            jitter=self.config.get_float("parcel.retry_jitter"),
            seed=self.config.get_int("seed"),
        )

    # Lifecycle --------------------------------------------------------------
    def start(self) -> "Runtime":
        """Boot: push the base execution context (locality 0)."""
        if self._started:
            raise RuntimeStateError("runtime already started")
        # Futurized chains recurse through cooperative helping; give them
        # headroom.
        if sys.getrecursionlimit() < 20000:
            sys.setrecursionlimit(20000)
        # Bring up the transport (multiprocess: fork/spawn the workers)
        # before any execution context exists, so child processes never
        # inherit a live frame stack.
        self.backend.start()
        ctx.push(
            ctx.ExecutionContext(
                runtime=self,
                locality=self.localities[0],
                pool=self.localities[0].pool,
            )
        )
        # Demands created before this run (e.g. by an earlier runtime in
        # the same process) are not this job's lost continuations.
        self._preexisting_demands = {id(s) for s, _ in pending_demand_states()}
        self._started = True
        return self

    def stop(self) -> None:
        """Shut down: drain remaining work and pop the base context.

        The base context is popped even when the drain raises (e.g. the
        quiescence check found lost continuations) -- a failed shutdown
        must not wedge the global context stack.
        """
        if not self._started:
            raise RuntimeStateError("runtime is not started")
        try:
            if self._remote is not None:
                # Cross-process traffic still in flight must land (and
                # execute) before the local drain can mean anything.
                self._remote.quiesce()
            self.progress_all()
        finally:
            try:
                self.backend.stop()
            finally:
                ctx.pop()
                self._started = False
                self._close_replay_bracket()

    def _close_replay_bracket(self) -> None:
        if self._replay_bracket:
            self._replay_bracket = False
            replay.disable()

    def __enter__(self) -> "Runtime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started:
            if exc_type is None:
                self.stop()
            else:  # do not mask the user's exception with drain errors
                self.backend.abort()
                ctx.pop()
                self._started = False
                self._close_replay_bracket()

    # Queries ------------------------------------------------------------------
    def here(self) -> Locality:
        """The locality of the calling context."""
        return ctx.here()

    def find_all_localities(self) -> list[Locality]:
        return list(self.localities)

    def locality(self, locality_id: int) -> Locality:
        if not 0 <= locality_id < self.n_localities:
            raise RuntimeStateError(
                f"locality {locality_id} out of range [0, {self.n_localities})"
            )
        return self.localities[locality_id]

    @property
    def makespan(self) -> float:
        """Virtual completion time across all localities."""
        return max(loc.pool.makespan for loc in self.localities)

    @property
    def distributed(self) -> bool:
        """True when other localities live in other OS processes.

        Application drivers branch on this to route state access through
        parcels (invoke) instead of touching component objects directly
        -- direct references are stale copies in distributed mode.
        """
        return self._remote is not None

    # Progress engine -------------------------------------------------------------
    def _next_locality(self) -> tuple[Locality | None, float]:
        """The locality whose queued work can start earliest, with the
        (outage-deferred) start hint; ``(None, inf)`` when nothing is
        queued anywhere."""
        best: Locality | None = None
        best_hint = _INF
        injector = self.fault_injector
        decommissioned = self.decommissioned
        for loc in self.localities:
            if decommissioned and loc.locality_id in decommissioned:
                continue
            hint = loc.pool.next_start_hint()
            if hint == _INF:
                continue
            if injector is not None:
                hint = injector.defer_until_up(loc.locality_id, hint)
            if hint < best_hint:
                best_hint = hint
                best = loc
        return best, best_hint

    def _step_locality(self, loc: Locality, hint: float) -> None:
        pool = loc.pool
        # Outage deferral can only push a hint past the pool's own value
        # when an injector is installed; skip the re-derivation otherwise.
        if self.fault_injector is not None and hint > pool.next_start_hint():
            # The node is rebooting after a scheduled outage: its cores
            # become available again at the end of the window.
            for worker in pool.workers:
                worker.available_at = max(worker.available_at, hint)
        pool.step_one()

    def _raise_stalled(self) -> None:
        probe = instrument.probe
        if probe is not None:
            # A deadlock detector raises its own richer error (rendered
            # wait cycle) from this hook; fall through otherwise.
            probe.stalled(self)
        controller = self.parcelport.overload
        if controller is not None and controller.stalled_count():
            # Credit-stalled parcels with no runnable work to return a
            # credit can never proceed: shed them so the stall surfaces
            # as dead-lettered parcels instead of a bare deadlock.
            controller.shed_all_stalled("job stalled while awaiting send credits")
        dead = self.parcelport.dead_letters
        if dead:
            shown = ", ".join(
                f"#{parcel.parcel_id} ({reason})" for parcel, reason in dead[:5]
            )
            raise ParcelDeadLetterError(
                f"job stalled with {len(dead)} undeliverable parcel(s) in the "
                f"dead-letter queue: {shown}"
            )
        raise DeadlockError(
            "no runnable work on any locality while the awaited "
            "condition is unsatisfied"
        )

    def progress_until(self, predicate: Callable[[], bool]) -> None:
        """Run queued tasks anywhere in the job until ``predicate()``.

        Pools are stepped in earliest-virtual-start order, which keeps
        cross-locality timing approximately causal.  A stall with parcels
        in the dead-letter queue raises
        :class:`~repro.errors.ParcelDeadLetterError`; a plain stall is a
        :class:`~repro.errors.DeadlockError`.
        """
        batcher = self._batcher
        remote = self._remote
        while not predicate():
            # Distributed mode: poll the transport opportunistically (the
            # backend rate-limits internally) so relays and replies land
            # while local work is still running.
            if remote is not None and remote.maybe_service():
                continue
            loc, hint = self._next_locality()
            # Coalesced parcels whose linger expires before the next task
            # starts go out first (hint is inf on a stall, draining every
            # open batch before declaring deadlock); a flush enqueues
            # handler tasks, so re-evaluate from the top.
            if batcher is not None and batcher.pending and batcher.flush_due(hint):
                continue
            if loc is None:
                # Nothing runnable here, but the awaited value may be on
                # its way from another process: block on the transport
                # before diagnosing a stall.
                if remote is not None and remote.on_stall():
                    continue
                self._raise_stalled()
            self._step_locality(loc, hint)
        # The predicate can flip mid-task (e.g. the awaited future
        # resolves) with sends of that very task still parked in a batch.
        # Unbatched they would already be on the wire: drain them.
        if batcher is not None and batcher.pending:
            batcher.flush_all()
        if remote is not None:
            remote.flush()

    def progress_before(self, predicate: Callable[[], bool], deadline: float) -> bool:
        """Like :meth:`progress_until`, but only step work that can start
        at or before virtual ``deadline``; returns the final predicate
        value instead of raising on a stall (timeout machinery)."""
        batcher = self._batcher
        remote = self._remote
        try:
            while not predicate():
                if remote is not None and remote.maybe_service():
                    continue
                loc, hint = self._next_locality()
                if (
                    batcher is not None
                    and batcher.pending
                    and batcher.flush_due(min(hint, deadline))
                ):
                    continue
                if loc is None or hint > deadline:
                    # A non-blocking transport poll (timed waits must not
                    # park on the pipe) may still unblock the predicate.
                    if loc is None and remote is not None and remote.poll():
                        continue
                    return predicate()
                self._step_locality(loc, hint)
            return True
        finally:
            # Exit-drain, bounded by the deadline: parcels sent by tasks
            # stepped at or before it must go out (unbatched they would
            # have), while linger deadlines past it stay parked.
            if batcher is not None and batcher.pending:
                batcher.flush_due(deadline)
            if remote is not None:
                remote.flush()

    def progress_all(self) -> float:
        """Drain every pool; returns the job makespan.

        After the drain, checks for the *silent hang*: demanded futures
        (combinator/continuation targets, channel reads) that can never
        become ready now that no work remains.  Per the
        ``runtime.quiescence`` config this warns (default,
        :class:`~repro.errors.QuiescenceWarning`), raises
        :class:`~repro.errors.DeadlockError`, or is skipped
        (``"ignore"``).  An attached deadlock detector raises its own
        richer error with the rendered wait graph.
        """

        injector = self.fault_injector

        def quiescent() -> bool:
            if self._batcher is not None and self._batcher.pending:
                return False
            for loc in self.localities:
                if loc.locality_id in self.decommissioned:
                    continue
                if not loc.pool.pending():
                    continue
                if (
                    injector is not None
                    and injector.defer_until_up(
                        loc.locality_id, loc.pool.next_start_hint()
                    )
                    == _INF
                ):
                    # A permanently-failed locality that was never
                    # decommissioned (the crash landed after its useful
                    # work): its queued tasks are deferred to infinity
                    # and can never run.  The drain must treat it like a
                    # decommissioned node, not wait for it -- the same
                    # rule _next_locality already applies.
                    continue
                return False
            return True

        if not quiescent():
            self.progress_until(quiescent)
        self._check_quiescence()
        return self.makespan

    def _check_quiescence(self) -> None:
        probe = instrument.probe
        if probe is not None:
            probe.quiesced(self)
        mode = self.config.get_str("runtime.quiescence")
        if mode == "ignore":
            return
        skip = getattr(self, "_preexisting_demands", set())
        pending = sorted(
            label for state, label in pending_demand_states()
            if id(state) not in skip
        )
        if not pending:
            return
        shown = ", ".join(pending[:8])
        if len(pending) > 8:
            shown += f", ... ({len(pending) - 8} more)"
        message = (
            f"job quiesced with {len(pending)} demanded future(s) that can "
            f"never become ready: {shown} -- a continuation chain was lost "
            f"(unfired dataflow/when_* target or abandoned channel read); "
            f"attach repro.analysis for the full wait graph"
        )
        if mode == "raise":
            raise DeadlockError(message)
        warnings.warn(message, QuiescenceWarning, stacklevel=3)

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` as the main HPX-thread on locality 0 and wait."""
        if not self._started:
            raise RuntimeStateError("runtime is not started; use 'with Runtime(...)'")
        future = self.localities[0].pool.submit(
            fn, *args, kwargs=kwargs or None, description="hpx_main"
        )
        self.progress_until(future.is_ready)
        return future.get()

    # Components -------------------------------------------------------------------
    def new_component(self, component: Component, locality_id: int = 0) -> Gid:
        """Register a component on a locality; returns its GID."""
        if not isinstance(component, Component):
            raise RuntimeStateError("new_component needs a Component instance")
        gid = self.agas.register(component, home=locality_id)
        component.bind(gid, locality_id)
        if self._remote is not None:
            # Mirror the registration to every other process (the home
            # process receives the pickled component itself).
            self._remote.component_registered(component, gid, locality_id)
        return gid

    def invoke_async(self, gid: Gid, method: str, *args: Any, **kwargs: Any) -> Future:
        """Invoke a component action where the component lives (parcel)."""
        self.agas.resolve(gid)  # validate the target exists up front
        payload, by_ref = self._encode((("__component__", method, gid), args, kwargs))
        source, send_time = self._source_and_time()
        parcel = self._new_parcel(source, payload, gid, None, send_time)
        parcel.by_ref_body = by_ref
        return self._ship(parcel)

    def invoke(self, gid: Gid, method: str, *args: Any, **kwargs: Any) -> Any:
        return self.invoke_async(gid, method, *args, **kwargs).get()

    def invoke_apply(self, gid: Gid, method: str, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget component action (HPX ``hpx::post``).

        No reply parcel travels back, so one-way notifications (halo
        deposits, event signals) cost one transfer instead of two --
        which matters on platforms that cannot hide network time.
        """
        self.agas.resolve(gid)  # validate the target exists up front
        payload, by_ref = self._encode((("__component__", method, gid), args, kwargs))
        source, send_time = self._source_and_time()
        parcel = self._new_parcel(source, payload, gid, None, send_time)
        parcel.by_ref_body = by_ref
        parcel.fire_and_forget = True
        parcel.reply_promise = Promise()
        self.parcelport.send(parcel)

    def apply_at(
        self,
        locality_id: int,
        fn: Callable[..., Any] | str,
        *args: Any,
        kwargs: dict[str, Any] | None = None,
        priority: Any = None,
    ) -> None:
        """Fire-and-forget plain action on ``locality_id`` with a priority.

        Like :meth:`async_at` but one-way, and the parcel carries a
        :class:`~repro.runtime.threads.hpx_thread.ThreadPriority` for its
        handler task.  LOW-priority parcels are what overload admission
        treats as sheddable background traffic, so this is the front door
        for best-effort work (telemetry, speculative prefetch, the storm
        harness).  ``kwargs`` is an explicit dict (pool.submit-style) so
        action keyword arguments cannot collide with ``priority``.
        """
        self.locality(locality_id)  # validate
        payload, by_ref = self._encode((("__plain__", fn, None), args, kwargs or {}))
        source, send_time = self._source_and_time()
        parcel = self._new_parcel(source, payload, None, locality_id, send_time)
        parcel.by_ref_body = by_ref
        parcel.fire_and_forget = True
        parcel.reply_promise = Promise()
        parcel.priority = priority
        self.parcelport.send(parcel)

    # Remote plain actions -------------------------------------------------------------
    def async_at(
        self, locality_id: int, fn: Callable[..., Any] | str, *args: Any, **kwargs: Any
    ) -> Future:
        """Run a plain action on ``locality_id``; returns a future here.

        ``fn`` may be a module-level callable (shipped by reference) or a
        registered action name.
        """
        self.locality(locality_id)  # validate
        payload, by_ref = self._encode((("__plain__", fn, None), args, kwargs))
        source, send_time = self._source_and_time()
        parcel = self._new_parcel(source, payload, None, locality_id, send_time)
        parcel.by_ref_body = by_ref
        return self._ship(parcel)

    # Parcel plumbing ---------------------------------------------------------------
    def _new_parcel(
        self,
        source_locality: int,
        payload: bytes,
        target_gid: Gid | None,
        target_locality: int | None,
        send_time: float,
    ) -> Parcel:
        """A fresh logical parcel, recycling a pooled shell when possible.

        The pool only exists when no fault injector and no overload
        controller are installed -- the configurations under which a
        parcel is provably unreferenced once its handler returns.
        """
        pool = self._parcel_pool
        if pool:
            return pool.pop().reinit(
                source_locality, payload, target_gid, target_locality, send_time
            )
        return Parcel(
            source_locality=source_locality,
            payload=payload,
            target_gid=target_gid,
            target_locality=target_locality,
            send_time=send_time,
        )

    def _encode(self, parcel_body: tuple) -> tuple[bytes, tuple | None]:
        """Serialize a parcel body.

        Returns ``(wire_bytes, by_reference_body)``.  With
        ``parcel.serialize`` disabled (an ablation: skip the encode/decode
        work while keeping transport semantics) the body is carried by
        reference and only a header-sized placeholder goes "on the wire".

        With ``parcel.zero_copy`` enabled on a loopback (same-process)
        port, the body is *also* encoded -- picklability is still
        validated and the cost model still sees the honest byte count --
        but it travels by reference too, so delivery skips the decode.
        """
        if self._serialize_parcels:
            data = serialize(parcel_body)
            if self._zero_copy:
                return data, parcel_body
            return data, None
        return b"\0" * 64, parcel_body

    def _source_locality(self) -> int:
        frame = ctx.current_or_none()
        if frame is not None and frame.locality is not None:
            return frame.locality.locality_id
        return 0

    def _send_time(self) -> float:
        frame = _context_stack[-1] if _context_stack else None
        if frame is None or frame.pool is None:
            return 0.0
        task = frame.task
        if task is not None:
            return task.current_virtual_time()
        return frame.pool.makespan

    def _source_and_time(self) -> tuple[int, float]:
        """``(_source_locality(), _send_time())`` with one context fetch.

        Every parcel send needs both; resolving them from a single frame
        lookup (and reading the task clock directly instead of through
        ``pool.now``, which would re-fetch the frame) keeps the send
        path lean.
        """
        frame = ctx.current_or_none()
        if frame is None:
            return 0, 0.0
        locality = frame.locality
        source = locality.locality_id if locality is not None else 0
        pool = frame.pool
        if pool is None:
            return source, 0.0
        task = frame.task
        if task is not None:
            return source, task.current_virtual_time()
        return source, pool.makespan

    def _destination_of(self, parcel: Parcel) -> int:
        if parcel.target_locality is not None:
            return parcel.target_locality
        assert parcel.target_gid is not None
        return self.agas.home_of(parcel.target_gid)

    def _ship(self, parcel: Parcel) -> Future:
        """Attach a reply promise and hand the parcel to the port (which
        resolves the destination -- possibly re-resolving after migration)."""
        promise = Promise()
        parcel.reply_promise = promise
        self.parcelport.send(parcel)
        return promise.get_future()

    def _duplicate_delivery(self, parcel: Parcel) -> bool:
        """Receiver-side dedupe: with faults injected, delivery is
        at-least-once on the wire but exactly-once at the action layer."""
        if self.fault_injector is None:
            return False
        if parcel.parcel_id in self._delivered_parcels:
            return True
        self._delivered_parcels.add(parcel.parcel_id)
        return False

    def _route_parcel(self, parcel: Parcel, arrival_time: float) -> None:
        """Decode a parcel and spawn its handler on the destination pool."""
        destination = self._destination_of(parcel)
        remote = self._remote
        if remote is not None and destination != remote.my_id:
            # Distributed mode: the destination locality lives in another
            # OS process.  The payload is already real wire bytes
            # (parcel.serialize is mandatory here); by_ref_body stays
            # behind -- that is the zero-copy downgrade for cross-process
            # sends.  Port-side stats counted this send already.
            remote.forward_parcel(parcel, destination)
            return
        if destination in self.decommissioned:
            self.parcelport.report_loss(
                parcel,
                f"locality {destination} decommissioned",
                destination=destination,
            )
            return
        if self.fault_injector is not None and self.fault_injector.locality_down(
            destination, arrival_time
        ):
            # The destination node is inside an outage window when the
            # parcel lands: it is lost (and retried, if policy allows).
            self.parcelport.report_loss(
                parcel,
                f"locality {destination} down at t={arrival_time:.3g}",
                destination=destination,
            )
            return
        dest_pool = self.localities[destination].pool
        promise: Promise = parcel.reply_promise
        by_ref = parcel.by_ref_body
        head, args, kwargs = by_ref if by_ref is not None else deserialize(parcel.payload)
        kind = head[0]

        def handler() -> None:
            try:
                if kind == "__component__":
                    _, method, gid = head
                    home, component = self.agas.resolve(gid)
                    if home != destination:
                        # The object migrated between send and delivery:
                        # forward the parcel to its new home (AGAS routing).
                        self._reship(parcel, promise)
                        return
                    if self.fault_injector is not None and self._duplicate_delivery(
                        parcel
                    ):
                        return
                    self.agas.pin(gid)
                    try:
                        result = component.act(method, *args, **kwargs)
                    finally:
                        self.agas.unpin(gid)
                elif kind == "__plain__":
                    if self.fault_injector is not None and self._duplicate_delivery(
                        parcel
                    ):
                        return
                    fn = head[1]
                    if isinstance(fn, str):
                        fn = get_action(fn)
                    result = fn(*args, **kwargs)
                else:  # pragma: no cover - defensive
                    raise ParcelError(f"unknown parcel kind {kind!r}")
            except BaseException as exc:  # noqa: BLE001 - forwarded
                if parcel.fire_and_forget:
                    raise  # surface in the destination pool's failure list
                self._reply(promise, exc, destination, parcel.source_locality, is_error=True)
            else:
                if not parcel.fire_and_forget:
                    self._reply(promise, result, destination, parcel.source_locality)
            # With no injector and no overload controller nothing holds a
            # reference past this point (no retries, dedupe, or credit
            # bookkeeping), so the shell is recycled for the next send.
            # Early returns above (migration reship) keep their parcel.
            if shell_pool is not None and len(shell_pool) < 512:
                parcel.payload = b""
                parcel.by_ref_body = None
                parcel.reply_promise = None
                shell_pool.append(parcel)

        shell_pool = self._parcel_pool
        controller = self.parcelport.overload
        if controller is not None:
            inner = handler

            def handler() -> None:  # noqa: F811 - deliberate ack wrapper
                # Handler completion is the ack: it returns the send
                # credit, feeds the phi detector, and closes breakers.
                # Early returns (migration reship, duplicate dedupe) ack
                # too -- on_ack's holds_credit flip keeps the release
                # exactly-once, and a reshipped parcel re-admits fresh.
                try:
                    inner()
                finally:
                    frame = _context_stack[-1] if _context_stack else None
                    now = (
                        frame.task.current_virtual_time()
                        if frame is not None and frame.task is not None
                        else arrival_time
                    )
                    controller.on_ack(parcel, destination, now)

        dest_pool.submit(
            handler,
            ready_time=arrival_time,
            description=f"parcel#{parcel.parcel_id}",
            priority=parcel.priority,
        )

    def _schedule_parcel_resume(self, parcel: Parcel, at_time: float) -> None:
        """Re-send a stalled or deferred parcel at virtual ``at_time``.

        Runs as a tiny task on the *source* pool (like retries): a
        credit-holding resume bypasses re-admission via
        ``parcel.holds_credit``; a deferred LOW parcel re-enters
        admission with its deferral count bumped.
        """
        pool = self.localities[parcel.source_locality].pool

        def resume() -> None:
            # The parcel is off the wire awaiting this resume; the task
            # is its sole owner, so the stamp has no concurrent reader.
            parcel.send_time = max(pool.now, at_time)  # repro-lint: disable=PX811
            self.parcelport.send(parcel)

        pool.submit(
            resume,
            ready_time=at_time,
            description=f"parcel-resume#{parcel.parcel_id}",
        )

    def _schedule_parcel_retry(self, parcel: Parcel, at_time: float) -> None:
        """Retransmit a lost parcel at virtual ``at_time`` (ack-timeout).

        The retry runs as a tiny task on the *source* pool, so the
        retransmission consumes sender-side time exactly like the
        original send (including the overlap=False compute charge).
        """
        pool = self.localities[parcel.source_locality].pool

        def retransmit() -> None:
            # A lost parcel awaiting retry is owned by this task alone;
            # stamping the new send time races with nothing.
            parcel.send_time = pool.now  # repro-lint: disable=PX811
            self.parcelport.retransmit(parcel)

        pool.submit(
            retransmit,
            ready_time=at_time,
            description=f"parcel-retry#{parcel.parcel_id}",
        )

    @property
    def localities_failed(self) -> int:
        """Number of scheduled locality outages (perfcounter source)."""
        if self.fault_injector is None:
            return 0
        return len(self.fault_injector.locality_failures)

    # Permanent-crash recovery ----------------------------------------------------
    def decommission_locality(self, locality_id: int) -> int:
        """Declare a locality permanently dead; returns tasks discarded.

        The node's queued-but-unstarted work is dropped (each task's
        promise broken), future parcels routed to it are reported lost,
        and the progress engine stops considering it.  Its AGAS-homed
        components stay resolvable so the caller can re-home them with
        :meth:`~repro.runtime.agas.service.AgasService.evacuate`.
        Locality 0 hosts the AGAS root and the main thread and cannot be
        decommissioned (matching HPX, where console loss ends the job).
        """
        self.locality(locality_id)  # validate the id
        if locality_id == 0:
            raise RuntimeStateError(
                "locality 0 hosts the AGAS root and the main thread; "
                "it cannot be decommissioned"
            )
        dropped = self.localities[locality_id].pool.discard_pending()
        self.decommissioned.add(locality_id)
        return dropped

    def forgive_lost_continuations(self) -> int:
        """Exclude every currently-pending demanded future from this
        run's quiescence check; returns how many were forgiven.

        A checkpoint rollback abandons in-flight continuation chains by
        design -- the recomputation happens on fresh chains.  The
        abandoned dataflow/combinator targets can never fire, which the
        silent-hang check would otherwise report at shutdown.  Call this
        *after* discarding the old chains and *before* rebuilding.
        """
        if not hasattr(self, "_preexisting_demands"):
            return 0
        states = pending_demand_states()
        self._preexisting_demands.update(id(state) for state, _ in states)
        if instrument.probe is not None:
            instrument.probe.forgiven(self)
        return len(states)

    def _reship(self, parcel: Parcel, promise: Promise) -> None:
        parcel.send_time = self._send_time()
        parcel.reply_promise = promise
        self.parcelport.send(parcel)

    def _reply(
        self,
        promise: Promise,
        value: Any,
        from_locality: int,
        to_locality: int,
        is_error: bool = False,
    ) -> None:
        """Route a result back to the caller as a (modelled) reply parcel.

        The reply is materialised as a tiny task on the *source* pool
        whose ready time includes the return-path network delay, so the
        future's virtual ready time is honest.
        """
        if to_locality in self.decommissioned:
            # The caller's node died while the action ran: the reply has
            # nowhere to land (its promise was abandoned with the node).
            return
        delay = 0.0
        if from_locality != to_locality and self._network_port:
            size = len(serialize(value)) + 64 if self._serialize_parcels else 64
            delay = self.parcelport.interconnect.transfer_time(size, self.n_localities)
        send_time = self._send_time()
        if self._batcher is not None:
            # The reply delivery is a direct pool submission; any parcels
            # this task already coalesced toward the caller must not be
            # overtaken by it, so close that destination's batch first.
            self._batcher.flush_destination(to_locality)
        source_pool = self.localities[to_locality].pool

        def deliver() -> None:
            if is_error:
                promise.set_exception(value)
            else:
                promise.set_value(value)

        source_pool.submit(
            deliver, ready_time=send_time + delay, description="parcel-reply"
        )
