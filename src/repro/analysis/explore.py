"""Schedule-space model checking: drive the runtime through interleavings.

PR 3's sanitizers certify the *one* schedule the cooperative runtime
happened to execute.  This module certifies the schedule *space*: a
:class:`ScheduleController` hooks the ready-set seam in
:class:`~repro.runtime.threads.pool.ThreadPool` (every dispatch exposes
all queued HPX-threads and the controller picks), a strategy enumerates
interleavings, and an invariant oracle checks every terminal state
against the reference schedule:

* bit-identical results (``serialize(result)`` byte equality);
* identical ``/threads{total}`` counters;
* the overload conservation ledger (completed + shed + dead-lettered);
* quiescence -- no demanded future left unfulfilled;
* no deadlock (scheduler stall *or* silent hang);
* happens-before race freedom.

Strategies:

``dpor``
    Exhaustive search with dynamic partial-order reduction.  Each run
    records a per-task *footprint* from the same event vocabulary the
    vector-clock race detector uses (instrumented accesses, state
    fulfil/contribute/read, token put/get); two tasks are independent
    when their footprints cannot conflict, and schedules that merely
    swap independent neighbours are never revisited.
``exhaustive``
    The same search without the reduction (baseline; the tests assert
    DPOR runs measurably fewer schedules).
``pb``
    Iterative preemption bounding (CHESS-style): prefixes are explored
    in order of how many non-default choices they contain, bounded by
    ``preemptions``.
``random``
    Seeded random walk -- one uniform choice per decision point --
    for apps too large to search systematically.

Every run is replayable: the choice trace is a list of indices into the
canonically ordered ready set at each decision point, and a violating
schedule is greedily minimized and written as a JSON replay file that
``repro analyze --replay FILE`` re-executes bit-identically.  All runs
force ``runtime.deterministic_replay`` on, which disables the object
pools and the parcel batcher (object reuse across schedules would leak
identity into the probes).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..config import Config
from ..errors import DeadlockError, RuntimeStateError, ValidationError
from ..runtime import context as ctx
from ..runtime import instrument
from ..runtime.futures import pending_demand_states
from ..runtime.instrument import Probe
from ..runtime.parcel.serialization import serialize
from ..runtime.perfcounters import query
from ..runtime.runtime import Runtime
from .deadlock import DeadlockDetector
from .race import RaceDetector

__all__ = [
    "Decision",
    "ExploreApp",
    "ExploreReport",
    "PrefixStrategy",
    "RandomStrategy",
    "ReplayOutcome",
    "ScheduleController",
    "StepLimitError",
    "Violation",
    "explore",
    "get_app",
    "register_app",
    "registered_apps",
    "replay_file",
    "write_replay",
]

#: Serial of code running outside any controlled HPX-thread.
MAIN_SERIAL = 0

#: Default schedule budget for :func:`explore` (the corpus tests assert
#: every seeded bug is found within this many runs).
DEFAULT_BUDGET = 200

#: Default preemption bound for the ``pb`` strategy.
DEFAULT_PREEMPTIONS = 2

STRATEGIES = ("dpor", "exhaustive", "pb", "random")

#: Counters compared against the reference schedule.  Thread counts are
#: the ISSUE-mandated schedule invariant; parcel counts catch divergence
#: in communication structure.
_COUNTER_PATHS = (
    "/threads{total}/count/cumulative",
    "/parcels{total}/count/sent",
    "/parcels{total}/count/delivered",
)


class StepLimitError(RuntimeStateError):
    """A controlled schedule exceeded its per-run decision budget."""


# ---------------------------------------------------------------------------
# Choice strategies
# ---------------------------------------------------------------------------


class PrefixStrategy:
    """Replay recorded choices, then fall back to the default (index 0).

    The default choice is always the lowest-serial (oldest-submitted)
    ready task, so an empty prefix is the canonical reference schedule.
    """

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self.diverged = False

    def pick(self, point: int, n_candidates: int) -> int:
        if point < len(self.prefix):
            want = self.prefix[point]
            if 0 <= want < n_candidates:
                return want
            self.diverged = True
        return 0


class RandomStrategy:
    """Seeded uniform random walk over the schedule space."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed)

    def pick(self, point: int, n_candidates: int) -> int:
        return self._rng.randrange(n_candidates)


# ---------------------------------------------------------------------------
# The controller probe
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decision:
    """One dispatch decision: the canonical ready set and the pick."""

    serials: tuple[int, ...]
    index: int
    chosen: int
    pool: str


class _Footprint:
    """What one task touched -- the independence relation's raw material.

    Over-approximated on purpose (a task's whole lifetime, including
    work after it resumes from a block, counts as one footprint): that
    only makes DPOR consider *more* pairs dependent, which costs extra
    schedules but never soundness.
    """

    __slots__ = ("reads", "writes", "sync_mut", "sync_read")

    def __init__(self) -> None:
        self.reads: set[Any] = set()
        self.writes: set[Any] = set()
        self.sync_mut: set[int] = set()
        self.sync_read: set[int] = set()


def _dependent(a: _Footprint, b: _Footprint) -> bool:
    """Can reordering ``a`` and ``b`` change any observable state?"""
    if a.writes & (b.writes | b.reads) or b.writes & a.reads:
        return True
    if a.sync_mut & (b.sync_mut | b.sync_read) or b.sync_mut & a.sync_read:
        return True
    return False


class ScheduleController(Probe):
    """Turns every pool dispatch into a recorded, strategy-driven choice.

    Installed both as each pool's ``controller`` (the :meth:`choose`
    seam) and as an instrument probe (task serials in submission order,
    plus per-task footprints from the race detector's event
    vocabulary).  Serials are per-run -- the global tid counter persists
    across runs, so tids cannot index replay traces.
    """

    def __init__(self, strategy: Any, max_steps: int = 50_000) -> None:
        self.strategy = strategy
        self.max_steps = max_steps
        self.decisions: list[Decision] = []
        self._serials: dict[int, int] = {}
        self._next_serial = MAIN_SERIAL + 1
        self.footprints: dict[int, _Footprint] = {}
        #: Strong refs so id()-keyed maps cannot alias recycled objects.
        self._keepalive: dict[int, Any] = {}

    # Serial bookkeeping ----------------------------------------------------
    def _serial_of(self, task: Any) -> int:
        serial = self._serials.get(id(task))
        if serial is None:
            serial = self._serials[id(task)] = self._next_serial
            self._keepalive[id(task)] = task
            self._next_serial += 1
        return serial

    def task_created(self, parent: Any, task: Any) -> None:
        self._serial_of(task)

    # The dispatch seam -----------------------------------------------------
    def choose(self, pool: Any, candidates: list[Any]) -> Any:
        if len(self.decisions) >= self.max_steps:
            raise StepLimitError(
                f"schedule exceeded {self.max_steps} decision points"
            )
        order = sorted(candidates, key=self._serial_of)
        serials = tuple(self._serial_of(task) for task in order)
        index = self.strategy.pick(len(self.decisions), len(order))
        if not 0 <= index < len(order):  # defensive: strategies are clamped
            index = 0
        self.decisions.append(
            Decision(serials=serials, index=index, chosen=serials[index], pool=pool.name)
        )
        return order[index]

    @property
    def choices(self) -> list[int]:
        return [decision.index for decision in self.decisions]

    # Footprint recording ---------------------------------------------------
    def _footprint(self) -> _Footprint:
        task = ctx.current_task()
        serial = MAIN_SERIAL if task is None else self._serial_of(task)
        footprint = self.footprints.get(serial)
        if footprint is None:
            footprint = self.footprints[serial] = _Footprint()
        return footprint

    def _pin(self, obj: Any) -> int:
        key = id(obj)
        self._keepalive[key] = obj
        return key

    def access(self, owner: Any, field_name: str, kind: str) -> None:
        location = (self._pin(owner), field_name)
        footprint = self._footprint()
        if kind == "write":
            footprint.writes.add(location)
        else:
            footprint.reads.add(location)

    def state_fulfilled(self, state: Any) -> None:
        self._footprint().sync_mut.add(self._pin(state))

    def state_contribute(self, state: Any) -> None:
        self._footprint().sync_mut.add(self._pin(state))

    def state_read(self, state: Any) -> None:
        self._footprint().sync_read.add(self._pin(state))

    def token_put(self, obj: Any) -> None:
        self._footprint().sync_mut.add(self._pin(obj))

    def token_get(self, obj: Any) -> None:
        self._footprint().sync_mut.add(self._pin(obj))


# ---------------------------------------------------------------------------
# Apps under exploration
# ---------------------------------------------------------------------------


@dataclass
class ExploreApp:
    """A job the explorer can run many times.

    ``build(runtime)`` constructs the app's components and returns the
    zero-argument job callable to pass to ``Runtime.run``.  It is called
    once per schedule on a fresh runtime, so it must not capture state
    across calls.  ``invariant(runtime, result)`` (optional) returns an
    error message when an app-level invariant -- e.g. a conservation
    law -- does not hold at the terminal state, else None.
    """

    name: str
    build: Callable[[Runtime], Callable[[], Any]]
    n_localities: int = 1
    workers_per_locality: int = 2
    scheduler: str = "fifo"
    invariant: Callable[[Runtime, Any], str | None] | None = None
    config: dict[str, Any] = field(default_factory=dict)
    max_steps: int = 50_000


_REGISTRY: dict[str, ExploreApp] = {}


def register_app(app: ExploreApp) -> ExploreApp:
    """Make ``app`` addressable by name (CLI ``--app``, replay files)."""
    _REGISTRY[app.name] = app
    return app


def get_app(name: str) -> ExploreApp:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ValidationError(
            f"unknown explore app {name!r} (registered: {known})"
        ) from None


def registered_apps() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Running one schedule
# ---------------------------------------------------------------------------


@dataclass
class ScheduleOutcome:
    """Everything the oracle needs about one terminal schedule."""

    choices: list[int]
    decisions: list[Decision]
    footprints: dict[int, _Footprint]
    status: str  # ok | deadlock | hang | step-limit | error
    error: str = ""
    graph_dot: str | None = None
    result_blob: bytes | None = None
    counters: dict[str, float] = field(default_factory=dict)
    races: list[str] = field(default_factory=list)
    pending_demands: list[str] = field(default_factory=list)
    invariant_error: str | None = None

    def result_sha256(self) -> str | None:
        if self.result_blob is None:
            return None
        return hashlib.sha256(self.result_blob).hexdigest()


def _run_schedule(app: ExploreApp, strategy: Any) -> ScheduleOutcome:
    """Execute ``app`` once under ``strategy``; never raises for
    schedule-induced failures (they land in the outcome's status)."""
    controller = ScheduleController(strategy, max_steps=app.max_steps)
    race = RaceDetector(report="collect")
    deadlock = DeadlockDetector()
    overrides = dict(app.config)
    overrides.setdefault("threads.scheduler", app.scheduler)
    overrides.setdefault("runtime.quiescence", "ignore")
    overrides["runtime.deterministic_replay"] = True
    config = Config().replace(**{k.replace(".", "__"): v for k, v in overrides.items()})

    status, error, graph_dot = "ok", "", None
    result: Any = None
    result_blob: bytes | None = None
    counters: dict[str, float] = {}
    pending: list[str] = []
    invariant_error: str | None = None
    rt: Runtime | None = None
    ran = False
    instrument.install(race)
    instrument.install(deadlock)
    instrument.install(controller)
    try:
        try:
            with Runtime(
                n_localities=app.n_localities,
                workers_per_locality=app.workers_per_locality,
                config=config,
            ) as active:
                rt = active
                for locality in rt.localities:
                    locality.pool.controller = controller
                result = rt.run(app.build(rt))
                ran = True
        except StepLimitError as exc:
            status, error = "step-limit", str(exc)
        except DeadlockError as exc:
            # Before the job returned: a scheduler stall (wait cycle).
            # After: the drain quiesced with continuations that can
            # never fire -- the silent-hang variant.
            status = "hang" if ran else "deadlock"
            error = str(exc)
            graph = deadlock.last_graph or deadlock.wait_graph()
            graph_dot = graph.to_dot()
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            status, error = "error", f"{type(exc).__name__}: {exc}"
        else:
            result_blob = serialize(result)
            counters = {path: query(rt, path) for path in _COUNTER_PATHS}
            overload = rt._overload
            if overload is not None:
                counters["overload.ledger"] = float(
                    overload.parcels_completed
                    + overload.parcels_shed
                    + rt.parcelport.parcels_dead_lettered
                )
            skip = getattr(rt, "_preexisting_demands", set())
            pending = sorted(
                label
                for state, label in pending_demand_states()
                if id(state) not in skip
            )
            if app.invariant is not None:
                invariant_error = app.invariant(rt, result)
    finally:
        instrument.uninstall(controller)
        instrument.uninstall(deadlock)
        instrument.uninstall(race)
    return ScheduleOutcome(
        choices=controller.choices,
        decisions=controller.decisions,
        footprints=controller.footprints,
        status=status,
        error=error,
        graph_dot=graph_dot,
        result_blob=result_blob,
        counters=counters,
        races=[str(found) for found in race.findings()],
        pending_demands=pending,
        invariant_error=invariant_error,
    )


# ---------------------------------------------------------------------------
# The invariant oracle
# ---------------------------------------------------------------------------


@dataclass
class Violation:
    """A schedule on which an invariant does not hold."""

    kind: str  # deadlock | hang | race | invariant | quiescence |
    #            result-divergence | counter-divergence | step-limit | error
    detail: str
    choices: list[int] = field(default_factory=list)
    graph_dot: str | None = None

    def describe(self) -> str:
        text = f"[{self.kind}] after choices {self.choices}: {self.detail}"
        return text


def _violation_of(
    outcome: ScheduleOutcome, reference: ScheduleOutcome
) -> Violation | None:
    """First violated invariant of ``outcome`` vs the reference run."""
    if outcome.status in ("deadlock", "hang", "step-limit", "error"):
        return Violation(
            kind=outcome.status,
            detail=outcome.error,
            choices=list(outcome.choices),
            graph_dot=outcome.graph_dot,
        )
    if outcome.races:
        return Violation(
            kind="race",
            detail="; ".join(outcome.races[:2]),
            choices=list(outcome.choices),
        )
    if outcome.invariant_error:
        return Violation(
            kind="invariant",
            detail=outcome.invariant_error,
            choices=list(outcome.choices),
        )
    if outcome.pending_demands:
        return Violation(
            kind="quiescence",
            detail="demanded futures never fulfilled: "
            + ", ".join(outcome.pending_demands[:8]),
            choices=list(outcome.choices),
        )
    if outcome.result_blob != reference.result_blob:
        return Violation(
            kind="result-divergence",
            detail=(
                f"result sha256 {outcome.result_sha256()} != reference "
                f"{reference.result_sha256()} (solutions must be "
                f"bit-identical across schedules)"
            ),
            choices=list(outcome.choices),
        )
    if outcome.counters != reference.counters:
        diffs = [
            f"{path}: {outcome.counters.get(path)} != {reference.counters.get(path)}"
            for path in set(outcome.counters) | set(reference.counters)
            if outcome.counters.get(path) != reference.counters.get(path)
        ]
        return Violation(
            kind="counter-divergence",
            detail="; ".join(sorted(diffs)),
            choices=list(outcome.choices),
        )
    return None


# ---------------------------------------------------------------------------
# Exploration engines
# ---------------------------------------------------------------------------


@dataclass
class ExploreReport:
    """Result of one :func:`explore` call."""

    app: str
    strategy: str
    budget: int
    schedules_run: int = 0
    exhausted: bool = False
    violation: Violation | None = None
    minimize_runs: int = 0
    replay_path: str | None = None
    reference_sha256: str | None = None

    def summary(self) -> str:
        if self.violation is None:
            coverage = (
                "search space exhausted"
                if self.exhausted
                else f"budget {self.budget} reached"
            )
            return (
                f"{self.app} [{self.strategy}]: {self.schedules_run} schedules, "
                f"{coverage}, no violations"
            )
        text = (
            f"{self.app} [{self.strategy}]: VIOLATION after "
            f"{self.schedules_run} schedules -- {self.violation.describe()}"
        )
        if self.replay_path:
            text += f"\n  replay: {self.replay_path}"
        return text


def _trim(choices: Sequence[int]) -> list[int]:
    """Drop trailing default choices (they replay identically)."""
    trimmed = list(choices)
    while trimmed and trimmed[-1] == 0:
        trimmed.pop()
    return trimmed


def _preemptions(prefix: Sequence[int]) -> int:
    """Non-default choices in a prefix -- the CHESS preemption count."""
    return sum(1 for index in prefix if index)


def _guided_explore(
    app: ExploreApp,
    report: ExploreReport,
    reference: ScheduleOutcome,
    budget: int,
    dpor: bool,
    bound: int | None,
    ordered: bool,
) -> tuple[ScheduleOutcome, Violation] | None:
    """Systematic search seeded from the reference run.

    ``dpor=True`` expands only schedule prefixes that reverse a pair of
    *dependent* dispatches (classic backtrack-set DPOR over recorded
    footprints); ``dpor=False`` expands every alternative at every
    decision point.  ``bound`` caps preemptions per prefix; ``ordered``
    explores low-preemption prefixes first (iterative bounding).
    """
    seen: set[tuple[int, ...]] = set()
    frontier: list[list[int]] = []

    def enqueue(prefix: list[int]) -> None:
        trimmed = _trim(prefix)
        if not trimmed:
            return  # the reference schedule itself
        key = tuple(trimmed)
        if key in seen:
            return
        if bound is not None and _preemptions(trimmed) > bound:
            return
        seen.add(key)
        frontier.append(trimmed)

    def expand(outcome: ScheduleOutcome) -> None:
        decisions = outcome.decisions
        choices = outcome.choices
        if not dpor:
            for i, decision in enumerate(decisions):
                for alt in range(len(decision.serials)):
                    if alt != decision.index:
                        enqueue(choices[:i] + [alt])
            return
        footprints = outcome.footprints
        for j, later in enumerate(decisions):
            fp_later = footprints.get(later.chosen)
            if fp_later is None:
                continue
            for i in range(j - 1, -1, -1):
                earlier = decisions[i]
                fp_earlier = footprints.get(earlier.chosen)
                if fp_earlier is None or not _dependent(fp_earlier, fp_later):
                    continue
                # Reverse the race: try running the later task at the
                # earlier dependent decision point.  When it was not
                # enabled there, fall back to every alternative (the
                # conservative backtrack set).
                if later.chosen in earlier.serials:
                    alt = earlier.serials.index(later.chosen)
                    if alt != earlier.index:
                        enqueue(choices[:i] + [alt])
                else:
                    for alt in range(len(earlier.serials)):
                        if alt != earlier.index:
                            enqueue(choices[:i] + [alt])
                break  # nearest dependent predecessor only

    expand(reference)
    while frontier and report.schedules_run < budget:
        if ordered:
            pick = min(
                range(len(frontier)),
                key=lambda k: (_preemptions(frontier[k]), len(frontier[k])),
            )
            prefix = frontier.pop(pick)
        else:
            prefix = frontier.pop()
        outcome = _run_schedule(app, PrefixStrategy(prefix))
        report.schedules_run += 1
        violation = _violation_of(outcome, reference)
        if violation is not None:
            return outcome, violation
        expand(outcome)
    report.exhausted = not frontier
    return None


def _random_explore(
    app: ExploreApp,
    report: ExploreReport,
    reference: ScheduleOutcome,
    budget: int,
    seed: int,
) -> tuple[ScheduleOutcome, Violation] | None:
    walk = 0
    while report.schedules_run < budget:
        outcome = _run_schedule(app, RandomStrategy(seed + walk))
        walk += 1
        report.schedules_run += 1
        violation = _violation_of(outcome, reference)
        if violation is not None:
            return outcome, violation
    return None


def _minimize(
    app: ExploreApp,
    reference: ScheduleOutcome,
    outcome: ScheduleOutcome,
    violation: Violation,
    report: ExploreReport,
    max_runs: int = 64,
) -> tuple[ScheduleOutcome, Violation]:
    """Greedy choice-trace reduction: zero out non-default choices (and
    trim trailing defaults) while the same violation kind reproduces."""
    choices = _trim(outcome.choices)
    best_outcome, best_violation = outcome, violation
    progress = True
    while progress and report.minimize_runs < max_runs:
        progress = False
        for position in [k for k, c in enumerate(choices) if c][::-1]:
            trial = list(choices)
            trial[position] = 0
            trial = _trim(trial)
            candidate = _run_schedule(app, PrefixStrategy(trial))
            report.minimize_runs += 1
            found = _violation_of(candidate, reference)
            if found is not None and found.kind == violation.kind:
                choices = trial
                best_outcome, best_violation = candidate, found
                progress = True
                break
            if report.minimize_runs >= max_runs:
                break
    best_violation.choices = _trim(choices)
    return best_outcome, best_violation


def explore(
    app: ExploreApp | str,
    strategy: str = "dpor",
    budget: int = DEFAULT_BUDGET,
    preemptions: int = DEFAULT_PREEMPTIONS,
    seed: int = 0,
    minimize: bool = True,
    replay_path: str | None = None,
) -> ExploreReport:
    """Explore ``app``'s schedule space; returns the first violation
    found (minimized, optionally written as a replay file) or a clean
    report.  ``budget`` counts executed schedules, reference included.
    """
    if isinstance(app, str):
        app = get_app(app)
    if strategy not in STRATEGIES:
        raise ValidationError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}"
        )
    report = ExploreReport(app=app.name, strategy=strategy, budget=budget)
    reference = _run_schedule(app, PrefixStrategy([]))
    report.schedules_run += 1
    report.reference_sha256 = reference.result_sha256()
    # The reference schedule must itself be clean: a default-schedule
    # deadlock/race/invariant failure is a (degenerate) violation.
    found = _violation_of(reference, reference)
    if found is None and report.schedules_run < budget:
        if strategy == "random":
            hit = _random_explore(app, report, reference, budget, seed)
        else:
            hit = _guided_explore(
                app,
                report,
                reference,
                budget,
                dpor=(strategy == "dpor"),
                bound=preemptions if strategy == "pb" else None,
                ordered=(strategy == "pb"),
            )
        if hit is not None:
            outcome, found = hit
            if minimize:
                outcome, found = _minimize(app, reference, outcome, found, report)
    if found is not None:
        report.violation = found
        if replay_path is not None:
            final = _run_schedule(app, PrefixStrategy(found.choices))
            write_replay(replay_path, app, found, final, reference)
            report.replay_path = replay_path
    return report


# ---------------------------------------------------------------------------
# Replay files
# ---------------------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """Result of re-executing a recorded violating schedule."""

    reproduced: bool
    bit_identical: bool
    violation: Violation | None
    recorded_kind: str
    outcome: ScheduleOutcome

    def summary(self) -> str:
        if self.reproduced and self.bit_identical:
            return (
                f"replay OK: [{self.recorded_kind}] reproduced bit-identically"
            )
        if self.reproduced:
            return (
                f"replay DIVERGED: [{self.recorded_kind}] reproduced but the "
                f"terminal state hash changed"
            )
        got = self.violation.kind if self.violation is not None else "no violation"
        return f"replay FAILED: recorded [{self.recorded_kind}], got {got}"


def write_replay(
    path: str,
    app: ExploreApp,
    violation: Violation,
    outcome: ScheduleOutcome,
    reference: ScheduleOutcome,
) -> None:
    """Persist a violating schedule as a deterministic replay file."""
    payload = {
        "version": 1,
        "kind": "repro-schedule-replay",
        "app": app.name,
        "choices": list(violation.choices),
        "violation": {"kind": violation.kind, "detail": violation.detail},
        "result_sha256": outcome.result_sha256(),
        "reference_sha256": reference.result_sha256(),
        "graph_dot": violation.graph_dot,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def replay_file(path: str) -> ReplayOutcome:
    """Re-execute a replay file's schedule and verify it reproduces."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("kind") != "repro-schedule-replay":
        raise ValidationError(f"{path} is not a schedule replay file")
    app = get_app(data["app"])
    reference = _run_schedule(app, PrefixStrategy([]))
    outcome = _run_schedule(app, PrefixStrategy(list(data["choices"])))
    violation = _violation_of(outcome, reference)
    recorded_kind = data["violation"]["kind"]
    reproduced = violation is not None and violation.kind == recorded_kind
    bit_identical = outcome.result_sha256() == data.get("result_sha256")
    return ReplayOutcome(
        reproduced=reproduced,
        bit_identical=bit_identical,
        violation=violation,
        recorded_kind=recorded_kind,
        outcome=outcome,
    )


# ---------------------------------------------------------------------------
# Demo apps (the CLI's --explore targets)
# ---------------------------------------------------------------------------


def _scale3(values: Any) -> Any:
    return values * 3.0


def _seg_sum(values: Any) -> float:
    return float(values.sum())


def _build_heat1d(rt: Runtime) -> Callable[[], Any]:
    from ..stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    nx = 8 * rt.n_localities
    solver = DistributedHeat1D(rt, nx, Heat1DParams())
    solver.initialize(analytic_heat_profile(nx))
    return lambda: solver.run(2)


def _build_jacobi2d(rt: Runtime) -> Callable[[], Any]:
    import numpy as np

    from ..stencil.jacobi2d_dist import DistributedJacobi2D

    ny = 2 * rt.n_localities + 2
    nx = 8
    solver = DistributedJacobi2D(rt, ny, nx)
    field_0 = np.linspace(0.0, 1.0, ny * nx, dtype=np.float64).reshape(ny, nx)
    solver.initialize(field_0)
    return lambda: solver.run(2)


def _build_partitioned_vector(rt: Runtime) -> Callable[[], Any]:
    from ..containers.partitioned_vector import PartitionedVector

    def job() -> Any:
        vector = PartitionedVector(rt, 12, initial=1.5, segments_per_locality=2)
        vector.map_inplace(_scale3)
        total = vector.reduce(_seg_sum, lambda a, b: a + b, 0.0)
        return total, vector.to_array()

    return job


DEMO_APPS = ("heat1d", "jacobi2d", "partitioned_vector")

register_app(
    ExploreApp(name="heat1d", build=_build_heat1d, n_localities=2,
               workers_per_locality=2)
)
register_app(
    ExploreApp(name="jacobi2d", build=_build_jacobi2d, n_localities=2,
               workers_per_locality=2)
)
register_app(
    ExploreApp(name="partitioned_vector", build=_build_partitioned_vector,
               n_localities=2, workers_per_locality=2)
)
