"""Seeded-bug corpus for the schedule-space explorer.

Each module hides one concurrency bug that a *single-schedule* run --
even with the race and deadlock sanitizers attached -- does not trip,
because the default FIFO dispatch order happens to mask it.  The
schedule explorer (:mod:`repro.analysis.explore`) must find each bug
within its default budget:

* :mod:`.race_hidden` -- a write-write data race on component state,
  guarded by an unsynchronized flag that hides the second write on the
  default schedule;
* :mod:`.andgate_deadlock` -- an AndGate/Channel protocol that
  deadlocks only when two specific preemptions invert the cooperative
  help stack;
* :mod:`.conservation` -- a lost-update on a plain (un-instrumented)
  ledger that breaks the ``completed == submitted`` conservation law
  under a two-preemption interleaving;
* :mod:`.race_fixed` -- the repaired variant of ``race_hidden``;
* :mod:`.independent` -- three workers with disjoint state, the
  showcase for DPOR's pruning over exhaustive enumeration.

Every module exports ``make_app() -> ExploreApp``; importing the
package registers all four under ``corpus/<name>`` so the CLI can run
them by name (``repro analyze --explore --app corpus/race_hidden``).
"""

from __future__ import annotations

from repro.analysis.explore import ExploreApp, register_app

from . import andgate_deadlock, conservation, independent, race_fixed, race_hidden

__all__ = [
    "CORPUS",
    "andgate_deadlock",
    "conservation",
    "independent",
    "race_fixed",
    "race_hidden",
]

#: app name -> (app, expected violation kind; None for the clean variant)
CORPUS: dict[str, tuple[ExploreApp, str | None]] = {
    "corpus/race_hidden": (race_hidden.make_app(), "race"),
    "corpus/andgate_deadlock": (andgate_deadlock.make_app(), "deadlock"),
    "corpus/conservation": (conservation.make_app(), "invariant"),
    "corpus/race_fixed": (race_fixed.make_app(), None),
    "corpus/independent": (independent.make_app(), None),
}

for _app, _kind in CORPUS.values():
    register_app(_app)
