"""One-call metrics collection: counters + histogram summaries.

Benchmarks (and the CLI) want a single JSON-ready artifact per run --
the runtime counters that explain the result plus the latency
distributions behind them.  :func:`collect_metrics` assembles it; the
actual file writing lives in :func:`repro.reporting.write_metrics_json`
so every artifact in ``benchmarks/out/`` has the same shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..runtime import perfcounters
from .histograms import latency_histograms

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from ..runtime.trace import Tracer

__all__ = ["STANDARD_COUNTERS", "OVERLOAD_COUNTERS", "collect_metrics"]

#: The counters every metrics artifact reports by default: enough to
#: reconstruct the paper's utilization/latency arguments for a run.
STANDARD_COUNTERS = (
    "/threads{total}/count/cumulative",
    "/threads{total}/count/stolen",
    "/threads{total}/time/average",
    "/threads{total}/time/busy",
    "/threads{total}/idle-rate",
    "/parcels{total}/count/sent",
    "/parcels{total}/data/sent",
    "/parcels{total}/count/delivered",
    "/parcels{total}/time/average-latency",
    "/runtime/uptime",
)

#: Appended to the defaults when the runtime has an overload controller
#: installed (``overload.enabled``): the graceful-degradation story of a
#: run is unreadable without its shed/defer/breaker decisions.
OVERLOAD_COUNTERS = (
    "/overload{total}/count/shed",
    "/overload{total}/count/deferred",
    "/overload{total}/count/credits-stalled",
    "/overload{total}/count/credit-resumes",
    "/overload{total}/count/completed",
    "/overload{total}/queue/stalled",
    "/breaker{total}/count/opens",
    "/breaker{total}/count/half-open-probes",
    "/phi{total}/suspicion",
    "/parcels{total}/count/dead-letter-evicted",
)


def collect_metrics(
    runtime: "Runtime",
    tracer: "Tracer | None" = None,
    counters: Sequence[str] | None = None,
) -> dict:
    """Snapshot a runtime's counters (and a tracer's distributions).

    Returns a JSON-ready dict: ``{"counters": {path: value},
    "histograms": {name: summary}}`` -- histograms only when a tracer
    that observed the run is supplied.
    """
    if counters is not None:
        paths = list(counters)
    else:
        paths = list(STANDARD_COUNTERS)
        if getattr(runtime, "_overload", None) is not None:
            paths.extend(OVERLOAD_COUNTERS)
    payload: dict = {
        "counters": {path: perfcounters.query(runtime, path) for path in paths}
    }
    if tracer is not None:
        payload["histograms"] = {
            name: histogram.summary()
            for name, histogram in latency_histograms(tracer).items()
        }
    return payload
