"""Numerical validation: analytic solutions and error norms.

The simulation substitutes the paper's hardware, not its mathematics --
these helpers pin the solvers to ground truth:

* the periodic heat equation damps each Fourier mode analytically, so a
  sine initial condition has a closed-form solution at any time;
* small Jacobi problems can be solved directly (dense linear algebra)
  and the iterative solver must converge to that fixed point.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .heat1d import Heat1DParams

__all__ = [
    "analytic_heat_profile",
    "discrete_heat_decay_factor",
    "l2_error",
    "max_error",
    "jacobi_dense_solution",
]


def analytic_heat_profile(nx: int, mode: int = 1) -> np.ndarray:
    """A single periodic Fourier mode ``sin(2 pi m x / L)`` on ``nx`` points."""
    if nx < 2:
        raise ValidationError("need at least two points")
    if mode < 1 or 2 * mode >= nx:
        raise ValidationError(f"mode {mode} not resolvable on {nx} points")
    x = np.arange(nx) / nx
    return np.sin(2.0 * np.pi * mode * x)


def discrete_heat_decay_factor(nx: int, mode: int, params: Heat1DParams, steps: int) -> float:
    """Exact per-``steps`` damping of a Fourier mode under the 3-point
    explicit scheme.

    The discrete operator's eigenvalue for mode ``m`` is
    ``1 - 4 k sin^2(pi m / nx)`` with ``k = alpha dt / dx^2`` -- the
    solver must damp a sine initial condition by exactly this factor per
    step (up to roundoff), which makes a sharp correctness oracle.
    """
    if steps < 0:
        raise ValidationError("steps must be non-negative")
    k = params.k
    eigenvalue = 1.0 - 4.0 * k * np.sin(np.pi * mode / nx) ** 2
    return float(eigenvalue**steps)


def l2_error(a: np.ndarray, b: np.ndarray) -> float:
    """Relative L2 error ``||a - b|| / max(||b||, eps)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = max(float(np.linalg.norm(b)), np.finfo(np.float64).tiny)
    return float(np.linalg.norm(a - b) / denom)


def max_error(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum absolute pointwise error."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def jacobi_dense_solution(boundary: np.ndarray) -> np.ndarray:
    """Solve the Laplace fixed point of the 5-point Jacobi iteration.

    Given a ``(ny, nx)`` array whose *edge* values are the Dirichlet
    boundary, returns the harmonic interior the Jacobi sweeps converge
    to, computed by directly solving the linear system (small grids
    only; the matrix is ``(ny-2)(nx-2)`` square).
    """
    field = np.asarray(boundary, dtype=np.float64)
    if field.ndim != 2 or field.shape[0] < 3 or field.shape[1] < 3:
        raise ValidationError("need a 2D grid of at least 3x3")
    ny, nx = field.shape
    n_interior = (ny - 2) * (nx - 2)
    if n_interior > 10_000:
        raise ValidationError(
            f"{n_interior} interior unknowns is too large for the dense oracle"
        )

    def idx(y: int, x: int) -> int:
        return (y - 1) * (nx - 2) + (x - 1)

    matrix = np.zeros((n_interior, n_interior))
    rhs = np.zeros(n_interior)
    for y in range(1, ny - 1):
        for x in range(1, nx - 1):
            row = idx(y, x)
            matrix[row, row] = 1.0
            for yy, xx in ((y - 1, x), (y + 1, x), (y, x - 1), (y, x + 1)):
                if 1 <= yy <= ny - 2 and 1 <= xx <= nx - 2:
                    matrix[row, idx(yy, xx)] = -0.25
                else:
                    rhs[row] += 0.25 * field[yy, xx]
    interior = np.linalg.solve(matrix, rhs)
    solution = np.array(field, copy=True)
    solution[1:-1, 1:-1] = interior.reshape(ny - 2, nx - 2)
    return solution
