"""Remote channels: the channel LCO as an AGAS component.

HPX's ``hpx::lcos::channel`` is itself a component, so two localities
can rendezvous through a pipe neither of them hosts.  This wraps the
local :class:`~repro.runtime.lco.channel.Channel` in a component and
gives callers a location-transparent handle: ``set``/``get`` work the
same whether the channel lives here or three network hops away (the
difference shows up only in virtual time).
"""

from __future__ import annotations

from typing import Any

from ...errors import ChannelClosedError
from ..agas.component import Component
from ..agas.gid import Gid
from ..futures import Future
from ..runtime import Runtime
from .channel import Channel

__all__ = ["ChannelComponent", "RemoteChannel"]


class ChannelComponent(Component):
    """The hosted end: a channel plus its remote-invokable surface."""

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self._channel = Channel(name)

    def ch_set(self, value: Any) -> None:
        self._channel.set(value)

    def ch_get(self) -> Any:
        """Blocking receive, executed *at the channel's home*.

        The handler task suspends cooperatively until a value arrives --
        other parcels (including the matching ``ch_set``) keep flowing.
        """
        return self._channel.get().get()  # repro-lint: disable=PX301 -- suspension intended

    def ch_try_get(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, value)`` or ``(False, None)``."""
        if len(self._channel):
            return True, self._channel.get().get()  # repro-lint: disable=PX301 -- buffered, cannot block
        return False, None

    def ch_close(self) -> int:
        return self._channel.close()

    def ch_len(self) -> int:
        return len(self._channel)


class RemoteChannel:
    """Location-transparent handle to a channel component."""

    def __init__(self, runtime: Runtime, gid: Gid) -> None:
        self.runtime = runtime
        self.gid = gid

    @classmethod
    def create(cls, runtime: Runtime, locality_id: int = 0, name: str = "") -> "RemoteChannel":
        """Create a channel hosted on ``locality_id``."""
        component = ChannelComponent(name)
        gid = runtime.new_component(component, locality_id=locality_id)
        return cls(runtime, gid)

    @property
    def home(self) -> int:
        """Locality currently hosting the channel (follows migration)."""
        return self.runtime.agas.home_of(self.gid)

    # Channel surface -------------------------------------------------------------
    def set(self, value: Any) -> Future:
        """Send a value; the returned future confirms delivery."""
        return self.runtime.invoke_async(self.gid, "ch_set", value)

    def get(self) -> Future:
        """Future for the next value (resolved at the channel's home)."""
        return self.runtime.invoke_async(self.gid, "ch_get")

    def get_sync(self) -> Any:
        return self.get().get()

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking receive across the network."""
        result: tuple[bool, Any] = self.runtime.invoke(self.gid, "ch_try_get")
        return result

    def close(self) -> int:
        """Close the hosted channel; pending remote getters fail with
        :class:`ChannelClosedError` just like local ones."""
        return int(self.runtime.invoke(self.gid, "ch_close"))

    def __len__(self) -> int:
        return int(self.runtime.invoke(self.gid, "ch_len"))


# Re-export for the error contract's visibility at this import site.
_ = ChannelClosedError
