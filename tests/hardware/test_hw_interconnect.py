"""Unit tests for the network model."""

import pytest

from repro.errors import TopologyError
from repro.hardware import Interconnect, machine


def ib():
    return Interconnect("IB", latency_s=2e-6, bandwidth_gbs=12.5)


def test_validation():
    with pytest.raises(TopologyError):
        Interconnect("bad", latency_s=-1, bandwidth_gbs=10)
    with pytest.raises(TopologyError):
        Interconnect("bad", latency_s=0, bandwidth_gbs=0)
    with pytest.raises(TopologyError):
        Interconnect("bad", latency_s=0, bandwidth_gbs=10, injection_efficiency=0)
    with pytest.raises(TopologyError):
        Interconnect("bad", latency_s=0, bandwidth_gbs=10, congestion_per_node_s=-1)


def test_small_message_is_latency_bound():
    net = ib()
    t = net.transfer_time(8)
    assert t == pytest.approx(2e-6, rel=1e-3)


def test_large_message_is_bandwidth_bound():
    net = ib()
    one_gb = 10**9
    t = net.transfer_time(one_gb)
    assert t == pytest.approx(one_gb / 12.5e9, rel=1e-2)


def test_injection_efficiency_slows_transfers():
    slow = Interconnect("slow", 2e-6, 12.5, injection_efficiency=0.1)
    assert slow.transfer_time(10**9) > ib().transfer_time(10**9) * 5


def test_congestion_grows_with_nodes():
    net = Interconnect("cong", 1e-6, 12.5, congestion_per_node_s=1e-3)
    assert net.transfer_time(8, n_nodes=8) > net.transfer_time(8, n_nodes=2)


def test_invalid_args():
    net = ib()
    with pytest.raises(TopologyError):
        net.transfer_time(-1)
    with pytest.raises(TopologyError):
        net.transfer_time(1, n_nodes=0)


def test_halo_exchange_single_node_is_free():
    assert ib().halo_exchange_time(1024, 1) == 0.0


def test_halo_exchange_multi_node():
    net = ib()
    assert net.halo_exchange_time(72, 8) == pytest.approx(net.transfer_time(72, 8))


def test_kunpeng_network_is_far_worse_than_xeon():
    """Sec. VII-A: the Hi1616 cannot exploit the InfiniBand fabric."""
    kunpeng = machine("kunpeng916").interconnect
    xeon = machine("xeon-e5-2660v3").interconnect
    assert kunpeng.transfer_time(72, 8) > 100 * xeon.transfer_time(72, 8)
    assert kunpeng.effective_bandwidth_gbs < xeon.effective_bandwidth_gbs / 5
