"""JobRunner: epoch checkpointing, crash-resume bit-identity, corrupt skip."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.service import JobRunner, job_digest
from repro.service.jobs import Job


def _job(job_id="job-x", kind="stencil1d", attempts=1, **params):
    return Job(
        job_id=job_id,
        tenant="t",
        kind=kind,
        params=params,
        dedupe_key=None,
        max_attempts=3,
        submitted_at=0.0,
        attempts=attempts,
    )


#: Small-but-real stencil workload: 3 epochs of 4 steps at nx=16.
STENCIL = dict(nx=16, steps=12, localities=1, distributed=False)


class _Interrupt(Exception):
    """Stands in for SIGKILL: the attempt dies after a checkpoint lands."""


class TestEpochTrail:
    def test_checkpoints_every_epoch_and_prunes(self, tmp_path):
        epochs_seen = []
        runner = JobRunner(
            tmp_path,
            epoch_steps=4,
            keep_epochs=2,
            after_epoch=lambda job_id, steps: epochs_seen.append(steps),
        )
        result = runner.run(_job(**STENCIL))
        assert epochs_seen == [4, 8, 12]
        assert result["steps"] == 12 and result["epochs"] == 3
        assert result["resumed_at"] is None
        # Only keep_epochs checkpoint files survive the prune.
        assert runner._saved_epochs("job-x") == [8, 12]

    def test_partial_final_epoch(self, tmp_path):
        runner = JobRunner(tmp_path, epoch_steps=5)
        result = runner.run(_job(**dict(STENCIL, steps=12)))
        assert result["epochs"] == 3  # 5 + 5 + 2
        assert runner._saved_epochs("job-x") == [10, 12]

    def test_cleanup_removes_the_trail(self, tmp_path):
        runner = JobRunner(tmp_path, epoch_steps=4)
        runner.run(_job(**STENCIL))
        runner.cleanup("job-x")
        assert runner._saved_epochs("job-x") == []
        assert runner.restore_latest("job-x") is None


class TestResume:
    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        reference = JobRunner(tmp_path / "ref", epoch_steps=4)
        expected = reference.run(_job(**STENCIL))["digest"]

        def die_after_first_epoch(job_id, steps_done):
            if steps_done == 4:
                raise _Interrupt

        runner = JobRunner(
            tmp_path / "chaos", epoch_steps=4, after_epoch=die_after_first_epoch
        )
        with pytest.raises(_Interrupt):
            runner.run(_job(attempts=1, **STENCIL))
        # Re-drive (attempt 2): resumes from the surviving checkpoint and
        # produces a result bit-identical to the uninterrupted run.
        runner.after_epoch = None
        result = runner.run(_job(attempts=2, **STENCIL))
        assert result["resumed_at"] == 4
        assert result["digest"] == expected

    def test_corrupt_newest_checkpoint_is_skipped_not_trusted(self, tmp_path):
        runner = JobRunner(tmp_path, epoch_steps=4, keep_epochs=3)
        expected = runner.run(_job(**STENCIL))["digest"]
        # Bit-rot the newest checkpoint; resume must fall back to the
        # next older epoch and still converge to the same answer.
        newest = runner._epoch_path("job-x", 12)
        blob = bytearray(open(newest, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(newest, "wb").write(bytes(blob))
        field, steps_done = runner.restore_latest("job-x")
        assert steps_done == 8
        assert runner.corrupt_skipped == 1
        result = runner.run(_job(attempts=2, **STENCIL))
        assert result["resumed_at"] == 8
        assert result["digest"] == expected

    def test_all_checkpoints_corrupt_restarts_from_scratch(self, tmp_path):
        runner = JobRunner(tmp_path, epoch_steps=4, keep_epochs=3)
        runner.run(_job(**STENCIL))
        for steps_done in runner._saved_epochs("job-x"):
            path = runner._epoch_path("job-x", steps_done)
            open(path, "wb").write(b"not a checkpoint")
        assert runner.restore_latest("job-x") is None
        assert runner.corrupt_skipped == 3

    def test_shape_mismatch_is_refused(self, tmp_path):
        runner = JobRunner(tmp_path, epoch_steps=4)
        runner.run(_job(**STENCIL))
        with pytest.raises(ValidationError, match="does not match nx"):
            runner.run(_job(attempts=2, **dict(STENCIL, nx=32)))


class TestKinds:
    def test_faulty_fails_then_succeeds(self, tmp_path):
        runner = JobRunner(tmp_path)
        with pytest.raises(RuntimeError, match="injected failure"):
            runner.run(_job(kind="faulty", attempts=1, fail_attempts=1))
        assert runner.run(_job(kind="faulty", attempts=2, fail_attempts=1))

    def test_unknown_kind_refused(self, tmp_path):
        with pytest.raises(ValidationError, match="unknown job kind"):
            JobRunner(tmp_path).run(_job(kind="nope"))

    def test_distributed_matches_reference(self, tmp_path):
        # The distributed runtime path must agree bit-for-bit with the
        # pure-NumPy reference path for the same parameters.
        ref = JobRunner(tmp_path / "a", epoch_steps=6).run(
            _job(nx=16, steps=6, distributed=False)
        )
        dist = JobRunner(tmp_path / "b", epoch_steps=6).run(
            _job(nx=16, steps=6, localities=2, distributed=True)
        )
        assert dist["digest"] == ref["digest"]

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            JobRunner(tmp_path, epoch_steps=0)
        with pytest.raises(ValidationError):
            JobRunner(tmp_path, keep_epochs=0)


def test_job_digest_is_canonical():
    field = np.linspace(0.0, 1.0, 8)
    assert job_digest(field) == job_digest(field.copy())
    assert job_digest(field) == job_digest(np.asarray(field, dtype=np.float64))
    assert job_digest(field) != job_digest(field + 1e-12)
