"""Unit tests for the LCO family: latch, barrier, channel, semaphore,
and-gate, dataflow."""

import pytest

from repro.errors import ChannelClosedError, RuntimeStateError
from repro.runtime import (
    AndGate,
    Barrier,
    Channel,
    CountingSemaphore,
    Latch,
    async_,
    dataflow,
    make_ready_future,
)
from repro.runtime.futures import Promise


# Latch -----------------------------------------------------------------------

class TestLatch:
    def test_opens_at_zero(self):
        latch = Latch(2)
        assert not latch.is_ready()
        latch.count_down()
        latch.count_down()
        assert latch.is_ready()
        latch.wait()  # returns immediately

    def test_zero_count_is_open(self):
        assert Latch(0).is_ready()

    def test_count_down_by_n(self):
        latch = Latch(5)
        latch.count_down(5)
        assert latch.is_ready()

    def test_over_release_rejected(self):
        latch = Latch(1)
        latch.count_down()
        with pytest.raises(RuntimeStateError):
            latch.count_down()

    def test_negative_count_rejected(self):
        with pytest.raises(RuntimeStateError):
            Latch(-1)
        with pytest.raises(RuntimeStateError):
            Latch(2).count_down(0)

    def test_wait_future(self):
        latch = Latch(1)
        future = latch.wait_future()
        assert not future.is_ready()
        latch.count_down()
        assert future.is_ready()

    def test_arrive_and_wait_in_runtime(self, rt):
        latch = Latch(3)
        log = []

        def worker(i):
            latch.arrive_and_wait()
            log.append(i)

        def main():
            futures = [async_(worker, i) for i in range(3)]
            for f in futures:
                f.get()

        rt.run(main)
        assert sorted(log) == [0, 1, 2]


# Barrier --------------------------------------------------------------------

class TestBarrier:
    def test_generation_counting(self):
        barrier = Barrier(2)
        f1 = barrier.arrive()
        assert not f1.is_ready()
        f2 = barrier.arrive()
        assert f1.is_ready() and f2.is_ready()
        assert f1.get() == 0
        assert barrier.generation == 1

    def test_reuse_across_generations(self):
        barrier = Barrier(1)
        assert barrier.arrive().get() == 0
        assert barrier.arrive().get() == 1
        assert barrier.generation == 2

    def test_waiting_count(self):
        barrier = Barrier(3)
        barrier.arrive()
        barrier.arrive()
        assert barrier.waiting == 2

    def test_invalid_parties(self):
        with pytest.raises(RuntimeStateError):
            Barrier(0)

    def test_lockstep_tasks(self, rt):
        barrier = Barrier(4)
        order = []

        def worker(i):
            order.append(("before", i))
            barrier.arrive_and_wait()
            order.append(("after", i))

        def main():
            futures = [async_(worker, i) for i in range(4)]
            for f in futures:
                f.get()

        rt.run(main)
        befores = [entry for entry in order if entry[0] == "before"]
        # All "before" entries must precede all "after" entries.
        assert order[: len(befores)] == befores


# Channel --------------------------------------------------------------------

class TestChannel:
    def test_set_then_get(self):
        channel = Channel()
        channel.set(1)
        channel.set(2)
        assert channel.get().get() == 1
        assert channel.get().get() == 2

    def test_get_then_set(self):
        channel = Channel()
        future = channel.get()
        assert not future.is_ready()
        channel.set("x")
        assert future.get() == "x"

    def test_fifo_among_getters(self):
        channel = Channel()
        f1, f2 = channel.get(), channel.get()
        channel.set("first")
        channel.set("second")
        assert f1.get() == "first"
        assert f2.get() == "second"

    def test_buffered_len(self):
        channel = Channel()
        channel.set(1)
        channel.set(2)
        assert len(channel) == 2

    def test_close_fails_waiters(self):
        channel = Channel("halo")
        future = channel.get()
        assert channel.close() == 1
        with pytest.raises(ChannelClosedError):
            future.get()

    def test_close_keeps_buffered_values(self):
        channel = Channel()
        channel.set(7)
        channel.close()
        assert channel.get().get() == 7  # buffered value survives close
        with pytest.raises(ChannelClosedError):
            channel.get().get()  # drained: further gets fail

    def test_set_after_close_rejected(self):
        channel = Channel()
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.set(1)  # repro-lint: disable=PX401 -- the rejection under test

    def test_get_sync_in_runtime(self, rt):
        channel = Channel()

        def producer():
            channel.set(99)

        def main():
            async_(producer)
            return channel.get_sync()

        assert rt.run(main) == 99


# Semaphore -------------------------------------------------------------------

class TestSemaphore:
    def test_initial_permits(self):
        sem = CountingSemaphore(2)
        assert sem.acquire().is_ready()
        assert sem.acquire().is_ready()
        assert not sem.acquire().is_ready()

    def test_release_wakes_fifo(self):
        sem = CountingSemaphore(0)
        f1, f2 = sem.acquire(), sem.acquire()
        sem.release()
        assert f1.is_ready() and not f2.is_ready()
        sem.release()
        assert f2.is_ready()

    def test_try_acquire(self):
        sem = CountingSemaphore(1)
        assert sem.try_acquire()
        assert not sem.try_acquire()

    def test_release_n(self):
        sem = CountingSemaphore(0)
        sem.release(3)
        assert sem.count == 3

    def test_max_count_over_release(self):
        sem = CountingSemaphore(1, max_count=1)
        with pytest.raises(RuntimeStateError):
            sem.release()

    def test_validation(self):
        with pytest.raises(RuntimeStateError):
            CountingSemaphore(-1)
        with pytest.raises(RuntimeStateError):
            CountingSemaphore(5, max_count=2)
        with pytest.raises(RuntimeStateError):
            CountingSemaphore(0).release(0)

    def test_throttling_pattern(self, rt):
        sem = CountingSemaphore(2)
        running = []
        peak = []

        def worker(i):
            sem.acquire_sync()
            running.append(i)
            peak.append(len(running))
            running.remove(i)
            sem.release()

        def main():
            futures = [async_(worker, i) for i in range(8)]
            for f in futures:
                f.get()

        rt.run(main)
        assert max(peak) <= 2


# AndGate ---------------------------------------------------------------------

class TestAndGate:
    def test_fires_when_all_slots_set(self):
        gate = AndGate(3)
        future = gate.get_future()
        gate.set(0, "a")
        gate.set(2, "c")
        assert not future.is_ready()
        gate.set(1, "b")
        assert future.get() == ["a", "b", "c"]

    def test_double_set_rejected(self):
        gate = AndGate(2)
        gate.set(0)
        with pytest.raises(RuntimeStateError):
            gate.set(0)

    def test_slot_range_checked(self):
        gate = AndGate(2)
        with pytest.raises(RuntimeStateError):
            gate.set(2)

    def test_remaining(self):
        gate = AndGate(2)
        assert gate.remaining == 2
        gate.set(1)
        assert gate.remaining == 1
        assert not gate.is_ready()

    def test_invalid_size(self):
        with pytest.raises(RuntimeStateError):
            AndGate(0)


# dataflow ---------------------------------------------------------------------

class TestDataflow:
    def test_plain_arguments_pass_through(self):
        assert dataflow(lambda a, b: a + b, 1, 2).get() == 3

    def test_future_arguments_unwrapped(self):
        assert dataflow(lambda a, b: a + b, make_ready_future(1), 2).get() == 3

    def test_fires_only_when_ready(self):
        promise = Promise()
        result = dataflow(lambda v: v * 10, promise.get_future())
        assert not result.is_ready()
        promise.set_value(4)
        assert result.get() == 40

    def test_kwarg_futures(self):
        result = dataflow(lambda a, b=0: a - b, 10, b=make_ready_future(3))
        assert result.get() == 7

    def test_exception_forwarded(self):
        result = dataflow(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            result.get()

    def test_chain_in_runtime(self, rt):
        def main():
            a = dataflow(lambda: 1)
            b = dataflow(lambda x: x + 1, a)
            c = dataflow(lambda x, y: x + y, a, b)
            return c.get()

        assert rt.run(main) == 3
