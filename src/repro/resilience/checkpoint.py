"""HPX-style checkpoint/restart for components, LCOs, and containers.

Mirrors ``hpx::util::checkpoint``: :func:`save_checkpoint` serializes
any mix of AGAS components, LCOs, or plain picklable values into a
versioned, checksummed :class:`Checkpoint` object, and
:func:`restore_checkpoint` restores the same objects *in place*,
positionally.  Objects participate through a two-method protocol:

``checkpoint_state() -> state``
    Return a picklable snapshot of the durable state (application data,
    not transient wiring: no promises, no AGAS addresses).
``restore_state(state) -> None``
    Rebuild from such a snapshot, resetting any in-flight machinery
    (live dataflow chains, waiting promises) to a quiesced baseline.

:class:`~repro.runtime.agas.component.Component` and every LCO family
provide defaults, so most objects checkpoint for free.

:class:`CheckpointStore` layers the coordinated-snapshot protocol on
top: the resilient drivers quiesce at an epoch boundary (the barrier is
the blocking ``when_all`` over the partitions' step futures -- nothing
else is runnable when it fires), save all partitions as one epoch, and
keep the last ``checkpoint.keep`` epochs.  Saving is not free: each
save/restore charges ``checkpoint.cost_base_s +
checkpoint.cost_per_byte_s * size`` virtual seconds to the calling task
through the cost model, and bumps the runtime's ``/checkpoints{total}``
perfcounters.  On restore the store walks epochs newest-first, skipping
any that fail checksum verification (:class:`CheckpointCorruptionError`)
-- the corruption-fallback contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..errors import (
    CheckpointCorruptionError,
    CheckpointCorruptionWarning,
    CheckpointError,
    ConfigError,
)
from ..runtime import context as ctx
from ..runtime.parcel.serialization import deserialize, serialize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.runtime import Runtime

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "save_checkpoint",
    "restore_checkpoint",
    "CheckpointStore",
]

#: Bump when the on-disk/wire layout of a checkpoint changes.
CHECKPOINT_FORMAT_VERSION = 1

#: Separates the JSON header from the payload in the byte encoding.
_HEADER_SEP = b"\n"


@dataclass(frozen=True)
class Checkpoint:
    """One immutable, checksummed snapshot of a set of objects.

    ``payload`` is the serialized list of per-object states; ``checksum``
    is its SHA-256 hex digest, recomputed and compared on every restore.
    ``epoch`` and ``virtual_time`` identify *when* (in application steps
    and on the virtual clock) the snapshot was taken.
    """

    payload: bytes
    checksum: str
    epoch: int = 0
    virtual_time: float = 0.0
    version: int = CHECKPOINT_FORMAT_VERSION

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    def verify(self) -> None:
        """Raise unless this checkpoint is intact and readable."""
        if self.version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{self.version} is not supported "
                f"(this build reads v{CHECKPOINT_FORMAT_VERSION})"
            )
        digest = hashlib.sha256(self.payload).hexdigest()
        if digest != self.checksum:
            raise CheckpointCorruptionError(
                f"checkpoint for epoch {self.epoch} failed verification: "
                f"payload hashes to {digest[:12]}..., header says "
                f"{self.checksum[:12]}..."
            )

    # Byte/file encoding ----------------------------------------------------
    def to_bytes(self) -> bytes:
        """Self-describing encoding: JSON header line + raw payload."""
        header = json.dumps(
            {
                "version": self.version,
                "epoch": self.epoch,
                "virtual_time": self.virtual_time,
                "checksum": self.checksum,
            },
            sort_keys=True,
        ).encode("ascii")
        return header + _HEADER_SEP + self.payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        head, sep, payload = blob.partition(_HEADER_SEP)
        if not sep:
            raise CheckpointError("checkpoint blob has no header line")
        try:
            meta = json.loads(head.decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint header: {exc}") from exc
        return cls(
            payload=payload,
            checksum=str(meta.get("checksum", "")),
            epoch=int(meta.get("epoch", 0)),
            virtual_time=float(meta.get("virtual_time", 0.0)),
            version=int(meta.get("version", -1)),
        )

    def write(self, path: str | os.PathLike[str]) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def read(cls, path: str | os.PathLike[str]) -> "Checkpoint":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())


def _capture(obj: Any) -> Any:
    """One object's snapshot: its protocol state, or the object itself."""
    capture = getattr(obj, "checkpoint_state", None)
    if callable(capture):
        return capture()
    return obj


def save_checkpoint(
    *objects: Any, epoch: int = 0, virtual_time: float | None = None
) -> Checkpoint:
    """Snapshot ``objects`` into a new :class:`Checkpoint`.

    Each object contributes ``obj.checkpoint_state()`` when it implements
    the protocol, or its own (picklable) value otherwise -- so plain data
    checkpoints alongside components and LCOs, as in HPX.
    """
    if not objects:
        raise CheckpointError("save_checkpoint needs at least one object")
    if virtual_time is None:
        frame = ctx.current_or_none()
        virtual_time = frame.pool.now if frame is not None and frame.pool else 0.0
    payload = serialize([_capture(obj) for obj in objects])
    return Checkpoint(
        payload=payload,
        checksum=hashlib.sha256(payload).hexdigest(),
        epoch=epoch,
        virtual_time=virtual_time,
    )


def restore_checkpoint(checkpoint: Checkpoint, *objects: Any) -> list[Any]:
    """Verify ``checkpoint`` and restore ``objects`` from it, in order.

    Returns the decoded per-object states.  With no ``objects`` given the
    states are only decoded (read-back of plain-data checkpoints); with
    objects given their count must match the saved count and every object
    must implement ``restore_state``.
    """
    checkpoint.verify()
    states = deserialize(checkpoint.payload)
    if not isinstance(states, list):
        raise CheckpointError("checkpoint payload is not a state list")
    if objects:
        if len(objects) != len(states):
            raise CheckpointError(
                f"checkpoint holds {len(states)} object(s); "
                f"asked to restore {len(objects)}"
            )
        for obj, state in zip(objects, states):
            restore = getattr(obj, "restore_state", None)
            if not callable(restore):
                raise CheckpointError(
                    f"{type(obj).__name__} does not implement restore_state()"
                )
            restore(state)
    return list(states)


class CheckpointStore:
    """Retains the last ``keep`` epoch checkpoints, with cost accounting.

    Bound to a :class:`~repro.runtime.runtime.Runtime`, every save and
    restore charges virtual time through the cost model (knobs
    ``checkpoint.cost_base_s`` / ``checkpoint.cost_per_byte_s``) and
    updates the runtime's checkpoint counters.  With ``directory`` given,
    epochs are also spilled to ``epoch-NNNNNN.ckpt`` files (and pruned
    with the in-memory ring).
    """

    def __init__(
        self,
        runtime: "Runtime | None" = None,
        keep: int | None = None,
        directory: str | os.PathLike[str] | None = None,
    ) -> None:
        if keep is None:
            keep = runtime.config.get_int("checkpoint.keep") if runtime else 2
        if keep < 1:
            raise ConfigError("checkpoint.keep must be at least 1")
        self.runtime = runtime
        self.keep = keep
        self.directory = os.fspath(directory) if directory is not None else None
        self._epochs: dict[int, Checkpoint] = {}

    # Introspection ---------------------------------------------------------
    def epochs(self) -> list[int]:
        """Retained epoch numbers, oldest first."""
        return sorted(self._epochs)

    def checkpoint(self, epoch: int) -> Checkpoint:
        try:
            return self._epochs[epoch]
        except KeyError:
            raise CheckpointError(f"no retained checkpoint for epoch {epoch}") from None

    def latest(self) -> Checkpoint:
        if not self._epochs:
            raise CheckpointError("the store holds no checkpoints")
        return self._epochs[max(self._epochs)]

    # Cost model ------------------------------------------------------------
    def _charge(self, size_bytes: int) -> float:
        if self.runtime is None:
            return 0.0
        config = self.runtime.config
        cost = config.get_float("checkpoint.cost_base_s") + size_bytes * config.get_float(
            "checkpoint.cost_per_byte_s"
        )
        ctx.add_cost(cost)
        return cost

    # Protocol --------------------------------------------------------------
    def save(self, epoch: int, objects: Iterable[Any]) -> Checkpoint:
        """Snapshot ``objects`` as ``epoch`` and prune beyond ``keep``."""
        objs = tuple(objects)
        ckpt = save_checkpoint(*objs, epoch=epoch)
        cost = self._charge(ckpt.size_bytes)
        if self.runtime is not None:
            self.runtime.checkpoints_saved += 1
            self.runtime.checkpoint_bytes_saved += ckpt.size_bytes
            self.runtime.checkpoint_save_time_s += cost
        self._epochs[epoch] = ckpt
        if self.directory is not None:
            ckpt.write(self._path(epoch))
        for old in sorted(self._epochs)[: -self.keep]:
            del self._epochs[old]
            if self.directory is not None:
                try:
                    os.remove(self._path(old))
                except OSError:  # pragma: no cover - best-effort prune
                    pass
        return ckpt

    def restore_latest_valid(self, objects: Sequence[Any]) -> Checkpoint:
        """Restore ``objects`` from the newest epoch that verifies.

        Epochs failing checksum verification are skipped (counted as
        fallbacks); raises :class:`CheckpointCorruptionError` only when
        every retained epoch is corrupt, :class:`CheckpointError` when
        the store is empty.
        """
        if not self._epochs:
            raise CheckpointError("cannot restore: the store holds no checkpoints")
        for epoch in sorted(self._epochs, reverse=True):
            ckpt = self._epochs[epoch]
            try:
                restore_checkpoint(ckpt, *objects)
            except CheckpointCorruptionError as exc:
                # A skipped epoch is lost recovery ground, never a
                # silent non-event: count it, warn, and surface it as a
                # trace event so dashboards and the tracer both see it.
                self._report_corrupt_skip(epoch, ckpt, exc)
                continue
            cost = self._charge(ckpt.size_bytes)
            if self.runtime is not None:
                self.runtime.checkpoints_restored += 1
                self.runtime.checkpoint_restore_time_s += cost
            return ckpt
        raise CheckpointCorruptionError(
            f"every retained checkpoint ({len(self._epochs)}) failed verification"
        )

    def _report_corrupt_skip(
        self, epoch: int, ckpt: Checkpoint, exc: CheckpointCorruptionError
    ) -> None:
        """A retained epoch failed verification and was skipped."""
        warnings.warn(
            f"checkpoint epoch {epoch} failed verification and was skipped "
            f"during restore; falling back to an older epoch ({exc})",
            CheckpointCorruptionWarning,
            stacklevel=3,
        )
        if self.runtime is None:
            return
        self.runtime.checkpoint_fallbacks += 1
        self.runtime.checkpoint_corrupt_skipped += 1
        hook = getattr(self.runtime, "checkpoint_event_hook", None)
        if hook is not None:
            hook(
                "checkpoint_corrupt_skipped",
                ckpt.virtual_time,
                {"epoch": epoch, "size_bytes": ckpt.size_bytes, "level": "warning"},
            )

    def _path(self, epoch: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"epoch-{epoch:06d}.ckpt")

    def __len__(self) -> int:
        return len(self._epochs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointStore(epochs={self.epochs()}, keep={self.keep}, "
            f"directory={self.directory!r})"
        )
