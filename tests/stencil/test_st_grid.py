"""Unit tests for the Grid container."""

import numpy as np
import pytest

from repro.errors import LayoutError, ValidationError
from repro.stencil import Grid, GridPair


def test_scalar_grid_shape():
    grid = Grid(4, 6)
    assert grid.data.shape == (4, 6)
    assert grid.row_size() == 6


def test_vns_grid_shape():
    grid = Grid(4, 10, layout="vns", lanes=2)  # interior 8, chunk 4
    assert grid.data.shape == (4, 6, 2)


def test_too_small_rejected():
    with pytest.raises(LayoutError):
        Grid(2, 10)
    with pytest.raises(LayoutError):
        Grid(10, 2)


def test_bad_dtype_rejected():
    with pytest.raises(ValidationError):
        Grid(4, 6, dtype=np.int32)


def test_bad_layout_rejected():
    with pytest.raises(LayoutError):
        Grid(4, 6, layout="columnar")


def test_fill_and_read_back_scalar():
    grid = Grid(3, 4)
    field = np.arange(12.0).reshape(3, 4)
    grid.fill_from(field)
    assert np.array_equal(grid.to_scalar_array(), field)
    assert grid.in_(2, 1) == 6.0  # (nx=2, ny=1)


def test_fill_and_read_back_vns():
    grid = Grid(3, 10, layout="vns", lanes=4)
    field = np.arange(30.0).reshape(3, 10)
    grid.fill_from(field)
    assert np.allclose(grid.to_scalar_array(), field)
    assert grid.in_(5, 1) == field[1, 5]


def test_fill_wrong_shape_rejected():
    with pytest.raises(LayoutError):
        Grid(3, 4).fill_from(np.zeros((4, 4)))


def test_in_bounds_checked():
    grid = Grid(3, 4)
    with pytest.raises(LayoutError):
        grid.in_(4, 0)
    with pytest.raises(LayoutError):
        grid.in_(0, 3)


def test_vns_descriptor_only_on_vns_grids():
    with pytest.raises(LayoutError):
        _ = Grid(3, 4).vns
    assert Grid(3, 10, layout="vns", lanes=2).vns.lanes == 2


def test_nbytes():
    assert Grid(4, 8, dtype=np.float32).nbytes == 4 * 8 * 4


def test_grid_pair_indexing_ping_pong():
    pair = GridPair(3, 4)
    assert pair[0] is pair.grids[0]
    assert pair[1] is pair.grids[1]
    assert pair[2] is pair.grids[0]  # t % 2 semantics
    assert pair.current(3) is pair.grids[1]
    assert pair.next(3) is pair.grids[0]


def test_grid_pair_fill_initialises_both_buffers():
    pair = GridPair(3, 4)
    field = np.ones((3, 4))
    pair.fill_from(field)
    assert np.array_equal(pair[0].to_scalar_array(), field)
    assert np.array_equal(pair[1].to_scalar_array(), field)
