"""Cycle model: from hardware counters to single-core performance.

The paper explains performance differences *through* the counters of
Tables III-VI ("the number of backend stalls ... is considerably higher
... leading to a significant increase in performance" etc.).  This
module closes that loop quantitatively for the machines whose PMUs
expose stall counters (A64FX, ThunderX2)::

    cycles/LUP = instructions/LUP / issue_ipc
               + backend_stalls/LUP + frontend_stalls/LUP
    GLUP/s     = clock_GHz / cycles_per_LUP

and the consistency tests check the calibrated single-core rates in the
machine registry sit within a band of this prediction -- i.e. the two
independently-sourced calibrations (counter tables vs performance
bands) tell one coherent story.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..hardware.counters import PAPI_TOT_INS, STALL_BACKEND, STALL_FRONTEND
from ..hardware.registry import A64FX, THUNDERX2, MachineModel
from .counters import CounterModel

__all__ = ["issue_ipc", "predicted_cycles_per_lup", "predicted_single_core_glups"]

#: Sustained issue IPC for the stencil's instruction mix, per machine
#: and kernel flavour.  A64FX dual-issues its SVE stream either way; on
#: ThunderX2 the GCC auto-vectorized mix (partial NEON + scalar address
#: arithmetic with dependent chains) sustains ~1.2, while the NSIMD pack
#: stream keeps both NEON pipes fed (~2.0) -- which is exactly the
#: "explicit vectorization relieves the memory controllers / fewer
#: outstanding load-stores" story of Sec. VII-B, expressed as IPC.
_ISSUE_IPC = {
    (A64FX, "auto"): 2.0,
    (A64FX, "simd"): 2.0,
    (THUNDERX2, "auto"): 1.2,
    (THUNDERX2, "simd"): 2.0,
}


def issue_ipc(machine: MachineModel, mode: str = "auto") -> float:
    """Modelled sustained issue rate for the 2D kernel."""
    try:
        return _ISSUE_IPC[(machine.name, mode)]
    except KeyError:
        raise ValidationError(
            f"{machine.name}/{mode}: no stall counters in the paper's tables; "
            "the cycle model covers the Tables V/VI machines"
        ) from None


def predicted_cycles_per_lup(machine: MachineModel, dtype: str, mode: str) -> float:
    """Cycles per lattice-site update from the counter calibration."""
    ipc = issue_ipc(machine, mode)
    per_lup = CounterModel(machine).per_lup(dtype, mode)
    if STALL_BACKEND not in per_lup:
        raise ValidationError(
            f"{machine.name} counter table has no backend-stall column"
        )  # pragma: no cover - guarded by issue_ipc
    cycles = per_lup[PAPI_TOT_INS] / ipc + per_lup[STALL_BACKEND]
    cycles += per_lup.get(STALL_FRONTEND, 0.0)
    return cycles


def predicted_single_core_glups(machine: MachineModel, dtype: str, mode: str) -> float:
    """Counter-implied single-core rate in GLUP/s."""
    return machine.spec.clock_ghz / predicted_cycles_per_lup(machine, dtype, mode)
