"""Property: parcel coalescing is invisible to every virtual observable.

For any scheduler, fault mix (drops, duplicates, delay spikes) and batch
size, running the distributed heat solver with ``parcel.batching`` on
must yield the *same bits* as running it with batching off: identical
solution fields, identical virtual makespans, identical parcel and byte
counters.  Batching may only change wall-clock cost -- the same
admissibility contract the zero-copy fast path obeys.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import Config
from repro.resilience import FaultInjector
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX = 32
U0 = np.cos(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))
SCHEDULERS = ("work-stealing", "static", "fifo")


def _run(batching, scheduler, seed, drop, dup, delay, batch_max, steps):
    injector = None
    if drop or dup or delay:
        injector = FaultInjector(
            seed=seed,
            drop_rate=drop,
            duplicate_rate=dup,
            delay_rate=delay,
            delay_spike_s=2e-3 if delay else 0.0,
        )
    config = Config(
        threads__scheduler=scheduler,
        parcel__batching=batching,
        parcel__batch_max_parcels=batch_max,
    )
    with Runtime(
        n_localities=2,
        workers_per_locality=1,
        config=config,
        fault_injector=injector,
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams())
        solver.initialize(U0)
        field = rt.run(lambda: solver.run(steps))
        port = rt.parcelport
        fingerprint = {
            "makespan": rt.makespan,
            "parcels_sent": port.parcels_sent,
            "bytes_sent": port.bytes_sent,
            "parcels_delivered": port.parcels_delivered,
            "parcels_retried": port.parcels_retried,
            "parcels_dead_lettered": port.parcels_dead_lettered,
        }
        if batching:
            assert rt._batcher is not None
            assert rt._batcher.pending == 0  # every batch drained
        return field, fingerprint


@settings(max_examples=12, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULERS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop=st.floats(min_value=0.0, max_value=0.1),
    dup=st.floats(min_value=0.0, max_value=0.1),
    delay=st.floats(min_value=0.0, max_value=0.1),
    batch_max=st.integers(min_value=2, max_value=32),
    steps=st.integers(min_value=2, max_value=10),
)
def test_batching_on_off_bit_identical_under_faults(
    scheduler, seed, drop, dup, delay, batch_max, steps
):
    field_off, fp_off = _run(
        False, scheduler, seed, drop, dup, delay, batch_max, steps
    )
    field_on, fp_on = _run(
        True, scheduler, seed, drop, dup, delay, batch_max, steps
    )
    assert fp_on == fp_off
    assert np.array_equal(field_on, field_off)
    # And both equal the fault-free dense reference: losses cost virtual
    # time, never correctness (retry machinery unchanged by batching).
    assert np.array_equal(
        field_on, heat1d_reference(U0, steps, Heat1DParams())
    )
