"""Unit tests for the execution tracer."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Runtime
from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.trace import Tracer


def test_records_task_fields():
    pool = ThreadPool(2, name="p")
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(2.0), description="heavy")
        pool.run_all()
    assert len(tracer.records) == 1
    record = tracer.records[0]
    assert record.description == "heavy"
    assert record.duration == pytest.approx(2.0)
    assert record.pool == "p"


def test_detach_restores_pool():
    pool = ThreadPool(1)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: None)
        pool.run_all()
    pool.submit(lambda: None)
    pool.run_all()
    assert len(tracer.records) == 1  # post-detach task not traced


def test_attach_to_runtime_traces_all_localities():
    tracer = Tracer()
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        with tracer.attach(rt):
            rt.run(lambda: rt.async_at(1, abs, -1).get())
    pools = {r.pool for r in tracer.records}
    assert pools == {"locality-0", "locality-1"}


def test_attach_rejects_other_objects():
    with pytest.raises(RuntimeStateError):
        with Tracer().attach(object()):
            pass


def test_by_worker_lanes_sorted():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(6):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    lanes = tracer.by_worker()
    assert len(lanes) == 2
    for lane in lanes.values():
        starts = [r.start_time for r in lane]
        assert starts == sorted(starts)


def test_busy_fraction_full_when_balanced():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(4):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    assert tracer.busy_fraction() == pytest.approx(1.0)


def test_busy_fraction_counts_workers_that_ran_nothing():
    """Regression: lanes used to come only from traced records, so a
    1-busy-of-2-workers pool reported 100% utilization."""
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(4.0), worker=0)
        pool.run_all()
    assert tracer.busy_fraction() == pytest.approx(0.5)
    assert tracer.idle_rate() == pytest.approx(0.5)


def test_busy_fraction_one_of_eight_workers():
    pool = ThreadPool(8)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(2.0), worker=3)
        pool.run_all()
    assert tracer.busy_fraction() == pytest.approx(1.0 / 8.0)


def test_busy_fraction_falls_back_to_lanes_without_attach_info():
    """Records injected without an attach (unknown pool) still work."""
    from repro.runtime.trace import TaskRecord

    tracer = Tracer()
    tracer.records.append(
        TaskRecord("ghost", 0, 1, "t", 0.0, 0.0, 2.0)
    )
    assert tracer.busy_fraction() == pytest.approx(1.0)


def test_queue_delay_measured():
    pool = ThreadPool(1)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(3.0))
        pool.submit(lambda: ctx.add_cost(1.0))  # waits 3s for the worker
        pool.run_all()
    assert tracer.total_queue_delay() == pytest.approx(3.0)


def test_gantt_renders_lanes():
    pool = ThreadPool(2, name="pool")
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(4):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    chart = tracer.render_gantt(width=40)
    assert "pool/w0" in chart and "pool/w1" in chart
    assert "#" in chart
    assert "@" not in chart  # no double-booked workers, ever


def test_gantt_empty():
    assert "no traced tasks" in Tracer().render_gantt()


def test_makespan_matches_pool():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(3):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    assert tracer.makespan == pytest.approx(pool.makespan)


# Attachment re-entrancy ------------------------------------------------------


def test_attach_is_not_reentrant():
    """Regression: overlapping attach blocks used to stack wrappers and
    record every task twice."""
    pool = ThreadPool(1)
    tracer = Tracer()
    with tracer.attach(pool):
        with pytest.raises(RuntimeStateError):
            with tracer.attach(pool):
                pass
        pool.submit(lambda: None)
        pool.run_all()
    assert len(tracer.records) == 1


def test_failed_attach_restores_already_patched_pools():
    """Regression: an exception during attachment used to leak the
    monkey-patch on pools patched before the failure."""
    pool_a = ThreadPool(1, name="a")
    pool_b = ThreadPool(1, name="b")

    class FakeLoc:
        def __init__(self, pool):
            self.pool = pool

    class FakeRuntime:
        localities = [FakeLoc(pool_a), FakeLoc(pool_b)]
        parcelport = None

    tracer = Tracer()
    original_a = pool_a._execute
    with tracer.attach(pool_b):  # pool_b already attached...
        with pytest.raises(RuntimeStateError):
            with tracer.attach(FakeRuntime()):  # ...so this fails on b
                pass
        assert pool_a._execute == original_a  # a was restored
        # ...and the failed attach must not clobber b's live guard:
        with pytest.raises(RuntimeStateError):
            with tracer.attach(pool_b):
                pass
    pool_a.submit(lambda: None)
    pool_a.run_all()
    assert not tracer.records  # nothing leaked onto pool_a


def test_sequential_reattach_still_works():
    pool = ThreadPool(1)
    tracer = Tracer()
    for _ in range(2):
        with tracer.attach(pool):
            pool.submit(lambda: None)
            pool.run_all()
    assert len(tracer.records) == 2


def test_two_tracers_nest_cleanly():
    pool = ThreadPool(1)
    outer, inner = Tracer(), Tracer()
    original = pool._execute
    with outer.attach(pool):
        with inner.attach(pool):
            pool.submit(lambda: None)
            pool.run_all()
    assert pool._execute == original
    assert len(outer.records) == 1 and len(inner.records) == 1


# Event recording -------------------------------------------------------------


def test_steal_events_recorded():
    pool = ThreadPool(2)  # work-stealing scheduler by default
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(8):
            pool.submit(lambda: ctx.add_cost(1.0), worker=0)
        pool.run_all()
    steals = tracer.events_of("steal")
    assert steals
    assert all(e.worker_id == 1 for e in steals)
    assert pool.steals == len(steals)


def test_parcel_events_and_latencies():
    tracer = Tracer()
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1
    ) as rt:
        with tracer.attach(rt):
            rt.run(lambda: rt.async_at(1, abs, -7).get())
    sends = tracer.events_of("parcel_send")
    recvs = tracer.events_of("parcel_recv")
    assert sends and recvs
    latencies = tracer.parcel_latencies()
    assert latencies
    # The request parcel crossed the modelled network: positive latency.
    assert max(latencies.values()) > 0.0


def test_parcel_drop_and_retry_events():
    from repro.resilience.faults import FaultInjector

    tracer = Tracer()
    injector = FaultInjector(seed=3, drop_rate=0.4)
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=2,
        workers_per_locality=1,
        fault_injector=injector,
    ) as rt:
        with tracer.attach(rt):
            rt.run(
                lambda: [rt.async_at(1, abs, -i).get() for i in range(12)]
                and None
            )
    assert tracer.events_of("parcel_drop")
    assert tracer.events_of("parcel_retry")


def test_outage_events_recorded():
    from repro.resilience.faults import FaultInjector

    tracer = Tracer()
    injector = FaultInjector(seed=0).fail_locality(1, at=1.0, until=2.0)
    with Runtime(n_localities=2, workers_per_locality=1, fault_injector=injector) as rt:
        with tracer.attach(rt):
            rt.run(lambda: None)
    outages = tracer.events_of("outage")
    assert len(outages) == 1
    assert outages[0].time == pytest.approx(1.0)
    assert outages[0].args["until"] == pytest.approx(2.0)


def test_detach_restores_parcelport_and_scheduler():
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1
    ) as rt:
        port = rt.parcelport
        orig_send = port.send
        orig_router = port._router
        scheds = [loc.pool.scheduler for loc in rt.localities]
        orig_acquire = [s.acquire for s in scheds]
        tracer = Tracer()
        with tracer.attach(rt):
            assert port.send != orig_send
        assert port.send == orig_send
        assert port._router is orig_router
        for sched, acquire in zip(scheds, orig_acquire):
            assert sched.acquire == acquire


def test_gantt_header_reports_idle_capacity():
    pool = ThreadPool(4, name="p")
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(2.0), worker=0)
        pool.run_all()
    chart = tracer.render_gantt(width=40)
    assert "busy 25.0%" in chart
    assert "idle 75.0%" in chart
    assert "of 4 workers" in chart
