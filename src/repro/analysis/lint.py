"""Repro-specific static lint pass (``python -m repro.analysis.lint``).

The runtime simulates a distributed machine on *virtual* time with
cooperative HPX-threads, which makes several ordinary Python idioms
model violations: wall-clock reads break determinism, OS threading
primitives bypass the scheduler, and a blocking ``.get()`` inside an
action handler can re-enter the scheduler and deadlock a locality.
These constraints are invisible to generic linters, so this module
walks the AST and enforces them with repro-specific error codes:

======  ================================================================
code    rule
======  ================================================================
PX101   no wall-clock time (``time.time``/``sleep``/``datetime.now``
        and friends) inside the ``repro`` package -- virtual time only
PX102   no unseeded randomness (module-level ``random.*`` functions or
        ``random.Random()`` without a seed) -- determinism
PX201   no OS ``threading``/``multiprocessing``/``concurrent.futures``
        primitives outside the scheduler -- HPX-threads only
PX301   no blocking ``.get()`` inside a component action handler --
        suspension re-enters the scheduler on the locality's own pool
PX302   the interprocedural form of PX301: the handler reaches a
        blocking ``.get()`` through helper calls (``self._helper()`` or
        a module-level function) -- the call chain is reported
PX401   no LCO/promise ``set`` after retirement (``break_promise`` /
        ``close`` earlier in the same function)
PX501   no mutable default arguments (``[]``/``{}``/``set()``/...)
PX601   no unused imports
PX701   no unbounded container growth in component action handlers --
        an ``append``/``extend`` on a ``self.*`` container in a public
        (parcel-invokable) method with no shrink/bound evidence anywhere
        in the class is the overload failure mode admission control
        exists to prevent
PX702   no raw ``*.parcelport.send(...)`` calls outside the runtime's
        own parcel plumbing -- direct port sends bypass overload
        admission and credit accounting; route through the runtime
        invoke/apply APIs
PX801   no iterating unordered collections of shared identity in an
        action handler -- a ``for`` over a ``self.*`` set, or over a
        dict that other handlers populate, dispatches in arrival/hash
        order, which the schedule explorer will happily permute;
        iterate ``sorted(...)`` instead
PX811   no mutating captured outer-scope state from a spawned closure
        (``pool.submit(fn)`` / ``future.then(fn)`` / ``dataflow``):
        ``nonlocal`` rebinding or mutating a captured container/object
        is unsynchronized sharing between HPX-threads -- return the
        value, or communicate through a future/Channel/LCO
PX901   no bare ``except:`` and no swallowed broad exceptions in
        service and handler code paths (``repro/service/`` files and
        component action handlers): a bare ``except`` also traps
        ``SystemExit``/``KeyboardInterrupt``, and an ``except
        Exception:`` whose body does nothing hides job/parcel failures
        the durability audits depend on seeing -- catch the specific
        exception, or record/re-raise what was caught
======  ================================================================

Any finding can be suppressed with a trailing
``# repro-lint: disable=PX101`` comment (comma-separated codes, or
``all``) on the offending line, or for a whole file with a
``# repro-lint: disable-file=...`` comment anywhere in the file.
``--json`` emits machine-readable findings for CI tooling;
``--select``/``--ignore`` filter by code prefix (ruff-style, e.g.
``--select PX1,PX601 --ignore PX301``); ``--fix`` rewrites the
auto-fixable findings in place (currently PX601: unused imports are
removed, keeping the aliases that are used).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
import tokenize
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set

__all__ = [
    "Finding",
    "filter_findings",
    "fix_file",
    "fix_source",
    "lint_file",
    "lint_paths",
    "main",
]

_DISABLE_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9,\s]+)")

_WALL_CLOCK_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
_OS_THREADING_MODULES = {"threading", "multiprocessing", "_thread"}
_MUTABLE_DEFAULT_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
_RETIRING_METHODS = {"break_promise", "close"}
_SETTING_METHODS = {"set_value", "set_exception", "set"}
_GROWTH_METHODS = {"append", "extend", "appendleft", "extendleft"}
_SHRINK_METHODS = {"pop", "popleft", "popitem", "remove", "clear", "discard"}
#: Calls that hand a closure to another HPX-thread (PX811).
_SPAWN_METHODS = {"submit", "then", "dataflow"}
#: Container/object mutations that are unsynchronized when applied to
#: captured state from a spawned closure (PX811).  LCO operations
#: (``set``/``set_value``/``put``/...) are the *legal* way to publish
#: from a closure and are deliberately absent.
_MUTATING_METHODS = _GROWTH_METHODS | _SHRINK_METHODS | {
    "add", "update", "insert", "setdefault",
}
#: Files whose job is implementing the synchronization layer itself:
#: the closure-capture rule (PX811) does not apply to the futures/LCO
#: internals, where continuation callbacks legitimately update shared
#: completion state under the model's own rules.
_PX811_EXEMPT_PARTS = ("runtime/futures.py", "runtime/lco/")
#: Files allowed to call ``*.parcelport.send`` directly (PX702): the
#: runtime's own parcel plumbing, where admission control lives.
_PX702_EXEMPT_SUFFIXES = ("runtime/runtime.py", "parcel/parcelport.py")
#: Paths whose every function is a "service code path" for PX901: the
#: job service's durability audits only work when failures surface.
_PX901_SERVICE_PARTS = ("repro/service/",)
#: Exception names considered "broad" for the swallowed-handler half of
#: PX901 (a bare ``except:`` is flagged regardless of its body).
_PX901_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _parse_codes(text: str) -> Set[str]:
    return {part.strip().upper() for part in text.split(",") if part.strip()}


def _collect_disables(source: str) -> tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and whole-file suppressed codes from lint comments."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            file_match = _DISABLE_FILE.search(tok.string)
            if file_match:
                per_file |= _parse_codes(file_match.group(1))
                continue
            line_match = _DISABLE_LINE.search(tok.string)
            if line_match:
                codes = _parse_codes(line_match.group(1))
                per_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:  # pragma: no cover - half-written files
        pass
    return per_line, per_file


def _in_repro_package(path: str) -> bool:
    parts = os.path.abspath(path).replace(os.sep, "/").split("/")
    return "repro" in parts


def _call_name(node: ast.Call) -> str:
    """Dotted name of the called object ('' when not a plain name chain)."""
    parts: List[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return ""


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, apply_model_rules: bool) -> None:
        self.path = path
        self.model_rules = apply_model_rules
        normalized = os.path.abspath(path).replace(os.sep, "/")
        self._px702_exempt = normalized.endswith(_PX702_EXEMPT_SUFFIXES)
        self._px811_exempt = any(p in normalized for p in _PX811_EXEMPT_PARTS)
        self._px901_file = any(p in normalized for p in _PX901_SERVICE_PARTS)
        #: Nesting stack: True while inside a public component action
        #: handler (the "handler code path" half of PX901's scope).
        self._handler_stack: List[bool] = []
        self.findings: List[Finding] = []
        self._class_stack: List[bool] = []  # "is a Component subclass"
        self._imported: Dict[str, tuple[int, int, str]] = {}
        self._used_names: Set[str] = set()
        self._has_all_export = False
        #: Module-level function bodies, for the PX302 call-graph walk.
        self._module_funcs: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}

    def prepare(self, tree: ast.Module) -> None:
        """Pre-pass before ``visit``: index module-level functions so
        handler call chains can be followed regardless of definition
        order."""
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_funcs[stmt.name] = stmt

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # Imports (PX201, PX601) ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if self.model_rules and root in _OS_THREADING_MODULES:
                self.report(
                    node, "PX201",
                    f"OS concurrency module '{alias.name}' bypasses the "
                    f"cooperative scheduler; use HPX-threads/LCOs",
                )
            bound = alias.asname or root
            self._imported[bound] = (node.lineno, node.col_offset + 1, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        if self.model_rules and (
            root in _OS_THREADING_MODULES
            or module == "concurrent.futures"
        ):
            self.report(
                node, "PX201",
                f"OS concurrency import from '{module}' bypasses the "
                f"cooperative scheduler; use HPX-threads/LCOs",
            )
        for alias in node.names:
            if alias.name == "*":
                continue
            # Explicit re-export idiom ("import x as x") is intentional.
            if alias.asname is not None and alias.asname == alias.name:
                continue
            bound = alias.asname or alias.name
            self._imported[bound] = (
                node.lineno, node.col_offset + 1, f"{module}.{alias.name}"
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._used_names.add(node.id)
        elif node.id == "__all__":
            self._has_all_export = True
        self.generic_visit(node)

    # Wall clock / randomness (PX101, PX102) --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if self.model_rules and name:
            head, _, tail = name.partition(".")
            if head == "time" and tail in _WALL_CLOCK_TIME:
                self.report(
                    node, "PX101",
                    f"wall-clock call '{name}()' breaks virtual-time "
                    f"determinism; use the pool clock / add_cost",
                )
            elif name.endswith(tuple(f"datetime.{m}" for m in _WALL_CLOCK_DATETIME)):
                self.report(
                    node, "PX101",
                    f"wall-clock call '{name}()' breaks virtual-time "
                    f"determinism; timestamps must come from virtual time",
                )
            elif head == "random" and tail and tail != "Random":
                self.report(
                    node, "PX102",
                    f"'{name}()' uses the global unseeded RNG; construct "
                    f"random.Random(seed) so runs are reproducible",
                )
            elif name in ("random.Random", "Random") and not node.args:
                seeded = any(kw.arg in ("x", "seed") for kw in node.keywords)
                if not seeded:
                    self.report(
                        node, "PX102",
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
        # PX702: raw parcelport sends bypass admission/credit accounting.
        if (
            self.model_rules
            and not self._px702_exempt
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("send", "retransmit")
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "parcelport"
        ):
            self.report(
                node, "PX702",
                f"raw '...parcelport.{node.func.attr}()' bypasses overload "
                f"admission and credit accounting; route through the "
                f"runtime's invoke/apply APIs",
            )
        self.generic_visit(node)

    # Component action handlers (PX301, PX401) ------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        def base_name(b: ast.expr) -> str:
            if isinstance(b, ast.Name):
                return b.id
            if isinstance(b, ast.Attribute):
                return b.attr
            return ""

        is_component = any(
            base_name(b) == "Component" or base_name(b).endswith("Component")
            for b in node.bases
        )
        self._class_stack.append(is_component)
        if self.model_rules and is_component:
            self._check_unbounded_growth(node)
            self._check_unordered_iteration(node)
            self._check_transitive_blocking(node)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _self_attr(expr: ast.expr) -> str | None:
        """``"x"`` when ``expr`` is exactly ``self.x``, else None."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _check_unbounded_growth(self, node: ast.ClassDef) -> None:
        """PX701: growth-only ``self.*`` containers in action handlers.

        Public methods of a Component are parcel handlers: remotely
        invokable, possibly millions of times.  An ``append``/``extend``
        on a ``self.*`` container there is unbounded state growth unless
        the class shows *bound evidence* for that attribute anywhere --
        a shrink call (``pop``/``clear``/...), ``del`` on a subscript, a
        rebinding slice (``self.x = self.x[...]``), a
        ``deque(maxlen=...)``, or a ``len(self.x)`` comparison guarding
        the growth.
        """
        bounded: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                attr = self._self_attr(sub.func.value)
                if attr is not None and sub.func.attr in _SHRINK_METHODS:
                    bounded.add(attr)
                continue
            if isinstance(sub, ast.Delete):
                for target in sub.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr is not None:
                            bounded.add(attr)
                continue
            if isinstance(sub, ast.Assign):
                value = sub.value
                for target in sub.targets:
                    attr = self._self_attr(target)
                    if attr is None:
                        continue
                    if (
                        isinstance(value, ast.Call)
                        and _call_name(value).split(".")[-1] == "deque"
                        and any(kw.arg == "maxlen" for kw in value.keywords)
                    ):
                        bounded.add(attr)
                    elif isinstance(value, ast.Subscript) and (
                        self._self_attr(value.value) == attr
                    ):
                        bounded.add(attr)  # self.x = self.x[-n:] trims
                continue
            if isinstance(sub, ast.Compare):
                for operand in [sub.left, *sub.comparators]:
                    if (
                        isinstance(operand, ast.Call)
                        and isinstance(operand.func, ast.Name)
                        and operand.func.id == "len"
                        and operand.args
                    ):
                        attr = self._self_attr(operand.args[0])
                        if attr is not None:
                            bounded.add(attr)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue  # not remotely invokable (component.act refuses)
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _GROWTH_METHODS
                ):
                    attr = self._self_attr(sub.func.value)
                    if attr is not None and attr not in bounded:
                        self.report(
                            sub, "PX701",
                            f"'self.{attr}.{sub.func.attr}()' in action "
                            f"handler '{stmt.name}' grows without any bound "
                            f"or shrink in class '{node.name}'; cap it "
                            f"(deque(maxlen=...), eviction, or a len() "
                            f"guard) or shed under pressure",
                        )

    def _check_unordered_iteration(self, node: ast.ClassDef) -> None:
        """PX801: handlers iterating unordered shared collections.

        Evidence that ``self.x`` is order-unstable: the class binds it
        to a set anywhere, or a *public* (parcel-invokable) method
        populates it (``self.x.add(...)`` / ``self.x[k] = ...``) --
        then its iteration order is arrival order, which differs per
        schedule.  A handler iterating such an attribute directly (or
        via ``.keys()/.values()/.items()``) dispatches nondeterministically;
        ``for gid in sorted(self.x)`` does not match and is the fix.
        """
        set_bound: Set[str] = set()
        arrival_ordered: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                value = sub.value
                is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                    isinstance(value, ast.Call)
                    and _call_name(value).split(".")[-1] in ("set", "frozenset")
                )
                if is_set:
                    for target in sub.targets:
                        attr = self._self_attr(target)
                        if attr is not None:
                            set_bound.add(attr)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "add"
                ):
                    attr = self._self_attr(sub.func.value)
                    if attr is not None:
                        arrival_ordered.add(attr)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Subscript):
                            attr = self._self_attr(target.value)
                            if attr is not None:
                                arrival_ordered.add(attr)
        unstable = set_bound | arrival_ordered
        if not unstable:
            return

        def iterated_attr(expr: ast.expr) -> str | None:
            attr = self._self_attr(expr)
            if attr is not None:
                return attr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("keys", "values", "items")
            ):
                return self._self_attr(expr.func.value)
            return None

        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            for sub in ast.walk(stmt):
                iters = []
                if isinstance(sub, (ast.For, ast.AsyncFor)):
                    iters.append(sub.iter)
                elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                      ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in sub.generators)
                for it in iters:
                    attr = iterated_attr(it)
                    if attr is None or attr not in unstable:
                        continue
                    why = (
                        "a set" if attr in set_bound
                        else "populated by action handlers"
                    )
                    self.report(
                        it, "PX801",
                        f"handler '{stmt.name}' iterates 'self.{attr}' "
                        f"({why}): the order is arrival/hash order and "
                        f"differs across schedules; iterate "
                        f"sorted(self.{attr}) for deterministic dispatch",
                    )

    @staticmethod
    def _blocking_gets(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> List[ast.Call]:
        """Direct no-argument ``.get()`` calls in ``fn``'s own body."""
        return [
            call
            for call in ast.walk(fn)
            if isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "get"
            and not call.args
            and not call.keywords
        ]

    def _check_transitive_blocking(self, node: ast.ClassDef) -> None:
        """PX302: a handler reaches a blocking ``.get()`` via helpers.

        Follows ``self._helper()`` calls and module-level function
        calls (an intra-module call graph) from each public method.
        The direct case stays PX301; this reports only chains of
        length >= 1, with the path.
        """
        methods: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        def callees(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> List[str]:
            names: List[str] = []
            for call in ast.walk(fn):
                if not isinstance(call, ast.Call):
                    continue
                if isinstance(call.func, ast.Attribute):
                    receiver = call.func.value
                    if (
                        isinstance(receiver, ast.Name)
                        and receiver.id == "self"
                        and call.func.attr in methods
                    ):
                        names.append(call.func.attr)
                elif (
                    isinstance(call.func, ast.Name)
                    and call.func.id in self._module_funcs
                ):
                    names.append(call.func.id)
            return names

        def resolve(name: str) -> ast.FunctionDef | ast.AsyncFunctionDef:
            return methods.get(name) or self._module_funcs[name]

        for name, fn in methods.items():
            if name.startswith("_"):
                continue
            # BFS from the handler; remember how each callee was reached.
            came_from: Dict[str, str] = {}
            queue = list(dict.fromkeys(callees(fn)))
            for callee in queue:
                came_from.setdefault(callee, name)
            while queue:
                current = queue.pop(0)
                target = resolve(current)
                blocking = self._blocking_gets(target)
                if blocking:
                    chain = [current]
                    while chain[-1] in came_from and came_from[chain[-1]] != name:
                        chain.append(came_from[chain[-1]])
                    path = " -> ".join(f"'{c}'" for c in reversed(chain))
                    self.report(
                        fn, "PX302",
                        f"action handler '{name}' reaches a blocking "
                        f".get() through {path} (line "
                        f"{blocking[0].lineno}); the suspension re-enters "
                        f"the scheduler on the locality's pool -- chain "
                        f"with .then()/dataflow instead",
                    )
                    break
                for nxt in callees(target):
                    if nxt not in came_from and nxt != name:
                        came_from[nxt] = current
                        queue.append(nxt)

    def _check_spawned_closures(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """PX811: spawned closures mutating captured outer-scope state."""
        nested: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for sub in ast.walk(node):
            if sub is not node and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                nested[sub.name] = sub

        # Spawn calls inside nested defs are analysed when the visitor
        # reaches that def; skip them here so findings are not doubled.
        inner_nodes: Set[int] = set()
        for inner in nested.values():
            for sub in ast.walk(inner):
                if sub is not inner:
                    inner_nodes.add(id(sub))

        spawned: List[tuple[ast.AST, str]] = []
        for call in ast.walk(node):
            if not isinstance(call, ast.Call) or id(call) in inner_nodes:
                continue
            name = _call_name(call)
            tail = name.split(".")[-1]
            if tail not in _SPAWN_METHODS:
                continue
            for arg in call.args:
                if isinstance(arg, ast.Lambda):
                    spawned.append((arg, tail))
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    spawned.append((nested[arg.id], tail))

        reported: Set[int] = set()
        for fn, spawn in spawned:
            if id(fn) in reported:
                continue
            reported.add(id(fn))
            self._check_one_closure(fn, spawn)

    def _check_one_closure(self, fn: ast.AST, spawn: str) -> None:
        label = getattr(fn, "name", "<lambda>")
        args = fn.args  # type: ignore[attr-defined]
        local: Set[str] = {
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        if args.vararg:
            local.add(args.vararg.arg)
        if args.kwarg:
            local.add(args.kwarg.arg)
        nonlocals: Set[str] = set()
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Nonlocal):
                nonlocals.update(sub.names)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not fn:
                    local.add(sub.name)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        # Store context only: ``x.attr = v`` / ``x[k] = v``
                        # mutate a *captured* x, they do not bind it.
                        if isinstance(leaf, ast.Name) and isinstance(
                            leaf.ctx, ast.Store
                        ):
                            local.add(leaf.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(sub.target):
                    if isinstance(leaf, ast.Name):
                        local.add(leaf.id)
            elif isinstance(sub, ast.comprehension):
                for leaf in ast.walk(sub.target):
                    if isinstance(leaf, ast.Name):
                        local.add(leaf.id)
        local -= nonlocals

        def captured(name: str) -> bool:
            return name not in local and name != "self"

        for sub in ast.walk(fn):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in nonlocals:
                        self.report(
                            sub, "PX811",
                            f"closure '{label}' passed to {spawn}() rebinds "
                            f"nonlocal '{target.id}': unsynchronized "
                            f"cross-thread mutation; return the value or "
                            f"publish through a future/Channel",
                        )
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = target.value
                        if isinstance(root, ast.Name) and captured(root.id):
                            self.report(
                                sub, "PX811",
                                f"closure '{label}' passed to {spawn}() "
                                f"mutates captured '{root.id}' without an "
                                f"LCO: unsynchronized cross-thread "
                                f"mutation; publish through a "
                                f"future/Channel instead",
                            )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATING_METHODS
                and isinstance(sub.func.value, ast.Name)
                and captured(sub.func.value.id)
            ):
                receiver = sub.func.value.id
                self.report(
                    sub, "PX811",
                    f"closure '{label}' passed to {spawn}() calls "
                    f"'{receiver}.{sub.func.attr}()' on captured "
                    f"'{receiver}' without an LCO: unsynchronized "
                    f"cross-thread mutation; publish through a "
                    f"future/Channel instead",
                )

    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self.model_rules and not self._px811_exempt:
            self._check_spawned_closures(node)
        # PX501: mutable defaults.
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_name(default).split(".")[-1] in _MUTABLE_DEFAULT_CALLS
            )
            if mutable:
                self.report(
                    default, "PX501",
                    f"mutable default argument in '{node.name}()' is shared "
                    f"across calls; default to None and construct inside",
                )

        calls = sorted(
            (n for n in ast.walk(node) if isinstance(n, ast.Call)),
            key=lambda n: (n.lineno, n.col_offset),
        )

        # PX401: set after retirement on the same receiver name.
        retired: Set[str] = set()
        for call in calls:
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = ""
            if isinstance(func.value, ast.Name):
                receiver = func.value.id
            elif isinstance(func.value, ast.Attribute) and isinstance(
                func.value.value, ast.Name
            ):
                receiver = f"{func.value.value.id}.{func.value.attr}"
            if not receiver:
                continue
            if func.attr in _RETIRING_METHODS:
                retired.add(receiver)
            elif func.attr in _SETTING_METHODS and receiver in retired:
                self.report(
                    call, "PX401",
                    f"'{receiver}.{func.attr}()' after '{receiver}' was "
                    f"retired earlier in '{node.name}()'; a retired "
                    f"LCO/promise must not be set again",
                )

        # PX301: blocking future.get() inside a component action handler.
        if (
            self.model_rules
            and self._class_stack
            and self._class_stack[-1]
            and not node.name.startswith("_")
        ):
            for call in calls:
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "get"
                    and not call.args
                    and not call.keywords
                ):
                    self.report(
                        call, "PX301",
                        f"blocking '.get()' inside action handler "
                        f"'{node.name}' re-enters the scheduler on the "
                        f"locality's pool; chain with .then()/dataflow or "
                        f"suppress if suspension is intended",
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self._visit_function_body(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self._visit_function_body(node)

    def _visit_function_body(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        is_handler = bool(
            self._class_stack
            and self._class_stack[-1]
            and not node.name.startswith("_")
        )
        self._handler_stack.append(is_handler)
        try:
            self.generic_visit(node)
        finally:
            self._handler_stack.pop()

    # Service / handler exception hygiene (PX901) ---------------------------
    def visit_Try(self, node: ast.Try) -> None:
        if self.model_rules and (
            self._px901_file or any(self._handler_stack)
        ):
            for handler in node.handlers:
                self._check_except_handler(handler)
        self.generic_visit(node)

    def _check_except_handler(self, handler: ast.ExceptHandler) -> None:
        if handler.type is None:
            self.report(
                handler, "PX901",
                "bare 'except:' in a service/handler code path also traps "
                "SystemExit and KeyboardInterrupt; name the exception you "
                "mean to survive",
            )
            return
        if self._broad_exception_names(handler.type) and self._swallows(
            handler.body
        ):
            caught = ast.unparse(handler.type)
            self.report(
                handler, "PX901",
                f"'except {caught}:' whose body does nothing swallows the "
                f"failure; jobs/parcels that die here become invisible to "
                f"the durability audits -- record a cause, re-raise, or "
                f"catch the specific exception",
            )

    @staticmethod
    def _broad_exception_names(expr: ast.expr) -> bool:
        """True when the except clause catches Exception/BaseException."""
        types = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for t in types:
            name = t.attr if isinstance(t, ast.Attribute) else (
                t.id if isinstance(t, ast.Name) else ""
            )
            if name in _PX901_BROAD_EXCEPTIONS:
                return True
        return False

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        """True when the handler body discards the exception entirely:
        nothing but ``pass``/``...``/``continue``/``break`` or a bare
        constant ``return`` -- no call, no raise, no binding."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            return False
        return True

    # PX601 epilogue --------------------------------------------------------
    def finish(self, tree: ast.Module) -> None:
        if self._has_all_export or os.path.basename(self.path) == "__init__.py":
            return
        exported: Set[str] = set()
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                )
            ):
                return  # explicit export list: imports may be re-exports
        for bound, (line, col, original) in self._imported.items():
            if bound in self._used_names or bound in exported:
                continue
            if bound.startswith("_"):
                continue
            if original.startswith("__future__."):
                continue  # compiler directives, never "used" (ruff parity)
            self.findings.append(
                Finding(
                    path=self.path, line=line, col=col, code="PX601",
                    message=f"'{original}' imported but unused",
                )
            )


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one file's source text; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                code="PX000", message=f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(path, apply_model_rules=_in_repro_package(path))
    checker.prepare(tree)
    checker.visit(tree)
    checker.finish(tree)
    per_line, per_file = _collect_disables(source)
    kept: List[Finding] = []
    for finding in checker.findings:
        if "ALL" in per_file or finding.code in per_file:
            continue
        line_codes = per_line.get(finding.line, set())
        if "ALL" in line_codes or finding.code in line_codes:
            continue
        kept.append(finding)
    return kept


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def filter_findings(
    findings: Iterable[Finding],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> List[Finding]:
    """Ruff-style code-prefix filtering.

    A finding survives when its code starts with one of the ``select``
    prefixes (all codes when ``select`` is empty) and with none of the
    ``ignore`` prefixes.  Prefixes are case-insensitive: ``PX1``
    matches ``PX101`` and ``PX102``.
    """
    keep = tuple(p.strip().upper() for p in select if p.strip())
    drop = tuple(p.strip().upper() for p in ignore if p.strip())
    kept: List[Finding] = []
    for finding in findings:
        code = finding.code.upper()
        if keep and not code.startswith(keep):
            continue
        if drop and code.startswith(drop):
            continue
        kept.append(finding)
    return kept


def fix_source(source: str, path: str) -> tuple[str, int]:
    """Apply the auto-fixable findings (PX601) to ``source``.

    Unused imports are removed alias-by-alias: a statement binding a
    mix of used and unused names keeps the used ones; a statement whose
    every binding is unused is deleted.  Statements on lines carrying a
    ``repro-lint`` suppression for PX601 (or files suppressing it) are
    left alone -- the fixer never removes what the linter would not
    report.  Returns ``(new_source, number_of_aliases_removed)``.
    """
    unused = {
        (f.line, f.message.split("'")[1])
        for f in lint_source(source, path)
        if f.code == "PX601"
    }
    if not unused:
        return source, 0
    tree = ast.parse(source, filename=path)
    lines = source.splitlines(True)
    removed = 0
    # Bottom-up so earlier line numbers stay valid while splicing.
    statements = [
        stmt
        for stmt in ast.walk(tree)
        if isinstance(stmt, (ast.Import, ast.ImportFrom))
    ]
    for stmt in sorted(statements, key=lambda s: s.lineno, reverse=True):
        module = (stmt.module or "") if isinstance(stmt, ast.ImportFrom) else ""
        kept_aliases: List[ast.alias] = []
        for alias in stmt.names:
            if isinstance(stmt, ast.ImportFrom):
                original = f"{module}.{alias.name}"
            else:
                original = alias.name
            if (stmt.lineno, original) in unused:
                removed += 1
            else:
                kept_aliases.append(alias)
        if len(kept_aliases) == len(stmt.names):
            continue
        indent = lines[stmt.lineno - 1][
            : len(lines[stmt.lineno - 1]) - len(lines[stmt.lineno - 1].lstrip())
        ]
        if not kept_aliases:
            replacement: List[str] = []
        else:
            rendered = ", ".join(
                a.name + (f" as {a.asname}" if a.asname else "")
                for a in kept_aliases
            )
            if isinstance(stmt, ast.ImportFrom):
                dots = "." * stmt.level
                text = f"{indent}from {dots}{module} import {rendered}\n"
            else:
                text = f"{indent}import {rendered}\n"
            replacement = [text]
        end = stmt.end_lineno or stmt.lineno
        lines[stmt.lineno - 1 : end] = replacement
    return "".join(lines), removed


def fix_file(path: str) -> int:
    """Rewrite ``path`` in place; returns the number of fixes applied."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    fixed, count = fix_source(source, path)
    if count:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(fixed)
    return count


def _iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
        else:
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".ruff_cache")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for path in _iter_python_files(paths):
        findings.extend(lint_file(path))
    return findings


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Repro-specific static lint for the ParalleX model.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply auto-fixes in place (PX601: remove unused imports)",
    )
    parser.add_argument(
        "--select", default="",
        help="comma-separated code prefixes to report (default: all)",
    )
    parser.add_argument(
        "--ignore", default="",
        help="comma-separated code prefixes to suppress",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    select = [p for p in args.select.split(",") if p.strip()]
    ignore = [p for p in args.ignore.split(",") if p.strip()]
    if args.fix and filter_findings(
        [Finding("", 1, 1, "PX601", "")], select, ignore
    ):
        fixed = sum(fix_file(p) for p in _iter_python_files(args.paths))
        if fixed and not args.json:
            print(f"fixed {fixed} finding(s)")
    findings = filter_findings(lint_paths(args.paths), select, ignore)
    if args.json:
        print(json.dumps([asdict(f) for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
