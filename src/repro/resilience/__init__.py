"""Fault injection and resilience: the runtime as a robustness testbed.

The paper's Kunpeng 916 story is about a *degraded* network; real AMT
deployments (e.g. HPX on Raspberry Pi clusters) add outright faults on
top.  This package turns the perfectly reliable simulated substrate into
a lossy one -- deterministically -- and provides the HPX-style recovery
APIs:

* :class:`FaultInjector` -- seeded, virtual-time-aware source of parcel
  faults (drop / corrupt / duplicate / delay-spike) and scheduled
  locality outages, consulted by the parcelport and the runtime;
* :class:`RetryPolicy` -- reliable parcel delivery on the lossy port:
  ack-timeout retransmission with capped exponential backoff and a
  dead-letter queue (see
  :class:`~repro.runtime.parcel.parcelport.Parcelport`);
* :func:`async_replay` / :func:`async_replicate` -- HPX resiliency task
  APIs (``hpx::resiliency::experimental``), re-exported from
  :mod:`repro.runtime.actions`;
* :func:`save_checkpoint` / :func:`restore_checkpoint` /
  :class:`CheckpointStore` -- HPX-style checkpoint/restart
  (``hpx::util::checkpoint``): versioned, checksummed snapshots with a
  coordinated epoch protocol, corruption fallback, and cost-model
  accounting (see :mod:`repro.resilience.checkpoint`);
* :class:`OverloadController` (with :class:`OverloadPolicy`,
  :class:`CircuitBreaker`, :class:`PhiAccrualDetector`) -- overload
  protection: admission control with priority-aware shedding,
  credit-based flow control, per-destination circuit breakers, and a
  phi-accrual failure detector (see :mod:`repro.resilience.overload`).

Everything is clocked on the DES virtual clock, so a faulty run is as
deterministic and reproducible as a clean one: same seed, same faults,
same retries, same makespan.
"""

from ..runtime.actions import async_replay, async_replicate
from ..runtime.parcel.parcelport import RetryPolicy
from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    restore_checkpoint,
    save_checkpoint,
)
from .faults import FaultInjector, LocalityFailure, ParcelFate
from .overload import (
    CircuitBreaker,
    OverloadController,
    OverloadPolicy,
    PhiAccrualDetector,
)

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "CircuitBreaker",
    "FaultInjector",
    "LocalityFailure",
    "OverloadController",
    "OverloadPolicy",
    "ParcelFate",
    "PhiAccrualDetector",
    "RetryPolicy",
    "async_replay",
    "async_replicate",
    "restore_checkpoint",
    "save_checkpoint",
]
