"""Dynamic data-race detection via vector-clock happens-before tracking.

ParalleX's correctness contract is that futures, LCOs and parcels are
the *only* ordering edges between HPX-threads; any two accesses to
shared component state that are not connected by such an edge are a
race -- in this deterministic reproduction they show up as silent
schedule-dependent nondeterminism rather than crashes, which is worse.

:class:`RaceDetector` is a :class:`~repro.runtime.instrument.Probe`
that maintains one :class:`~repro.analysis.vector_clock.VectorClock`
per HPX-thread and creates happens-before edges from every
synchronisation the runtime reports:

* **spawn**: ``ThreadPool.submit`` (child inherits the submitter's
  clock) -- this also covers parcel send -> handler and reply -> reader,
  because both sides are materialised as submitted tasks;
* **future set -> get**: a promise's fulfilment stamps the setter's
  clock on the shared state; every read joins it;
* **LCO releases**: each latch count-down / barrier arrival / and-gate
  slot / ``when_all`` input *contributes* its clock to the release, so
  the released side is ordered after **all** contributors, not just the
  last one;
* **buffered hand-offs**: channel values and semaphore permits carry
  the clock of the task that deposited them.

Shared data is tracked at explicitly instrumented locations --
:meth:`~repro.runtime.agas.component.Component.mark_read` /
``mark_write`` in component actions, and the built-in hooks in
``partitioned_vector`` segments and the stencil partitions.  Two
accesses to one location where at least one is a write and neither
happens-before the other raise :class:`~repro.errors.DataRaceError`
naming both access sites and the missing edge.
"""

from __future__ import annotations

import os
import traceback
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Sequence

from ..errors import DataRaceError
from ..runtime import context as ctx
from ..runtime.instrument import Probe
from .vector_clock import Epoch, VectorClock

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.threads.hpx_thread import HpxThread
    from ..runtime.trace import Tracer

__all__ = ["RaceDetector", "AccessRecord"]

#: Synthetic thread id for code running outside any HPX-thread.
MAIN_TID = 0

_PKG_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SELF_FILES = (
    os.path.join("analysis", "race.py"),
    os.path.join("runtime", "instrument.py"),
)
_HELPER_FUNCS = frozenset(
    {"mark_read", "mark_write", "record_read", "record_write", "access", "_access"}
)


def _capture_sites() -> tuple[str, str]:
    """``(access site, origin site)`` for the current access.

    The access site is the first frame below the instrumentation helpers
    (typically the component method performing the read/write); the
    origin site is the nearest enclosing frame outside ``src/repro``
    (test or application code), or ``""`` when the whole stack is
    library-internal.
    """
    frames = traceback.extract_stack()
    access_site = ""
    origin_site = ""
    for frame in reversed(frames):
        filename = frame.filename
        if any(filename.endswith(suffix) for suffix in _SELF_FILES):
            continue
        if frame.name in _HELPER_FUNCS:
            continue
        where = f"{filename}:{frame.lineno} in {frame.name}"
        if not access_site:
            access_site = where
        if not filename.startswith(_PKG_ROOT):
            origin_site = where
            break
    return access_site, origin_site


@dataclass(frozen=True)
class AccessRecord:
    """One recorded access to an instrumented location."""

    kind: str  # "read" | "write"
    tid: int
    task: str  # description of the accessing HPX-thread
    epoch: Epoch
    site: str
    origin: str

    def describe(self) -> str:
        who = f"thread #{self.tid}" if self.tid != MAIN_TID else "the main context"
        text = f"{self.kind} by {who} ({self.task}) at {self.site}"
        if self.origin and self.origin != self.site:
            text += f" (from {self.origin})"
        return text


class _Location:
    """Per-location access history: last write plus reads since."""

    __slots__ = ("owner", "field", "write", "reads")

    def __init__(self, owner: Any, field: str) -> None:
        self.owner = owner  # strong ref: keeps id(owner) stable
        self.field = field
        self.write: AccessRecord | None = None
        self.reads: Dict[int, AccessRecord] = {}

    def label(self) -> str:
        return f"{type(self.owner).__name__}@{id(self.owner):#x}.{self.field}"


class RaceDetector(Probe):
    """Happens-before race detection over instrumented shared state.

    ``report="raise"`` (default) raises :class:`DataRaceError` at the
    racing access; ``report="collect"`` records findings in
    :attr:`races` and keeps going (CLI smoke runs).  With ``tracer``
    given, each finding is also emitted as a ``TraceEvent`` of kind
    ``"race"`` on the virtual timeline.
    """

    def __init__(
        self, tracer: "Tracer | None" = None, report: str = "raise"
    ) -> None:
        if report not in ("raise", "collect"):
            raise ValueError(f"report must be 'raise' or 'collect', got {report!r}")
        self.tracer = tracer
        self.report = report
        self.races: list[DataRaceError] = []
        self._clocks: Dict[int, VectorClock] = {MAIN_TID: VectorClock()}
        #: Release clock of each fulfilled shared state, by id().
        self._state_clocks: Dict[int, VectorClock] = {}
        #: Accumulated contributions for not-yet-fulfilled states.
        self._contribs: Dict[int, VectorClock] = {}
        #: FIFO clock queues for buffered hand-offs (channels, semaphores).
        self._tokens: Dict[int, deque[VectorClock]] = {}
        #: Instrumented locations by (id(owner), field).
        self._locations: Dict[tuple[int, str], _Location] = {}
        #: Strong refs keyed by id() so ids cannot be recycled underneath us.
        self._keepalive: Dict[int, Any] = {}

    # Clock plumbing --------------------------------------------------------
    def _current_tid(self) -> int:
        task = ctx.current_task()
        return task.tid if task is not None else MAIN_TID

    def _clock_of(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.tick(tid)
            self._clocks[tid] = clock
        return clock

    def clock(self) -> VectorClock:
        """The calling context's current vector clock (for tests/tools)."""
        return self._clock_of(self._current_tid())

    def _pin(self, obj: Any) -> int:
        key = id(obj)
        self._keepalive[key] = obj
        return key

    # Probe events ----------------------------------------------------------
    def task_created(self, parent: "HpxThread | None", task: "HpxThread") -> None:
        parent_tid = parent.tid if parent is not None else self._current_tid()
        parent_clock = self._clock_of(parent_tid)
        child = parent_clock.copy()
        child.tick(task.tid)
        self._clocks[task.tid] = child
        parent_clock.tick(parent_tid)

    def state_fulfilled(self, state: Any) -> None:
        key = self._pin(state)
        tid = self._current_tid()
        clock = self._clock_of(tid)
        release = clock.copy()
        contrib = self._contribs.pop(key, None)
        if contrib is not None:
            release.join(contrib)
        self._state_clocks[key] = release
        clock.tick(tid)

    def state_read(self, state: Any) -> None:
        release = self._state_clocks.get(id(state))
        if release is not None:
            self._clock_of(self._current_tid()).join(release)

    def state_contribute(self, state: Any) -> None:
        key = self._pin(state)
        tid = self._current_tid()
        clock = self._clock_of(tid)
        contrib = self._contribs.get(key)
        if contrib is None:
            self._contribs[key] = clock.copy()
        else:
            contrib.join(clock)
        clock.tick(tid)

    def token_put(self, obj: Any) -> None:
        key = self._pin(obj)
        tid = self._current_tid()
        clock = self._clock_of(tid)
        self._tokens.setdefault(key, deque()).append(clock.copy())
        clock.tick(tid)

    def token_get(self, obj: Any) -> None:
        queue = self._tokens.get(id(obj))
        if queue:
            self._clock_of(self._current_tid()).join(queue.popleft())

    def stalled(self, context: Any = None) -> None:
        """A stall is a global synchronisation point: join every clock.

        The progress engine fires this only after proving *no* runnable
        work exists anywhere, so every other task has terminated (or can
        never run again).  Whatever the stalled context does next --
        crash-recovery rollback re-reading partition fields, a test
        inspecting state after a DeadlockError -- is genuinely ordered
        after all of it, even where no future/LCO edge was recorded
        (e.g. chains abandoned by a rollback).  Without this join the
        recovery path would be flagged as racing with the dead timeline.
        """
        current = self._clock_of(self._current_tid())
        for clock in self._clocks.values():
            current.join(clock)

    # Race checking ---------------------------------------------------------
    def access(self, owner: Any, field: str, kind: str) -> None:
        tid = self._current_tid()
        clock = self._clock_of(tid)
        key = (self._pin(owner), field)
        location = self._locations.get(key)
        if location is None:
            location = self._locations[key] = _Location(owner, field)
        site, origin = _capture_sites()
        task = ctx.current_task()
        record = AccessRecord(
            kind=kind,
            tid=tid,
            task=task.description if task is not None else "main",
            epoch=clock.epoch(tid),
            site=site,
            origin=origin,
        )
        if kind == "write":
            if location.write is not None and not clock.dominates(location.write.epoch):
                self._report(location, location.write, record)
            for read in location.reads.values():
                if read.tid != tid and not clock.dominates(read.epoch):
                    self._report(location, read, record)
            location.write = record
            location.reads.clear()
        elif kind == "read":
            if location.write is not None and not clock.dominates(location.write.epoch):
                self._report(location, location.write, record)
            location.reads[tid] = record
        else:  # pragma: no cover - defensive
            raise ValueError(f"access kind must be 'read'/'write', got {kind!r}")

    def _report(
        self, location: _Location, previous: AccessRecord, current: AccessRecord
    ) -> None:
        error = DataRaceError(
            f"data race on {location.label()}: "
            f"{current.describe()} is unordered with earlier "
            f"{previous.describe()}; no happens-before edge (future "
            f"set->get, LCO release, parcel, or spawn/join) connects the "
            f"two accesses",
            location=location.label(),
            current=current,
            previous=previous,
        )
        self.races.append(error)
        if self.tracer is not None:
            from ..runtime.trace import TraceEvent

            frame = ctx.current_or_none()
            pool = frame.pool if frame is not None else None
            self.tracer.events.append(
                TraceEvent(
                    kind="race",
                    time=pool.now if pool is not None else 0.0,
                    pool=pool.name if pool is not None else "",
                    worker_id=frame.worker_id if frame is not None else None,
                    args={
                        "location": location.label(),
                        "current": current.describe(),
                        "previous": previous.describe(),
                    },
                )
            )
        if self.report == "raise":
            raise error

    # Results ---------------------------------------------------------------
    def findings(self) -> Sequence[DataRaceError]:
        """All collected races (``report="collect"`` mode)."""
        return list(self.races)
