"""Unit tests for parallel algorithms and execution policies."""

import operator

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import (
    BlockExecutor,
    PoolExecutor,
    for_each,
    for_loop,
    inclusive_scan,
    par,
    par_simd,
    reduce_,
    seq,
    simd,
    transform,
)
from repro.runtime.algorithms import auto_chunk_size, partition


# Policies ----------------------------------------------------------------------

def test_policy_flags():
    assert not seq.parallel and not seq.vectorize
    assert par.parallel and not par.vectorize
    assert not simd.parallel and simd.vectorize
    assert par_simd.parallel and par_simd.vectorize


def test_policy_on_executor(rt):
    executor = PoolExecutor(rt.localities[0].pool)
    bound = par.on(executor)
    assert bound.executor is executor
    assert par.executor is None  # original is untouched


def test_seq_cannot_take_executor(rt):
    executor = PoolExecutor(rt.localities[0].pool)
    with pytest.raises(RuntimeStateError):
        seq.on(executor)


def test_with_chunk_size():
    assert par.with_chunk_size(16).chunk_size == 16
    with pytest.raises(RuntimeStateError):
        par.with_chunk_size(0)


# Partitioner --------------------------------------------------------------------

def test_auto_chunk_size_targets_chunks_per_worker():
    # 1000 items / (4 workers x 4) = 62.5 -> 63.
    assert auto_chunk_size(1000, 4) == 63


def test_auto_chunk_size_min_chunk():
    assert auto_chunk_size(10, 4, min_chunk=8) == 8
    assert auto_chunk_size(0, 4) == 1


def test_auto_chunk_size_validation():
    with pytest.raises(RuntimeStateError):
        auto_chunk_size(-1, 2)
    with pytest.raises(RuntimeStateError):
        auto_chunk_size(1, 0)
    with pytest.raises(RuntimeStateError):
        auto_chunk_size(1, 1, min_chunk=0)


def test_partition_covers_range_once():
    chunks = partition(3, 20, 6)
    flat = [i for c in chunks for i in c]
    assert flat == list(range(3, 20))
    assert [len(c) for c in chunks] == [6, 6, 5]


def test_partition_empty():
    assert partition(5, 5, 3) == []


def test_partition_validation():
    with pytest.raises(RuntimeStateError):
        partition(0, 10, 0)
    with pytest.raises(RuntimeStateError):
        partition(10, 0, 1)


# for_each / for_loop ----------------------------------------------------------------

def test_for_each_seq_outside_runtime():
    out = []
    for_each(seq, [10, 20, 30], out.append)
    assert out == [10, 20, 30]


def test_for_each_par_outside_runtime_falls_back_to_seq():
    out = []
    for_each(par, range(5), out.append)
    assert out == [0, 1, 2, 3, 4]


def test_for_each_par_in_runtime(rt):
    out = []

    def main():
        for_each(par, range(100), out.append)

    rt.run(main)
    assert sorted(out) == list(range(100))


def test_for_each_empty(rt):
    rt.run(lambda: for_each(par, [], lambda x: 1 / 0))


def test_for_loop_indices(rt):
    out = []

    def main():
        for_loop(par, 5, 15, out.append)

    rt.run(main)
    assert sorted(out) == list(range(5, 15))


def test_for_loop_invalid_range():
    with pytest.raises(RuntimeStateError):
        for_loop(seq, 10, 5, lambda i: None)


def test_for_each_with_block_executor(rt):
    executor = BlockExecutor(rt.localities[0].pool)
    out = []

    def main():
        for_each(par.on(executor), range(20), out.append)

    rt.run(main)
    assert sorted(out) == list(range(20))


# transform / reduce / scan -------------------------------------------------------------

def test_transform_preserves_order(rt):
    def main():
        return transform(par, range(50), lambda x: x * x)

    assert rt.run(main) == [x * x for x in range(50)]


def test_transform_seq():
    assert transform(seq, [1, 2, 3], str) == ["1", "2", "3"]


def test_reduce_matches_sequential(rt):
    data = list(range(1, 101))

    def main():
        return reduce_(par, data, 0, operator.add)

    assert rt.run(main) == sum(data)


def test_reduce_empty():
    assert reduce_(seq, [], 42, operator.add) == 42


def test_reduce_non_commutative_but_associative(rt):
    """String concatenation: associative, order must be preserved."""
    words = [c for c in "parallex"]

    def main():
        return reduce_(par.with_chunk_size(3), words, "", operator.add)

    assert rt.run(main) == "parallex"


def test_inclusive_scan_matches_itertools(rt):
    import itertools

    data = list(range(1, 30))

    def main():
        return inclusive_scan(par.with_chunk_size(4), data, operator.add)

    assert rt.run(main) == list(itertools.accumulate(data))


def test_inclusive_scan_empty():
    assert inclusive_scan(seq, [], operator.add) == []


def test_inclusive_scan_single_chunk():
    assert inclusive_scan(seq, [5, 1, 2], operator.add) == [5, 6, 8]


def test_chunked_for_each_respects_chunk_size(rt):
    """With chunk_size=10 over 100 items, exactly 10 tasks are spawned."""
    pool = rt.localities[0].pool
    before = pool.tasks_executed

    def main():
        for_each(par.with_chunk_size(10), range(100), lambda i: None)

    rt.run(main)
    # main + 10 chunk tasks (when_all adds no tasks of its own).
    assert pool.tasks_executed - before == 11
