"""The cooperative thread pool: real execution, virtual time.

Workers model pinned OS threads (one per physical core, as the paper
configures HPX).  Execution is cooperative and single-OS-threaded, which
makes every run deterministic; *when* things happen is tracked on a
virtual clock:

* each worker has an ``available_at`` time;
* a task starts at ``max(worker.available_at, task.ready_time)`` and
  finishes at ``max(start, latest dependency) + accrued cost``;
* a blocking ``Future.get()`` suspends the task and lets the pool run
  other work ("helping"), the cooperative analogue of HPX suspending an
  HPX-thread and the worker picking up the next one.

The pool's makespan (``max available_at``) is the modelled parallel
execution time -- this is what the DES-mode benchmarks read.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ...errors import DeadlockError, RuntimeStateError
from .. import context as ctx
from ..context import _stack as _context_stack
from .. import instrument
from .. import replay
from ..futures import Future
from .hpx_thread import _NO_KWARGS, HpxThread, ThreadPriority, ThreadState
from .scheduler import Scheduler, WorkStealingScheduler, make_scheduler

__all__ = ["ThreadPool"]

_INF = float("inf")


def _parked() -> None:  # pragma: no cover - never called
    """Placeholder body installed on recycled shells so a parked shell
    never pins the finished task's user callable."""


class _Worker:
    __slots__ = ("worker_id", "core_id", "available_at", "tasks_run", "busy_time")

    def __init__(self, worker_id: int, core_id: int | None) -> None:
        self.worker_id = worker_id
        self.core_id = core_id
        self.available_at = 0.0
        self.tasks_run = 0
        #: Attributed compute seconds executed on this worker (excludes
        #: idle gaps and dependency waits) -- drives the idle-rate counter.
        self.busy_time = 0.0


class ThreadPool:
    """A pool of virtual worker cores executing HPX-threads."""

    #: Guard against unbounded mutual blocking (each nested blocking get
    #: re-enters the scheduler loop).
    MAX_HELP_DEPTH = 256

    def __init__(
        self,
        n_workers: int,
        scheduler: str | Scheduler = "work-stealing",
        core_ids: Optional[list[int]] = None,
        name: str = "default",
        steal_attempts: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise RuntimeStateError("pool needs at least one worker")
        if core_ids is not None and len(core_ids) != n_workers:
            raise RuntimeStateError(
                f"{len(core_ids)} core ids for {n_workers} workers"
            )
        self.name = name
        self.workers = [
            _Worker(i, core_ids[i] if core_ids else None) for i in range(n_workers)
        ]
        if isinstance(scheduler, Scheduler):
            if scheduler.n_workers != n_workers:
                raise RuntimeStateError("scheduler sized for a different pool")
            self.scheduler = scheduler
        else:
            self.scheduler = make_scheduler(scheduler, n_workers, steal_attempts)
        self.tasks_executed = 0
        #: High-water mark of the queue depth, maintained on submit --
        #: the overload storm harness asserts this stays bounded.
        self.peak_pending = 0
        self.failures: list[tuple[HpxThread, BaseException]] = []
        #: Freelist of finished task shells (see :meth:`_recycle`) --
        #: spawn-heavy loops reinit a parked shell instead of allocating.
        self._shell_pool: list[HpxThread] = []
        #: Freelist of execution-context frames (scoped to one _execute).
        self._frame_pool: list = []
        self._help_depth = 0
        self._in_flight = 0
        # Backrefs installed by Locality/Runtime so task frames carry them.
        self.locality = None
        self.runtime = None
        #: Schedule controller (repro.analysis.explore): when installed,
        #: every dispatch exposes the full ready set and the controller
        #: picks which task runs next.  None on the production path.
        self.controller = None

    # Introspection -------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def makespan(self) -> float:
        """Virtual time at which every worker is drained."""
        workers = self.workers
        span = workers[0].available_at
        for worker in workers:
            if worker.available_at > span:
                span = worker.available_at
        return span

    @property
    def now(self) -> float:
        """Current virtual time from the active task's point of view."""
        frame = ctx.current_or_none()
        if frame is not None and frame.pool is self and frame.task is not None:
            return frame.task.current_virtual_time()
        return self.makespan

    @property
    def steals(self) -> int:
        """Successful steals (work-stealing scheduler only)."""
        sched = self.scheduler
        return sched.steals if isinstance(sched, WorkStealingScheduler) else 0

    def pending(self) -> int:
        """Queued tasks not yet started."""
        return len(self.scheduler)

    def pending_low(self) -> int:
        """Queued LOW-priority (sheddable background) tasks."""
        return self.scheduler.pending_low()

    def discard_pending(self) -> int:
        """Drop every queued-but-unstarted task (crash decommissioning).

        Models the work a dead node takes with it: each dropped task's
        promise is broken, so anything still waiting on it observes
        :class:`~repro.errors.BrokenPromiseError` instead of hanging.
        Returns the number of tasks discarded.
        """
        dropped = self.scheduler.drain()
        for task in dropped:
            task.state = ThreadState.TERMINATED
            if not task.promise.is_ready():
                task.promise.break_promise()
        return len(dropped)

    # Submission ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        kwargs: dict[str, Any] | None = None,
        worker: int | None = None,
        ready_time: float | None = None,
        description: str = "",
        priority: ThreadPriority | None = None,
    ) -> Future:
        """Queue ``fn(*args)`` as a new HPX-thread; returns its future.

        ``worker`` pins the task (block executors); ``ready_time``
        overrides the virtual time at which it may start (parcel
        arrivals); ``priority`` jumps scheduler queues
        (:class:`~repro.runtime.threads.hpx_thread.ThreadPriority`).  By
        default a task becomes ready at the submitter's current virtual
        time with normal priority.
        """
        if ready_time is None:
            # Inlined ``self.now``: one stack peek instead of a property
            # call -- submit is the busiest entry point in the runtime.
            frame = _context_stack[-1] if _context_stack else None
            if frame is not None and frame.pool is self and frame.task is not None:
                ready_time = frame.task.current_virtual_time()
            else:
                ready_time = self.makespan
        shells = self._shell_pool
        if shells and not replay.deterministic:
            task = shells.pop().reinit(
                fn,
                args,
                kwargs,
                description=description,
                ready_time=ready_time,
                priority=priority,
            )
        else:
            task = HpxThread(
                fn,
                args,
                kwargs,
                description=description,
                ready_time=ready_time,
                priority=priority,
            )
        if instrument.enabled and (probe := instrument.probe) is not None:
            probe.task_created(ctx.current_task(), task)
        self.scheduler.push(task, worker_hint=worker)
        depth = len(self.scheduler)
        if depth > self.peak_pending:
            self.peak_pending = depth
        return task.get_future()

    # Execution -------------------------------------------------------------------
    def _next(self) -> tuple[HpxThread, _Worker] | tuple[None, None]:
        """Pick the (task, worker) pair that can start earliest.

        A single min-scan replaces sorting every worker per dispatch:
        ``self.workers`` is stored in id order and the strict ``<`` keeps
        the lowest id on availability ties, so the worker tried first is
        exactly the one the old sort put first.  Only when that worker's
        acquire fails (a static scheduler with an empty bound queue, or
        a thief out of attempts) does the full sorted fallback run.
        """
        workers = self.workers
        best = workers[0]
        for worker in workers:
            if worker.available_at < best.available_at:
                best = worker
        controller = self.controller
        if controller is not None:
            # Schedule-exploration seam: surface the whole ready set and
            # let the strategy pick.  The chosen task runs on the
            # earliest-available worker regardless of any static
            # placement hint -- exploration probes *logical* orderings,
            # not placement.
            candidates = self.scheduler.snapshot()
            if not candidates:
                return None, None
            task = controller.choose(self, candidates)
            if task is None or not self.scheduler.remove(task):
                return None, None
            return task, best
        task = self.scheduler.acquire(best.worker_id)
        if task is not None:
            return task, best
        for worker in sorted(workers, key=lambda w: (w.available_at, w.worker_id)):
            if worker is best:
                continue
            task = self.scheduler.acquire(worker.worker_id)
            if task is not None:
                return task, worker
        return None, None

    def _execute(self, task: HpxThread, worker: _Worker) -> None:
        task.worker_id = worker.worker_id
        available_at = worker.available_at
        ready_time = task.ready_time
        task.start_time = available_at if available_at >= ready_time else ready_time
        task.state = ThreadState.RUNNING
        runtime = self.runtime
        locality = self.locality
        if runtime is None or locality is None:
            # Bare pools (no Locality/Runtime backref) inherit from the
            # enclosing frame; runtime-managed pools skip the lookup.
            outer = _context_stack[-1] if _context_stack else None
            if outer is not None:
                if runtime is None:
                    runtime = outer.runtime
                if locality is None:
                    locality = outer.locality
        # Frames live exactly for the duration of one _execute (nothing
        # retains them past the pop below), so they are recycled from a
        # per-pool freelist; ``frame.pool`` is ``self`` on every reuse.
        frames = None if replay.deterministic else self._frame_pool
        if frames:
            frame = frames.pop()
            frame.runtime = runtime
            frame.locality = locality
            frame.worker_id = worker.worker_id
            frame.task = task
        else:
            frame = ctx.ExecutionContext(
                runtime=runtime,
                locality=locality,
                pool=self,
                worker_id=worker.worker_id,
                task=task,
            )
        # Balanced push/pop inlined as list ops -- this pair runs once
        # per task and the function-call overhead of ctx.push/ctx.pop is
        # measurable at that rate.
        _context_stack.append(frame)
        self._in_flight += 1
        probe = instrument.probe if instrument.enabled else None
        try:
            if probe is not None:
                probe.task_started(task)
            try:
                result = task.fn(*task.args, **task.kwargs)
            except BaseException as exc:  # noqa: BLE001 - forwarded via future
                task.state = ThreadState.TERMINATED
                task.finish_time = task.current_virtual_time()
                task._promise.set_exception(exc)
                self.failures.append((task, exc))
            else:
                task.state = ThreadState.TERMINATED
                task.finish_time = task.current_virtual_time()
                task._promise.set_value(result)
            if probe is not None:
                probe.task_finished(task)
        finally:
            self._in_flight -= 1
            _context_stack.pop()
            frame.task = None
            frame.extras = None
            if frames is not None:
                frames.append(frame)
        if task.finish_time > worker.available_at:
            worker.available_at = task.finish_time
        worker.tasks_run += 1
        worker.busy_time += task.cost
        self.tasks_executed += 1

    def _recycle(self, task: HpxThread) -> None:
        """Park a finished task's shell on the freelist for reuse.

        Called by the dispatch loops *after* ``self._execute`` returns --
        i.e. after any tracer wrapper patched over ``_execute`` has read
        the task's final fields.  Skipped entirely when a probe is
        attached (probes keep task references in wait/creation graphs)
        and for failed tasks (``self.failures`` keeps them for
        post-mortem).  The shell's user references are dropped so a
        parked shell never pins a closure, its arguments, or a result.
        """
        if (
            replay.deterministic
            or instrument.enabled
            or len(self._shell_pool) >= 1024
        ):
            return
        failures = self.failures
        if failures and failures[-1][0] is task:
            return
        task.fn = _parked
        task.args = ()
        task.kwargs = _NO_KWARGS
        self._shell_pool.append(task)

    def step_one(self) -> bool:
        """Execute exactly one queued task; False if none was available."""
        task, worker = self._next()
        if task is None:
            return False
        self._execute(task, worker)
        self._recycle(task)
        return True

    def next_start_hint(self) -> float:
        """Lower bound on when this pool's next task could start.

        Used by the runtime to step pools in approximately causal order.
        Returns +inf when nothing is queued.
        """
        if not len(self.scheduler):
            return _INF
        workers = self.workers
        hint = workers[0].available_at
        for worker in workers:
            if worker.available_at < hint:
                hint = worker.available_at
        return hint

    def run_until(self, predicate: Callable[[], bool]) -> None:
        """Execute queued tasks until ``predicate()`` is true.

        Raises :class:`DeadlockError` when the predicate is false and no
        runnable work remains -- every remaining task waits on an LCO
        nobody can fire.
        """
        if self._help_depth >= self.MAX_HELP_DEPTH:
            raise DeadlockError(
                f"blocking-wait depth exceeded {self.MAX_HELP_DEPTH}; "
                "likely an unbounded chain of mutually blocking tasks"
            )
        self._help_depth += 1
        try:
            while not predicate():
                task, worker = self._next()
                if task is None:
                    probe = instrument.probe
                    if probe is not None:
                        # A deadlock detector raises its own richer error
                        # (rendered wait cycle) from this hook.
                        probe.stalled(self)
                    raise DeadlockError(
                        "no runnable work while tasks wait on unsatisfied "
                        "dependencies (cooperative deadlock)"
                    )
                self._execute(task, worker)
                self._recycle(task)
        finally:
            self._help_depth -= 1

    def run_before(self, predicate: Callable[[], bool], deadline: float) -> bool:
        """Execute queued tasks that can start at or before virtual
        ``deadline`` until ``predicate()``; returns the final predicate
        value instead of raising on a stall (timeout machinery)."""
        while not predicate():
            if self.next_start_hint() > deadline:
                return predicate()
            task, worker = self._next()
            if task is None:
                return predicate()
            self._execute(task, worker)
            self._recycle(task)
        return True

    def run_all(self) -> float:
        """Drain every queued task; returns the resulting makespan."""
        while len(self.scheduler):
            task, worker = self._next()
            if task is None:  # pragma: no cover - scheduler invariant
                raise DeadlockError("scheduler reports work but yields none")
            self._execute(task, worker)
            self._recycle(task)
        return self.makespan

    def reset_clock(self) -> None:
        """Rewind all workers to t=0 (between benchmark repetitions)."""
        if len(self.scheduler) or self._in_flight:
            raise RuntimeStateError("cannot reset clock while work is pending")
        for worker in self.workers:
            worker.available_at = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ThreadPool({self.name!r}, workers={self.n_workers}, "
            f"scheduler={self.scheduler.name}, makespan={self.makespan:.3e})"
        )
