"""Fig 8: 2D stencil on Marvell ThunderX2.

Signature results: floats get implicit cache blocking from the start;
doubles switch to the blocked arithmetic intensity at >= 16 cores (the
paper's unexplained "interesting switch"); explicit vectorization is
worth 50-60 % (floats) / ~40 % (doubles) via a large backend-stall
reduction.
"""

import numpy as np
import pytest

from repro.exhibits import fig_2d_stencil, render_fig_2d
from repro.hardware import machine
from repro.perf import stencil2d_glups
from repro.perf.cost import transfers_per_update

MACHINE = "thunderx2"


def test_fig8_exhibit(benchmark, save_exhibit):
    series = benchmark(fig_2d_stencil, MACHINE)
    assert len(series) == 8
    save_exhibit("fig8_2d_thunderx2", render_fig_2d(MACHINE))


def test_fig8_double_ai_switch_at_16_cores(benchmark):
    m = machine(MACHINE)
    transfers = benchmark(
        lambda: {c: transfers_per_update(m, np.float64, c) for c in (8, 15, 16, 32)}
    )
    assert transfers[8] == 3.0 and transfers[15] == 3.0
    assert transfers[16] == 2.0 and transfers[32] == 2.0
    # The switch shows as a visible uplift in the curve.
    per_core_15 = stencil2d_glups(m, np.float64, "simd", 15) / 15
    per_core_16 = stencil2d_glups(m, np.float64, "simd", 16) / 16
    assert per_core_16 > per_core_15


def test_fig8_float_blocking_from_the_start():
    m = machine(MACHINE)
    assert transfers_per_update(m, np.float32, 1) == 2.0


def test_fig8_vectorization_bands():
    """'consistently within 50-60% for floats and up to 40% for doubles'."""
    m = machine(MACHINE)
    gain_f = (
        stencil2d_glups(m, np.float32, "simd", 1)
        / stencil2d_glups(m, np.float32, "auto", 1)
        - 1
    )
    assert 0.50 <= gain_f <= 0.60
    gain_d = (
        stencil2d_glups(m, np.float64, "simd", 1)
        / stencil2d_glups(m, np.float64, "auto", 1)
        - 1
    )
    assert 0.30 <= gain_d <= 0.45


def test_fig8_near_optimal_at_full_node():
    """'results also look nearly optimal for the given memory bandwidth'."""
    m = machine(MACHINE)
    achieved = stencil2d_glups(m, np.float32, "simd", 64)
    roofline = 236.0 / 8.0  # full-node BW x blocked float AI
    assert achieved == pytest.approx(roofline * m.calibration.stencil2d_efficiency)
