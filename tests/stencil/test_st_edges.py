"""Edge-branch coverage for the stencil components."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime import Runtime
from repro.stencil import (
    DistributedJacobi2D,
    Heat1DParams,
    Heat1DPartition,
)
from repro.stencil.jacobi2d_dist import Jacobi2DPartition


def test_heat_partition_rejects_bad_halo_side():
    part = Heat1DPartition(np.zeros(4), Heat1DParams())
    with pytest.raises(ValidationError):
        part.deposit_halo(0, "north", 1.0)


def test_heat_partition_rejects_out_of_order_advance():
    part = Heat1DPartition(np.zeros(4), Heat1DParams())
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        gid = rt.new_component(part)
        part.connect(rt, gid, gid)  # self-ring
        with pytest.raises(ValidationError):
            rt.run(lambda: part.advance(3, 0.0, 0.0))


def test_heat_partition_requires_connection():
    part = Heat1DPartition(np.zeros(4), Heat1DParams())
    with pytest.raises(ValidationError):
        part.send_boundaries(0)


def test_jacobi_partition_rejects_bad_shapes():
    with pytest.raises(ValidationError):
        Jacobi2DPartition(np.zeros((2, 5)))
    with pytest.raises(ValidationError):
        Jacobi2DPartition(np.zeros(5))


def test_jacobi_partition_rejects_bad_halo_side():
    part = Jacobi2DPartition(np.zeros((3, 5)))
    with pytest.raises(ValidationError):
        part.deposit_halo_row(0, "left", np.zeros(5))


def test_jacobi_partition_out_of_order_advance():
    part = Jacobi2DPartition(np.zeros((3, 5)))
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        rt.new_component(part)
        part.connect(rt, None, None)
        with pytest.raises(ValidationError):
            rt.run(lambda: part.advance(2, None, None))


def test_distributed_jacobi_solution_before_initialize():
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        solver = DistributedJacobi2D(rt, 6, 6)
        with pytest.raises(ValidationError):
            solver.solution()


def test_boundary_partition_halo_futures_always_ready():
    part = Jacobi2DPartition(np.zeros((4, 5)))
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        rt.new_component(part)
        part.connect(rt, None, None)  # both sides are global boundary
        assert part.halo_future(0, "up").is_ready()
        assert part.halo_future(7, "down").is_ready()


def test_heat_partition_local_solution_is_a_copy():
    data = np.arange(4.0)
    part = Heat1DPartition(data, Heat1DParams())
    out = part.local_solution()
    out[0] = 99.0
    assert part.local_solution()[0] == 0.0


def test_params_stability_boundary_exact():
    """k = 0.5 is the last stable value."""
    Heat1DParams(alpha=1.0, dt=0.5, dx=1.0).check_stability()
    with pytest.raises(ValidationError):
        Heat1DParams(alpha=1.0, dt=0.5000001, dx=1.0).check_stability()
