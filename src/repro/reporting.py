"""Plain-text report rendering for benchmark harnesses.

The paper's exhibits are tables and line plots; in a terminal-only
reproduction both become aligned text: :func:`format_table` renders a
Table I/III-VI-style grid, :class:`Series`/:func:`format_figure` render
a figure's data as one column per series (the numbers a plotting script
would consume).  :func:`write_metrics_json` writes the machine-readable
companion artifact -- runtime counters and latency-histogram summaries
-- that benchmarks emit next to their rendered figures (see
``docs/observability.md``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .errors import ValidationError

__all__ = [
    "format_table",
    "Series",
    "format_figure",
    "format_scientific",
    "metrics_payload",
    "write_metrics_json",
]


def format_scientific(value: float, digits: int = 3) -> str:
    """Render like the paper's tables: ``3.153 x 10^10``."""
    if value == 0:
        return "0"
    return f"{value:.{digits}e}".replace("e+0", "e").replace("e+", "e").replace(
        "e0", "e"
    )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned ASCII table with a header separator."""
    if not headers:
        raise ValidationError("table needs headers")
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    n_cols = len(headers)
    for row in table:
        if len(row) != n_cols:
            raise ValidationError(
                f"row has {len(row)} cells, expected {n_cols}: {row!r}"
            )
    widths = [max(len(row[c]) for row in table) for c in range(n_cols)]
    lines = []
    for i, row in enumerate(table):
        lines.append(" | ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass
class Series:
    """One line of a figure: a name and (x, y) points."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]


def format_figure(
    title: str,
    series: Sequence[Series],
    xlabel: str = "x",
    ylabel: str = "y",
    y_format: str = "{:.3f}",
) -> str:
    """Render a figure's data: one row per x value, one column per series.

    All series must share the same x grid (the paper's figures do).
    """
    if not series:
        raise ValidationError("figure needs at least one series")
    xs = series[0].xs()
    for s in series[1:]:
        if s.xs() != xs:
            raise ValidationError(
                f"series {s.name!r} has a different x grid than {series[0].name!r}"
            )
    headers = [xlabel] + [s.name for s in series]
    rows = []
    for i, x in enumerate(xs):
        row = [f"{x:g}"] + [y_format.format(s.points[i][1]) for s in series]
        rows.append(row)
    body = format_table(headers, rows)
    return f"{title}\n[{ylabel}]\n{body}"


def _summarized(histograms: Mapping[str, object]) -> dict:
    """Accept ``Histogram``-likes (anything with ``summary()``) or plain
    dicts, so this module stays independent of ``repro.observability``."""
    out = {}
    for name, histogram in histograms.items():
        summary = getattr(histogram, "summary", None)
        out[name] = summary() if callable(summary) else dict(histogram)
    return out


def metrics_payload(
    counters: Mapping[str, float] | None = None,
    histograms: Mapping[str, object] | None = None,
    meta: Mapping[str, object] | None = None,
) -> dict:
    """The canonical metrics-artifact shape (all sections optional)."""
    if counters is None and histograms is None:
        raise ValidationError("metrics artifact needs counters or histograms")
    payload: dict = {"schema": "repro-metrics-v1"}
    if meta:
        payload["meta"] = dict(meta)
    if counters is not None:
        payload["counters"] = {k: float(v) for k, v in counters.items()}
    if histograms is not None:
        payload["histograms"] = _summarized(histograms)
    return payload


def write_metrics_json(
    path: str | pathlib.Path,
    counters: Mapping[str, float] | None = None,
    histograms: Mapping[str, object] | None = None,
    meta: Mapping[str, object] | None = None,
) -> pathlib.Path:
    """Write a metrics artifact; returns the path written.

    ``histograms`` values may be :class:`repro.observability.Histogram`
    instances (their ``summary()`` is stored) or already-summarized
    dicts.
    """
    path = pathlib.Path(path)
    payload = metrics_payload(counters=counters, histograms=histograms, meta=meta)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
