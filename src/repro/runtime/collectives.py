"""Distributed collectives over localities.

HPX ships ``hpx::collectives`` (broadcast, gather, all_reduce, barrier)
built on plain actions and LCOs; distributed applications use them for
global decisions (convergence tests, load statistics).  These
implementations ride entirely on the public runtime surface --
``async_at`` parcels plus ``when_all`` -- so collective *costs* are
modelled by the same interconnect as everything else.

Every collective accepts ``timeout=`` (virtual seconds from the caller's
current virtual time).  A collective over a hung or silent participant
then fails fast with :class:`~repro.errors.FutureTimeoutError` (part of
the :class:`~repro.errors.TimeoutError` subtree) instead of waiting for
work that will never finish -- the pattern resilient drivers use to
bound their recovery rounds.  (A *permanently dead* destination instead
surfaces :class:`~repro.errors.ParcelDeadLetterError` from the retry
layer, which exhausts its backoff budget long before any realistic
deadline.)
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from ..errors import RuntimeStateError
from .futures import Future, when_all
from .runtime import Runtime

__all__ = ["broadcast", "gather", "all_reduce", "global_barrier", "scatter"]

T = TypeVar("T")


def _all_locality_ids(runtime: Runtime) -> list[int]:
    return [loc.locality_id for loc in runtime.localities]


def _collect(futures: list[Future], timeout: float | None) -> list[Any]:
    """Join a fan-out, optionally bounded by a virtual-time deadline.

    The bound rides on :meth:`Future.wait_for` (a deadline-aware help
    loop) rather than ``when_all(timeout=)``'s low-priority timer task,
    so a straggling participant cannot starve the deadline check."""
    joined = when_all(futures)
    if timeout is not None:
        joined.wait_for(timeout)
    return [f.get() for f in joined.get()]


def broadcast(
    runtime: Runtime,
    fn: Callable[..., Any] | str,
    *args: Any,
    timeout: float | None = None,
) -> list[Any]:
    """Run ``fn(*args)`` on every locality; returns results by locality id.

    (HPX ``broadcast`` ships a value; shipping the producing action is
    the more general parcel-native form -- pass ``lambda: value`` via a
    registered action to ship a constant.)
    """
    futures = [
        runtime.async_at(loc_id, fn, *args) for loc_id in _all_locality_ids(runtime)
    ]
    return _collect(futures, timeout)


def scatter(
    runtime: Runtime,
    fn: Callable[..., Any] | str,
    per_locality_args: list[tuple],
    timeout: float | None = None,
) -> list[Any]:
    """Run ``fn(*per_locality_args[i])`` on locality ``i``."""
    if len(per_locality_args) != runtime.n_localities:
        raise RuntimeStateError(
            f"scatter needs {runtime.n_localities} argument tuples, "
            f"got {len(per_locality_args)}"
        )
    futures = [
        runtime.async_at(loc_id, fn, *per_locality_args[loc_id])
        for loc_id in _all_locality_ids(runtime)
    ]
    return _collect(futures, timeout)


def gather(
    runtime: Runtime,
    fn: Callable[..., Any] | str,
    *args: Any,
    timeout: float | None = None,
) -> list[Any]:
    """Alias of :func:`broadcast` that reads local state back to the
    caller -- the name states intent at call sites."""
    return broadcast(runtime, fn, *args, timeout=timeout)


def all_reduce(
    runtime: Runtime,
    fn: Callable[..., T] | str,
    op: Callable[[T, T], T],
    *args: Any,
    timeout: float | None = None,
) -> T:
    """Evaluate ``fn`` on every locality and fold the results with ``op``.

    ``op`` must be associative; results combine in locality order, so
    non-commutative (but associative) reductions are deterministic.
    """
    values = broadcast(runtime, fn, *args, timeout=timeout)
    if not values:
        raise RuntimeStateError("all_reduce over zero localities")
    result = values[0]
    for value in values[1:]:
        result = op(result, value)
    return result


def _noop() -> None:
    return None


def global_barrier(runtime: Runtime, timeout: float | None = None) -> None:
    """Block until every locality has processed a barrier parcel.

    The round trip guarantees all previously *sent* work to each
    locality has been enqueued behind the barrier handler.
    """
    broadcast(runtime, _noop, timeout=timeout)
