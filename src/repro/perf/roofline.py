"""The Roofline model (paper Sec. III-C).

``Attainable Performance = min(CP, AI x BW)`` -- Eq. (1).  For the 2D
stencil the paper derives AI = 1/12 LUP/Byte (float) and 1/24 (double)
from three memory transfers per lattice-site update under the
three-rows-in-cache assumption; two transfers (implicit cache blocking
on large-cache-line CPUs) give 1/8 and 1/16.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = [
    "arithmetic_intensity",
    "stencil2d_arithmetic_intensity",
    "attainable_performance",
]


def arithmetic_intensity(work_per_site: float, bytes_per_site: float) -> float:
    """Operations (or LUPs) per byte of main-memory traffic."""
    if work_per_site <= 0 or bytes_per_site <= 0:
        raise ValidationError("work and traffic must be positive")
    return work_per_site / bytes_per_site


def stencil2d_arithmetic_intensity(dtype, transfers_per_update: float = 3.0) -> float:
    """AI in LUP/Byte for the 2D stencil (Sec. V-B).

    ``transfers_per_update`` is 3 under the paper's baseline assumption
    and 2 in the cache-blocked regime.  Floats: 1/12; doubles: 1/24.
    """
    dt = np.dtype(dtype)
    if dt.kind != "f" or dt.itemsize not in (4, 8):
        raise ValidationError(f"unsupported element type {dt}")
    elem = dt.itemsize
    if transfers_per_update <= 0:
        raise ValidationError("transfers_per_update must be positive")
    return arithmetic_intensity(1.0, transfers_per_update * elem)


def attainable_performance(
    computational_peak: float, intensity: float, bandwidth: float
) -> float:
    """Eq. (1): ``min(CP, AI x BW)``.

    Units are the caller's: pass GFLOP/s + FLOP/B + GB/s for the classic
    roofline, or GLUP/s + LUP/B + GB/s for the paper's stencil variant.
    """
    if computational_peak <= 0 or intensity <= 0 or bandwidth <= 0:
        raise ValidationError("roofline inputs must be positive")
    return min(computational_peak, intensity * bandwidth)
