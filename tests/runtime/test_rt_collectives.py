"""Unit tests for distributed collectives and timed execution."""

import operator

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Runtime, async_after, collectives, sleep_for
from repro.runtime import context as ctx


def locality_id_of_here():
    return ctx.here().locality_id


def square(x):
    return x * x


def locality_tag():
    return str(ctx.here().locality_id)


def five():
    return 5


@pytest.fixture
def cluster():
    with Runtime(machine="xeon-e5-2660v3", n_localities=4, workers_per_locality=2) as rt:
        yield rt


def test_broadcast_runs_everywhere(cluster):
    results = cluster.run(lambda: collectives.broadcast(cluster, locality_id_of_here))
    assert results == [0, 1, 2, 3]


def test_broadcast_with_args(cluster):
    results = cluster.run(lambda: collectives.broadcast(cluster, square, 3))
    assert results == [9, 9, 9, 9]


def test_scatter_per_locality_args(cluster):
    results = cluster.run(
        lambda: collectives.scatter(cluster, square, [(i,) for i in range(4)])
    )
    assert results == [0, 1, 4, 9]


def test_scatter_arg_count_checked(cluster):
    with pytest.raises(RuntimeStateError):
        cluster.run(lambda: collectives.scatter(cluster, square, [(1,)]))


def test_all_reduce_sum(cluster):
    total = cluster.run(
        lambda: collectives.all_reduce(cluster, locality_id_of_here, operator.add)
    )
    assert total == 0 + 1 + 2 + 3


def test_all_reduce_non_commutative_deterministic(cluster):
    result = cluster.run(
        lambda: collectives.all_reduce(cluster, locality_tag, operator.add)
    )
    assert result == "0123"  # locality order, always


def test_global_barrier_costs_network_time(cluster):
    before = cluster.makespan
    cluster.run(lambda: collectives.global_barrier(cluster))
    assert cluster.makespan > before  # round trips accrued virtual time


def test_single_locality_collectives():
    with Runtime(n_localities=1, workers_per_locality=2) as rt:
        assert rt.run(lambda: collectives.broadcast(rt, square, 2)) == [4]
        assert rt.run(lambda: collectives.all_reduce(rt, five, operator.add)) == 5


# Timed execution ----------------------------------------------------------------

def test_async_after_delays_in_virtual_time(rt):
    def main():
        future = async_after(10.0, lambda: "late")
        return future.get()

    assert rt.run(main) == "late"
    assert rt.makespan >= 10.0


def test_async_after_overlaps_with_other_work(rt):
    """Workers run other tasks while the timed task waits."""
    from repro.runtime import async_, when_all

    def main():
        late = async_after(5.0, lambda: ctx.add_cost(1.0))
        busy = [async_(lambda: ctx.add_cost(1.0)) for _ in range(3)]
        when_all([late] + busy).get()

    rt.run(main)
    # Busy tasks fill t in [0,1]; the timed task runs [5,6]: makespan 6,
    # not 5 + 1 + 3 sequentialised.
    assert rt.makespan == pytest.approx(6.0)


def test_async_after_negative_delay_rejected(rt):
    def main():
        async_after(-1.0, lambda: None)

    with pytest.raises(RuntimeStateError):
        rt.run(main)


def test_sleep_for_advances_task_clock(rt):
    def main():
        sleep_for(2.5)

    rt.run(main)
    assert rt.makespan == pytest.approx(2.5)


def test_sleep_for_negative_rejected(rt):
    with pytest.raises(RuntimeStateError):
        rt.run(lambda: sleep_for(-0.1))
