"""``dataflow`` -- run a function when its future arguments are ready.

``dataflow(f, a, b, c)`` returns a future for ``f(a', b', c')`` where
future arguments are replaced by their values and plain arguments pass
through.  Nothing blocks: the body is queued as a new HPX-thread the
moment the last dependency fires.  This is the paper's "data directed
computing ... message-driven computation" in one primitive, and the
natural way to write the futurized stencil time loop.
"""

from __future__ import annotations

from typing import Any, Callable

from .. import instrument
from ..context import _stack as _context_stack
from ..futures import Future, Promise, demand, when_all

__all__ = ["dataflow"]


def dataflow(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
    """Schedule ``fn`` for when every future among its arguments is ready.

    The returned future carries ``fn``'s result (or its exception).  The
    body runs as a new HPX-thread on the current pool; outside a runtime
    it runs inline once dependencies are ready (which, outside a runtime,
    means immediately or never -- pending futures raise on ``get``).
    """
    deps: list[Future] = [a for a in args if isinstance(a, Future)]
    deps += [v for v in kwargs.values() if isinstance(v, Future)]
    promise = Promise()
    name = getattr(fn, "__name__", "fn")
    demand(promise._state, f"dataflow({name})")

    def body() -> None:
        try:
            unwrapped_args = [
                a.get_nowait() if isinstance(a, Future) else a for a in args
            ]
            unwrapped_kwargs = {
                k: (v.get_nowait() if isinstance(v, Future) else v)
                for k, v in kwargs.items()
            }
            promise.set_value(fn(*unwrapped_args, **unwrapped_kwargs))
        except BaseException as exc:  # noqa: BLE001 - forwarded
            promise.set_exception(exc)

    def launch(_: Future | None) -> None:
        frame = _context_stack[-1] if _context_stack else None
        if frame is not None and frame.pool is not None:
            frame.pool.submit(body, description=f"dataflow:{name}")
        else:
            body()

    if instrument.enabled:
        # Probes installed: go through ``when_all`` so the sanitizers see
        # the full edge vocabulary (link, per-dependency read/contribute).
        probe = instrument.probe
        if probe is not None:
            probe.state_linked(
                [d._state for d in deps], promise._state, f"dataflow({name})"
            )
        when_all(deps)._on_ready(launch)
    elif not deps:
        launch(None)
    else:
        # Fast path: a bare countdown instead of a ``when_all`` future
        # (its promise, demand registration and label are pure overhead
        # here).  ``launch`` still fires from inside the last
        # dependency's fulfilment callbacks -- the same frame and virtual
        # time as the ``when_all`` route -- so results are bit-identical.
        counter = [len(deps)]

        def one_ready(_: Future) -> None:
            counter[0] -= 1
            if counter[0] == 0:
                launch(None)

        for dep in deps:
            dep._on_ready(one_ready)
    return promise.get_future()
