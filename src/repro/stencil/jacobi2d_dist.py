"""Distributed 2D Jacobi: row-block decomposition over localities.

The paper runs its 2D stencil shared-memory only and its distributed
study in 1D; combining them -- the 2D kernel under the 1D solver's
futurized halo-exchange pattern -- is the natural extension (and the
shape of every production HPX stencil code, e.g. the paper's Ref. [9]).

Each locality owns a contiguous block of grid rows plus two halo rows.
Per time step a partition ships its edge rows to its neighbours as
parcels (NumPy arrays ride the serialization layer), and a per-partition
dataflow chain advances as soon as both halo rows for the step have
arrived -- no global barrier, latency hides under compute exactly as in
:mod:`repro.stencil.heat1d`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ConfigError, ValidationError
from ..runtime import context as ctx
from ..runtime.agas.component import Component
from ..runtime.futures import Future, Promise, make_ready_future, when_all
from ..runtime.lco.dataflow import dataflow
from ..runtime.runtime import Runtime
from .recovery import run_with_recovery

__all__ = ["Jacobi2DPartition", "DistributedJacobi2D"]


class Jacobi2DPartition(Component):
    """One locality's block of rows (+2 halo rows) of the global grid.

    ``data`` has shape ``(local_ny + 2, nx)``: row 0 and row -1 are the
    halo rows (either a neighbour's edge or the global Dirichlet
    boundary).  Column 0 and -1 are the global Dirichlet side walls and
    are never written.
    """

    def __init__(self, data: np.ndarray, cost_per_step: float = 0.0) -> None:
        super().__init__()
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 3 or data.shape[1] < 3:
            raise ValidationError(f"partition needs >= 3x3 incl. halos, got {data.shape}")
        self.u = np.array(data, copy=True)
        self.cost_per_step = float(cost_per_step)
        self._halos: dict[tuple[int, str], Promise] = {}
        #: Edge rows as sent per step, for fault recovery: a neighbour
        #: that lost a halo parcel can ask for them again.
        self._edge_log: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._runtime: Runtime | None = None
        self._up_gid = None  # neighbour owning the rows above (or None)
        self._down_gid = None
        self.steps_done = 0
        self._chain_until: int | None = None
        #: Completion future of the most recently built chain.
        self.final_future: Future = make_ready_future(0)

    # Wiring --------------------------------------------------------------------
    def connect(self, runtime: Runtime, up_gid, down_gid) -> None:
        """Attach neighbour GIDs; None means global boundary on that side."""
        self._runtime = runtime
        self._up_gid = up_gid
        self._down_gid = down_gid

    def connect_neighbors(self, up_gid, down_gid) -> None:
        """Remote-safe :meth:`connect`: runs as a component action on the
        home locality and wires the *executing* runtime (in distributed
        mode each process has its own), so the driver never has to ship a
        Runtime reference."""
        self.connect(ctx.current().runtime, up_gid, down_gid)

    def chain_result(self, target: int) -> int:
        """Build the chain to absolute step ``target`` and wait for it.

        The remote-safe run protocol: the reply parcel of this one invoke
        is the completion signal, so the driver never reads
        ``final_future`` across a process boundary.  Blocking here is
        cooperative -- the home pool keeps executing the chain (and
        remote halos keep landing) underneath the wait.
        """
        self.ensure_chain(target)
        return self.final_future.get()  # repro-lint: disable=PX301

    def _halo_promise(self, step: int, side: str) -> Promise:
        key = (step, side)
        if key not in self._halos:
            self._halos[key] = Promise()
        return self._halos[key]

    def halo_future(self, step: int, side: str) -> Future:
        """Future for the ``"up"``/``"down"`` halo row of ``step``.

        Global-boundary sides are permanently ready with ``None`` (the
        resident halo row is already correct and constant).
        """
        if (side == "up" and self._up_gid is None) or (
            side == "down" and self._down_gid is None
        ):
            return make_ready_future(None)
        return self._halo_promise(step, side).get_future()

    # Remote surface ----------------------------------------------------------------
    def deposit_halo_row(self, step: int, side: str, row: np.ndarray) -> None:
        """A neighbour's edge row arriving (component action).

        Idempotent: redelivery (a duplicated parcel, or a recovery
        resend) of an already-deposited row is ignored -- the stencil is
        deterministic, so the values are necessarily identical.
        """
        if side not in ("up", "down"):
            raise ValidationError(f"halo side must be up/down, got {side!r}")
        promise = self._halo_promise(step, side)
        if not promise.is_ready():
            promise.set_value(np.asarray(row, dtype=np.float64))

    def send_edges(self, step: int) -> None:
        """Ship current edge rows to the neighbours that exist."""
        runtime = self._require_runtime()
        self.mark_read("u")
        top, bottom = np.array(self.u[1], copy=True), np.array(self.u[-2], copy=True)
        self._edge_log[step] = (top, bottom)
        if self._up_gid is not None:
            # My top interior row is the *down* halo of the block above.
            runtime.invoke_apply(self._up_gid, "deposit_halo_row", step, "down", top)
        if self._down_gid is not None:
            runtime.invoke_apply(self._down_gid, "deposit_halo_row", step, "up", bottom)

    def resend_edges(self, step: int) -> bool:
        """Re-ship the logged edge rows of ``step`` (fault recovery).

        Returns False when this partition has not produced the rows for
        ``step`` yet -- its own chain will send them in due course.
        """
        logged = self._edge_log.get(step)
        if logged is None:
            return False
        runtime = self._require_runtime()
        top, bottom = logged
        if self._up_gid is not None:
            runtime.invoke_apply(self._up_gid, "deposit_halo_row", step, "down", top)
        if self._down_gid is not None:
            runtime.invoke_apply(self._down_gid, "deposit_halo_row", step, "up", bottom)
        return True

    def advance(self, t: int, up_row, down_row) -> int:
        """Apply step ``t`` given the halo rows; send edges for ``t+1``."""
        if t != self.steps_done:
            raise ValidationError(
                f"advance({t}) out of order; partition is at step {self.steps_done}"
            )
        self.mark_write("u")
        if up_row is not None:
            self.u[0, :] = up_row
        if down_row is not None:
            self.u[-1, :] = down_row
        new = np.array(self.u, copy=True)
        new[1:-1, 1:-1] = 0.25 * (
            self.u[2:, 1:-1] + self.u[:-2, 1:-1] + self.u[1:-1, 2:] + self.u[1:-1, :-2]
        )
        self.u = new
        if self.cost_per_step:
            ctx.add_cost(self.cost_per_step)
        self.steps_done += 1
        # Drop the consumed promises so memory stays bounded over long runs,
        # and keep only a bounded window of resendable edge history.
        self._halos.pop((t, "up"), None)
        self._halos.pop((t, "down"), None)
        self._edge_log.pop(t - 64, None)
        self.send_edges(self.steps_done)
        return self.steps_done

    def start_chain(self, steps: int) -> None:
        """Build the futurized per-partition time loop (on home locality)."""
        self.ensure_chain(self.steps_done + steps)

    def ensure_chain(self, target: int) -> None:
        """Build or extend the chain up to *absolute* step ``target``.

        Idempotent and race-free under recovery: the target is absolute,
        so a re-invocation that arrives after the partition has advanced
        extends the live chain exactly to ``target`` instead of
        overshooting.  A chain already built to ``target`` or beyond is
        left alone.
        """
        self._require_runtime()
        if self._chain_until is not None and self._chain_until >= target:
            return
        if self._chain_until is None:
            # Fresh chain (or resuming after a completed one): the last
            # advance of the previous chain already sent the edges for
            # step ``steps_done``; step 0 must seed them itself.
            built = self.steps_done
            if built == 0:
                self.send_edges(0)
            prev: Future = make_ready_future(built)
        else:
            # Live chain ending below target: append to its tail.
            built = self._chain_until
            prev = self.final_future
        self._chain_until = target
        for t in range(built, target):
            prev = dataflow(
                lambda up, down, _done, t=t: self.advance(t, up, down),
                self.halo_future(t, "up"),
                self.halo_future(t, "down"),
                prev,
            )
        self.final_future = prev

    def interior(self) -> np.ndarray:
        """This partition's owned rows (without halo rows)."""
        self.mark_read("u")
        return np.array(self.u[1:-1, :], copy=True)

    def local_residual(self) -> float:
        """Sum of squared Jacobi residuals over owned interior cells."""
        self.mark_read("u")
        sweep = 0.25 * (
            self.u[2:, 1:-1] + self.u[:-2, 1:-1] + self.u[1:-1, 2:] + self.u[1:-1, :-2]
        )
        diff = sweep - self.u[1:-1, 1:-1]
        return float(np.sum(diff * diff))

    # Checkpoint protocol ------------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Snapshot the block, step count and resendable edge history.

        Taken at epoch quiescence, so the volatile chain state (halo
        promises, dataflow tail) is reconstructible and deliberately
        excluded.  The edge log rides along because a post-rollback
        neighbour may need rows from *before* the epoch re-sent.
        """
        return {
            "u": np.array(self.u, copy=True),
            "steps_done": self.steps_done,
            "edge_log": {
                step: (np.array(top, copy=True), np.array(bottom, copy=True))
                for step, (top, bottom) in sorted(self._edge_log.items())
            },
            "cost_per_step": self.cost_per_step,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Roll back to a :meth:`checkpoint_state` snapshot, in place."""
        self.u = np.array(state["u"], dtype=np.float64, copy=True)
        self.cost_per_step = float(state["cost_per_step"])
        self.steps_done = int(state["steps_done"])
        self._edge_log = {
            step: (np.asarray(top, dtype=np.float64), np.asarray(bottom, dtype=np.float64))
            for step, (top, bottom) in state["edge_log"].items()
        }
        self.reset_chain()

    def reset_chain(self) -> None:
        """Abandon the live chain and halo-matching state (crash rollback).

        Safe only at a global stall: the progress engine has proven no
        queued task references the old promises, so the next
        ``ensure_chain`` starts a fresh timeline from ``steps_done``.
        """
        self._halos = {}
        self._chain_until = None
        self.final_future = make_ready_future(self.steps_done)

    def _require_runtime(self) -> Runtime:
        if self._runtime is None:
            raise ValidationError("partition is not connected; call connect() first")
        return self._runtime


class DistributedJacobi2D:
    """Driver: split ``(ny, nx)`` rows over the runtime's localities."""

    def __init__(
        self,
        runtime: Runtime,
        ny: int,
        nx: int,
        partitions_per_locality: int = 1,
        cost_per_step: float = 0.0,
    ) -> None:
        n_parts = runtime.n_localities * partitions_per_locality
        interior_rows = ny - 2
        if interior_rows < n_parts or interior_rows % n_parts != 0:
            raise ValidationError(
                f"{interior_rows} interior rows do not split evenly into "
                f"{n_parts} partitions"
            )
        if nx < 3:
            raise ValidationError("grid must have at least 3 columns")
        self.runtime = runtime
        self.ny = ny
        self.nx = nx
        self.n_partitions = n_parts
        self.rows_per_part = interior_rows // n_parts
        self.partitions_per_locality = partitions_per_locality
        self.cost_per_step = cost_per_step
        self._parts: list[Jacobi2DPartition] = []
        self._gids: list = []
        # Absolute step count driven so far (distributed mode cannot read
        # ``part.steps_done`` across processes).
        self._steps_run = 0

    def initialize(self, field: np.ndarray) -> None:
        field = np.asarray(field, dtype=np.float64)
        if field.shape != (self.ny, self.nx):
            raise ValidationError(
                f"expected field of shape ({self.ny}, {self.nx}), got {field.shape}"
            )
        self._field_top = np.array(field[0, :], copy=True)
        self._field_bottom = np.array(field[-1, :], copy=True)
        self._parts.clear()
        self._gids.clear()
        for p in range(self.n_partitions):
            locality = p // self.partitions_per_locality
            lo = 1 + p * self.rows_per_part
            hi = lo + self.rows_per_part
            block = field[lo - 1 : hi + 1, :]  # incl. one halo row each side
            part = Jacobi2DPartition(block, self.cost_per_step)
            gid = self.runtime.new_component(part, locality_id=locality)
            self._parts.append(part)
            self._gids.append(gid)
        if self.runtime.distributed:
            # The live partition objects are the home processes' copies;
            # wire them there (partitions homed at locality 0 resolve to
            # the driver's own objects, so those connect locally too).
            when_all(
                [
                    self.runtime.invoke_async(
                        self._gids[p],
                        "connect_neighbors",
                        self._gids[p - 1] if p > 0 else None,
                        self._gids[p + 1] if p < self.n_partitions - 1 else None,
                    )
                    for p in range(self.n_partitions)
                ]
            ).get()
            return
        for p, part in enumerate(self._parts):
            up = self._gids[p - 1] if p > 0 else None
            down = self._gids[p + 1] if p < self.n_partitions - 1 else None
            part.connect(self.runtime, up, down)

    def run(self, steps: int) -> np.ndarray:
        if not self._parts:
            raise ValidationError("call initialize() before run()")
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if steps > 0:
            if self.runtime.distributed:
                target = self._steps_run + steps
                when_all(
                    [
                        self.runtime.invoke_async(gid, "chain_result", target)
                        for gid in self._gids
                    ]
                ).get()
                self._steps_run = target
            else:
                chains = [
                    self.runtime.invoke_async(gid, "start_chain", steps)
                    for gid in self._gids
                ]
                when_all(chains).get()
                when_all([part.final_future for part in self._parts]).get()
                self._steps_run += steps
        return self.solution()

    def run_resilient(
        self,
        steps: int,
        max_recovery_rounds: int = 3,
        checkpoint_every: int | None = None,
    ) -> np.ndarray:
        """Run ``steps`` steps, surviving parcel loss and locality outages.

        Same contract as :meth:`DistributedHeat1D.run_resilient` -- the
        shared :func:`~repro.stencil.recovery.run_with_recovery` driver
        handles dead-letter recovery rounds and, for permanent crashes,
        checkpoint-restart with AGAS re-homing.  The result is
        bit-identical to a fault-free :meth:`run`.
        """
        if self.runtime.distributed:
            raise ConfigError(
                "run_resilient requires the virtual-clock backend "
                "(runtime.backend='virtual'): checkpoint recovery drives "
                "partition objects directly and replays virtual time"
            )
        if not self._parts:
            raise ValidationError("call initialize() before run()")
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if steps == 0:
            return self.solution()
        run_with_recovery(
            self.runtime,
            self._parts,
            self._gids,
            steps,
            self._resend_stuck,
            max_recovery_rounds=max_recovery_rounds,
            checkpoint_every=checkpoint_every,
        )
        return self.solution()

    def _resend_stuck(self, p: int, stuck_at: int) -> None:
        """Ask partition ``p``'s existing neighbours to re-send its rows.

        Unlike heat1d's periodic ring, the row blocks have edges: only
        in-range neighbours exist (the missing side is the constant
        Dirichlet boundary, never shipped).
        """
        if p > 0:
            self._parts[p - 1].resend_edges(stuck_at)
        if p < self.n_partitions - 1:
            self._parts[p + 1].resend_edges(stuck_at)

    def solution(self) -> np.ndarray:
        """Assemble the global field (incl. Dirichlet boundary rows)."""
        if not self._parts:
            raise ValidationError("call initialize() before solution()")
        if self.runtime.distributed:
            futures = [
                self.runtime.invoke_async(gid, "interior") for gid in self._gids
            ]
            blocks = [future.get() for future in futures]
        else:
            blocks = [part.interior() for part in self._parts]
        return np.vstack([self._field_top[None, :]] + blocks + [self._field_bottom[None, :]])

    def residual(self) -> float:
        """Global Jacobi residual: RMS change one more sweep would make.

        Computed as a distributed reduction over the partitions'
        component actions -- the collectives pattern at work.
        """
        futures = [
            self.runtime.invoke_async(gid, "local_residual") for gid in self._gids
        ]
        total = sum(f.get() for f in when_all(futures).get())
        return float(np.sqrt(total / ((self.ny - 2) * (self.nx - 2))))
