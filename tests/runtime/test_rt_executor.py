"""Unit tests for executors and static chunking."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import context as ctx
from repro.runtime.threads.executor import BlockExecutor, PoolExecutor, static_chunks
from repro.runtime.threads.pool import ThreadPool


def test_static_chunks_even():
    assert static_chunks(8, 4) == [range(0, 2), range(2, 4), range(4, 6), range(6, 8)]


def test_static_chunks_remainder_spread_front():
    chunks = static_chunks(10, 4)
    assert [len(c) for c in chunks] == [3, 3, 2, 2]
    assert chunks[0] == range(0, 3)
    assert chunks[-1] == range(8, 10)


def test_static_chunks_more_workers_than_items():
    chunks = static_chunks(2, 4)
    assert [len(c) for c in chunks] == [1, 1, 0, 0]


def test_static_chunks_cover_everything_exactly_once():
    chunks = static_chunks(17, 5)
    flat = [i for c in chunks for i in c]
    assert flat == list(range(17))


def test_static_chunks_validation():
    with pytest.raises(RuntimeStateError):
        static_chunks(-1, 2)
    with pytest.raises(RuntimeStateError):
        static_chunks(2, 0)


def test_pool_executor_submit():
    pool = ThreadPool(2)
    executor = PoolExecutor(pool)
    future = executor.submit(lambda a: a * 2, 21)
    pool.run_all()
    assert future.get() == 42


def test_pool_executor_bulk():
    pool = ThreadPool(2)
    executor = PoolExecutor(pool)
    seen = []
    futures = executor.bulk_submit(lambda i: seen.append(i), range(5))
    pool.run_all()
    assert len(futures) == 5
    assert sorted(seen) == [0, 1, 2, 3, 4]


def test_block_executor_binds_chunks_to_workers():
    pool = ThreadPool(4, scheduler="static")
    executor = BlockExecutor(pool)
    placement = {}

    def record(i):
        placement[i] = ctx.current().worker_id

    futures = executor.bulk_submit(record, range(8))
    pool.run_all()
    assert len(futures) == 4  # one chunk per worker
    # Items 0,1 -> worker 0; 2,3 -> worker 1; etc.
    for item, worker in placement.items():
        assert worker == item // 2


def test_block_executor_stable_across_rounds():
    """The NUMA property: the same index lands on the same worker every
    time step (first-touch locality)."""
    pool = ThreadPool(3, scheduler="static")
    executor = BlockExecutor(pool)
    rounds = []

    for _ in range(3):
        placement = {}
        executor.bulk_submit(
            lambda i, p=placement: p.__setitem__(i, ctx.current().worker_id),
            range(9),
        )
        pool.run_all()
        rounds.append(placement)
    assert rounds[0] == rounds[1] == rounds[2]


def test_block_executor_chunk_for():
    pool = ThreadPool(4)
    executor = BlockExecutor(pool)
    assert executor.chunk_for(8, 0) == range(0, 2)
    assert executor.chunk_for(8, 3) == range(6, 8)
    with pytest.raises(RuntimeStateError):
        executor.chunk_for(8, 4)


def test_block_executor_single_submit_pinned():
    pool = ThreadPool(2, scheduler="static")
    executor = BlockExecutor(pool)
    worker = []
    executor.submit(lambda: worker.append(ctx.current().worker_id))
    pool.run_all()
    assert worker == [0]


def test_bulk_sync_waits(rt):
    executor = PoolExecutor(rt.localities[0].pool)
    done = []

    def main():
        executor.bulk_sync(lambda i: done.append(i), range(4))
        return len(done)

    assert rt.run(main) == 4
