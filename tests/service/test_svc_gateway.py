"""HTTP gateway: status codes, Retry-After on shed, routing."""

import asyncio
import json

import pytest

from repro.service import JobGateway, JobService, ManualClock, ServicePolicy, TenantQuota

POLICY = ServicePolicy(sync_journal=False)


async def _request(port, method, path, body=None, raw=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = raw if raw is not None else (
        b"" if body is None else json.dumps(body).encode("utf-8")
    )
    lines = [f"{method} {path} HTTP/1.1", "Host: localhost"]
    if payload:
        lines.append(f"Content-Length: {len(payload)}")
    writer.write("\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, body_bytes = response.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    headers = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, json.loads(body_bytes), headers


def _with_gateway(tmp_path, coro, configure=None):
    """Run ``coro(service, port)`` against a live gateway."""

    async def scenario():
        with JobService(tmp_path / "svc", clock=ManualClock(), policy=POLICY) as svc:
            if configure is not None:
                configure(svc)
            gateway = JobGateway(svc, port=0)
            await gateway.start()
            try:
                return await coro(svc, gateway.port)
            finally:
                await gateway.stop()

    return asyncio.run(scenario())


SUBMIT = {"tenant": "t", "kind": "faulty", "params": {}, "dedupe_key": "k"}


def test_submit_created_then_deduped(tmp_path):
    async def scenario(svc, port):
        status, payload, _ = await _request(port, "POST", "/v1/jobs", SUBMIT)
        assert status == 201 and payload["created"]
        job_id = payload["job"]["job_id"]
        status, payload, _ = await _request(port, "POST", "/v1/jobs", SUBMIT)
        assert status == 200 and not payload["created"]
        assert payload["job"]["job_id"] == job_id

    _with_gateway(tmp_path, scenario)


def test_shed_answers_429_with_retry_after(tmp_path):
    async def scenario(svc, port):
        await _request(port, "POST", "/v1/jobs", SUBMIT)
        over = dict(SUBMIT, dedupe_key="k2")
        status, payload, headers = await _request(port, "POST", "/v1/jobs", over)
        assert status == 429
        assert payload["retry_after"] > 0
        assert int(headers["retry-after"]) >= 1

    _with_gateway(
        tmp_path,
        scenario,
        configure=lambda svc: svc.set_quota("t", TenantQuota(max_pending=1)),
    )


def test_status_and_404(tmp_path):
    async def scenario(svc, port):
        job, _ = svc.submit("t", "faulty", {})
        status, payload, _ = await _request(port, "GET", f"/v1/jobs/{job.job_id}")
        assert status == 200 and payload["state"] == "pending"
        status, payload, _ = await _request(port, "GET", "/v1/jobs/job-nope")
        assert status == 404 and "error" in payload

    _with_gateway(tmp_path, scenario)


def test_cancel_then_conflict(tmp_path):
    async def scenario(svc, port):
        job, _ = svc.submit("t", "faulty", {})
        path = f"/v1/jobs/{job.job_id}/cancel"
        status, payload, _ = await _request(port, "POST", path)
        assert status == 200 and payload["job"]["state"] == "cancelled"
        status, payload, _ = await _request(port, "POST", path)
        assert status == 409  # terminal states are exactly-once

    _with_gateway(tmp_path, scenario)


def test_list_filters_by_tenant_and_state(tmp_path):
    async def scenario(svc, port):
        svc.submit("alice", "faulty", {})
        svc.submit("bob", "faulty", {})
        status, payload, _ = await _request(port, "GET", "/v1/jobs?tenant=alice")
        assert status == 200
        assert [j["tenant"] for j in payload["jobs"]] == ["alice"]
        status, payload, _ = await _request(port, "GET", "/v1/jobs?state=pending")
        assert len(payload["jobs"]) == 2
        status, payload, _ = await _request(port, "GET", "/v1/jobs?state=bogus")
        assert status == 400

    _with_gateway(tmp_path, scenario)


def test_healthz_and_counters(tmp_path):
    async def scenario(svc, port):
        svc.submit("t", "faulty", {})
        status, payload, _ = await _request(port, "GET", "/v1/healthz")
        assert status == 200
        assert payload == {"status": "ok", "open_jobs": 1}
        status, payload, _ = await _request(port, "GET", "/v1/counters")
        assert payload["/jobs{t}/count/submitted"] == 1

    _with_gateway(tmp_path, scenario)


def test_bad_requests(tmp_path):
    async def scenario(svc, port):
        status, payload, _ = await _request(
            port, "POST", "/v1/jobs", raw=b"{not json"
        )
        assert status == 400 and "bad JSON" in payload["error"]
        status, payload, _ = await _request(port, "POST", "/v1/jobs", {"kind": "x"})
        assert status == 400 and "tenant" in payload["error"]
        status, _, _ = await _request(port, "DELETE", "/v1/jobs")
        assert status == 405
        status, _, _ = await _request(port, "GET", "/v1/nope")
        assert status == 404

    _with_gateway(tmp_path, scenario)
