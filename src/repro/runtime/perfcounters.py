"""HPX-style runtime performance counters.

HPX exposes introspection counters under paths like
``/threads{locality#0/total}/count/cumulative``; tools (and the papers
evaluating HPX) read them to explain scheduling behaviour.  This module
provides the same facility for our runtime: :func:`query` resolves a
counter path against a :class:`~repro.runtime.runtime.Runtime` and
:func:`discover` lists what is available.

Supported counter types::

    /threads/count/cumulative      tasks executed
    /threads/count/stolen          successful steals (work-stealing only)
    /threads/queue/length          tasks currently queued
    /threads/time/average          average attributed cost per task (s)
    /threads/time/busy             attributed compute seconds
    /threads/idle-rate             idle fraction of the pool's makespan
    /parcels/count/sent            parcels sent (job-wide counter only)
    /parcels/data/sent             bytes sent   (job-wide counter only)
    /parcels/count/delivered       parcels handed to the destination router
    /parcels/time/average-latency  mean send-to-arrival virtual latency (s)
    /parcels/count/dropped         parcels lost in flight (fault injection)
    /parcels/count/corrupted       parcels corrupted in flight
    /parcels/count/duplicated      parcels delivered twice by the network
    /parcels/count/delayed         parcels hit by a delay spike
    /parcels/count/retried         retransmissions scheduled by the retry layer
    /parcels/count/retries-in-flight  retransmissions scheduled but not yet sent
    /parcels/count/dead-lettered   parcels abandoned after exhausting retries
    /parcels/count/shed-lettered   sheds recorded in the dead-letter queue
    /parcels/count/dead-letter-evicted  oldest entries evicted past dlq_max
    /parcels/queue/dead-letter     dead-letter queue length right now (gauge)
    /parcels/batch/messages        coalesced wire messages flushed
    /parcels/batch/parcels         parcels that travelled inside a batch
    /parcels/batch/pending         parcels currently held in open batches
    /parcels/batch/header-bytes-saved  modelled header bytes amortized away
    /parcels/batch/flushes-full    flushes triggered by batch_max_parcels
    /parcels/batch/flushes-bytes   flushes triggered by batch_max_bytes
    /parcels/batch/flushes-linger  flushes triggered by the linger timer
    /parcels/batch/flushes-forced  ordering flushes (replies, retransmits)
    /overload/count/shed           parcels refused by admission control
    /overload/count/deferred       LOW-parcel deferrals (seeded backoff)
    /overload/count/credits-stalled  sends parked awaiting a credit
    /overload/count/credit-resumes   stalled sends released by an ack
    /overload/count/completed      credited/probe parcels acked
    /overload/queue/stalled        sends currently parked (gauge)
    /breaker/count/opens           circuit-breaker open transitions
    /breaker/count/closes          breakers closed by a successful probe
    /breaker/count/half-open-probes  probe parcels admitted while half-open
    /phi/suspicion                 max phi-accrual suspicion across peers
    /threads/queue/length-low      LOW-priority (sheddable) tasks queued
    /localities/count/failed       scheduled locality outages
    /localities/count/decommissioned  localities declared permanently dead
    /checkpoints/count/saved       checkpoint epochs written
    /checkpoints/count/restored    successful checkpoint restores
    /checkpoints/count/fallbacks   restores that fell back past an epoch
    /checkpoints/count/corrupt-skipped  corrupt epochs skipped (warned)
    /checkpoints/data/saved        serialized checkpoint bytes written
    /checkpoints/time/save         virtual seconds charged for saves
    /checkpoints/time/restore      virtual seconds charged for restores
    /backend{total}/count/forwarded      parcels shipped to another process
    /backend{total}/count/received       parcels delivered from another process
    /backend{total}/count/relayed        worker-to-worker parcels relayed here
    /backend{total}/count/replies-sent   serialized reply messages sent
    /backend{total}/count/replies-received  reply messages consumed
    /backend{total}/count/messages       wire messages written to the pipes
    /backend{total}/data/sent            wire bytes written to the pipes
    /backend{total}/count/agas-creates   AGAS registrations mirrored out
    /backend{total}/count/agas-resolves  cross-process GID resolutions brokered
    /backend{total}/count/sync-rounds    termination-detection rounds run
    /backend{total}/count/processes      OS processes in the job (driver only)
    /backend{total}/count/remote-tasks   tasks executed in worker processes
    /backend{total}/count/remote-parcels parcels sent by worker parcelports
    /runtime/uptime                virtual makespan (s)

All ``/backend`` counters read 0.0 on the virtual-clock backend, so
consumers need no feature test; the ``remote-*`` aggregates are
collected from the workers' ``("stopped", ...)`` statistics and are
final only after :meth:`Runtime.stop`.

Instance syntax: ``{locality#N/total}`` selects one locality,
``{locality#N/worker#W}`` selects one worker of one locality (thread
counters only), ``{total}`` (or no braces) aggregates over the job.

Job-wide ``time/average`` and ``idle-rate`` are *weighted* aggregates:
total busy time over total task count (resp. total capacity), so a
locality that ran 10k tasks carries 10k times the weight of one that
ran a single task.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from ..errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime
    from .threads.pool import ThreadPool

__all__ = ["query", "discover"]

_PATH = re.compile(
    r"^/(?P<object>[a-z]+)"
    r"(?:\{(?P<instance>[^}]*)\})?"
    r"/(?P<counter>[a-z/-]+)$"
)

_LOCALITY = re.compile(r"^locality#(?P<id>\d+)/total$")
_WORKER = re.compile(r"^locality#(?P<id>\d+)/worker#(?P<worker>\d+)$")

#: Fault/retry statistics: counter path suffix -> Parcelport attribute.
_PARCEL_FAULT_COUNTERS = {
    "count/dropped": "parcels_dropped",
    "count/corrupted": "parcels_corrupted",
    "count/duplicated": "parcels_duplicated",
    "count/delayed": "parcels_delayed",
    "count/retried": "parcels_retried",
    "count/dead-lettered": "parcels_dead_lettered",
    "count/shed-lettered": "parcels_shed_lettered",
    "count/dead-letter-evicted": "parcels_dlq_evicted",
}

#: Coalescing statistics: counter suffix -> ParcelBatcher attribute.
#: All read 0.0 when batching is off, so consumers need no feature test.
_BATCH_COUNTERS = {
    "batch/messages": "messages_flushed",
    "batch/parcels": "parcels_batched",
    "batch/pending": "pending",
    "batch/header-bytes-saved": "header_bytes_saved",
    "batch/flushes-full": "flushes_full",
    "batch/flushes-bytes": "flushes_bytes",
    "batch/flushes-linger": "flushes_linger",
    "batch/flushes-forced": "flushes_forced",
}

#: Overload admission statistics: counter suffix -> OverloadController
#: attribute.  All read 0.0 when no controller is installed, so counter
#: consumers need no feature test.
_OVERLOAD_COUNTERS = {
    "count/shed": "parcels_shed",
    "count/deferred": "parcels_deferred",
    "count/credits-stalled": "credit_stalls",
    "count/credit-resumes": "credit_resumes",
    "count/completed": "parcels_completed",
}

#: Circuit-breaker statistics: counter suffix -> OverloadController attribute.
_BREAKER_COUNTERS = {
    "count/opens": "breaker_opens",
    "count/closes": "breaker_closes",
    "count/half-open-probes": "breaker_probes",
}

#: Cross-process transport statistics: counter suffix -> key in
#: ``ExecutionBackend.counters()``.  The virtual backend returns an
#: empty dict, so every path reads 0.0 without a feature test.
_BACKEND_COUNTERS = {
    "count/forwarded": "parcels_forwarded",
    "count/received": "parcels_received",
    "count/relayed": "parcels_relayed",
    "count/replies-sent": "replies_sent",
    "count/replies-received": "replies_received",
    "count/messages": "messages_sent",
    "data/sent": "wire_bytes_sent",
    "count/agas-creates": "agas_creates",
    "count/agas-resolves": "agas_resolves",
    "count/sync-rounds": "sync_rounds",
    "count/processes": "processes",
    "count/remote-tasks": "remote_tasks_executed",
    "count/remote-parcels": "remote_parcels_sent",
}

#: Thread counters valid per worker (``{locality#N/worker#W}``).
_WORKER_COUNTERS = ("count/cumulative", "time/busy", "idle-rate")

#: Checkpoint statistics: counter path suffix -> Runtime attribute.
_CHECKPOINT_COUNTERS = {
    "count/saved": "checkpoints_saved",
    "count/restored": "checkpoints_restored",
    "count/fallbacks": "checkpoint_fallbacks",
    "count/corrupt-skipped": "checkpoint_corrupt_skipped",
    "data/saved": "checkpoint_bytes_saved",
    "time/save": "checkpoint_save_time_s",
    "time/restore": "checkpoint_restore_time_s",
}


def _pool_counter(pool: "ThreadPool", counter: str) -> float:
    if counter == "count/cumulative":
        return float(pool.tasks_executed)
    if counter == "count/stolen":
        return float(pool.steals)
    if counter == "queue/length":
        return float(pool.pending())
    if counter == "queue/length-low":
        return float(pool.pending_low())
    if counter == "time/busy":
        return sum(w.busy_time for w in pool.workers)
    if counter == "time/average":
        if pool.tasks_executed == 0:
            return 0.0
        busy = sum(w.busy_time for w in pool.workers)
        return busy / pool.tasks_executed
    if counter == "idle-rate":
        makespan = pool.makespan
        if makespan == 0.0:
            return 0.0
        busy = sum(w.busy_time for w in pool.workers)
        capacity = makespan * pool.n_workers
        return max(0.0, 1.0 - busy / capacity)
    raise RuntimeStateError(f"unknown threads counter {counter!r}")


def _worker_counter(pool: "ThreadPool", worker_id: int, counter: str) -> float:
    if not 0 <= worker_id < pool.n_workers:
        raise RuntimeStateError(
            f"worker {worker_id} out of range [0, {pool.n_workers})"
        )
    worker = pool.workers[worker_id]
    if counter == "count/cumulative":
        return float(worker.tasks_run)
    if counter == "time/busy":
        return worker.busy_time
    if counter == "idle-rate":
        makespan = pool.makespan
        if makespan == 0.0:
            return 0.0
        return max(0.0, 1.0 - worker.busy_time / makespan)
    raise RuntimeStateError(
        f"threads counter {counter!r} has no per-worker instance"
    )


def _aggregate_threads(pools: list["ThreadPool"], counter: str) -> float:
    """Job-wide thread counters, weighted by each pool's actual load.

    ``time/average`` is total busy seconds over total tasks;
    ``idle-rate`` is one minus total busy seconds over total capacity
    (the job makespan times every worker in view).  Additive counters
    are summed.
    """
    if counter == "time/average":
        total_busy = sum(_pool_counter(p, "time/busy") for p in pools)
        total_tasks = sum(p.tasks_executed for p in pools)
        if total_tasks == 0:
            return 0.0
        return total_busy / total_tasks
    if counter == "idle-rate":
        span = max(p.makespan for p in pools)
        if span == 0.0:
            return 0.0
        total_busy = sum(_pool_counter(p, "time/busy") for p in pools)
        capacity = span * sum(p.n_workers for p in pools)
        return max(0.0, 1.0 - total_busy / capacity)
    return float(sum(_pool_counter(pool, counter) for pool in pools))


def query(runtime: "Runtime", path: str) -> float:
    """Evaluate one counter path against a runtime."""
    match = _PATH.match(path)
    if not match:
        raise RuntimeStateError(f"malformed counter path {path!r}")
    obj = match.group("object")
    instance = match.group("instance")
    counter = match.group("counter")

    if obj == "threads":
        pools = [loc.pool for loc in runtime.localities]
        if instance and instance != "total":
            worker_match = _WORKER.match(instance)
            if worker_match:
                pool = runtime.locality(int(worker_match.group("id"))).pool
                return _worker_counter(
                    pool, int(worker_match.group("worker")), counter
                )
            loc_match = _LOCALITY.match(instance)
            if not loc_match:
                raise RuntimeStateError(f"malformed instance {instance!r}")
            loc_id = int(loc_match.group("id"))
            pools = [runtime.locality(loc_id).pool]
        if len(pools) == 1:
            return float(_pool_counter(pools[0], counter))
        return _aggregate_threads(pools, counter)

    if obj == "parcels":
        if instance not in (None, "total"):
            raise RuntimeStateError("parcel counters are job-wide; use {total}")
        port = runtime.parcelport
        if counter == "count/sent":
            return float(port.parcels_sent)
        if counter == "data/sent":
            return float(port.bytes_sent)
        if counter == "count/delivered":
            return float(port.parcels_delivered)
        if counter == "time/average-latency":
            if port.parcels_delivered == 0:
                return 0.0
            return port.latency_total_s / port.parcels_delivered
        if counter == "count/retries-in-flight":
            return float(port.parcels_retried - port.parcels_retransmitted)
        if counter == "queue/dead-letter":
            return float(len(port.dead_letters))
        if counter in _PARCEL_FAULT_COUNTERS:
            return float(getattr(port, _PARCEL_FAULT_COUNTERS[counter]))
        if counter in _BATCH_COUNTERS:
            batcher = port.batcher
            if batcher is None:
                return 0.0
            return float(getattr(batcher, _BATCH_COUNTERS[counter]))
        raise RuntimeStateError(f"unknown parcels counter {counter!r}")

    if obj in ("overload", "breaker", "phi"):
        if instance not in (None, "total"):
            raise RuntimeStateError(f"{obj} counters are job-wide; use {{total}}")
        controller = getattr(runtime, "_overload", None)
        if obj == "overload":
            if counter == "queue/stalled":
                return 0.0 if controller is None else float(controller.stalled_count())
            if counter in _OVERLOAD_COUNTERS:
                if controller is None:
                    return 0.0
                return float(getattr(controller, _OVERLOAD_COUNTERS[counter]))
            raise RuntimeStateError(f"unknown overload counter {counter!r}")
        if obj == "breaker":
            if counter in _BREAKER_COUNTERS:
                if controller is None:
                    return 0.0
                return float(getattr(controller, _BREAKER_COUNTERS[counter]))
            raise RuntimeStateError(f"unknown breaker counter {counter!r}")
        if counter == "suspicion":
            if controller is None:
                return 0.0
            return controller.phi.suspicion(runtime.makespan)
        raise RuntimeStateError(f"unknown phi counter {counter!r}")

    if obj == "localities":
        if instance not in (None, "total"):
            raise RuntimeStateError("locality counters are job-wide; use {total}")
        if counter == "count/failed":
            return float(runtime.localities_failed)
        if counter == "count/decommissioned":
            return float(len(runtime.decommissioned))
        raise RuntimeStateError(f"unknown localities counter {counter!r}")

    if obj == "checkpoints":
        if instance not in (None, "total"):
            raise RuntimeStateError("checkpoint counters are job-wide; use {total}")
        if counter in _CHECKPOINT_COUNTERS:
            return float(getattr(runtime, _CHECKPOINT_COUNTERS[counter]))
        raise RuntimeStateError(f"unknown checkpoints counter {counter!r}")

    if obj == "backend":
        if instance not in (None, "total"):
            raise RuntimeStateError("backend counters are job-wide; use {total}")
        if counter in _BACKEND_COUNTERS:
            stats = runtime.backend.counters()
            return float(stats.get(_BACKEND_COUNTERS[counter], 0.0))
        raise RuntimeStateError(f"unknown backend counter {counter!r}")

    if obj == "runtime":
        if counter == "uptime":
            return runtime.makespan
        raise RuntimeStateError(f"unknown runtime counter {counter!r}")

    raise RuntimeStateError(f"unknown counter object {obj!r}")


def discover(runtime: "Runtime") -> list[str]:
    """All concrete counter paths available on this runtime."""
    paths = []
    thread_counters = (
        "count/cumulative",
        "count/stolen",
        "queue/length",
        "queue/length-low",
        "time/average",
        "time/busy",
        "idle-rate",
    )
    for counter in thread_counters:
        paths.append(f"/threads{{total}}/{counter}")
        for loc in runtime.localities:
            paths.append(f"/threads{{locality#{loc.locality_id}/total}}/{counter}")
    for counter in _WORKER_COUNTERS:
        for loc in runtime.localities:
            for worker in loc.pool.workers:
                paths.append(
                    f"/threads{{locality#{loc.locality_id}"
                    f"/worker#{worker.worker_id}}}/{counter}"
                )
    paths.append("/parcels{total}/count/sent")
    paths.append("/parcels{total}/data/sent")
    paths.append("/parcels{total}/count/delivered")
    paths.append("/parcels{total}/time/average-latency")
    paths.append("/parcels{total}/count/retries-in-flight")
    paths.append("/parcels{total}/queue/dead-letter")
    for counter in _PARCEL_FAULT_COUNTERS:
        paths.append(f"/parcels{{total}}/{counter}")
    if runtime.parcelport.batcher is not None:
        for counter in _BATCH_COUNTERS:
            paths.append(f"/parcels{{total}}/{counter}")
    if getattr(runtime, "_overload", None) is not None:
        for counter in _OVERLOAD_COUNTERS:
            paths.append(f"/overload{{total}}/{counter}")
        paths.append("/overload{total}/queue/stalled")
        for counter in _BREAKER_COUNTERS:
            paths.append(f"/breaker{{total}}/{counter}")
        paths.append("/phi{total}/suspicion")
    paths.append("/localities{total}/count/failed")
    paths.append("/localities{total}/count/decommissioned")
    for counter in _CHECKPOINT_COUNTERS:
        paths.append(f"/checkpoints{{total}}/{counter}")
    if runtime.distributed:
        for counter in _BACKEND_COUNTERS:
            paths.append(f"/backend{{total}}/{counter}")
    paths.append("/runtime/uptime")
    return paths
