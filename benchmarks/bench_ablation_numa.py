"""Ablation: NUMA placement policy (first-touch vs interleaved lockstep).

The paper's 1D solver uses HPX block allocators + block executors so
every HPX thread "spawns at a location of data".  This ablation compares
the effective bandwidth of the two placement regimes on every machine,
and shows the 2D lockstep dips disappear under perfect first-touch.
"""

import pytest

from repro.hardware import machine, machine_names
from repro.reporting import Series, format_figure


def placement_curves(name: str) -> dict[str, Series]:
    m = machine(name)
    cores = range(1, m.spec.cores_per_node + 1)
    first_touch = Series("first-touch")
    lockstep = Series("interleaved lockstep")
    for c in cores:
        first_touch.add(c, m.memory.first_touch_bandwidth(c))
        lockstep.add(c, m.memory.lockstep_bandwidth(c))
    return {"first-touch": first_touch, "lockstep": lockstep}


@pytest.mark.parametrize("name", machine_names())
def test_first_touch_dominates_lockstep(benchmark, save_exhibit, name):
    curves = benchmark(placement_curves, name)
    ft = curves["first-touch"].ys()
    ls = curves["lockstep"].ys()
    assert all(a >= b - 1e-9 for a, b in zip(ft, ls))
    save_exhibit(
        f"ablation_numa_{name}",
        format_figure(
            f"Ablation: placement policy on {machine(name).spec.name} (GB/s)",
            list(curves.values()),
            xlabel="cores",
            y_format="{:.1f}",
        ),
    )


def test_kunpeng_dips_vanish_with_first_touch(benchmark):
    """The Fig 5 sawtooth is a placement artefact: first-touch is smooth."""
    m = machine("kunpeng916")
    ft = benchmark(
        lambda: [m.memory.first_touch_bandwidth(c) for c in range(8, 65, 8)]
    )
    assert ft == sorted(ft)  # monotone: no dips
    ls = [m.memory.lockstep_bandwidth(c) for c in range(8, 65, 8)]
    assert ls != sorted(ls)  # the lockstep curve does dip


def test_placement_gap_largest_at_partial_domains():
    m = machine("kunpeng916")
    gap_at = {
        c: m.memory.first_touch_bandwidth(c) - m.memory.lockstep_bandwidth(c)
        for c in (32, 40, 48)
    }
    assert gap_at[40] > gap_at[32]
    assert gap_at[40] > gap_at[48]
