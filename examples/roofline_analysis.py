#!/usr/bin/env python3
"""Roofline analysis of the 2D stencil on all four machines (Sec. III-C).

Walks through the paper's performance argument quantitatively:

1. derive the stencil's arithmetic intensity from cache behaviour
   (simulated, not assumed),
2. build each machine's roofline ``min(CP, AI x BW)`` in LUP terms,
3. locate every machine's operating point and say *why* it sits there
   (memory-bound everywhere -- exactly the paper's premise).

Run:  python examples/roofline_analysis.py
"""

import numpy as np

from repro.hardware import machine, machine_names
from repro.hardware.cachesim import CacheSim, jacobi_row_traffic
from repro.perf import attainable_performance, stencil2d_glups
from repro.perf.cost import transfers_per_update
from repro.reporting import format_table


def derive_ai() -> None:
    print("Step 1 -- derive bytes/LUP from a cache simulation "
          "(32 KiB, 8-way, LRU):")
    rows = []
    for label, nx, elem in (("float32", 1024, 4), ("float64", 512, 8)):
        cache = CacheSim(32 * 1024, 64, 8)
        bytes_per_lup = jacobi_row_traffic(cache, 32, nx, elem_bytes=elem, sweeps=2)
        rows.append([label, f"{bytes_per_lup:.1f}", f"{1 / bytes_per_lup:.4f}"])
    print(format_table(["dtype", "bytes/LUP (simulated)", "AI (LUP/byte)"], rows))
    print("Matches Sec. V-B: 12 B/LUP -> AI 1/12 (floats), 24 B/LUP -> 1/24 "
          "(doubles).\n")


def rooflines() -> None:
    print("Step 2 -- rooflines, full node, floats "
          "(CP in GLUP/s = peak GFLOP/s / 4 FLOP per LUP):")
    rows = []
    for name in machine_names():
        m = machine(name)
        n = m.spec.cores_per_node
        compute_peak = m.spec.peak_gflops / 4.0  # 4 FLOPs per 5-point update
        transfers = transfers_per_update(m, np.float32, n)
        ai = 1.0 / (transfers * 4)
        bandwidth = m.memory.lockstep_bandwidth(n)
        roof = attainable_performance(compute_peak, ai, bandwidth)
        achieved = stencil2d_glups(m, np.float32, "simd", n)
        bound = "memory" if ai * bandwidth < compute_peak else "compute"
        rows.append(
            [
                m.spec.name,
                f"{compute_peak:.0f}",
                f"{bandwidth:.0f}",
                f"1/{int(1 / ai)}",
                f"{roof:.1f}",
                f"{achieved:.1f}",
                f"{achieved / roof:.0%}",
                bound,
            ]
        )
    print(
        format_table(
            [
                "machine",
                "CP (GLUP/s)",
                "BW (GB/s)",
                "AI",
                "roofline",
                "model achieved",
                "of roof",
                "bound by",
            ],
            rows,
        )
    )
    print(
        "\nEvery machine is memory-bound -- 'the low arithmetic intensity "
        "makes the application memory bound for a broad class of "
        "processors' (Sec. V-B).  A64FX and ThunderX2 run at AI 1/8 "
        "(implicit cache blocking); the x86 and Kunpeng stay at 1/12."
    )


def main() -> None:
    derive_ai()
    rooflines()


if __name__ == "__main__":
    main()
