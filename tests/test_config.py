"""Unit tests for Config."""

import pytest

from repro.config import Config, default_config
from repro.errors import ConfigError


def test_defaults():
    cfg = default_config()
    assert cfg["threads.scheduler"] == "work-stealing"
    assert cfg.get_bool("parcel.overlap")
    assert cfg.get_int("threads.per_core") == 1


def test_override_with_dunder_keys():
    cfg = Config(threads__scheduler="static", parcel__overlap=False)
    assert cfg["threads.scheduler"] == "static"
    assert not cfg.get_bool("parcel.overlap")


def test_unknown_key_rejected():
    with pytest.raises(ConfigError):
        Config(threads__schedular="static")  # typo
    with pytest.raises(ConfigError):
        default_config()["no.such.key"]


def test_invalid_scheduler_rejected():
    with pytest.raises(ConfigError):
        Config(threads__scheduler="banana")


def test_invalid_counts_rejected():
    with pytest.raises(ConfigError):
        Config(threads__per_core=0)
    with pytest.raises(ConfigError):
        Config(threads__steal_attempts=-1)
    with pytest.raises(ConfigError):
        Config(algorithms__min_chunk=0)
    with pytest.raises(ConfigError):
        Config(algorithms__chunker="magic")


def test_replace_returns_new_config():
    cfg = default_config()
    other = cfg.replace(threads__scheduler="fifo")
    assert cfg["threads.scheduler"] == "work-stealing"
    assert other["threads.scheduler"] == "fifo"
    with pytest.raises(ConfigError):
        cfg.replace(bogus__key=1)


def test_from_mapping():
    cfg = Config.from_mapping({"threads.scheduler": "static"})
    assert cfg["threads.scheduler"] == "static"
    with pytest.raises(ConfigError):
        Config.from_mapping({"bad.key": 1})


def test_mapping_protocol():
    cfg = default_config()
    assert len(cfg) == len(list(cfg))
    assert "seed" in set(cfg)


def test_typed_accessors():
    cfg = default_config()
    assert isinstance(cfg.get_str("threads.scheduler"), str)
    assert isinstance(cfg.get_int("seed"), int)
    assert isinstance(cfg.get_bool("numa.first_touch"), bool)
